//! The full attack pipeline through the umbrella crate (the paper's Section 7
//! demonstration, scaled down to the fast test machine).

use llc_feasible::attack::{AttackConfig, EndToEndAttack};
use llc_feasible::ecdsa_victim::{Ecdsa, KeyPair};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn full_attack_recovers_most_nonce_bits() {
    let report = EndToEndAttack::new(AttackConfig::fast_test()).run();
    assert!(report.evset.sets_built >= 1);
    assert!(report.identify.identified && report.identify.correct);
    assert!(
        report.extract.median_recovered_fraction() > 0.5,
        "recovered {:.2}",
        report.extract.median_recovered_fraction()
    );
    assert!(
        report.extract.mean_bit_error_rate() < 0.25,
        "bit error rate {:.2}",
        report.extract.mean_bit_error_rate()
    );
    assert!(report.succeeded());
}

#[test]
fn the_attacked_implementation_still_produces_valid_signatures() {
    // Sanity check that the "victim" really is a working ECDSA signer: the
    // attack recovers bits of the nonce used by an otherwise correct
    // implementation, not of a toy.
    let ecdsa = Ecdsa::new();
    let mut rng = SmallRng::seed_from_u64(1234);
    let key = KeyPair::generate(ecdsa.curve(), &mut rng);
    let transcript = ecdsa.sign(&key, b"integration test message", &mut rng);
    assert!(ecdsa.verify(key.public(), b"integration test message", &transcript.signature));
    assert_eq!(
        transcript.ladder_bits,
        transcript.nonce.bits_msb_first()[1..].to_vec(),
        "the ladder's branch trace is exactly the nonce bits that leak"
    );
}
