//! Cross-crate integration tests: each of the paper's attack steps exercised
//! through the public umbrella API, on the fast test machine.

use llc_feasible::attack::{
    scan_for_target, Algorithm, ClassifierTrainingConfig, FeatureConfig, ScanConfig,
    TraceClassifier,
};
use llc_feasible::cache_model::CacheSpec;
use llc_feasible::ecdsa_victim::{EcdsaVictim, EcdsaVictimConfig};
use llc_feasible::evsets::{oracle, BulkBuilder, BulkConfig, EvictionSet, Scope, TargetCache};
use llc_feasible::machine::{Machine, NoiseModel};
use llc_feasible::probe::{Monitor, Strategy};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Step 1 (bulk eviction sets) against ground truth, for every algorithm.
#[test]
fn step1_every_algorithm_builds_correct_sf_eviction_sets() {
    for algorithm in Algorithm::all() {
        let mut machine = Machine::builder(CacheSpec::tiny_test())
            .noise(NoiseModel::quiescent_local())
            .seed(0x57e9)
            .build();
        let mut rng = StdRng::seed_from_u64(0x57e9);
        let algo = algorithm.instance();
        let mut config = BulkConfig::default();
        config.evset.candidate_scale = 6;
        let builder = BulkBuilder::new(algo.as_ref(), config);
        let outcome = builder
            .run(&mut machine, Scope::PageOffset, &mut rng)
            .unwrap_or_else(|e| panic!("{algorithm}: bulk run failed: {e}"));
        assert!(outcome.successes >= 1, "{algorithm}: built no eviction sets");
        for (ta, set) in &outcome.eviction_sets {
            assert!(
                oracle::is_true_eviction_set(&machine, *ta, set.addresses(), machine.spec().sf.ways()),
                "{algorithm}: constructed set is not congruent"
            );
        }
    }
}

/// Step 2: the PSD + SVM scanner finds the set the ECDSA victim touches.
#[test]
fn step2_identifies_the_victim_target_set() {
    let spec = CacheSpec::tiny_test();
    let mut machine =
        Machine::builder(spec.clone()).noise(NoiseModel::quiescent_local()).seed(0x1d3).build();
    let mut rng = StdRng::seed_from_u64(0x1d3);

    let victim_cfg = EcdsaVictimConfig::fast_test();
    let expected_period = victim_cfg.expected_access_period();
    let (victim, handle) = EcdsaVictim::new(victim_cfg);
    machine.install_victim(Box::new(victim), true, 50_000);
    let layout = handle.lock().unwrap().layout.clone().expect("victim set up");
    let target_loc = machine.oracle_victim_location(layout.branch_line);

    // Oracle-assisted Step 1 so this test isolates Step 2.
    let pool = llc_feasible::evsets::CandidateSet::allocate(
        &mut machine,
        layout.target_page_offset(),
        512,
        &mut rng,
    );
    let groups = oracle::group_by_location(&machine, pool.addresses());
    let ways = spec.sf.ways();
    let sets: Vec<_> = groups
        .iter()
        .filter(|(_, m)| m.len() > ways)
        .map(|(_, m)| (m[0], EvictionSet::new(m[1..=ways].to_vec(), TargetCache::Sf)))
        .collect();
    assert!(sets.len() >= 2, "need both SF sets at this page offset");

    let classifier = TraceClassifier::train(&ClassifierTrainingConfig {
        features: FeatureConfig { expected_period_cycles: expected_period, ..Default::default() },
        positive_traces: 60,
        negative_traces: 100,
        trace_cycles: 400_000,
        noise_per_ms: 0.3,
        ..Default::default()
    });
    let scan = scan_for_target(
        &mut machine,
        &sets,
        &classifier,
        &ScanConfig { trace_cycles: 400_000, timeout_cycles: 300_000_000, ..Default::default() },
    );
    let ta = scan.identified_ta.expect("scanner should identify a target set");
    assert_eq!(machine.oracle_attacker_location(ta), target_loc, "identified the wrong set");
}

/// Step 3 plumbing: monitoring the true target set during signings sees the
/// per-iteration access pattern (roughly 1-2 accesses per iteration).
#[test]
fn step3_monitoring_sees_ladder_periodicity() {
    let spec = CacheSpec::tiny_test();
    let mut machine =
        Machine::builder(spec.clone()).noise(NoiseModel::silent()).seed(0xbea7).build();
    let mut rng = StdRng::seed_from_u64(0xbea7);

    let victim_cfg = EcdsaVictimConfig::fast_test();
    let iteration = victim_cfg.iteration_cycles;
    let bits = victim_cfg.nonce_bits as u64;
    let (victim, handle) = EcdsaVictim::new(victim_cfg);
    machine.install_victim(Box::new(victim), true, 20_000);
    let layout = handle.lock().unwrap().layout.clone().expect("victim set up");
    let target_loc = machine.oracle_victim_location(layout.branch_line);

    let pool = llc_feasible::evsets::CandidateSet::allocate(
        &mut machine,
        layout.target_page_offset(),
        512,
        &mut rng,
    );
    let groups = oracle::group_by_location(&machine, pool.addresses());
    let ways = spec.sf.ways();
    let members = groups
        .iter()
        .find(|(loc, m)| **loc == target_loc && m.len() > ways)
        .map(|(_, m)| m.clone())
        .expect("candidate pool covers the target set");
    let set = EvictionSet::new(members[..ways].to_vec(), TargetCache::Sf);

    // Monitor across two full requests.
    let request = 300_000 + bits * iteration + 120_000;
    let mut monitor = Monitor::new(Strategy::Parallel, set);
    let trace = monitor.collect(&mut machine, request * 2);
    // Expect on the order of 1.5 detections per ladder iteration over ~2 runs.
    let expected = 2.0 * bits as f64 * 1.5;
    assert!(
        trace.len() as f64 > expected * 0.4,
        "monitor saw only {} accesses, expected around {expected}",
        trace.len()
    );
    // Inter-arrival times should cluster near half/full iteration durations.
    let close = trace
        .inter_arrival_cycles()
        .iter()
        .filter(|&&d| {
            (d as i64 - (iteration / 2) as i64).unsigned_abs() < iteration / 4
                || (d as i64 - iteration as i64).unsigned_abs() < iteration / 4
        })
        .count();
    assert!(
        close * 2 >= trace.inter_arrival_cycles().len(),
        "only {close} of {} intervals near the ladder period",
        trace.inter_arrival_cycles().len()
    );
}
