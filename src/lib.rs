//! # llc-feasible
//!
//! Umbrella crate for the reproduction of *"Last-Level Cache Side-Channel
//! Attacks Are Feasible in the Modern Public Cloud"* (ASPLOS 2024) on a
//! simulated Skylake-SP multi-tenant host. It re-exports the workspace's
//! member crates under short module names so examples and downstream users
//! can depend on a single crate:
//!
//! * [`cache_model`] — Skylake-SP/Ice Lake-SP cache hierarchy model;
//! * [`machine`] — cycle-level host simulation (noise, victim, attacker port);
//! * [`evsets`] — eviction-set construction (candidate filtering, `BinS`, ...);
//! * [`probe`] — Prime+Probe monitoring strategies (Parallel Probing, ...);
//! * [`sigproc`] — FFT / Welch power spectral density;
//! * [`ml`] — SVM and random-forest classifiers;
//! * [`ecdsa_victim`] — the vulnerable sect571r1 ECDSA victim service;
//! * [`attack`] — the end-to-end Steps 1–4 pipeline;
//! * [`recovery`] — Step 4 cryptanalysis: soft-decision nonce
//!   reconstruction, confidence-ordered correction search, algebraic ECDSA
//!   key recovery.
//!
//! See `README.md` for a walkthrough and `DESIGN.md` / `EXPERIMENTS.md` for
//! the experiment inventory.
//!
//! ```
//! use llc_feasible::attack::{AttackConfig, EndToEndAttack};
//!
//! let report = EndToEndAttack::new(AttackConfig::fast_test()).run();
//! assert!(report.identify.identified);
//! ```

#![warn(missing_docs)]

// Compile-check and run the README's code blocks as doctests, so the
// walkthrough can never drift from the actual API.
#[doc = include_str!("../README.md")]
mod readme_doctests {}

pub use llc_cache_model as cache_model;
pub use llc_core as attack;
pub use llc_ecdsa_victim as ecdsa_victim;
pub use llc_evsets as evsets;
pub use llc_machine as machine;
pub use llc_ml as ml;
pub use llc_probe as probe;
pub use llc_recovery as recovery;
pub use llc_sigproc as sigproc;
