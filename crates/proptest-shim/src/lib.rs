//! Offline drop-in shim for the subset of the `proptest` 1.x API this
//! workspace's property tests use.
//!
//! Provides the [`proptest!`] macro (deterministically seeded from the test
//! name), the strategies the tests draw from — integer ranges, tuples of
//! strategies, [`any`], and [`prop::collection::vec`] — plus
//! [`prop_assert!`] / [`prop_assert_eq!`] and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate:
//!
//! * **no shrinking** — a failing case panics with the case number and the
//!   assertion message, but the input is not minimised;
//! * runs are deterministic per test (seeded from the test function's name),
//!   so a failure always reproduces;
//! * only the API surface exercised by the workspace is provided.
//!
//! Swap the `[workspace.dependencies]` entry back to crates.io `proptest` on
//! a connected machine; the test sources compile unchanged against either.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of one type; the shim's stand-in for
/// `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> Self {
                <Self as rand::Standard>::sample_standard(rng)
            }
        }
    )*};
}
impl_arbitrary_std!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Uniform strategy over the whole domain of `T` (`any::<u64>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Built-in composite strategies (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// Strategy producing `Vec`s with random length and elements.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            elem: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.len.clone());
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }

        /// `Vec` strategy: `len` elements drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }
    }
}

/// Deterministic 64-bit FNV-1a, used to seed each property from its name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Fresh deterministic generator for one property function.
pub fn runner_rng(name: &str) -> SmallRng {
    SmallRng::seed_from_u64(seed_from_name(name))
}

#[doc(hidden)]
pub fn __advance(rng: &mut SmallRng) -> u64 {
    rng.next_u64()
}

#[doc(hidden)]
pub use rand::rngs::SmallRng as __SmallRng;

/// Everything the property tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Mirrors the real macro's surface for the forms used in this workspace:
/// an optional `#![proptest_config(...)]` inner attribute followed by test
/// functions with `arg in strategy` parameter lists.
#[macro_export]
macro_rules! proptest {
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::runner_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let result: ::std::result::Result<(), ::std::string::String> =
                        (|rng: &mut $crate::__SmallRng| {
                            $(let $arg = $crate::Strategy::sample(&($strategy), rng);)+
                            $body
                            ::std::result::Result::Ok(())
                        })(&mut rng);
                    if let ::std::result::Result::Err(message) = result {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, message,
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {left:?}\n right: {right:?}",
                stringify!($left), stringify!($right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {left:?}\n right: {right:?}",
                format!($($fmt)+),
            ));
        }
    }};
}

/// `assert_ne!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {left:?}",
                stringify!($left), stringify!($right),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -4i32..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        /// Vec strategies respect the length range, tuples compose.
        #[test]
        fn vec_and_tuple_strategies(v in prop::collection::vec((0usize..3, 0u64..512), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (core, line) in v {
                prop_assert!(core < 3);
                prop_assert_eq!(line >> 9, 0);
            }
        }

        /// `any` covers the full domain without panicking.
        #[test]
        fn any_samples(a in any::<u64>(), b in any::<u16>()) {
            let _ = a; // sampling itself is the property under test
            prop_assert!(u64::from(b) <= u64::from(u16::MAX));
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(crate::seed_from_name("x"), crate::seed_from_name("x"));
        assert_ne!(crate::seed_from_name("x"), crate::seed_from_name("y"));
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u8..8) {
                prop_assert!(x > 200, "x was {x}");
            }
        }
        always_fails();
    }
}
