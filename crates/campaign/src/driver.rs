//! The campaign driver: flatten, stream, checkpoint, resume.
//!
//! [`Campaign::run`] turns a [`CampaignSpec`] (cells × trials, metric
//! declaration, master seed, chunk size) plus a
//! [`TrialSource`] into final per-cell
//! [`CellAggregate`]s, persisting progress to a directory as it goes:
//!
//! 1. The *chunk grid* divides the flattened global trial stream into
//!    fixed `[k·chunk, (k+1)·chunk)` ranges. Chunks — not trials, not cells
//!    — are the unit of scheduling, checkpointing and resume.
//! 2. Pending chunks are handed to the fleet's task engine
//!    (`run_tasks_with`); a worker runs a chunk's trials in global order,
//!    folding outcomes into per-cell segment aggregates, then appends one
//!    checksummed JSONL merge record and flushes. One line of buffered
//!    state per in-flight chunk is all that ever lives in memory — resident
//!    usage is O(cells + workers·chunk), independent of total trials.
//! 3. Every trial's seed is derived `stream_seed(stream_seed(master,
//!    CELL_STREAM), cell) → trial_seed(·, trial_within_cell)` — a pure
//!    function of the campaign identity and the trial's grid coordinates.
//!    Scheduling, thread count, chunk size and kill points cannot touch it.
//!
//! **Resume proof sketch.** Final aggregates are the merge of per-chunk
//! segment aggregates over the fixed chunk grid. (a) Each chunk's record is
//! a pure function of `(spec, source, retry budget)` — per-trial seeds come
//! from grid coordinates alone, worker state is rewound per trial, and a
//! trial that panics is retried with its *same* derived seed, so a
//! deterministic panic produces the same quarantine entry on every
//! execution of its chunk. (b) The merge is exact integer
//! addition/min/max, associative and commutative, and quarantine entries
//! are keyed by grid coordinates (set union, then sorted), so *any*
//! partition of the chunk set into {loaded from disk} ∪ {re-executed},
//! merged in any order, yields the same bits — aggregates *and* quarantine
//! list. (c) A kill can only lose or truncate the **final** record line
//! (appends are single `write_all` + flush of one line); `load_records`
//! drops the damaged tail and the chunk simply re-runs under (a). (d) On
//! completion the records file is fsynced **before** the manifest's
//! `complete` flag is written (write temp → fsync temp → rename → fsync
//! directory), so a host crash cannot reorder the completion marker ahead
//! of the data it vouches for: a manifest that says `complete` implies
//! every record line is durable. Hence an interrupted campaign, resumed at
//! any thread count, produces results bit-identical to an uninterrupted
//! run — which the proptest suite (`tests/resume_props.rs`) enforces,
//! including under injected fault plans.

use crate::faults::{FaultPlan, FaultySink};
use crate::grid::CellGrid;
use crate::records::{
    encode_record, load_records, CampaignError, ChunkRecord, DirSink, LoadedRecords, Manifest,
    QuarantineRecord, RecordSink,
};
use crate::stats::{CellAggregate, TrialOutcome};
use llc_fleet::{panic_message, stream_seed, Fleet, TrialCtx, TrialSource};
use std::path::PathBuf;

/// Stream tag separating per-cell master seeds from any other use of the
/// campaign master seed.
const CELL_STREAM: u64 = u64::from_le_bytes(*b"campcell");

/// One cell of the sweep grid: a stable identifier plus its trial count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Stable identifier, rendered in reports and hashed into the campaign
    /// fingerprint. Encode the cell's parameters here.
    pub id: String,
    /// Trials this cell contributes to the global stream.
    pub trials: u64,
}

/// The full identity of a campaign: what to run and how to shard it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Campaign name (directory-friendly).
    pub name: String,
    /// Master seed; every per-trial seed derives from it.
    pub master_seed: u64,
    /// Trials per checkpoint chunk.
    pub chunk_trials: u64,
    /// Names of the integer metrics every trial reports, in order.
    pub metrics: Vec<String>,
    /// The sweep cells, in grid order.
    pub cells: Vec<CellSpec>,
}

impl CampaignSpec {
    /// The flattened trial-stream geometry.
    pub fn grid(&self) -> CellGrid {
        let trials: Vec<u64> = self.cells.iter().map(|c| c.trials).collect();
        CellGrid::new(&trials)
    }

    /// The master seed of cell `cell`'s trial sub-stream.
    pub fn cell_master(&self, cell: usize) -> u64 {
        stream_seed(stream_seed(self.master_seed, CELL_STREAM), cell as u64)
    }

    /// FNV-1a fingerprint over everything that defines the trial stream:
    /// name, master seed, chunk size, metric names, cell ids and counts.
    /// Two specs with equal fingerprints produce interchangeable on-disk
    /// state; resume refuses anything else.
    pub fn fingerprint(&self) -> u64 {
        let mut canon = String::new();
        canon.push_str(&self.name);
        canon.push('\x1f');
        canon.push_str(&format!("{:x}/{:x}", self.master_seed, self.chunk_trials));
        for m in &self.metrics {
            canon.push('\x1f');
            canon.push_str(m);
        }
        for c in &self.cells {
            canon.push('\x1e');
            canon.push_str(&c.id);
            canon.push('\x1f');
            canon.push_str(&format!("{:x}", c.trials));
        }
        crate::records::fnv1a(canon.as_bytes())
    }

    /// The manifest this spec writes into a fresh campaign directory.
    pub fn manifest(&self) -> Manifest {
        Manifest {
            name: self.name.clone(),
            master_seed: self.master_seed,
            chunk_trials: self.chunk_trials,
            total_trials: self.grid().total(),
            cells: self.cells.len() as u64,
            fingerprint: self.fingerprint(),
            complete: false,
        }
    }
}

/// Execution options for one [`Campaign::run`] call.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Stop after completing this many chunks (on top of whatever was
    /// already on disk). `None` runs to completion. This is the
    /// deterministic "kill": CI and tests use it to interrupt a campaign at
    /// an exact chunk boundary and resume it.
    pub max_chunks: Option<u64>,
    /// How many times a panicking trial is re-run (with its *same* derived
    /// seed) before it quarantines. The default of 2 gives every trial up
    /// to 3 attempts; 0 quarantines on the first panic. Retries only ever
    /// repeat a pure function of the trial's grid coordinates, so a retry
    /// that succeeds is bit-identical to a trial that never panicked.
    pub retries: u32,
    /// Deterministic fault injection for this run (dev/test knob). `None`
    /// — the default — injects nothing and runs the byte-identical
    /// production I/O path. Sticky injected panics quarantine, so a plan
    /// must be re-supplied on resume for the quarantine list to stay
    /// consistent across the runs it spans.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self { max_chunks: None, retries: 2, fault_plan: None }
    }
}

/// What a [`Campaign::run`] call did and produced: clean per-cell
/// aggregates, separated from the trials that had to be quarantined.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// Final per-cell aggregates, in cell order. Only meaningful as final
    /// results when `complete` — on a partial run they cover completed
    /// chunks only. Quarantined trials are **not** folded in; a cell's
    /// aggregate covers `cell_trials - quarantined(cell)` trials.
    pub aggregates: Vec<CellAggregate>,
    /// Every quarantined trial across all recorded chunks, sorted by
    /// `(cell, trial)` — independent of thread count and of which run of a
    /// resumed campaign recorded the chunk.
    pub quarantined: Vec<QuarantineRecord>,
    /// Total chunks in the campaign.
    pub chunks_total: u64,
    /// Chunks loaded from a previous run's records.
    pub chunks_resumed: u64,
    /// Chunks executed by this call.
    pub chunks_run: u64,
    /// True when every chunk is now recorded.
    pub complete: bool,
    /// True when a partial/corrupt final record line was dropped and re-run.
    pub recovered_tail: bool,
}

/// A campaign bound to its checkpoint directory.
#[derive(Debug, Clone)]
pub struct Campaign {
    spec: CampaignSpec,
    dir: PathBuf,
}

impl Campaign {
    /// Binds `spec` to checkpoint directory `dir` (created on first run).
    pub fn new(spec: CampaignSpec, dir: impl Into<PathBuf>) -> Self {
        Self { spec, dir: dir.into() }
    }

    /// The campaign's spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    /// Path of the merge-records file.
    pub fn records_path(&self) -> PathBuf {
        self.dir.join("records.jsonl")
    }

    /// Runs (or resumes) the campaign on `fleet`, pulling trials from
    /// `source`. See the module docs for the full lifecycle; the short
    /// version: validate or create the manifest, load valid chunk records,
    /// execute the missing chunks (appending a record per chunk), merge
    /// everything into final aggregates + quarantine list, and — on
    /// completion — durably mark the manifest complete.
    ///
    /// A trial that panics is caught, the source's
    /// [`TrialSource::on_trial_panic`] hook runs (discarding poisoned
    /// worker state), and the trial retries with its same seed up to
    /// [`RunOptions::retries`] times; a deterministic panic exhausts the
    /// budget and the trial quarantines instead of killing the fleet.
    pub fn run<S>(
        &self,
        fleet: &Fleet,
        source: &S,
        options: &RunOptions,
    ) -> Result<CampaignOutcome, CampaignError>
    where
        S: TrialSource<Item = TrialOutcome>,
    {
        match &options.fault_plan {
            Some(plan) if !plan.is_empty() => {
                let sink = FaultySink::new(DirSink::new(&self.dir), plan.clone());
                self.run_on(fleet, source, options, &sink, Some(plan))
            }
            _ => self.run_on(fleet, source, options, &DirSink::new(&self.dir), None),
        }
    }

    /// [`Campaign::run`] against an explicit [`RecordSink`] (and the fault
    /// plan driving injected *trial* panics, if any).
    fn run_on<S>(
        &self,
        fleet: &Fleet,
        source: &S,
        options: &RunOptions,
        sink: &dyn RecordSink,
        plan: Option<&FaultPlan>,
    ) -> Result<CampaignOutcome, CampaignError>
    where
        S: TrialSource<Item = TrialOutcome>,
    {
        std::fs::create_dir_all(&self.dir).map_err(|e| CampaignError::Io(e.to_string()))?;
        let already_complete = self.check_or_write_manifest(sink)?;

        let grid = self.spec.grid();
        let chunk = self.spec.chunk_trials;
        let arity = self.spec.metrics.len();
        let chunks_total = grid.chunk_count(chunk);

        let loaded = self.load_existing(sink, &grid)?;
        let mut done: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for r in &loaded.records {
            if !done.insert(r.chunk) {
                // Merging a chunk twice would silently double its trials —
                // the one corruption mode the checksum cannot see.
                return Err(CampaignError::RecordsCorrupt(format!(
                    "chunk {} recorded twice",
                    r.chunk
                )));
            }
        }
        let mut pending: Vec<u64> = (0..chunks_total).filter(|k| !done.contains(k)).collect();
        if let Some(max) = options.max_chunks {
            pending.truncate(max as usize);
        }

        let new_records = if pending.is_empty() {
            Vec::new()
        } else {
            // Truncate any recovered tail, then append one checksummed line
            // per completed chunk, in completion order. The sink serialises
            // appends; flushing per line bounds what a kill can lose to the
            // final line.
            sink.open_records(loaded.valid_len)?;
            let pending = &pending;
            let grid_ref = &grid;
            let results: Vec<Result<ChunkRecord, CampaignError>> = fleet
                .try_run_tasks_with(
                    pending.len(),
                    |worker| source.init(worker),
                    |state, i| {
                        let record = self.run_chunk(
                            grid_ref,
                            pending[i],
                            state,
                            source,
                            arity,
                            options.retries,
                            plan,
                        );
                        let line = encode_record(&record);
                        sink.append_record(&line)?;
                        Ok(record)
                    },
                )
                .map_err(|e| CampaignError::WorkerLost(e.to_string()))?;
            results.into_iter().collect::<Result<Vec<_>, _>>()?
        };

        let chunks_run = new_records.len() as u64;
        let chunks_resumed = loaded.records.len() as u64;
        let mut aggregates: Vec<CellAggregate> =
            (0..self.spec.cells.len()).map(|_| CellAggregate::empty(arity)).collect();
        let mut quarantined: Vec<QuarantineRecord> = Vec::new();
        for record in loaded.records.iter().chain(&new_records) {
            for (cell, segment) in &record.segments {
                aggregates[*cell].merge(segment);
            }
            quarantined.extend(record.quarantined.iter().cloned());
        }
        // Chunks are disjoint, so (cell, trial) keys are unique; sorting
        // makes the list independent of append order (thread schedule).
        quarantined.sort_by_key(|q| (q.cell, q.trial));

        let complete = chunks_resumed + chunks_run == chunks_total;
        if complete && (chunks_run > 0 || !already_complete) {
            // Durability ordering (module docs, point d): data first, then
            // the completion marker. `sync_records` must not fail silently —
            // a completion marker over un-fsynced data is the exact lie this
            // ordering exists to prevent.
            sink.sync_records()?;
            let mut manifest = self.spec.manifest();
            manifest.complete = true;
            sink.write_manifest(&format!("{}\n", manifest.encode()))?;
        }

        Ok(CampaignOutcome {
            aggregates,
            quarantined,
            chunks_total,
            chunks_resumed,
            chunks_run,
            complete,
            recovered_tail: loaded.recovered_tail,
        })
    }

    /// Executes one chunk of the global stream, folding per-cell segments
    /// and quarantining trials whose panic survives the retry budget.
    #[allow(clippy::too_many_arguments)]
    fn run_chunk<S>(
        &self,
        grid: &CellGrid,
        chunk_index: u64,
        state: &mut S::Worker,
        source: &S,
        arity: usize,
        retries: u32,
        plan: Option<&FaultPlan>,
    ) -> ChunkRecord
    where
        S: TrialSource<Item = TrialOutcome>,
    {
        let (start, end) = grid.chunk_range(self.spec.chunk_trials, chunk_index);
        let mut segments: Vec<(usize, CellAggregate)> = Vec::new();
        let mut quarantined: Vec<QuarantineRecord> = Vec::new();
        for global in start..end {
            let (cell, within) = grid.locate(global);
            // Every cell the range touches gets a segment up front, so a
            // fully-quarantined stretch still tiles the range on disk.
            match segments.last() {
                Some((c, _)) if *c == cell => {}
                _ => segments.push((cell, CellAggregate::empty(arity))),
            }
            let ctx =
                TrialCtx::derive(self.spec.cell_master(cell), within as usize, grid
                    .cell_trials(cell) as usize);
            let mut attempt: u32 = 0;
            loop {
                // The catch_unwind boundary is per *attempt*: a panic never
                // crosses a trial, so one bad trial cannot take down the
                // worker (or the fleet). Worker state is treated as poisoned
                // after a panic — the source's hook discards it.
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if let Some(plan) = plan {
                        if plan.trial_panics(global, attempt) {
                            panic!("injected fault: trial {global}");
                        }
                    }
                    source.run_trial(state, cell, ctx)
                }));
                match run {
                    Ok(outcome) => {
                        segments.last_mut().expect("segment pushed above").1.record(&outcome);
                        break;
                    }
                    Err(payload) => {
                        source.on_trial_panic(state);
                        if attempt >= retries {
                            // Same seed, same panic on every attempt: the
                            // reason below is identical no matter when or
                            // where this chunk runs.
                            quarantined.push(QuarantineRecord {
                                cell,
                                trial: within,
                                attempts: attempt + 1,
                                reason: panic_message(payload.as_ref()),
                            });
                            break;
                        }
                        attempt += 1;
                    }
                }
            }
        }
        ChunkRecord { chunk: chunk_index, start, end, segments, quarantined }
    }

    /// Validates an existing manifest against the spec (ignoring the
    /// mutable `complete` flag) or writes a fresh one. Returns whether the
    /// directory was already durably marked complete.
    fn check_or_write_manifest(&self, sink: &dyn RecordSink) -> Result<bool, CampaignError> {
        let want = self.spec.manifest();
        match sink.read_manifest()? {
            Some(text) => {
                let found = Manifest::decode(&text)?;
                if !found.same_campaign(&want) {
                    return Err(CampaignError::ManifestMismatch(format!(
                        "directory belongs to campaign '{}' (fingerprint {:016x}), \
                         spec is '{}' (fingerprint {:016x})",
                        found.name, found.fingerprint, want.name, want.fingerprint
                    )));
                }
                Ok(found.complete)
            }
            None => {
                sink.write_manifest(&format!("{}\n", want.encode()))?;
                Ok(false)
            }
        }
    }

    fn load_existing(
        &self,
        sink: &dyn RecordSink,
        grid: &CellGrid,
    ) -> Result<LoadedRecords, CampaignError> {
        let Some(bytes) = sink.read_records()? else {
            return Ok(LoadedRecords { records: Vec::new(), valid_len: 0, recovered_tail: false });
        };
        // Lossy conversion: invalid UTF-8 becomes replacement characters,
        // which fail the line checksum and are then classified by position —
        // recoverable kill artifact if final, corruption otherwise. (The
        // replacement may change byte lengths, but only *after* the valid
        // prefix, so `valid_len` stays an exact file offset.)
        let contents = String::from_utf8_lossy(&bytes);
        load_records(&contents, grid, self.spec.chunk_trials, self.spec.metrics.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic synthetic source: outcome is a hash of (cell, seed).
    pub(crate) struct Synthetic;

    impl TrialSource for Synthetic {
        type Worker = ();
        type Item = TrialOutcome;
        fn init(&self, _worker: usize) {}
        fn run_trial(&self, _w: &mut (), cell: usize, ctx: TrialCtx) -> TrialOutcome {
            let v = llc_fleet::mix64(ctx.seed ^ (cell as u64) << 32);
            TrialOutcome { success: v % 3 == 0, metrics: vec![v >> 32, v & 0xffff] }
        }
    }

    fn spec(name: &str, cells: &[u64], chunk: u64) -> CampaignSpec {
        CampaignSpec {
            name: name.into(),
            master_seed: 0xc0ffee,
            chunk_trials: chunk,
            metrics: vec!["alpha".into(), "beta".into()],
            cells: cells
                .iter()
                .enumerate()
                .map(|(i, &t)| CellSpec { id: format!("cell{i}"), trials: t })
                .collect(),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("llc-campaign-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn full_run_is_thread_invariant_and_complete() {
        let spec = spec("threads", &[5, 3, 9], 4);
        let mut reports = Vec::new();
        for threads in [1usize, 2, 8] {
            let dir = tmp_dir(&format!("threads{threads}"));
            let campaign = Campaign::new(spec.clone(), &dir);
            let report = campaign
                .run(&Fleet::new(threads), &Synthetic, &RunOptions::default())
                .unwrap();
            assert!(report.complete);
            assert_eq!(report.chunks_run, report.chunks_total);
            reports.push(report.aggregates);
            let _ = std::fs::remove_dir_all(&dir);
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
        assert_eq!(reports[0].iter().map(|a| a.trials).sum::<u64>(), 17);
    }

    #[test]
    fn max_chunks_then_resume_matches_uninterrupted() {
        let spec = spec("resume", &[7, 7, 2], 3);
        let dir_a = tmp_dir("resume-a");
        let uninterrupted = Campaign::new(spec.clone(), &dir_a)
            .run(&Fleet::new(2), &Synthetic, &RunOptions::default())
            .unwrap();

        let dir_b = tmp_dir("resume-b");
        let campaign = Campaign::new(spec, &dir_b);
        let first = campaign
            .run(
                &Fleet::new(2),
                &Synthetic,
                &RunOptions { max_chunks: Some(2), ..RunOptions::default() },
            )
            .unwrap();
        assert!(!first.complete);
        assert_eq!(first.chunks_run, 2);
        let second = campaign.run(&Fleet::new(8), &Synthetic, &RunOptions::default()).unwrap();
        assert!(second.complete);
        assert_eq!(second.chunks_resumed, 2);
        assert_eq!(second.aggregates, uninterrupted.aggregates);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn mismatched_spec_is_refused() {
        let dir = tmp_dir("mismatch");
        Campaign::new(spec("one", &[4], 2), &dir)
            .run(&Fleet::single(), &Synthetic, &RunOptions::default())
            .unwrap();
        let err = Campaign::new(spec("two", &[4], 2), &dir)
            .run(&Fleet::single(), &Synthetic, &RunOptions::default())
            .unwrap_err();
        assert!(matches!(err, CampaignError::ManifestMismatch(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Panics deterministically on a chosen trial (by global cell/within
    /// coordinates); `flaky_first_attempts` makes the panic transient by
    /// healing once the worker has seen it that many times.
    struct Panicky {
        cell: usize,
        within: u64,
        transient: bool,
    }

    impl TrialSource for Panicky {
        type Worker = std::cell::Cell<u32>;
        type Item = TrialOutcome;
        fn init(&self, _worker: usize) -> Self::Worker {
            std::cell::Cell::new(0)
        }
        fn run_trial(
            &self,
            seen: &mut Self::Worker,
            cell: usize,
            ctx: TrialCtx,
        ) -> TrialOutcome {
            if cell == self.cell && ctx.trial as u64 == self.within {
                let prior = seen.get();
                seen.set(prior + 1);
                if !self.transient || prior == 0 {
                    panic!("synthetic failure at cell {cell} trial {}", ctx.trial);
                }
            }
            Synthetic.run_trial(&mut (), cell, ctx)
        }
    }

    #[test]
    fn a_transient_panic_heals_with_the_same_seed_and_leaves_no_trace() {
        let spec = spec("transient", &[5, 3], 4);
        let dir_clean = tmp_dir("transient-clean");
        let clean = Campaign::new(spec.clone(), &dir_clean)
            .run(&Fleet::single(), &Synthetic, &RunOptions::default())
            .unwrap();

        let dir = tmp_dir("transient-flaky");
        let flaky = Campaign::new(spec, &dir)
            .run(
                &Fleet::single(),
                &Panicky { cell: 1, within: 1, transient: true },
                &RunOptions::default(),
            )
            .unwrap();
        assert!(flaky.complete);
        assert!(flaky.quarantined.is_empty());
        // The retried trial reran with its same derived seed, so the healed
        // run is bit-identical to one that never panicked.
        assert_eq!(flaky.aggregates, clean.aggregates);
        let _ = std::fs::remove_dir_all(&dir_clean);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_deterministic_panic_quarantines_instead_of_killing_the_run() {
        let spec = spec("quarantine", &[5, 3], 4);
        let dir = tmp_dir("quarantine");
        let outcome = Campaign::new(spec, &dir)
            .run(
                &Fleet::new(2),
                &Panicky { cell: 0, within: 2, transient: false },
                &RunOptions::default(),
            )
            .unwrap();
        assert!(outcome.complete);
        assert_eq!(outcome.quarantined.len(), 1);
        let q = &outcome.quarantined[0];
        assert_eq!((q.cell, q.trial), (0, 2));
        assert_eq!(q.attempts, 3, "default retries=2 means 3 attempts");
        assert_eq!(q.reason, "synthetic failure at cell 0 trial 2");
        // The quarantined trial is excluded from its cell's aggregate; every
        // other trial is unaffected.
        assert_eq!(outcome.aggregates[0].trials, 4);
        assert_eq!(outcome.aggregates[1].trials, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_retries_quarantines_on_the_first_panic() {
        let spec = spec("zero-retries", &[4], 2);
        let dir = tmp_dir("zero-retries");
        let outcome = Campaign::new(spec, &dir)
            .run(
                &Fleet::single(),
                &Panicky { cell: 0, within: 0, transient: true },
                &RunOptions { retries: 0, ..RunOptions::default() },
            )
            .unwrap();
        // Transient would have healed on attempt 2, but the budget is 0.
        assert_eq!(outcome.quarantined.len(), 1);
        assert_eq!(outcome.quarantined[0].attempts, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_survives_resume_and_is_thread_invariant() {
        let spec = spec("quarantine-resume", &[7, 7, 2], 3);
        let source = Panicky { cell: 1, within: 4, transient: false };
        let mut outcomes = Vec::new();
        for threads in [1usize, 2, 8] {
            let dir = tmp_dir(&format!("qresume{threads}"));
            let campaign = Campaign::new(spec.clone(), &dir);
            let first = campaign
                .run(
                    &Fleet::new(threads),
                    &source,
                    &RunOptions { max_chunks: Some(3), ..RunOptions::default() },
                )
                .unwrap();
            assert!(!first.complete);
            let second =
                campaign.run(&Fleet::new(threads), &source, &RunOptions::default()).unwrap();
            assert!(second.complete);
            outcomes.push((second.aggregates, second.quarantined));
            let _ = std::fs::remove_dir_all(&dir);
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], outcomes[2]);
        assert_eq!(outcomes[0].1.len(), 1);
    }

    #[test]
    fn completion_marks_the_manifest_durably() {
        let spec = spec("completion", &[4], 2);
        let dir = tmp_dir("completion");
        let campaign = Campaign::new(spec.clone(), &dir);
        campaign.run(&Fleet::single(), &Synthetic, &RunOptions::default()).unwrap();
        let text = std::fs::read_to_string(campaign.manifest_path()).unwrap();
        let manifest = Manifest::decode(&text).unwrap();
        assert!(manifest.complete);
        assert!(manifest.same_campaign(&spec.manifest()));
        // Re-running a complete campaign is a no-op that still reports the
        // merged results.
        let again = campaign.run(&Fleet::single(), &Synthetic, &RunOptions::default()).unwrap();
        assert!(again.complete);
        assert_eq!(again.chunks_run, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_is_a_clean_error() {
        let dir = tmp_dir("corrupt-manifest");
        let campaign = Campaign::new(spec("corrupt", &[4], 2), &dir);
        campaign.run(&Fleet::single(), &Synthetic, &RunOptions::default()).unwrap();
        std::fs::write(campaign.manifest_path(), "{definitely not json").unwrap();
        let err = campaign
            .run(&Fleet::single(), &Synthetic, &RunOptions::default())
            .unwrap_err();
        assert!(matches!(err, CampaignError::ManifestCorrupt(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
