//! The campaign driver: flatten, stream, checkpoint, resume.
//!
//! [`Campaign::run`] turns a [`CampaignSpec`] (cells × trials, metric
//! declaration, master seed, chunk size) plus a
//! [`TrialSource`] into final per-cell
//! [`CellAggregate`]s, persisting progress to a directory as it goes:
//!
//! 1. The *chunk grid* divides the flattened global trial stream into
//!    fixed `[k·chunk, (k+1)·chunk)` ranges. Chunks — not trials, not cells
//!    — are the unit of scheduling, checkpointing and resume.
//! 2. Pending chunks are handed to the fleet's task engine
//!    (`run_tasks_with`); a worker runs a chunk's trials in global order,
//!    folding outcomes into per-cell segment aggregates, then appends one
//!    checksummed JSONL merge record and flushes. One line of buffered
//!    state per in-flight chunk is all that ever lives in memory — resident
//!    usage is O(cells + workers·chunk), independent of total trials.
//! 3. Every trial's seed is derived `stream_seed(stream_seed(master,
//!    CELL_STREAM), cell) → trial_seed(·, trial_within_cell)` — a pure
//!    function of the campaign identity and the trial's grid coordinates.
//!    Scheduling, thread count, chunk size and kill points cannot touch it.
//!
//! **Resume proof sketch.** Final aggregates are the merge of per-chunk
//! segment aggregates over the fixed chunk grid. (a) Each chunk's record is
//! a pure function of `(spec, source)` — per-trial seeds come from grid
//! coordinates alone, and worker state is rewound per trial. (b) The merge
//! is exact integer addition/min/max, associative and commutative, so *any*
//! partition of the chunk set into {loaded from disk} ∪ {re-executed},
//! merged in any order, yields the same bits. (c) A kill can only lose or
//! truncate the **final** record line (appends are single `write_all` +
//! flush of one line); `load_records` drops the damaged tail and the chunk
//! simply re-runs under (a). Hence an interrupted campaign, resumed at any
//! thread count, produces aggregates bit-identical to an uninterrupted run
//! — which the proptest suite (`tests/resume_props.rs`) enforces.

use crate::grid::CellGrid;
use crate::records::{
    encode_record, load_records, CampaignError, ChunkRecord, LoadedRecords, Manifest,
};
use crate::stats::{CellAggregate, TrialOutcome};
use llc_fleet::{stream_seed, Fleet, TrialCtx, TrialSource};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;

/// Stream tag separating per-cell master seeds from any other use of the
/// campaign master seed.
const CELL_STREAM: u64 = u64::from_le_bytes(*b"campcell");

/// One cell of the sweep grid: a stable identifier plus its trial count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellSpec {
    /// Stable identifier, rendered in reports and hashed into the campaign
    /// fingerprint. Encode the cell's parameters here.
    pub id: String,
    /// Trials this cell contributes to the global stream.
    pub trials: u64,
}

/// The full identity of a campaign: what to run and how to shard it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Campaign name (directory-friendly).
    pub name: String,
    /// Master seed; every per-trial seed derives from it.
    pub master_seed: u64,
    /// Trials per checkpoint chunk.
    pub chunk_trials: u64,
    /// Names of the integer metrics every trial reports, in order.
    pub metrics: Vec<String>,
    /// The sweep cells, in grid order.
    pub cells: Vec<CellSpec>,
}

impl CampaignSpec {
    /// The flattened trial-stream geometry.
    pub fn grid(&self) -> CellGrid {
        let trials: Vec<u64> = self.cells.iter().map(|c| c.trials).collect();
        CellGrid::new(&trials)
    }

    /// The master seed of cell `cell`'s trial sub-stream.
    pub fn cell_master(&self, cell: usize) -> u64 {
        stream_seed(stream_seed(self.master_seed, CELL_STREAM), cell as u64)
    }

    /// FNV-1a fingerprint over everything that defines the trial stream:
    /// name, master seed, chunk size, metric names, cell ids and counts.
    /// Two specs with equal fingerprints produce interchangeable on-disk
    /// state; resume refuses anything else.
    pub fn fingerprint(&self) -> u64 {
        let mut canon = String::new();
        canon.push_str(&self.name);
        canon.push('\x1f');
        canon.push_str(&format!("{:x}/{:x}", self.master_seed, self.chunk_trials));
        for m in &self.metrics {
            canon.push('\x1f');
            canon.push_str(m);
        }
        for c in &self.cells {
            canon.push('\x1e');
            canon.push_str(&c.id);
            canon.push('\x1f');
            canon.push_str(&format!("{:x}", c.trials));
        }
        crate::records::fnv1a(canon.as_bytes())
    }

    /// The manifest this spec writes into a fresh campaign directory.
    pub fn manifest(&self) -> Manifest {
        Manifest {
            name: self.name.clone(),
            master_seed: self.master_seed,
            chunk_trials: self.chunk_trials,
            total_trials: self.grid().total(),
            cells: self.cells.len() as u64,
            fingerprint: self.fingerprint(),
        }
    }
}

/// Execution options for one [`Campaign::run`] call.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Stop after completing this many chunks (on top of whatever was
    /// already on disk). `None` runs to completion. This is the
    /// deterministic "kill": CI and tests use it to interrupt a campaign at
    /// an exact chunk boundary and resume it.
    pub max_chunks: Option<u64>,
}

/// What a [`Campaign::run`] call did and produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Final per-cell aggregates, in cell order. Only meaningful as final
    /// results when `complete` — on a partial run they cover completed
    /// chunks only.
    pub aggregates: Vec<CellAggregate>,
    /// Total chunks in the campaign.
    pub chunks_total: u64,
    /// Chunks loaded from a previous run's records.
    pub chunks_resumed: u64,
    /// Chunks executed by this call.
    pub chunks_run: u64,
    /// True when every chunk is now recorded.
    pub complete: bool,
    /// True when a partial/corrupt final record line was dropped and re-run.
    pub recovered_tail: bool,
}

/// A campaign bound to its checkpoint directory.
#[derive(Debug, Clone)]
pub struct Campaign {
    spec: CampaignSpec,
    dir: PathBuf,
}

impl Campaign {
    /// Binds `spec` to checkpoint directory `dir` (created on first run).
    pub fn new(spec: CampaignSpec, dir: impl Into<PathBuf>) -> Self {
        Self { spec, dir: dir.into() }
    }

    /// The campaign's spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    /// Path of the merge-records file.
    pub fn records_path(&self) -> PathBuf {
        self.dir.join("records.jsonl")
    }

    /// Runs (or resumes) the campaign on `fleet`, pulling trials from
    /// `source`. See the module docs for the full lifecycle; the short
    /// version: validate or create the manifest, load valid chunk records,
    /// execute the missing chunks (appending a record per chunk), and merge
    /// everything into final aggregates.
    pub fn run<S>(
        &self,
        fleet: &Fleet,
        source: &S,
        options: &RunOptions,
    ) -> Result<RunReport, CampaignError>
    where
        S: TrialSource<Item = TrialOutcome>,
    {
        let io = |e: std::io::Error| CampaignError::Io(e.to_string());
        std::fs::create_dir_all(&self.dir).map_err(io)?;
        self.check_or_write_manifest()?;

        let grid = self.spec.grid();
        let chunk = self.spec.chunk_trials;
        let arity = self.spec.metrics.len();
        let chunks_total = grid.chunk_count(chunk);

        let loaded = self.load_existing(&grid)?;
        let mut done: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for r in &loaded.records {
            if !done.insert(r.chunk) {
                // Merging a chunk twice would silently double its trials —
                // the one corruption mode the checksum cannot see.
                return Err(CampaignError::RecordsCorrupt(format!(
                    "chunk {} recorded twice",
                    r.chunk
                )));
            }
        }
        let mut pending: Vec<u64> = (0..chunks_total).filter(|k| !done.contains(k)).collect();
        if let Some(max) = options.max_chunks {
            pending.truncate(max as usize);
        }

        let new_records = if pending.is_empty() {
            Vec::new()
        } else {
            // Truncate any recovered tail, then append one checksummed line
            // per completed chunk, in completion order. The Mutex serialises
            // appends; flushing per line bounds what a kill can lose to the
            // final line.
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.records_path())
                .map_err(io)?;
            file.set_len(loaded.valid_len).map_err(io)?;
            let writer = Mutex::new(file);
            let pending = &pending;
            let grid_ref = &grid;
            let results: Vec<Result<ChunkRecord, CampaignError>> = fleet.run_tasks_with(
                pending.len(),
                |worker| source.init(worker),
                |state, i| {
                    let record = self.run_chunk(grid_ref, pending[i], state, source, arity);
                    let line = encode_record(&record);
                    let mut file = writer.lock().expect("records writer poisoned");
                    file.write_all(line.as_bytes())
                        .and_then(|_| file.write_all(b"\n"))
                        .and_then(|_| file.flush())
                        .map_err(io)?;
                    Ok(record)
                },
            );
            results.into_iter().collect::<Result<Vec<_>, _>>()?
        };

        let chunks_run = new_records.len() as u64;
        let chunks_resumed = loaded.records.len() as u64;
        let mut aggregates: Vec<CellAggregate> =
            (0..self.spec.cells.len()).map(|_| CellAggregate::empty(arity)).collect();
        for record in loaded.records.iter().chain(&new_records) {
            for (cell, segment) in &record.segments {
                aggregates[*cell].merge(segment);
            }
        }

        Ok(RunReport {
            aggregates,
            chunks_total,
            chunks_resumed,
            chunks_run,
            complete: chunks_resumed + chunks_run == chunks_total,
            recovered_tail: loaded.recovered_tail,
        })
    }

    /// Executes one chunk of the global stream, folding per-cell segments.
    fn run_chunk<S>(
        &self,
        grid: &CellGrid,
        chunk_index: u64,
        state: &mut S::Worker,
        source: &S,
        arity: usize,
    ) -> ChunkRecord
    where
        S: TrialSource<Item = TrialOutcome>,
    {
        let (start, end) = grid.chunk_range(self.spec.chunk_trials, chunk_index);
        let mut segments: Vec<(usize, CellAggregate)> = Vec::new();
        for global in start..end {
            let (cell, within) = grid.locate(global);
            let ctx =
                TrialCtx::derive(self.spec.cell_master(cell), within as usize, grid
                    .cell_trials(cell) as usize);
            let outcome = source.run_trial(state, cell, ctx);
            match segments.last_mut() {
                Some((c, agg)) if *c == cell => agg.record(&outcome),
                _ => {
                    let mut agg = CellAggregate::empty(arity);
                    agg.record(&outcome);
                    segments.push((cell, agg));
                }
            }
        }
        ChunkRecord { chunk: chunk_index, start, end, segments }
    }

    fn check_or_write_manifest(&self) -> Result<(), CampaignError> {
        let io = |e: std::io::Error| CampaignError::Io(e.to_string());
        let path = self.manifest_path();
        let want = self.spec.manifest();
        if path.exists() {
            let bytes = std::fs::read(&path).map_err(io)?;
            // Lossy: invalid UTF-8 fails JSON parsing and classifies as a
            // corrupt manifest, not an I/O failure.
            let text = String::from_utf8_lossy(&bytes);
            let found = Manifest::decode(&text)?;
            if found != want {
                return Err(CampaignError::ManifestMismatch(format!(
                    "directory belongs to campaign '{}' (fingerprint {:016x}), \
                     spec is '{}' (fingerprint {:016x})",
                    found.name, found.fingerprint, want.name, want.fingerprint
                )));
            }
            Ok(())
        } else {
            // Write-then-rename so a kill mid-write cannot leave a torn
            // manifest behind.
            let tmp = self.dir.join("manifest.json.tmp");
            std::fs::write(&tmp, format!("{}\n", want.encode())).map_err(io)?;
            std::fs::rename(&tmp, &path).map_err(io)?;
            Ok(())
        }
    }

    fn load_existing(&self, grid: &CellGrid) -> Result<LoadedRecords, CampaignError> {
        let path = self.records_path();
        if !path.exists() {
            return Ok(LoadedRecords { records: Vec::new(), valid_len: 0, recovered_tail: false });
        }
        let bytes = std::fs::read(&path).map_err(|e| CampaignError::Io(e.to_string()))?;
        // Lossy conversion: invalid UTF-8 becomes replacement characters,
        // which fail the line checksum and are then classified by position —
        // recoverable kill artifact if final, corruption otherwise. (The
        // replacement may change byte lengths, but only *after* the valid
        // prefix, so `valid_len` stays an exact file offset.)
        let contents = String::from_utf8_lossy(&bytes);
        load_records(&contents, grid, self.spec.chunk_trials, self.spec.metrics.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic synthetic source: outcome is a hash of (cell, seed).
    pub(crate) struct Synthetic;

    impl TrialSource for Synthetic {
        type Worker = ();
        type Item = TrialOutcome;
        fn init(&self, _worker: usize) {}
        fn run_trial(&self, _w: &mut (), cell: usize, ctx: TrialCtx) -> TrialOutcome {
            let v = llc_fleet::mix64(ctx.seed ^ (cell as u64) << 32);
            TrialOutcome { success: v % 3 == 0, metrics: vec![v >> 32, v & 0xffff] }
        }
    }

    fn spec(name: &str, cells: &[u64], chunk: u64) -> CampaignSpec {
        CampaignSpec {
            name: name.into(),
            master_seed: 0xc0ffee,
            chunk_trials: chunk,
            metrics: vec!["alpha".into(), "beta".into()],
            cells: cells
                .iter()
                .enumerate()
                .map(|(i, &t)| CellSpec { id: format!("cell{i}"), trials: t })
                .collect(),
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("llc-campaign-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn full_run_is_thread_invariant_and_complete() {
        let spec = spec("threads", &[5, 3, 9], 4);
        let mut reports = Vec::new();
        for threads in [1usize, 2, 8] {
            let dir = tmp_dir(&format!("threads{threads}"));
            let campaign = Campaign::new(spec.clone(), &dir);
            let report = campaign
                .run(&Fleet::new(threads), &Synthetic, &RunOptions::default())
                .unwrap();
            assert!(report.complete);
            assert_eq!(report.chunks_run, report.chunks_total);
            reports.push(report.aggregates);
            let _ = std::fs::remove_dir_all(&dir);
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
        assert_eq!(reports[0].iter().map(|a| a.trials).sum::<u64>(), 17);
    }

    #[test]
    fn max_chunks_then_resume_matches_uninterrupted() {
        let spec = spec("resume", &[7, 7, 2], 3);
        let dir_a = tmp_dir("resume-a");
        let uninterrupted = Campaign::new(spec.clone(), &dir_a)
            .run(&Fleet::new(2), &Synthetic, &RunOptions::default())
            .unwrap();

        let dir_b = tmp_dir("resume-b");
        let campaign = Campaign::new(spec, &dir_b);
        let first = campaign
            .run(&Fleet::new(2), &Synthetic, &RunOptions { max_chunks: Some(2) })
            .unwrap();
        assert!(!first.complete);
        assert_eq!(first.chunks_run, 2);
        let second = campaign.run(&Fleet::new(8), &Synthetic, &RunOptions::default()).unwrap();
        assert!(second.complete);
        assert_eq!(second.chunks_resumed, 2);
        assert_eq!(second.aggregates, uninterrupted.aggregates);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn mismatched_spec_is_refused() {
        let dir = tmp_dir("mismatch");
        Campaign::new(spec("one", &[4], 2), &dir)
            .run(&Fleet::single(), &Synthetic, &RunOptions::default())
            .unwrap();
        let err = Campaign::new(spec("two", &[4], 2), &dir)
            .run(&Fleet::single(), &Synthetic, &RunOptions::default())
            .unwrap_err();
        assert!(matches!(err, CampaignError::ManifestMismatch(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_is_a_clean_error() {
        let dir = tmp_dir("corrupt-manifest");
        let campaign = Campaign::new(spec("corrupt", &[4], 2), &dir);
        campaign.run(&Fleet::single(), &Synthetic, &RunOptions::default()).unwrap();
        std::fs::write(campaign.manifest_path(), "{definitely not json").unwrap();
        let err = campaign
            .run(&Fleet::single(), &Synthetic, &RunOptions::default())
            .unwrap_err();
        assert!(matches!(err, CampaignError::ManifestCorrupt(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
