//! Deterministic fault injection for campaigns.
//!
//! A [`FaultPlan`] is a *pure, declarative* description of the failures a
//! campaign run should suffer: trial panics at chosen global trial indices
//! and I/O faults at chosen operation counts of the record/manifest writer.
//! It is either built explicitly ([`FaultPlan::panic_at`] /
//! [`FaultPlan::io_at`]), parsed from a compact spec string
//! ([`FaultPlan::parse`], the `campaign --fault-plan` dev knob), or derived
//! as a pure function of a fault seed ([`FaultPlan::from_seed`], the
//! proptest entry point). Because the plan is data, every injected failure
//! is reproducible: the same plan against the same campaign fails in the
//! same place, which is what lets the resume proptests assert bit-identical
//! recovery.
//!
//! What the injector simulates — and what it does not — is documented in
//! DESIGN.md's "Fault model" section. Briefly: it can simulate trial-level
//! panics (transient or deterministic) and the writer-side crash/IO modes
//! the recovery rules are built around (short write, torn final line, fsync
//! failure, manifest rename failure, ENOSPC). It cannot simulate torn
//! *mid-file* sectors, bit rot, or a kernel that lies about fsync — the
//! first two are covered by the corruption proptests mutating files
//! directly, the last is outside any userspace fault model.

use crate::records::{CampaignError, DirSink, RecordSink};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// An injected I/O failure mode of the record/manifest writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// The record append writes only a short prefix of the line, then fails.
    ShortWrite,
    /// The record append writes roughly half the line with no terminating
    /// newline, then fails — the canonical kill-mid-append artifact.
    TornTail,
    /// The record append writes nothing and fails (device full).
    Enospc,
    /// A records-file fsync fails.
    FsyncErr,
    /// A manifest write fails after the temp file is written but before the
    /// rename (the classic crash window write-then-rename exists to close).
    RenameFail,
}

/// A deterministic schedule of injected failures for one campaign run.
///
/// Trial panics are keyed by **global trial index** (position in the
/// flattened campaign stream) and are either *transient* (fire on the first
/// attempt only — the retry path heals them) or *sticky* (fire on every
/// attempt — the quarantine path absorbs them). I/O faults are keyed by
/// per-family operation counts: the Nth record append, the Nth records
/// fsync, the Nth manifest write. After any I/O fault fires, the sink wedges
/// (every later operation fails fast), modelling a filesystem that has gone
/// bad rather than one that flickers — this also guarantees an injected torn
/// line is the *final* line, i.e. exactly the artifact the recovery rules
/// accept.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// global trial index → sticky?
    panics: BTreeMap<u64, bool>,
    /// append-operation index → ShortWrite | TornTail | Enospc
    appends: BTreeMap<u64, IoFault>,
    /// records-fsync operation index → fail
    syncs: BTreeMap<u64, ()>,
    /// manifest-write operation index → fail before rename
    manifests: BTreeMap<u64, ()>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty()
            && self.appends.is_empty()
            && self.syncs.is_empty()
            && self.manifests.is_empty()
    }

    /// Adds a trial panic at global trial index `trial`. A `sticky` panic
    /// fires on every retry attempt (the trial quarantines); a transient one
    /// fires on the first attempt only (the retry heals it).
    pub fn panic_at(mut self, trial: u64, sticky: bool) -> Self {
        self.panics.insert(trial, sticky);
        self
    }

    /// Adds an I/O fault at operation index `op` of its family (append
    /// count for `ShortWrite`/`TornTail`/`Enospc`, records-fsync count for
    /// `FsyncErr`, manifest-write count for `RenameFail`).
    pub fn io_at(mut self, op: u64, fault: IoFault) -> Self {
        match fault {
            IoFault::ShortWrite | IoFault::TornTail | IoFault::Enospc => {
                self.appends.insert(op, fault);
            }
            IoFault::FsyncErr => {
                self.syncs.insert(op, ());
            }
            IoFault::RenameFail => {
                self.manifests.insert(op, ());
            }
        }
        self
    }

    /// Parses the compact spec string of the `--fault-plan` knob:
    /// comma-separated tokens `panic@K` (transient trial panic at global
    /// trial K), `panic@K!` (sticky), `short@N` / `torn@N` / `enospc@N`
    /// (Nth record append), `fsync@N` (Nth records fsync), `rename@N`
    /// (Nth manifest write). Example: `panic@5,torn@2`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::new();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (kind, at) = token
                .split_once('@')
                .ok_or_else(|| format!("fault token '{token}' missing '@<index>'"))?;
            let (at, sticky) = match at.strip_suffix('!') {
                Some(n) => (n, true),
                None => (at, false),
            };
            let index: u64 =
                at.parse().map_err(|_| format!("fault token '{token}': bad index '{at}'"))?;
            plan = match kind {
                "panic" => plan.panic_at(index, sticky),
                "short" => plan.io_at(index, IoFault::ShortWrite),
                "torn" => plan.io_at(index, IoFault::TornTail),
                "enospc" => plan.io_at(index, IoFault::Enospc),
                "fsync" => plan.io_at(index, IoFault::FsyncErr),
                "rename" => plan.io_at(index, IoFault::RenameFail),
                _ => return Err(format!("unknown fault kind '{kind}'")),
            };
        }
        Ok(plan)
    }

    /// A small pseudo-random *recoverable* plan, a pure function of `seed`:
    /// transient trial panics over `total_trials` and I/O faults over
    /// `total_chunks` append operations. Sticky panics are deliberately
    /// excluded — everything this generator injects either heals in-process
    /// (transient panic, retried) or aborts the run cleanly (I/O fault) and
    /// recovers on a fault-free resume, so the resume proptests can demand
    /// bit-identity with the fault-free run.
    pub fn from_seed(seed: u64, total_trials: u64, total_chunks: u64) -> Self {
        let mut s = seed;
        let mut next = move || {
            s = llc_fleet::mix64(s.wrapping_add(0x9e37_79b9_7f4a_7c15));
            s
        };
        let mut plan = FaultPlan::new();
        let faults = next() % 4; // 0..=3 injected failures
        for _ in 0..faults {
            plan = match next() % 5 {
                0 | 1 => plan.panic_at(next() % total_trials.max(1), false),
                2 => plan.io_at(next() % total_chunks.max(1), IoFault::TornTail),
                3 => plan.io_at(next() % total_chunks.max(1), IoFault::ShortWrite),
                _ => plan.io_at(next() % total_chunks.max(1), IoFault::Enospc),
            };
        }
        plan
    }

    /// Should attempt `attempt` (0-based) of global trial `trial` panic?
    pub fn trial_panics(&self, trial: u64, attempt: u32) -> bool {
        match self.panics.get(&trial) {
            Some(&sticky) => sticky || attempt == 0,
            None => false,
        }
    }
}

impl std::fmt::Display for FaultPlan {
    /// Renders the plan back in [`FaultPlan::parse`] syntax.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut tokens: Vec<String> = Vec::new();
        for (&trial, &sticky) in &self.panics {
            tokens.push(format!("panic@{trial}{}", if sticky { "!" } else { "" }));
        }
        for (&op, fault) in &self.appends {
            let kind = match fault {
                IoFault::ShortWrite => "short",
                IoFault::TornTail => "torn",
                IoFault::Enospc => "enospc",
                _ => unreachable!("append map only holds append faults"),
            };
            tokens.push(format!("{kind}@{op}"));
        }
        for &op in self.syncs.keys() {
            tokens.push(format!("fsync@{op}"));
        }
        for &op in self.manifests.keys() {
            tokens.push(format!("rename@{op}"));
        }
        write!(f, "{}", tokens.join(","))
    }
}

/// A [`RecordSink`] that injects the I/O faults of a [`FaultPlan`] into a
/// production [`DirSink`], then wedges.
///
/// Operation counters are per family (appends / records fsyncs / manifest
/// writes) and count *attempted* operations, so a fault at index N hits the
/// Nth call regardless of which chunk made it. After the first injected
/// fault every subsequent operation fails fast without touching the disk:
/// a wedged device stays wedged, and — crucially for the recovery contract —
/// an injected torn line is guaranteed to stay the file's final line.
#[derive(Debug)]
pub struct FaultySink {
    inner: DirSink,
    plan: FaultPlan,
    appends: AtomicU64,
    syncs: AtomicU64,
    manifests: AtomicU64,
    wedged: AtomicBool,
}

impl FaultySink {
    /// Wraps `inner`, injecting the I/O faults of `plan`.
    pub fn new(inner: DirSink, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            appends: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            manifests: AtomicU64::new(0),
            wedged: AtomicBool::new(false),
        }
    }

    fn check_wedged(&self) -> Result<(), CampaignError> {
        if self.wedged.load(Ordering::SeqCst) {
            Err(CampaignError::Io("injected fault: sink wedged by earlier fault".into()))
        } else {
            Ok(())
        }
    }

    fn wedge(&self, what: &str) -> CampaignError {
        self.wedged.store(true, Ordering::SeqCst);
        CampaignError::Io(format!("injected fault: {what}"))
    }
}

impl RecordSink for FaultySink {
    fn read_manifest(&self) -> Result<Option<String>, CampaignError> {
        self.inner.read_manifest()
    }

    fn write_manifest(&self, text: &str) -> Result<(), CampaignError> {
        self.check_wedged()?;
        let op = self.manifests.fetch_add(1, Ordering::SeqCst);
        if self.plan.manifests.contains_key(&op) {
            // Model the rename failing *after* the temp file was written:
            // the real manifest is untouched, the temp file is litter the
            // next write-then-rename overwrites.
            let _ = self.inner.write_manifest_tmp_only(text);
            return Err(self.wedge(&format!("manifest rename failed (write {op})")));
        }
        self.inner.write_manifest(text)
    }

    fn read_records(&self) -> Result<Option<Vec<u8>>, CampaignError> {
        self.inner.read_records()
    }

    fn open_records(&self, valid_len: u64) -> Result<(), CampaignError> {
        self.check_wedged()?;
        self.inner.open_records(valid_len)
    }

    fn append_record(&self, line: &str) -> Result<(), CampaignError> {
        self.check_wedged()?;
        let op = self.appends.fetch_add(1, Ordering::SeqCst);
        match self.plan.appends.get(&op) {
            None => self.inner.append_record(line),
            Some(IoFault::Enospc) => {
                Err(self.wedge(&format!("ENOSPC before append {op} wrote anything")))
            }
            Some(IoFault::ShortWrite) => {
                let cut = line.len().min(8);
                let _ = self.inner.append_bytes(&line.as_bytes()[..cut]);
                Err(self.wedge(&format!("short write on append {op} ({cut} bytes)")))
            }
            Some(IoFault::TornTail) => {
                let cut = line.len() / 2;
                let _ = self.inner.append_bytes(&line.as_bytes()[..cut]);
                Err(self.wedge(&format!("torn line on append {op} ({cut} bytes, no newline)")))
            }
            Some(other) => unreachable!("append map only holds append faults, got {other:?}"),
        }
    }

    fn sync_records(&self) -> Result<(), CampaignError> {
        self.check_wedged()?;
        let op = self.syncs.fetch_add(1, Ordering::SeqCst);
        if self.plan.syncs.contains_key(&op) {
            return Err(self.wedge(&format!("fsync failed (sync {op})")));
        }
        self.inner.sync_records()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_display() {
        let plan = FaultPlan::parse("panic@5,panic@9!,torn@2,short@4,enospc@7,fsync@0,rename@1")
            .unwrap();
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
        assert!(plan.trial_panics(5, 0));
        assert!(!plan.trial_panics(5, 1)); // transient heals on retry
        assert!(plan.trial_panics(9, 0));
        assert!(plan.trial_panics(9, 3)); // sticky never heals
        assert!(!plan.trial_panics(6, 0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("panic5").is_err());
        assert!(FaultPlan::parse("panic@x").is_err());
        assert!(FaultPlan::parse("meteor@3").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn from_seed_is_pure_and_recoverable_only() {
        for seed in 0..64u64 {
            let a = FaultPlan::from_seed(seed, 100, 10);
            let b = FaultPlan::from_seed(seed, 100, 10);
            assert_eq!(a, b);
            // Recoverable by construction: no sticky panics.
            assert!(a.panics.values().all(|&sticky| !sticky), "seed {seed} made a sticky panic");
        }
        // The generator actually injects something for some seeds.
        assert!((0..64).any(|s| !FaultPlan::from_seed(s, 100, 10).is_empty()));
    }
}
