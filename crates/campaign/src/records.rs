//! On-disk campaign state: the manifest and the JSONL merge records.
//!
//! A campaign directory holds two files:
//!
//! * **`manifest.json`** — one JSON object identifying the campaign: name,
//!   master seed, chunk size, total trials, metric names, and a
//!   *fingerprint* (FNV-1a over the full cell layout). Resume refuses to
//!   touch a directory whose manifest does not match the spec byte-for-byte
//!   — the same trial stream, or nothing.
//! * **`records.jsonl`** — one line per *completed chunk* of the global
//!   trial stream. Each line carries the chunk's `[start, end)` range, the
//!   per-cell [`CellAggregate`] segments it produced, the chunk's
//!   quarantined trials (trials whose deterministic panic exhausted the
//!   retry budget — see [`QuarantineRecord`]), and ends with an FNV-1a
//!   checksum of the line's preceding bytes. Lines are appended in
//!   completion order, which under a multi-threaded fleet is **not** chunk
//!   order — merging is order-independent (integer aggregates), so it does
//!   not matter.
//!
//! All file I/O goes through the [`RecordSink`] trait ([`DirSink`] in
//! production) so the deterministic fault injector
//! ([`FaultPlan`](crate::FaultPlan)) can interpose on every operation.
//!
//! Crash-recovery rules, enforced by [`load_records`]:
//!
//! * A **final** line that is incomplete or fails its checksum is the
//!   expected artifact of a kill mid-append: it is dropped and its chunk
//!   re-run. Statistics cannot be wrong, only re-computed.
//! * A **non-final** corrupt line means the file was damaged by something
//!   other than an append-in-progress kill; the load returns a clean error
//!   rather than resuming over unknown damage.

use crate::grid::CellGrid;
use crate::json::{Json, JsonWriter};
use crate::stats::{CellAggregate, StreamStats};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Current on-disk format version. Bump on any layout change; resume
/// refuses mismatched versions. Version 2 added first-class quarantine
/// entries to chunk records and the `complete` flag to the manifest.
pub const FORMAT_VERSION: u64 = 2;

/// FNV-1a over a byte string — the checksum/fingerprint primitive for the
/// campaign's on-disk formats.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Errors from loading or validating campaign state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The manifest file exists but cannot be parsed or fails validation.
    ManifestCorrupt(String),
    /// The manifest belongs to a different campaign (spec mismatch).
    ManifestMismatch(String),
    /// A non-final record line is damaged.
    RecordsCorrupt(String),
    /// Filesystem-level failure (message carries the underlying error).
    Io(String),
    /// A fleet worker died outside any trial's catch_unwind boundary (the
    /// message carries the worker id and how many chunk results were lost).
    /// Per-trial panics never produce this — they retry or quarantine.
    WorkerLost(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::ManifestCorrupt(m) => write!(f, "manifest corrupt: {m}"),
            CampaignError::ManifestMismatch(m) => write!(f, "manifest mismatch: {m}"),
            CampaignError::RecordsCorrupt(m) => write!(f, "records corrupt: {m}"),
            CampaignError::Io(m) => write!(f, "campaign io error: {m}"),
            CampaignError::WorkerLost(m) => write!(f, "campaign worker lost: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// One quarantined trial: a trial whose deterministic panic exhausted its
/// retry budget. First-class on-disk state — quarantine entries ride in the
/// chunk record next to the aggregates they are missing from, so resume
/// accounting (`segment trials + quarantined trials = chunk range`) stays
/// exact and thread-invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Cell index the trial belongs to.
    pub cell: usize,
    /// Trial index *within its cell* (matches the seed derivation, so the
    /// exact failing trial can be replayed standalone).
    pub trial: u64,
    /// Attempts made before giving up (1 initial + retries).
    pub attempts: u32,
    /// The panic payload of the final attempt.
    pub reason: String,
}

/// The aggregate segments one chunk contributed, tagged by cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRecord {
    /// Chunk index in the fixed chunk grid.
    pub chunk: u64,
    /// Global trial range `[start, end)` this chunk covered.
    pub start: u64,
    /// Exclusive end of the range.
    pub end: u64,
    /// Per-cell segments, ordered by cell index (a chunk spans one or more
    /// consecutive cells). Every cell the range touches has a segment, even
    /// when all of its trials in this chunk quarantined (empty aggregate).
    pub segments: Vec<(usize, CellAggregate)>,
    /// Trials of this chunk that exhausted their retries, ordered by global
    /// trial index. Their outcomes are *not* folded into `segments`.
    pub quarantined: Vec<QuarantineRecord>,
}

fn write_stats(w: &mut JsonWriter, s: &StreamStats) {
    w.obj()
        .key("count")
        .num(s.count)
        .key("sum")
        .big(s.sum)
        .key("min")
        .num(s.min)
        .key("max")
        .num(s.max)
        .end_obj();
}

fn read_stats(v: &Json) -> Result<StreamStats, String> {
    Ok(StreamStats {
        count: v.get("count").and_then(Json::as_u64).ok_or("stats missing count")?,
        sum: v.get("sum").and_then(Json::as_u128).ok_or("stats missing sum")?,
        min: v.get("min").and_then(Json::as_u64).ok_or("stats missing min")?,
        max: v.get("max").and_then(Json::as_u64).ok_or("stats missing max")?,
    })
}

/// Serialises one chunk record as a single JSONL line (no trailing
/// newline), ending with a checksum field over the preceding bytes.
pub fn encode_record(record: &ChunkRecord) -> String {
    let mut w = JsonWriter::new();
    w.obj()
        .key("chunk")
        .num(record.chunk)
        .key("start")
        .num(record.start)
        .key("end")
        .num(record.end)
        .key("cells")
        .arr();
    for (cell, agg) in &record.segments {
        w.obj()
            .key("cell")
            .num(*cell as u64)
            .key("trials")
            .num(agg.trials)
            .key("successes")
            .num(agg.successes)
            .key("metrics")
            .arr();
        for s in &agg.metrics {
            write_stats(&mut w, s);
        }
        w.end_arr().end_obj();
    }
    w.end_arr().key("quar").arr();
    for q in &record.quarantined {
        w.obj()
            .key("cell")
            .num(q.cell as u64)
            .key("trial")
            .num(q.trial)
            .key("attempts")
            .num(q.attempts as u64)
            .key("reason")
            .str(&q.reason)
            .end_obj();
    }
    w.end_arr().end_obj();
    let body = w.finish();
    // `{...,"crc":"<16 hex>"}`: checksum covers everything before the crc
    // field, i.e. the body minus its closing brace.
    let prefix = &body[..body.len() - 1];
    format!("{prefix},\"crc\":\"{:016x}\"}}", fnv1a(prefix.as_bytes()))
}

/// Decodes one record line, verifying its checksum. Returns a plain `Err`
/// string; the caller decides whether the failing line is final (normal
/// kill artifact) or not (real corruption).
pub fn decode_record(line: &str) -> Result<ChunkRecord, String> {
    const CRC_KEY: &str = ",\"crc\":\"";
    let crc_at = line.rfind(CRC_KEY).ok_or("missing crc field")?;
    let want = u64::from_str_radix(
        line[crc_at + CRC_KEY.len()..].strip_suffix("\"}").ok_or("malformed crc suffix")?,
        16,
    )
    .map_err(|_| "malformed crc value".to_string())?;
    let got = fnv1a(&line.as_bytes()[..crc_at]);
    if got != want {
        return Err(format!("checksum mismatch: {got:016x} != {want:016x}"));
    }
    let v = Json::parse(line)?;
    let mut segments = Vec::new();
    for seg in v.get("cells").and_then(Json::as_arr).ok_or("record missing cells")? {
        let cell = seg.get("cell").and_then(Json::as_u64).ok_or("segment missing cell")? as usize;
        let metrics = seg
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or("segment missing metrics")?
            .iter()
            .map(read_stats)
            .collect::<Result<Vec<_>, _>>()?;
        segments.push((
            cell,
            CellAggregate {
                trials: seg.get("trials").and_then(Json::as_u64).ok_or("segment missing trials")?,
                successes: seg
                    .get("successes")
                    .and_then(Json::as_u64)
                    .ok_or("segment missing successes")?,
                metrics,
            },
        ));
    }
    let mut quarantined = Vec::new();
    for q in v.get("quar").and_then(Json::as_arr).ok_or("record missing quar")? {
        quarantined.push(QuarantineRecord {
            cell: q.get("cell").and_then(Json::as_u64).ok_or("quarantine missing cell")? as usize,
            trial: q.get("trial").and_then(Json::as_u64).ok_or("quarantine missing trial")?,
            attempts: q
                .get("attempts")
                .and_then(Json::as_u64)
                .ok_or("quarantine missing attempts")? as u32,
            reason: q
                .get("reason")
                .and_then(Json::as_str)
                .ok_or("quarantine missing reason")?
                .to_string(),
        });
    }
    Ok(ChunkRecord {
        chunk: v.get("chunk").and_then(Json::as_u64).ok_or("record missing chunk")?,
        start: v.get("start").and_then(Json::as_u64).ok_or("record missing start")?,
        end: v.get("end").and_then(Json::as_u64).ok_or("record missing end")?,
        segments,
        quarantined,
    })
}

/// The identity block of `manifest.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Campaign name (informational; the fingerprint is authoritative).
    pub name: String,
    /// Master seed of the whole campaign.
    pub master_seed: u64,
    /// Chunk size in trials. Fixed at campaign creation — resume keeps the
    /// original chunk grid even if the resuming process asked for another.
    pub chunk_trials: u64,
    /// Total trials in the flattened stream.
    pub total_trials: u64,
    /// Number of cells.
    pub cells: u64,
    /// FNV-1a fingerprint over the full layout (cell ids, trial counts,
    /// metric names, master seed, chunk size).
    pub fingerprint: u64,
    /// Durable completion state: set (via write-then-rename, after the
    /// records file is fsynced) once every chunk is recorded. *Not* part of
    /// the campaign identity — resume compares everything else.
    pub complete: bool,
}

impl Manifest {
    /// Serialises the manifest as one JSON line.
    pub fn encode(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj()
            .key("version")
            .num(FORMAT_VERSION)
            .key("name")
            .str(&self.name)
            .key("master_seed")
            .num(self.master_seed)
            .key("chunk_trials")
            .num(self.chunk_trials)
            .key("total_trials")
            .num(self.total_trials)
            .key("cells")
            .num(self.cells)
            .key("fingerprint")
            .str(&format!("{:016x}", self.fingerprint))
            .key("complete")
            .boolean(self.complete)
            .end_obj();
        w.finish()
    }

    /// True when `other` describes the same campaign — every identity field
    /// agrees; the mutable `complete` flag is ignored.
    pub fn same_campaign(&self, other: &Manifest) -> bool {
        (&self.name, self.master_seed, self.chunk_trials, self.total_trials, self.cells, self.fingerprint)
            == (&other.name, other.master_seed, other.chunk_trials, other.total_trials, other.cells, other.fingerprint)
    }

    /// Parses and version-checks a manifest document.
    pub fn decode(text: &str) -> Result<Manifest, CampaignError> {
        let err = |m: &str| CampaignError::ManifestCorrupt(m.to_string());
        let v = Json::parse(text.trim()).map_err(CampaignError::ManifestCorrupt)?;
        let version = v.get("version").and_then(Json::as_u64).ok_or_else(|| err("no version"))?;
        if version != FORMAT_VERSION {
            return Err(CampaignError::ManifestMismatch(format!(
                "format version {version}, this build reads {FORMAT_VERSION}"
            )));
        }
        let fingerprint = v
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| err("no fingerprint"))?;
        Ok(Manifest {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| err("no name"))?
                .to_string(),
            master_seed: v
                .get("master_seed")
                .and_then(Json::as_u64)
                .ok_or_else(|| err("no master_seed"))?,
            chunk_trials: v
                .get("chunk_trials")
                .and_then(Json::as_u64)
                .ok_or_else(|| err("no chunk_trials"))?,
            total_trials: v
                .get("total_trials")
                .and_then(Json::as_u64)
                .ok_or_else(|| err("no total_trials"))?,
            cells: v.get("cells").and_then(Json::as_u64).ok_or_else(|| err("no cells"))?,
            fingerprint,
            complete: v.get("complete").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

/// Result of scanning a records file: the valid chunk records, plus whether
/// a partial/corrupt **final** line was dropped (the caller truncates it
/// before appending).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedRecords {
    /// Every valid record, in file order.
    pub records: Vec<ChunkRecord>,
    /// Byte length of the valid prefix of the file (everything after this
    /// offset is a dropped partial tail).
    pub valid_len: u64,
    /// True when a partial or corrupt final line was dropped.
    pub recovered_tail: bool,
}

/// Parses a records file's contents, applying the crash-recovery rules and
/// validating each record against the chunk grid (`chunk` size and the cell
/// layout `grid`).
pub fn load_records(
    contents: &str,
    grid: &CellGrid,
    chunk: u64,
    metric_arity: usize,
) -> Result<LoadedRecords, CampaignError> {
    let mut records = Vec::new();
    let mut valid_len = 0u64;
    let mut recovered_tail = false;
    // split_inclusive keeps the trailing newline, so a final line without
    // one (append killed mid-line) is distinguishable.
    for piece in contents.split_inclusive('\n') {
        let line = piece.strip_suffix('\n');
        let is_final_piece = valid_len + piece.len() as u64 == contents.len() as u64;
        let complete = line.is_some();
        let text = line.unwrap_or(piece);
        if text.is_empty() {
            valid_len += piece.len() as u64;
            continue;
        }
        let parsed = if complete { decode_record(text) } else { Err("partial line".to_string()) };
        match parsed {
            Ok(record) => {
                validate_record(&record, grid, chunk, metric_arity)
                    .map_err(CampaignError::RecordsCorrupt)?;
                records.push(record);
                valid_len += piece.len() as u64;
            }
            Err(reason) if is_final_piece => {
                // Normal kill artifact: drop the tail, re-run its chunk.
                let _ = reason;
                recovered_tail = true;
                break;
            }
            Err(reason) => {
                return Err(CampaignError::RecordsCorrupt(format!(
                    "non-final record line damaged ({reason})"
                )));
            }
        }
    }
    Ok(LoadedRecords { records, valid_len, recovered_tail })
}

/// Checks a decoded record against the campaign geometry: its range must be
/// exactly the chunk grid's range for its index, and its segments must tile
/// that range over the right cells with the right trial counts and metric
/// arity. A record that decodes but disagrees with the grid is corruption
/// (or a foreign file), never something to silently merge.
fn validate_record(
    record: &ChunkRecord,
    grid: &CellGrid,
    chunk: u64,
    metric_arity: usize,
) -> Result<(), String> {
    if record.chunk >= grid.chunk_count(chunk) {
        return Err(format!("chunk {} out of range", record.chunk));
    }
    let (start, end) = grid.chunk_range(chunk, record.chunk);
    if (record.start, record.end) != (start, end) {
        return Err(format!(
            "chunk {} claims [{}, {}), grid says [{}, {})",
            record.chunk, record.start, record.end, start, end
        ));
    }
    // Walk the range's cell decomposition: each expected entry is the cell,
    // its within-cell trial window `[within, within + take)`, and `take`.
    let mut expected: Vec<(usize, u64, u64)> = Vec::new();
    let mut g = start;
    while g < end {
        let (cell, within) = grid.locate(g);
        let take = (grid.cell_trials(cell) - within).min(end - g);
        expected.push((cell, within, take));
        g += take;
    }
    // Quarantine entries must land inside the range, once each, and their
    // per-cell counts complete the segment accounting below.
    let mut quarantined_in: std::collections::HashMap<usize, u64> =
        std::collections::HashMap::new();
    let mut seen: std::collections::HashSet<(usize, u64)> = std::collections::HashSet::new();
    for q in &record.quarantined {
        let in_range = expected
            .iter()
            .any(|&(cell, within, take)| cell == q.cell && (within..within + take).contains(&q.trial));
        if !in_range {
            return Err(format!(
                "chunk {}: quarantined trial (cell {}, trial {}) outside chunk range",
                record.chunk, q.cell, q.trial
            ));
        }
        if !seen.insert((q.cell, q.trial)) {
            return Err(format!(
                "chunk {}: quarantined trial (cell {}, trial {}) listed twice",
                record.chunk, q.cell, q.trial
            ));
        }
        if q.attempts == 0 {
            return Err(format!("chunk {}: quarantine entry with zero attempts", record.chunk));
        }
        *quarantined_in.entry(q.cell).or_insert(0) += 1;
    }
    if record.segments.len() != expected.len() {
        return Err(format!("chunk {}: segment count mismatch", record.chunk));
    }
    for ((cell, agg), (want_cell, _within, want_trials)) in record.segments.iter().zip(&expected) {
        let quarantined = quarantined_in.get(cell).copied().unwrap_or(0);
        if cell != want_cell || agg.trials + quarantined != *want_trials {
            return Err(format!(
                "chunk {}: segment cell {cell}/{} trials (+{quarantined} quarantined), \
                 expected cell {want_cell}/{want_trials}",
                record.chunk, agg.trials
            ));
        }
        if agg.successes > agg.trials {
            return Err(format!("chunk {}: successes exceed trials", record.chunk));
        }
        if agg.metrics.len() != metric_arity {
            return Err(format!("chunk {}: metric arity mismatch", record.chunk));
        }
        for s in &agg.metrics {
            if s.count != agg.trials {
                return Err(format!("chunk {}: metric count mismatch", record.chunk));
            }
        }
    }
    Ok(())
}

/// The campaign directory's file I/O, as a trait.
///
/// The driver does all of its reads and writes through this interface so
/// the fault injector ([`FaultySink`](crate::FaultySink)) can interpose on
/// every operation; the production implementation is [`DirSink`], whose
/// happy path is byte-for-byte the writer the driver used before the trait
/// existed (append one checksummed line + `\n`, flush per line).
///
/// Durability contract of an implementation:
///
/// * `write_manifest` must be atomic with respect to crashes (write to a
///   temp name, fsync the temp file, rename over the target, fsync the
///   parent directory) so a torn manifest can never be observed.
/// * `append_record` must flush, bounding what a kill can lose to the final
///   line.
/// * `sync_records` must not return before the records file's contents are
///   durable — the driver calls it *before* writing the manifest's
///   completion state, so the rename can never be reordered ahead of the
///   data it vouches for.
pub trait RecordSink: Sync {
    /// Reads the manifest document, `None` when no manifest exists yet.
    fn read_manifest(&self) -> Result<Option<String>, CampaignError>;
    /// Durably replaces the manifest (write-then-rename; see trait docs).
    fn write_manifest(&self, text: &str) -> Result<(), CampaignError>;
    /// Reads the raw records file, `None` when it does not exist.
    fn read_records(&self) -> Result<Option<Vec<u8>>, CampaignError>;
    /// Opens the records file for appending, truncated to `valid_len`
    /// (dropping a recovered partial tail). Must be called before
    /// [`RecordSink::append_record`].
    fn open_records(&self, valid_len: u64) -> Result<(), CampaignError>;
    /// Appends one record line (newline added here) and flushes.
    fn append_record(&self, line: &str) -> Result<(), CampaignError>;
    /// Fsyncs the records file (a no-op when no records file exists).
    fn sync_records(&self) -> Result<(), CampaignError>;
}

/// The production [`RecordSink`]: plain files in the campaign directory.
#[derive(Debug)]
pub struct DirSink {
    dir: PathBuf,
    records: Mutex<Option<File>>,
}

fn io_err(e: std::io::Error) -> CampaignError {
    CampaignError::Io(e.to_string())
}

impl DirSink {
    /// A sink over campaign directory `dir` (not created here; the driver
    /// creates the directory before first use).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), records: Mutex::new(None) }
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.json")
    }

    fn records_path(&self) -> PathBuf {
        self.dir.join("records.jsonl")
    }

    /// Fsyncs a directory so a rename inside it is durable (on Linux a
    /// directory opened read-only accepts fsync).
    fn sync_dir(dir: &Path) -> Result<(), CampaignError> {
        File::open(dir).and_then(|d| d.sync_all()).map_err(io_err)
    }

    /// Writes the manifest temp file *without* renaming it into place —
    /// the fault injector uses this to model a crash in the rename window.
    pub(crate) fn write_manifest_tmp_only(&self, text: &str) -> Result<(), CampaignError> {
        std::fs::write(self.dir.join("manifest.json.tmp"), text).map_err(io_err)
    }

    /// Appends raw bytes to the records file with **no** newline and no
    /// checksum framing — the fault injector's torn/short writes.
    pub(crate) fn append_bytes(&self, bytes: &[u8]) -> Result<(), CampaignError> {
        let mut guard = self.records.lock().expect("records sink poisoned");
        let file = guard.as_mut().ok_or_else(|| {
            CampaignError::Io("records file not open for appending".to_string())
        })?;
        file.write_all(bytes).and_then(|_| file.flush()).map_err(io_err)
    }
}

impl RecordSink for DirSink {
    fn read_manifest(&self) -> Result<Option<String>, CampaignError> {
        let path = self.manifest_path();
        if !path.exists() {
            return Ok(None);
        }
        let bytes = std::fs::read(&path).map_err(io_err)?;
        // Lossy: invalid UTF-8 fails JSON parsing and classifies as a
        // corrupt manifest, not an I/O failure.
        Ok(Some(String::from_utf8_lossy(&bytes).into_owned()))
    }

    fn write_manifest(&self, text: &str) -> Result<(), CampaignError> {
        // Write-then-rename so a kill mid-write cannot leave a torn
        // manifest behind; fsync the temp file *before* the rename and the
        // directory *after* it so a host crash cannot surface the rename
        // without the data (or the data without the directory entry).
        let tmp = self.dir.join("manifest.json.tmp");
        let mut file = File::create(&tmp).map_err(io_err)?;
        file.write_all(text.as_bytes()).and_then(|_| file.sync_all()).map_err(io_err)?;
        drop(file);
        std::fs::rename(&tmp, self.manifest_path()).map_err(io_err)?;
        Self::sync_dir(&self.dir)
    }

    fn read_records(&self) -> Result<Option<Vec<u8>>, CampaignError> {
        let path = self.records_path();
        if !path.exists() {
            return Ok(None);
        }
        std::fs::read(&path).map(Some).map_err(io_err)
    }

    fn open_records(&self, valid_len: u64) -> Result<(), CampaignError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.records_path())
            .map_err(io_err)?;
        file.set_len(valid_len).map_err(io_err)?;
        *self.records.lock().expect("records sink poisoned") = Some(file);
        Ok(())
    }

    fn append_record(&self, line: &str) -> Result<(), CampaignError> {
        let mut guard = self.records.lock().expect("records sink poisoned");
        let file = guard.as_mut().ok_or_else(|| {
            CampaignError::Io("records file not open for appending".to_string())
        })?;
        file.write_all(line.as_bytes())
            .and_then(|_| file.write_all(b"\n"))
            .and_then(|_| file.flush())
            .map_err(io_err)
    }

    fn sync_records(&self) -> Result<(), CampaignError> {
        let guard = self.records.lock().expect("records sink poisoned");
        match guard.as_ref() {
            Some(file) => file.sync_all().map_err(io_err),
            None => {
                // Completion on a pure replay (no chunks run this call):
                // sync through a fresh handle; fsync needs any fd.
                let path = self.records_path();
                if path.exists() {
                    File::open(&path).and_then(|f| f.sync_all()).map_err(io_err)
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TrialOutcome;

    fn sample_record() -> (ChunkRecord, CellGrid) {
        let grid = CellGrid::new(&[3, 3]);
        // Chunk 1 of size 4 covers globals [4, 6) -> cell 1 trials 1..3.
        let mut agg = CellAggregate::empty(2);
        agg.record(&TrialOutcome { success: true, metrics: vec![10, u64::MAX] });
        agg.record(&TrialOutcome { success: false, metrics: vec![30, 0] });
        (
            ChunkRecord { chunk: 1, start: 4, end: 6, segments: vec![(1, agg)], quarantined: vec![] },
            grid,
        )
    }

    /// Chunk 1 of size 4 over cells [3, 3] covers globals [4, 6) → cell 1,
    /// within-cell trials 1..3 — with trial 2 quarantined.
    fn quarantined_record() -> (ChunkRecord, CellGrid) {
        let grid = CellGrid::new(&[3, 3]);
        let mut agg = CellAggregate::empty(2);
        agg.record(&TrialOutcome { success: true, metrics: vec![10, 20] });
        let q = QuarantineRecord {
            cell: 1,
            trial: 2,
            attempts: 3,
            reason: "injected fault: trial 5".into(),
        };
        (
            ChunkRecord { chunk: 1, start: 4, end: 6, segments: vec![(1, agg)], quarantined: vec![q] },
            grid,
        )
    }

    #[test]
    fn record_round_trips_with_extreme_values() {
        let (record, _) = sample_record();
        let line = encode_record(&record);
        assert_eq!(decode_record(&line).unwrap(), record);
    }

    #[test]
    fn checksum_catches_a_flipped_byte() {
        let (record, _) = sample_record();
        let line = encode_record(&record);
        for at in [10, line.len() / 2, line.len() - 20] {
            let mut bytes = line.clone().into_bytes();
            bytes[at] = if bytes[at] == b'7' { b'8' } else { b'7' };
            let tampered = String::from_utf8(bytes).unwrap();
            assert!(decode_record(&tampered).is_err(), "tamper at {at} undetected");
        }
    }

    #[test]
    fn load_records_drops_partial_tail_and_reports_offset() {
        let (record, grid) = sample_record();
        let full = CellGrid::new(&[3, 3]);
        assert_eq!(grid, full);
        let line = encode_record(&record);
        let contents = format!("{line}\n{}", &line[..line.len() / 2]);
        let loaded = load_records(&contents, &grid, 4, 2).unwrap();
        assert_eq!(loaded.records.len(), 1);
        assert!(loaded.recovered_tail);
        assert_eq!(loaded.valid_len, line.len() as u64 + 1);
    }

    #[test]
    fn load_records_rejects_mid_file_damage() {
        let (record, grid) = sample_record();
        let line = encode_record(&record);
        let contents = format!("{}\n{line}\n", &line[..line.len() - 8]);
        let err = load_records(&contents, &grid, 4, 2).unwrap_err();
        assert!(matches!(err, CampaignError::RecordsCorrupt(_)));
    }

    #[test]
    fn load_records_rejects_grid_disagreement() {
        let (record, _) = sample_record();
        let other_grid = CellGrid::new(&[6, 6]);
        let contents = format!("{}\n", encode_record(&record));
        let err = load_records(&contents, &other_grid, 4, 2).unwrap_err();
        assert!(matches!(err, CampaignError::RecordsCorrupt(_)));
    }

    #[test]
    fn manifest_round_trips_and_rejects_damage() {
        let m = Manifest {
            name: "noise-grid".into(),
            master_seed: 0xdead_beef,
            chunk_trials: 32,
            total_trials: 4096,
            cells: 16,
            fingerprint: 0x0123_4567_89ab_cdef,
            complete: false,
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        assert!(Manifest::decode("{not json").is_err());
        assert!(Manifest::decode(r#"{"version":99}"#).is_err());
    }

    #[test]
    fn completion_flag_round_trips_and_is_not_identity() {
        let mut m = Manifest {
            name: "x".into(),
            master_seed: 1,
            chunk_trials: 2,
            total_trials: 4,
            cells: 2,
            fingerprint: 9,
            complete: false,
        };
        let pristine = m.clone();
        m.complete = true;
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        assert_ne!(m, pristine);
        assert!(m.same_campaign(&pristine), "complete must not affect identity");
        let mut other = pristine.clone();
        other.master_seed = 2;
        assert!(!other.same_campaign(&pristine));
    }

    #[test]
    fn quarantined_record_round_trips_and_validates() {
        let (record, grid) = quarantined_record();
        let line = encode_record(&record);
        assert_eq!(decode_record(&line).unwrap(), record);
        let contents = format!("{line}\n");
        let loaded = load_records(&contents, &grid, 4, 2).unwrap();
        assert_eq!(loaded.records, vec![record]);
    }

    #[test]
    fn quarantine_accounting_must_balance() {
        // Same shape, but the quarantined trial is *also* missing from the
        // accounting: segment has 1 trial, 0 quarantined, range needs 2.
        let (mut record, grid) = quarantined_record();
        record.quarantined.clear();
        let contents = format!("{}\n", encode_record(&record));
        let err = load_records(&contents, &grid, 4, 2).unwrap_err();
        assert!(matches!(err, CampaignError::RecordsCorrupt(_)), "{err}");

        // Out-of-range quarantine entry.
        let (mut record, grid) = quarantined_record();
        record.quarantined[0].trial = 0; // global 3: not in this chunk
        let contents = format!("{}\n", encode_record(&record));
        let err = load_records(&contents, &grid, 4, 2).unwrap_err();
        assert!(matches!(err, CampaignError::RecordsCorrupt(_)), "{err}");

        // Duplicate quarantine entry.
        let (mut record, grid) = quarantined_record();
        let dup = record.quarantined[0].clone();
        record.quarantined.push(dup);
        let contents = format!("{}\n", encode_record(&record));
        let err = load_records(&contents, &grid, 4, 2).unwrap_err();
        assert!(matches!(err, CampaignError::RecordsCorrupt(_)), "{err}");
    }

    #[test]
    fn fully_quarantined_segment_is_legal() {
        // Both trials of the chunk quarantined: empty aggregate, two
        // quarantine entries — still a valid, checksummed record.
        let grid = CellGrid::new(&[3, 3]);
        let record = ChunkRecord {
            chunk: 1,
            start: 4,
            end: 6,
            segments: vec![(1, CellAggregate::empty(2))],
            quarantined: vec![
                QuarantineRecord { cell: 1, trial: 1, attempts: 3, reason: "r1".into() },
                QuarantineRecord { cell: 1, trial: 2, attempts: 3, reason: "r2".into() },
            ],
        };
        let contents = format!("{}\n", encode_record(&record));
        let loaded = load_records(&contents, &grid, 4, 2).unwrap();
        assert_eq!(loaded.records, vec![record]);
    }
}
