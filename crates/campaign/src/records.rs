//! On-disk campaign state: the manifest and the JSONL merge records.
//!
//! A campaign directory holds two files:
//!
//! * **`manifest.json`** — one JSON object identifying the campaign: name,
//!   master seed, chunk size, total trials, metric names, and a
//!   *fingerprint* (FNV-1a over the full cell layout). Resume refuses to
//!   touch a directory whose manifest does not match the spec byte-for-byte
//!   — the same trial stream, or nothing.
//! * **`records.jsonl`** — one line per *completed chunk* of the global
//!   trial stream. Each line carries the chunk's `[start, end)` range and
//!   the per-cell [`CellAggregate`] segments it produced, and ends with an
//!   FNV-1a checksum of the line's preceding bytes. Lines are appended in
//!   completion order, which under a multi-threaded fleet is **not** chunk
//!   order — merging is order-independent (integer aggregates), so it does
//!   not matter.
//!
//! Crash-recovery rules, enforced by [`load_records`]:
//!
//! * A **final** line that is incomplete or fails its checksum is the
//!   expected artifact of a kill mid-append: it is dropped and its chunk
//!   re-run. Statistics cannot be wrong, only re-computed.
//! * A **non-final** corrupt line means the file was damaged by something
//!   other than an append-in-progress kill; the load returns a clean error
//!   rather than resuming over unknown damage.

use crate::grid::CellGrid;
use crate::json::{Json, JsonWriter};
use crate::stats::{CellAggregate, StreamStats};

/// Current on-disk format version. Bump on any layout change; resume
/// refuses mismatched versions.
pub const FORMAT_VERSION: u64 = 1;

/// FNV-1a over a byte string — the checksum/fingerprint primitive for the
/// campaign's on-disk formats.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Errors from loading or validating campaign state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The manifest file exists but cannot be parsed or fails validation.
    ManifestCorrupt(String),
    /// The manifest belongs to a different campaign (spec mismatch).
    ManifestMismatch(String),
    /// A non-final record line is damaged.
    RecordsCorrupt(String),
    /// Filesystem-level failure (message carries the underlying error).
    Io(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::ManifestCorrupt(m) => write!(f, "manifest corrupt: {m}"),
            CampaignError::ManifestMismatch(m) => write!(f, "manifest mismatch: {m}"),
            CampaignError::RecordsCorrupt(m) => write!(f, "records corrupt: {m}"),
            CampaignError::Io(m) => write!(f, "campaign io error: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// The aggregate segments one chunk contributed, tagged by cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRecord {
    /// Chunk index in the fixed chunk grid.
    pub chunk: u64,
    /// Global trial range `[start, end)` this chunk covered.
    pub start: u64,
    /// Exclusive end of the range.
    pub end: u64,
    /// Per-cell segments, ordered by cell index (a chunk spans one or more
    /// consecutive cells).
    pub segments: Vec<(usize, CellAggregate)>,
}

fn write_stats(w: &mut JsonWriter, s: &StreamStats) {
    w.obj()
        .key("count")
        .num(s.count)
        .key("sum")
        .big(s.sum)
        .key("min")
        .num(s.min)
        .key("max")
        .num(s.max)
        .end_obj();
}

fn read_stats(v: &Json) -> Result<StreamStats, String> {
    Ok(StreamStats {
        count: v.get("count").and_then(Json::as_u64).ok_or("stats missing count")?,
        sum: v.get("sum").and_then(Json::as_u128).ok_or("stats missing sum")?,
        min: v.get("min").and_then(Json::as_u64).ok_or("stats missing min")?,
        max: v.get("max").and_then(Json::as_u64).ok_or("stats missing max")?,
    })
}

/// Serialises one chunk record as a single JSONL line (no trailing
/// newline), ending with a checksum field over the preceding bytes.
pub fn encode_record(record: &ChunkRecord) -> String {
    let mut w = JsonWriter::new();
    w.obj()
        .key("chunk")
        .num(record.chunk)
        .key("start")
        .num(record.start)
        .key("end")
        .num(record.end)
        .key("cells")
        .arr();
    for (cell, agg) in &record.segments {
        w.obj()
            .key("cell")
            .num(*cell as u64)
            .key("trials")
            .num(agg.trials)
            .key("successes")
            .num(agg.successes)
            .key("metrics")
            .arr();
        for s in &agg.metrics {
            write_stats(&mut w, s);
        }
        w.end_arr().end_obj();
    }
    w.end_arr().end_obj();
    let body = w.finish();
    // `{...,"crc":"<16 hex>"}`: checksum covers everything before the crc
    // field, i.e. the body minus its closing brace.
    let prefix = &body[..body.len() - 1];
    format!("{prefix},\"crc\":\"{:016x}\"}}", fnv1a(prefix.as_bytes()))
}

/// Decodes one record line, verifying its checksum. Returns a plain `Err`
/// string; the caller decides whether the failing line is final (normal
/// kill artifact) or not (real corruption).
pub fn decode_record(line: &str) -> Result<ChunkRecord, String> {
    const CRC_KEY: &str = ",\"crc\":\"";
    let crc_at = line.rfind(CRC_KEY).ok_or("missing crc field")?;
    let want = u64::from_str_radix(
        line[crc_at + CRC_KEY.len()..].strip_suffix("\"}").ok_or("malformed crc suffix")?,
        16,
    )
    .map_err(|_| "malformed crc value".to_string())?;
    let got = fnv1a(&line.as_bytes()[..crc_at]);
    if got != want {
        return Err(format!("checksum mismatch: {got:016x} != {want:016x}"));
    }
    let v = Json::parse(line)?;
    let mut segments = Vec::new();
    for seg in v.get("cells").and_then(Json::as_arr).ok_or("record missing cells")? {
        let cell = seg.get("cell").and_then(Json::as_u64).ok_or("segment missing cell")? as usize;
        let metrics = seg
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or("segment missing metrics")?
            .iter()
            .map(read_stats)
            .collect::<Result<Vec<_>, _>>()?;
        segments.push((
            cell,
            CellAggregate {
                trials: seg.get("trials").and_then(Json::as_u64).ok_or("segment missing trials")?,
                successes: seg
                    .get("successes")
                    .and_then(Json::as_u64)
                    .ok_or("segment missing successes")?,
                metrics,
            },
        ));
    }
    Ok(ChunkRecord {
        chunk: v.get("chunk").and_then(Json::as_u64).ok_or("record missing chunk")?,
        start: v.get("start").and_then(Json::as_u64).ok_or("record missing start")?,
        end: v.get("end").and_then(Json::as_u64).ok_or("record missing end")?,
        segments,
    })
}

/// The identity block of `manifest.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Campaign name (informational; the fingerprint is authoritative).
    pub name: String,
    /// Master seed of the whole campaign.
    pub master_seed: u64,
    /// Chunk size in trials. Fixed at campaign creation — resume keeps the
    /// original chunk grid even if the resuming process asked for another.
    pub chunk_trials: u64,
    /// Total trials in the flattened stream.
    pub total_trials: u64,
    /// Number of cells.
    pub cells: u64,
    /// FNV-1a fingerprint over the full layout (cell ids, trial counts,
    /// metric names, master seed, chunk size).
    pub fingerprint: u64,
}

impl Manifest {
    /// Serialises the manifest as one JSON line.
    pub fn encode(&self) -> String {
        let mut w = JsonWriter::new();
        w.obj()
            .key("version")
            .num(FORMAT_VERSION)
            .key("name")
            .str(&self.name)
            .key("master_seed")
            .num(self.master_seed)
            .key("chunk_trials")
            .num(self.chunk_trials)
            .key("total_trials")
            .num(self.total_trials)
            .key("cells")
            .num(self.cells)
            .key("fingerprint")
            .str(&format!("{:016x}", self.fingerprint))
            .end_obj();
        w.finish()
    }

    /// Parses and version-checks a manifest document.
    pub fn decode(text: &str) -> Result<Manifest, CampaignError> {
        let err = |m: &str| CampaignError::ManifestCorrupt(m.to_string());
        let v = Json::parse(text.trim()).map_err(CampaignError::ManifestCorrupt)?;
        let version = v.get("version").and_then(Json::as_u64).ok_or_else(|| err("no version"))?;
        if version != FORMAT_VERSION {
            return Err(CampaignError::ManifestMismatch(format!(
                "format version {version}, this build reads {FORMAT_VERSION}"
            )));
        }
        let fingerprint = v
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| err("no fingerprint"))?;
        Ok(Manifest {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| err("no name"))?
                .to_string(),
            master_seed: v
                .get("master_seed")
                .and_then(Json::as_u64)
                .ok_or_else(|| err("no master_seed"))?,
            chunk_trials: v
                .get("chunk_trials")
                .and_then(Json::as_u64)
                .ok_or_else(|| err("no chunk_trials"))?,
            total_trials: v
                .get("total_trials")
                .and_then(Json::as_u64)
                .ok_or_else(|| err("no total_trials"))?,
            cells: v.get("cells").and_then(Json::as_u64).ok_or_else(|| err("no cells"))?,
            fingerprint,
        })
    }
}

/// Result of scanning a records file: the valid chunk records, plus whether
/// a partial/corrupt **final** line was dropped (the caller truncates it
/// before appending).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedRecords {
    /// Every valid record, in file order.
    pub records: Vec<ChunkRecord>,
    /// Byte length of the valid prefix of the file (everything after this
    /// offset is a dropped partial tail).
    pub valid_len: u64,
    /// True when a partial or corrupt final line was dropped.
    pub recovered_tail: bool,
}

/// Parses a records file's contents, applying the crash-recovery rules and
/// validating each record against the chunk grid (`chunk` size and the cell
/// layout `grid`).
pub fn load_records(
    contents: &str,
    grid: &CellGrid,
    chunk: u64,
    metric_arity: usize,
) -> Result<LoadedRecords, CampaignError> {
    let mut records = Vec::new();
    let mut valid_len = 0u64;
    let mut recovered_tail = false;
    // split_inclusive keeps the trailing newline, so a final line without
    // one (append killed mid-line) is distinguishable.
    for piece in contents.split_inclusive('\n') {
        let line = piece.strip_suffix('\n');
        let is_final_piece = valid_len + piece.len() as u64 == contents.len() as u64;
        let complete = line.is_some();
        let text = line.unwrap_or(piece);
        if text.is_empty() {
            valid_len += piece.len() as u64;
            continue;
        }
        let parsed = if complete { decode_record(text) } else { Err("partial line".to_string()) };
        match parsed {
            Ok(record) => {
                validate_record(&record, grid, chunk, metric_arity)
                    .map_err(CampaignError::RecordsCorrupt)?;
                records.push(record);
                valid_len += piece.len() as u64;
            }
            Err(reason) if is_final_piece => {
                // Normal kill artifact: drop the tail, re-run its chunk.
                let _ = reason;
                recovered_tail = true;
                break;
            }
            Err(reason) => {
                return Err(CampaignError::RecordsCorrupt(format!(
                    "non-final record line damaged ({reason})"
                )));
            }
        }
    }
    Ok(LoadedRecords { records, valid_len, recovered_tail })
}

/// Checks a decoded record against the campaign geometry: its range must be
/// exactly the chunk grid's range for its index, and its segments must tile
/// that range over the right cells with the right trial counts and metric
/// arity. A record that decodes but disagrees with the grid is corruption
/// (or a foreign file), never something to silently merge.
fn validate_record(
    record: &ChunkRecord,
    grid: &CellGrid,
    chunk: u64,
    metric_arity: usize,
) -> Result<(), String> {
    if record.chunk >= grid.chunk_count(chunk) {
        return Err(format!("chunk {} out of range", record.chunk));
    }
    let (start, end) = grid.chunk_range(chunk, record.chunk);
    if (record.start, record.end) != (start, end) {
        return Err(format!(
            "chunk {} claims [{}, {}), grid says [{}, {})",
            record.chunk, record.start, record.end, start, end
        ));
    }
    // Walk the range's cell decomposition and compare.
    let mut expected: Vec<(usize, u64)> = Vec::new();
    let mut g = start;
    while g < end {
        let (cell, within) = grid.locate(g);
        let take = (grid.cell_trials(cell) - within).min(end - g);
        expected.push((cell, take));
        g += take;
    }
    if record.segments.len() != expected.len() {
        return Err(format!("chunk {}: segment count mismatch", record.chunk));
    }
    for ((cell, agg), (want_cell, want_trials)) in record.segments.iter().zip(&expected) {
        if cell != want_cell || agg.trials != *want_trials {
            return Err(format!(
                "chunk {}: segment cell {cell}/{} trials, expected cell {want_cell}/{want_trials}",
                record.chunk, agg.trials
            ));
        }
        if agg.successes > agg.trials {
            return Err(format!("chunk {}: successes exceed trials", record.chunk));
        }
        if agg.metrics.len() != metric_arity {
            return Err(format!("chunk {}: metric arity mismatch", record.chunk));
        }
        for s in &agg.metrics {
            if s.count != agg.trials {
                return Err(format!("chunk {}: metric count mismatch", record.chunk));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TrialOutcome;

    fn sample_record() -> (ChunkRecord, CellGrid) {
        let grid = CellGrid::new(&[3, 3]);
        // Chunk 1 of size 4 covers globals [4, 6) -> cell 1 trials 1..3.
        let mut agg = CellAggregate::empty(2);
        agg.record(&TrialOutcome { success: true, metrics: vec![10, u64::MAX] });
        agg.record(&TrialOutcome { success: false, metrics: vec![30, 0] });
        (ChunkRecord { chunk: 1, start: 4, end: 6, segments: vec![(1, agg)] }, grid)
    }

    #[test]
    fn record_round_trips_with_extreme_values() {
        let (record, _) = sample_record();
        let line = encode_record(&record);
        assert_eq!(decode_record(&line).unwrap(), record);
    }

    #[test]
    fn checksum_catches_a_flipped_byte() {
        let (record, _) = sample_record();
        let line = encode_record(&record);
        for at in [10, line.len() / 2, line.len() - 20] {
            let mut bytes = line.clone().into_bytes();
            bytes[at] = if bytes[at] == b'7' { b'8' } else { b'7' };
            let tampered = String::from_utf8(bytes).unwrap();
            assert!(decode_record(&tampered).is_err(), "tamper at {at} undetected");
        }
    }

    #[test]
    fn load_records_drops_partial_tail_and_reports_offset() {
        let (record, grid) = sample_record();
        let full = CellGrid::new(&[3, 3]);
        assert_eq!(grid, full);
        let line = encode_record(&record);
        let contents = format!("{line}\n{}", &line[..line.len() / 2]);
        let loaded = load_records(&contents, &grid, 4, 2).unwrap();
        assert_eq!(loaded.records.len(), 1);
        assert!(loaded.recovered_tail);
        assert_eq!(loaded.valid_len, line.len() as u64 + 1);
    }

    #[test]
    fn load_records_rejects_mid_file_damage() {
        let (record, grid) = sample_record();
        let line = encode_record(&record);
        let contents = format!("{}\n{line}\n", &line[..line.len() - 8]);
        let err = load_records(&contents, &grid, 4, 2).unwrap_err();
        assert!(matches!(err, CampaignError::RecordsCorrupt(_)));
    }

    #[test]
    fn load_records_rejects_grid_disagreement() {
        let (record, _) = sample_record();
        let other_grid = CellGrid::new(&[6, 6]);
        let contents = format!("{}\n", encode_record(&record));
        let err = load_records(&contents, &other_grid, 4, 2).unwrap_err();
        assert!(matches!(err, CampaignError::RecordsCorrupt(_)));
    }

    #[test]
    fn manifest_round_trips_and_rejects_damage() {
        let m = Manifest {
            name: "noise-grid".into(),
            master_seed: 0xdead_beef,
            chunk_trials: 32,
            total_trials: 4096,
            cells: 16,
            fingerprint: 0x0123_4567_89ab_cdef,
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        assert!(Manifest::decode("{not json").is_err());
        assert!(Manifest::decode(r#"{"version":99}"#).is_err());
    }
}
