//! The cell grid: an N-dimensional parameter sweep flattened into one
//! global trial index space.
//!
//! Cells are laid out consecutively: cell 0 owns global trials
//! `[0, trials_0)`, cell 1 owns `[trials_0, trials_0 + trials_1)`, and so
//! on. The flattening is what removes the per-cell barrier — the executor
//! sees one long stream of `total()` trials and never waits for a cell to
//! drain before starting the next — while [`CellGrid::locate`] maps any
//! global index back to `(cell, trial-within-cell)` so per-trial seeds stay
//! a pure function of the cell's master seed and the trial's index *within
//! its cell*, independent of how the grid is chunked or scheduled.

/// Immutable geometry of a flattened sweep: per-cell trial counts plus
/// cumulative offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellGrid {
    /// `offsets[c]` is the global index of cell `c`'s first trial;
    /// `offsets[cells]` is the total trial count.
    offsets: Vec<u64>,
}

impl CellGrid {
    /// Builds the grid from per-cell trial counts. Zero-trial cells are
    /// legal (they simply occupy no stream space).
    pub fn new(trials_per_cell: &[u64]) -> Self {
        let mut offsets = Vec::with_capacity(trials_per_cell.len() + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for &t in trials_per_cell {
            acc = acc.checked_add(t).expect("campaign grid overflows u64 trials");
            offsets.push(acc);
        }
        Self { offsets }
    }

    /// Number of cells.
    pub fn cells(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total trials across all cells — the length of the global stream.
    pub fn total(&self) -> u64 {
        *self.offsets.last().expect("grid offsets non-empty")
    }

    /// Trials owned by cell `cell`.
    pub fn cell_trials(&self, cell: usize) -> u64 {
        self.offsets[cell + 1] - self.offsets[cell]
    }

    /// Global index of cell `cell`'s first trial.
    pub fn cell_start(&self, cell: usize) -> u64 {
        self.offsets[cell]
    }

    /// Maps a global trial index to `(cell, trial_within_cell)`.
    ///
    /// # Panics
    ///
    /// Panics if `global >= total()`.
    pub fn locate(&self, global: u64) -> (usize, u64) {
        assert!(global < self.total(), "global trial {global} out of range");
        // partition_point returns the first offset > global; its predecessor
        // is the owning cell. Zero-trial cells have equal adjacent offsets
        // and are correctly skipped.
        let cell = self.offsets.partition_point(|&o| o <= global) - 1;
        (cell, global - self.offsets[cell])
    }

    /// Number of fixed-size chunks of `chunk` trials covering the stream
    /// (the last chunk may be short).
    pub fn chunk_count(&self, chunk: u64) -> u64 {
        assert!(chunk > 0, "chunk size must be positive");
        self.total().div_ceil(chunk)
    }

    /// The global `[start, end)` range of chunk `index`.
    pub fn chunk_range(&self, chunk: u64, index: u64) -> (u64, u64) {
        assert!(index < self.chunk_count(chunk), "chunk {index} out of range");
        let start = index * chunk;
        (start, (start + chunk).min(self.total()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_round_trips_every_global_index() {
        let grid = CellGrid::new(&[3, 0, 5, 1]);
        assert_eq!(grid.total(), 9);
        assert_eq!(grid.cells(), 4);
        let mut expect = vec![];
        for (cell, &n) in [3u64, 0, 5, 1].iter().enumerate() {
            for t in 0..n {
                expect.push((cell, t));
            }
        }
        let got: Vec<_> = (0..grid.total()).map(|g| grid.locate(g)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn chunks_tile_the_stream_exactly() {
        let grid = CellGrid::new(&[4, 4, 3]);
        let chunk = 4;
        assert_eq!(grid.chunk_count(chunk), 3);
        let ranges: Vec<_> =
            (0..grid.chunk_count(chunk)).map(|k| grid.chunk_range(chunk, k)).collect();
        assert_eq!(ranges, vec![(0, 4), (4, 8), (8, 11)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn locate_rejects_out_of_range() {
        CellGrid::new(&[2]).locate(2);
    }
}
