//! Exact, order-independent streaming statistics.
//!
//! A campaign's resume guarantee is *byte-identical final aggregates no
//! matter where it was killed or how many threads re-ran it*. Floating-point
//! accumulation cannot deliver that under re-sharding (addition is not
//! associative), so campaign statistics are integers all the way down:
//! counts, `u128` sums, min/max. Integer addition is exactly associative and
//! commutative, which makes [`StreamStats::merge`] order-independent in the
//! strongest sense — any partition of the trial stream into chunks, merged
//! in any order, produces the same bits. Derived floating-point views
//! (means, rates) are computed once from the final integers, so they too
//! are identical across resumes.

/// Streaming summary of one `u64` metric: count, exact sum, min, max.
///
/// Memory is O(1) regardless of how many trials fold into it — this is what
/// bounds a campaign's resident memory no matter the sweep size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values (u128: 2^64 trials of 2^64-1 each
    /// cannot overflow).
    pub sum: u128,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (`0` when empty).
    pub max: u64,
}

impl Default for StreamStats {
    fn default() -> Self {
        Self::empty()
    }
}

impl StreamStats {
    /// The identity element of [`StreamStats::merge`].
    pub const fn empty() -> Self {
        Self { count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Folds one value in.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another summary in. Exact: associative, commutative, with
    /// [`StreamStats::empty`] as identity.
    pub fn merge(&mut self, other: &StreamStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Arithmetic mean, or `None` when empty. Derived from exact integers,
    /// so identical across any chunking of the same trials.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// The full aggregate of one cell: trial/success counts plus one
/// [`StreamStats`] per declared metric.
///
/// `Eq` is exact — the resume tests compare entire aggregate vectors with
/// `==` to enforce bit-identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellAggregate {
    /// Trials folded into this aggregate.
    pub trials: u64,
    /// Trials that reported success.
    pub successes: u64,
    /// Per-metric summaries, indexed like the campaign's metric declaration.
    pub metrics: Vec<StreamStats>,
}

impl CellAggregate {
    /// An empty aggregate with `arity` metric slots.
    pub fn empty(arity: usize) -> Self {
        Self { trials: 0, successes: 0, metrics: vec![StreamStats::empty(); arity] }
    }

    /// Folds one trial outcome in.
    ///
    /// # Panics
    ///
    /// Panics if the outcome's metric arity differs from this aggregate's —
    /// a trial source must emit exactly the metrics the campaign declared.
    pub fn record(&mut self, outcome: &TrialOutcome) {
        assert_eq!(
            outcome.metrics.len(),
            self.metrics.len(),
            "trial emitted {} metrics, campaign declares {}",
            outcome.metrics.len(),
            self.metrics.len()
        );
        self.trials += 1;
        self.successes += outcome.success as u64;
        for (stat, &value) in self.metrics.iter_mut().zip(&outcome.metrics) {
            stat.record(value);
        }
    }

    /// Merges another aggregate of the same arity in (exact, order-independent).
    pub fn merge(&mut self, other: &CellAggregate) {
        assert_eq!(self.metrics.len(), other.metrics.len(), "metric arity mismatch in merge");
        self.trials += other.trials;
        self.successes += other.successes;
        for (a, b) in self.metrics.iter_mut().zip(&other.metrics) {
            a.merge(b);
        }
    }

    /// Success rate in `[0, 1]`, or `None` when no trials folded in.
    pub fn success_rate(&self) -> Option<f64> {
        (self.trials > 0).then(|| self.successes as f64 / self.trials as f64)
    }
}

/// What one trial reports back: a success flag plus the declared metrics,
/// all integer (cycles, counts) so aggregation stays exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialOutcome {
    /// Did the trial achieve its cell's success criterion?
    pub success: bool,
    /// Metric values, 1:1 with the campaign's metric declaration.
    pub metrics: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(success: bool, m: &[u64]) -> TrialOutcome {
        TrialOutcome { success, metrics: m.to_vec() }
    }

    #[test]
    fn merge_equals_serial_fold_for_any_split() {
        let outcomes: Vec<_> =
            (0..100u64).map(|i| outcome(i % 3 == 0, &[i * 7, 1 << (i % 30)])).collect();
        let mut serial = CellAggregate::empty(2);
        for o in &outcomes {
            serial.record(o);
        }
        for split in [1usize, 7, 33, 50, 99] {
            let mut left = CellAggregate::empty(2);
            let mut right = CellAggregate::empty(2);
            for o in &outcomes[..split] {
                left.record(o);
            }
            for o in &outcomes[split..] {
                right.record(o);
            }
            // Merge in both orders; both must equal the serial fold exactly.
            let mut lr = left.clone();
            lr.merge(&right);
            let mut rl = right.clone();
            rl.merge(&left);
            assert_eq!(lr, serial);
            assert_eq!(rl, serial);
        }
    }

    #[test]
    fn empty_is_identity() {
        let mut agg = CellAggregate::empty(1);
        agg.record(&outcome(true, &[42]));
        let snapshot = agg.clone();
        agg.merge(&CellAggregate::empty(1));
        assert_eq!(agg, snapshot);
        assert_eq!(agg.metrics[0].min, 42);
        assert_eq!(agg.metrics[0].max, 42);
        assert_eq!(agg.metrics[0].mean(), Some(42.0));
        assert_eq!(agg.success_rate(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "metrics")]
    fn arity_mismatch_panics() {
        CellAggregate::empty(2).record(&outcome(true, &[1]));
    }
}
