//! A minimal JSON reader/writer for campaign records.
//!
//! The build container has no serde; the workspace's existing JSON surface
//! (`llc-bench`'s `bench_json`) hand-rolls flat extraction, but campaign
//! merge records nest (a chunk record carries an array of per-cell
//! segments), so this module is a small recursive-descent parser over a
//! strict JSON subset: objects, arrays, strings (with `\"`/`\\`/`\n`
//! escapes only — campaign writes nothing fancier), unsigned integers, and
//! the literals `true`/`false`/`null`. Numbers are kept as decimal strings
//! so `u128` sums round-trip exactly without a float detour.
//!
//! The writer always emits keys in a fixed order with no whitespace, so a
//! record's serialised form is canonical — checksums over the emitted bytes
//! are reproducible across runs.

use std::fmt::Write as _;

/// A parsed JSON value. Numbers stay as the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// Object: ordered key/value pairs as written.
    Obj(Vec<(String, Json)>),
    /// Array.
    Arr(Vec<Json>),
    /// String (unescaped).
    Str(String),
    /// Number, as its decimal source text.
    Num(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a number in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as `u128`, accepting either a number or a decimal string
    /// (the writer emits `u128` sums as strings for consumers that only do
    /// doubles).
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::Num(s) | Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {}", b as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => parse_str(bytes, pos).map(Json::Str),
        Some(b'0'..=b'9') | Some(b'-') => parse_num(bytes, pos),
        Some(b't') => parse_lit(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null").map(|_| Json::Null),
        _ => Err(format!("unexpected byte at offset {pos}")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_string())
            }
            b'\\' => {
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    _ => return Err(format!("unsupported escape at offset {pos}")),
                }
            }
            _ => out.push(b),
        }
    }
    Err("unterminated string".into())
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("bad number at offset {start}"));
    }
    Ok(Json::Num(std::str::from_utf8(&bytes[start..*pos]).unwrap().to_string()))
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

/// Incremental canonical-JSON writer: fixed key order, no whitespace.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.need_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
    }

    /// Opens an object (as a value).
    pub fn obj(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push('{');
        self.need_comma.push(false);
        self
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.buf.push('}');
        self
    }

    /// Opens an array (as a value).
    pub fn arr(&mut self) -> &mut Self {
        self.pre_value();
        self.buf.push('[');
        self.need_comma.push(false);
        self
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.need_comma.pop();
        self.buf.push(']');
        self
    }

    /// Writes an object key (the next write is its value).
    pub fn key(&mut self, key: &str) -> &mut Self {
        self.pre_value();
        let _ = write!(self.buf, "\"{}\":", escape(key));
        // The key's value must not emit a comma before itself.
        if let Some(last) = self.need_comma.last_mut() {
            *last = false;
        }
        self
    }

    /// Writes a `u64` value.
    pub fn num(&mut self, v: u64) -> &mut Self {
        self.pre_value();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Writes a `u128` value as a decimal **string**, so consumers limited
    /// to doubles cannot silently round it.
    pub fn big(&mut self, v: u128) -> &mut Self {
        self.pre_value();
        let _ = write!(self.buf, "\"{v}\"");
        self
    }

    /// Writes a boolean value.
    pub fn boolean(&mut self, v: bool) -> &mut Self {
        self.pre_value();
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Writes a string value.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.pre_value();
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    /// Consumes the writer, returning the document.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_then_parser_round_trips() {
        let mut w = JsonWriter::new();
        w.obj()
            .key("name")
            .str("table3-sweep")
            .key("chunk")
            .num(16)
            .key("sum")
            .big(340_282_366_920_938_463_463u128)
            .key("cells")
            .arr();
        for i in 0..2u64 {
            w.obj().key("cell").num(i).key("ok").num(1).end_obj();
        }
        w.end_arr().end_obj();
        let text = w.finish();
        assert_eq!(
            text,
            r#"{"name":"table3-sweep","chunk":16,"sum":"340282366920938463463","cells":[{"cell":0,"ok":1},{"cell":1,"ok":1}]}"#
        );
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("table3-sweep"));
        assert_eq!(v.get("chunk").and_then(Json::as_u64), Some(16));
        assert_eq!(v.get("sum").and_then(Json::as_u128), Some(340_282_366_920_938_463_463));
        assert_eq!(v.get("cells").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a":}"#).is_err());
        assert!(Json::parse(r#"{"a":1} trailing"#).is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse(r#"{"a":1,}"#).is_err());
    }

    #[test]
    fn booleans_round_trip() {
        let mut w = JsonWriter::new();
        w.obj().key("yes").boolean(true).key("no").boolean(false).end_obj();
        let text = w.finish();
        assert_eq!(text, r#"{"yes":true,"no":false}"#);
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("yes").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("no").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("yes").and_then(Json::as_u64), None);
    }

    #[test]
    fn escapes_round_trip() {
        let mut w = JsonWriter::new();
        w.obj().key("s").str("a\"b\\c\nd\te").end_obj();
        let text = w.finish();
        let v = Json::parse(&text).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\\c\nd\te"));
    }
}
