//! # llc-campaign
//!
//! The campaign layer: resumable, streaming, million-trial parameter
//! sweeps on top of `llc-fleet`.
//!
//! The paper's headline numbers are statistics over large trial
//! populations swept across parameter grids (scenario × noise level ×
//! nonce width × flip budget × fidelity). Running such a grid as one
//! experiment invocation per cell pays a full machine build and a fleet
//! barrier per cell; `llc-campaign` instead flattens the whole grid into
//! **one global trial stream** served by a single long-lived fleet:
//!
//! * **[`grid`]** — maps the N-dimensional sweep onto consecutive global
//!   trial indices and back; chunks of that stream are the unit of
//!   scheduling and checkpointing.
//! * **[`stats`]** — exact integer streaming aggregates ([`StreamStats`],
//!   [`CellAggregate`]): O(1) memory per metric per cell, and merges that
//!   are associative/commutative *in the bits*, which is what makes
//!   resume byte-identical rather than merely statistically equivalent.
//! * **[`records`]** — the on-disk formats: a manifest identifying the
//!   campaign (fingerprinted; resume refuses a mismatched directory) and
//!   checksummed JSONL merge records, one per completed chunk, appended in
//!   completion order and merged order-independently.
//! * **[`driver`]** — [`Campaign::run`]: validate/create the directory,
//!   load valid records, execute missing chunks through the fleet's task
//!   engine, append+flush a record per chunk, merge everything. A killed
//!   campaign re-runs at most the one chunk whose record line was torn.
//!   Trials run inside a per-attempt `catch_unwind` boundary: a panicking
//!   trial retries with its same derived seed, and a deterministic panic
//!   quarantines the trial (first-class in the merge records) instead of
//!   killing the run.
//! * **[`faults`]** — deterministic fault injection for testing the above:
//!   a seeded [`FaultPlan`] decides, as a pure function, which trials
//!   panic and which record-file operations fail (short write, torn tail,
//!   ENOSPC, fsync error, rename failure) through the [`RecordSink`]
//!   abstraction. The production [`DirSink`] path is byte-identical
//!   whether or not the faults module is in the build.
//!
//! Machine reuse across cells (the pool keyed by machine-configuration
//! hash) lives in `llc-machine` ([`MachinePool`](../llc_machine/struct.MachinePool.html));
//! experiment-specific cell definitions and report renderers live in
//! `llc-bench`. This crate knows nothing about caches — its trial source
//! is `llc-fleet`'s [`TrialSource`] with integer [`TrialOutcome`]s, so the
//! resume proof rests only on seed derivation and integer arithmetic.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod driver;
pub mod faults;
pub mod grid;
mod json;
pub mod records;
pub mod stats;

pub use driver::{Campaign, CampaignOutcome, CampaignSpec, CellSpec, RunOptions};
pub use faults::{FaultPlan, FaultySink, IoFault};
pub use grid::CellGrid;
pub use records::{
    CampaignError, ChunkRecord, DirSink, LoadedRecords, Manifest, QuarantineRecord, RecordSink,
    FORMAT_VERSION,
};
pub use stats::{CellAggregate, StreamStats, TrialOutcome};

// Re-export the fleet surface campaign consumers need, so `llc-bench` can
// write sources against one façade.
pub use llc_fleet::{Fleet, TrialCtx, TrialSource};
