//! Resume-after-kill property suite.
//!
//! The campaign layer's contract is stronger than "resume works": an
//! interrupted campaign, resumed at *any* thread count after *any* tail
//! damage a kill can inflict on the records file, must reproduce the
//! uninterrupted campaign's aggregates **bit for bit** — and any damage a
//! kill cannot explain must surface as a clean error, never as silently
//! wrong statistics. The properties below drive both halves with random
//! grid shapes, kill points and byte-level truncation offsets.

use llc_campaign::{
    Campaign, CampaignError, CampaignSpec, CellAggregate, CellSpec, FaultPlan, Fleet, RunOptions,
    TrialCtx, TrialOutcome, TrialSource,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A cheap, fully deterministic trial source: every outcome is a pure hash
/// of (cell, per-trial seed), so reference aggregates are exactly
/// reproducible and the properties test only the driver's bookkeeping.
struct Synthetic;

impl TrialSource for Synthetic {
    type Worker = ();
    type Item = TrialOutcome;
    fn init(&self, _worker: usize) {}
    fn run_trial(&self, _w: &mut (), cell: usize, ctx: TrialCtx) -> TrialOutcome {
        let v = llc_fleet::mix64(ctx.seed ^ ((cell as u64) << 32));
        TrialOutcome { success: v % 5 < 2, metrics: vec![v >> 40, v & 0xff] }
    }
}

fn spec(cells: &[u64], chunk: u64, master: u64) -> CampaignSpec {
    CampaignSpec {
        name: "resume-props".into(),
        master_seed: master,
        chunk_trials: chunk,
        metrics: vec!["m0".into(), "m1".into()],
        cells: cells
            .iter()
            .enumerate()
            .map(|(i, &t)| CellSpec { id: format!("c{i}"), trials: t })
            .collect(),
    }
}

fn fresh_dir() -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "llc-campaign-props-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The uninterrupted reference for a spec.
fn reference(spec: &CampaignSpec) -> Vec<CellAggregate> {
    let dir = fresh_dir();
    let report =
        Campaign::new(spec.clone(), &dir).run(&Fleet::new(2), &Synthetic, &RunOptions::default());
    let _ = std::fs::remove_dir_all(&dir);
    report.expect("reference run failed").aggregates
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill after a random number of chunks, truncate the records file at a
    /// random byte offset (what a kill mid-append leaves behind), and
    /// resume at 1/2/8 threads: every resume reproduces the uninterrupted
    /// aggregates bit-for-bit.
    #[test]
    fn killed_then_truncated_resume_is_bit_identical(
        cells in prop::collection::vec(0u64..10, 1..5),
        chunk in 1u64..8,
        master in 0u64..1000,
        kill_after in 0u64..12,
        cut_back in 0usize..200,
    ) {
        let spec = spec(&cells, chunk, master);
        let want = reference(&spec);

        for threads in [1usize, 2, 8] {
            let dir = fresh_dir();
            let campaign = Campaign::new(spec.clone(), &dir);
            // Phase 1: run a prefix of the chunk stream, as if killed at a
            // chunk boundary.
            campaign
                .run(
                    &Fleet::new(2),
                    &Synthetic,
                    &RunOptions { max_chunks: Some(kill_after), ..RunOptions::default() },
                )
                .unwrap();
            // Phase 2: tear the file tail at an arbitrary byte offset, as if
            // killed mid-append.
            let path = campaign.records_path();
            let bytes = std::fs::read(&path).unwrap_or_default();
            let keep = bytes.len().saturating_sub(cut_back % (bytes.len() + 1));
            std::fs::write(&path, &bytes[..keep]).unwrap();
            // Phase 3: resume to completion at this thread count.
            let resumed = campaign
                .run(&Fleet::new(threads), &Synthetic, &RunOptions::default())
                .unwrap();
            prop_assert!(resumed.complete);
            prop_assert_eq!(&resumed.aggregates, &want,
                "threads={} kill_after={} keep={} of {}", threads, kill_after, keep, bytes.len());
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// Damaging a byte of a *non-final* record line is unexplainable by a
    /// kill: the resume must return a clean `RecordsCorrupt` error (or, if
    /// the flip lands in the final line, recover it) — in all cases the
    /// completed re-run still matches the reference. Statistics are never
    /// silently wrong.
    #[test]
    fn mid_file_damage_errors_cleanly_and_never_lies(
        cells in prop::collection::vec(1u64..8, 2..5),
        chunk in 1u64..5,
        master in 0u64..1000,
        victim_byte in 0usize..4096,
    ) {
        let spec = spec(&cells, chunk, master);
        let want = reference(&spec);
        let dir = fresh_dir();
        let campaign = Campaign::new(spec.clone(), &dir);
        campaign.run(&Fleet::new(2), &Synthetic, &RunOptions::default()).unwrap();

        let path = campaign.records_path();
        let mut bytes = std::fs::read(&path).unwrap();
        // (The shim has no prop_assume; an empty records file means a
        // zero-trial grid, where there is nothing to damage.)
        if bytes.is_empty() {
            let _ = std::fs::remove_dir_all(&dir);
            return Ok(());
        }
        let at = victim_byte % bytes.len();
        bytes[at] = bytes[at].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();

        match campaign.run(&Fleet::new(2), &Synthetic, &RunOptions::default()) {
            // Flip detected as unexplainable damage: clean typed error.
            Err(CampaignError::RecordsCorrupt(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
            // Flip landed in the final line (a legal kill artifact): the
            // chunk re-runs and the result must still be exact.
            Ok(report) => {
                prop_assert!(report.complete);
                prop_assert_eq!(&report.aggregates, &want);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Run under a *random* seeded fault plan (transient trial panics plus
    /// one injected records-file fault — short write, torn tail, or
    /// ENOSPC). Either the run rides through the faults and is already
    /// bit-identical to the fault-free reference, or it fails with a clean
    /// typed error and the fault-free resume completes bit-identically.
    /// Under no fault plan does the campaign ever produce *wrong* numbers.
    #[test]
    fn random_fault_plans_never_corrupt_results(
        cells in prop::collection::vec(1u64..8, 1..5),
        chunk in 1u64..6,
        master in 0u64..1000,
        fault_seed in 0u64..10_000,
    ) {
        let spec = spec(&cells, chunk, master);
        let want = reference(&spec);
        let grid_total: u64 = cells.iter().sum();
        let chunks_total = grid_total.div_ceil(chunk);
        let plan = FaultPlan::from_seed(fault_seed, grid_total, chunks_total.max(1));

        let dir = fresh_dir();
        let campaign = Campaign::new(spec, &dir);
        let faulty = RunOptions { fault_plan: Some(plan), ..RunOptions::default() };
        match campaign.run(&Fleet::new(2), &Synthetic, &faulty) {
            Ok(outcome) => {
                // Transient panics healed under retry; seeded plans inject
                // no sticky panics, so nothing may be quarantined.
                prop_assert!(outcome.complete);
                prop_assert!(outcome.quarantined.is_empty());
                prop_assert_eq!(&outcome.aggregates, &want, "seed={}", fault_seed);
            }
            Err(CampaignError::Io(msg)) => {
                // Injected I/O faults surface as typed errors whose damage a
                // kill could have caused — so a plain resume must recover.
                prop_assert!(msg.contains("injected fault"), "unexpected io error: {}", msg);
                let resumed = campaign
                    .run(&Fleet::new(2), &Synthetic, &RunOptions::default())
                    .unwrap();
                prop_assert!(resumed.complete);
                prop_assert!(resumed.quarantined.is_empty());
                prop_assert_eq!(&resumed.aggregates, &want, "seed={}", fault_seed);
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {}", other),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A sticky injected panic quarantines its trial identically at every
    /// thread count: same clean aggregates, same quarantine entries, same
    /// stable reason strings.
    #[test]
    fn sticky_panic_quarantine_is_thread_invariant(
        cells in prop::collection::vec(1u64..8, 1..5),
        chunk in 1u64..6,
        master in 0u64..1000,
        victim in 0u64..32,
    ) {
        let spec = spec(&cells, chunk, master);
        let total: u64 = cells.iter().sum();
        if total == 0 {
            return Ok(());
        }
        let plan = FaultPlan::new().panic_at(victim % total, true);
        let faulty = RunOptions { fault_plan: Some(plan), ..RunOptions::default() };

        let mut outcomes = Vec::new();
        for threads in [1usize, 2, 8] {
            let dir = fresh_dir();
            let outcome = Campaign::new(spec.clone(), &dir)
                .run(&Fleet::new(threads), &Synthetic, &faulty)
                .unwrap();
            prop_assert!(outcome.complete);
            prop_assert_eq!(outcome.quarantined.len(), 1);
            prop_assert_eq!(outcome.quarantined[0].attempts, 3);
            outcomes.push((outcome.aggregates, outcome.quarantined));
            let _ = std::fs::remove_dir_all(&dir);
        }
        prop_assert_eq!(&outcomes[0], &outcomes[1]);
        prop_assert_eq!(&outcomes[0], &outcomes[2]);
    }

    /// A corrupt manifest is always a clean `ManifestCorrupt`/`Mismatch`
    /// error — the driver never runs trials over an unidentifiable
    /// directory.
    #[test]
    fn corrupt_manifest_is_always_a_clean_error(
        cells in prop::collection::vec(1u64..6, 1..4),
        garbage in prop::collection::vec(0u8..255, 0..64),
    ) {
        let spec = spec(&cells, 2, 7);
        let dir = fresh_dir();
        let campaign = Campaign::new(spec, &dir);
        campaign.run(&Fleet::single(), &Synthetic, &RunOptions::default()).unwrap();
        std::fs::write(campaign.manifest_path(), &garbage).unwrap();
        let err = campaign
            .run(&Fleet::single(), &Synthetic, &RunOptions::default())
            .unwrap_err();
        prop_assert!(
            matches!(err, CampaignError::ManifestCorrupt(_) | CampaignError::ManifestMismatch(_)),
            "unexpected error kind: {}", err
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
