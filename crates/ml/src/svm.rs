//! A kernel support-vector machine trained with a simplified SMO algorithm.
//!
//! The paper trains a polynomial-kernel SVM (scikit-learn) to decide whether
//! the PSD of an access trace was collected from the victim's target SF set
//! (Section 7.2). The classifier here reproduces that setup from scratch:
//! binary soft-margin SVM, polynomial / RBF / linear kernels, trained by
//! sequential minimal optimisation.

use crate::dataset::Dataset;
use rand::Rng;

/// Kernel functions for the SVM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// `K(x, y) = x·y`
    Linear,
    /// `K(x, y) = (gamma * x·y + coef0)^degree` — the paper's choice.
    Polynomial {
        /// Polynomial degree (scikit-learn default: 3).
        degree: u32,
        /// Scale applied to the dot product.
        gamma: f64,
        /// Additive constant.
        coef0: f64,
    },
    /// `K(x, y) = exp(-gamma * |x - y|^2)`
    Rbf {
        /// Width parameter.
        gamma: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel on two feature vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "kernel arguments must have equal dimension");
        let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        match *self {
            Kernel::Linear => dot,
            Kernel::Polynomial { degree, gamma, coef0 } => (gamma * dot + coef0).powi(degree as i32),
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
        }
    }
}

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SvmConfig {
    /// Kernel function.
    pub kernel: Kernel,
    /// Soft-margin penalty C.
    pub c: f64,
    /// Numerical tolerance of the KKT checks.
    pub tolerance: f64,
    /// Maximum number of passes over the data without any multiplier change.
    pub max_passes: u32,
    /// Hard cap on SMO iterations.
    pub max_iterations: u32,
    /// RNG seed for partner selection.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            kernel: Kernel::Polynomial { degree: 3, gamma: 0.5, coef0: 1.0 },
            c: 1.0,
            tolerance: 1e-3,
            max_passes: 8,
            max_iterations: 20_000,
            seed: 0x5eed,
        }
    }
}

/// A trained binary SVM classifier (labels 0 and 1).
#[derive(Debug, Clone)]
pub struct Svm {
    kernel: Kernel,
    support_vectors: Vec<Vec<f64>>,
    coefficients: Vec<f64>, // alpha_i * y_i
    bias: f64,
}

impl Svm {
    /// Trains an SVM on `data` (labels must be 0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or contains only one class.
    pub fn train(data: &Dataset, config: &SvmConfig) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let n = data.len();
        let y: Vec<f64> = data.labels().iter().map(|&l| if l == 0 { -1.0 } else { 1.0 }).collect();
        assert!(
            y.iter().any(|&v| v > 0.0) && y.iter().any(|&v| v < 0.0),
            "training data must contain both classes"
        );
        let x = data.features();

        // Cache the kernel matrix for small datasets; recompute lazily above
        // the cap to bound memory.
        let cache_matrix = n <= 2048;
        let kernel_matrix: Vec<Vec<f64>> = if cache_matrix {
            (0..n).map(|i| (0..n).map(|j| config.kernel.eval(&x[i], &x[j])).collect()).collect()
        } else {
            Vec::new()
        };
        let k = |i: usize, j: usize| -> f64 {
            if cache_matrix {
                kernel_matrix[i][j]
            } else {
                config.kernel.eval(&x[i], &x[j])
            }
        };

        let mut alpha = vec![0.0f64; n];
        let mut bias = 0.0f64;
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        use rand::SeedableRng;

        let f = |alpha: &[f64], bias: f64, i: usize, k: &dyn Fn(usize, usize) -> f64| -> f64 {
            (0..n).map(|j| alpha[j] * y[j] * k(j, i)).sum::<f64>() + bias
        };

        let mut passes = 0u32;
        let mut iterations = 0u32;
        while passes < config.max_passes && iterations < config.max_iterations {
            let mut changed = 0;
            for i in 0..n {
                iterations += 1;
                let e_i = f(&alpha, bias, i, &k) - y[i];
                let violates = (y[i] * e_i < -config.tolerance && alpha[i] < config.c)
                    || (y[i] * e_i > config.tolerance && alpha[i] > 0.0);
                if !violates {
                    continue;
                }
                // Pick a random partner j != i.
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let e_j = f(&alpha, bias, j, &k) - y[j];
                let (alpha_i_old, alpha_j_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if (y[i] - y[j]).abs() > f64::EPSILON {
                    ((alpha[j] - alpha[i]).max(0.0), (config.c + alpha[j] - alpha[i]).min(config.c))
                } else {
                    ((alpha[i] + alpha[j] - config.c).max(0.0), (alpha[i] + alpha[j]).min(config.c))
                };
                if (hi - lo).abs() < 1e-12 {
                    continue;
                }
                let eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = alpha[j] - y[j] * (e_i - e_j) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - alpha_j_old).abs() < 1e-6 {
                    continue;
                }
                let ai = alpha_i_old + y[i] * y[j] * (alpha_j_old - aj);
                alpha[i] = ai;
                alpha[j] = aj;
                let b1 = bias
                    - e_i
                    - y[i] * (ai - alpha_i_old) * k(i, i)
                    - y[j] * (aj - alpha_j_old) * k(i, j);
                let b2 = bias
                    - e_j
                    - y[i] * (ai - alpha_i_old) * k(i, j)
                    - y[j] * (aj - alpha_j_old) * k(j, j);
                bias = if ai > 0.0 && ai < config.c {
                    b1
                } else if aj > 0.0 && aj < config.c {
                    b2
                } else {
                    (b1 + b2) / 2.0
                };
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Keep only support vectors.
        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-8 {
                support_vectors.push(x[i].clone());
                coefficients.push(alpha[i] * y[i]);
            }
        }
        Self { kernel: config.kernel, support_vectors, coefficients, bias }
    }

    /// Signed decision value; positive means class 1.
    pub fn decision_value(&self, features: &[f64]) -> f64 {
        self.support_vectors
            .iter()
            .zip(&self.coefficients)
            .map(|(sv, c)| c * self.kernel.eval(sv, features))
            .sum::<f64>()
            + self.bias
    }

    /// Predicted label (0 or 1).
    pub fn predict(&self, features: &[f64]) -> usize {
        usize::from(self.decision_value(features) > 0.0)
    }

    /// Number of support vectors retained.
    pub fn num_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ConfusionMatrix;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn blob_dataset(n: usize, separation: f64, seed: u64) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut data = Dataset::new();
        for i in 0..n {
            let label = i % 2;
            let centre = if label == 1 { separation } else { -separation };
            data.push(
                vec![centre + rng.gen_range(-1.0..1.0), centre + rng.gen_range(-1.0..1.0)],
                label,
            );
        }
        data
    }

    #[test]
    fn linear_svm_separates_blobs() {
        let data = blob_dataset(120, 3.0, 1);
        let svm = Svm::train(&data, &SvmConfig { kernel: Kernel::Linear, ..Default::default() });
        let preds: Vec<usize> = data.features().iter().map(|f| svm.predict(f)).collect();
        let cm = ConfusionMatrix::from_predictions(data.labels(), &preds);
        assert!(cm.accuracy() > 0.95, "accuracy {}", cm.accuracy());
        assert!(svm.num_support_vectors() > 0);
    }

    #[test]
    fn polynomial_svm_handles_xor_pattern() {
        // XOR is not linearly separable; a polynomial kernel handles it.
        let mut rng = SmallRng::seed_from_u64(3);
        let mut data = Dataset::new();
        for _ in 0..200 {
            let x = rng.gen_range(-1.0..1.0f64);
            let y = rng.gen_range(-1.0..1.0f64);
            // Keep a margin around the axes so the task is well-posed.
            if x.abs() < 0.15 || y.abs() < 0.15 {
                continue;
            }
            data.push(vec![x, y], usize::from(x * y > 0.0));
        }
        let svm = Svm::train(
            &data,
            &SvmConfig {
                kernel: Kernel::Polynomial { degree: 2, gamma: 1.0, coef0: 0.0 },
                c: 10.0,
                ..Default::default()
            },
        );
        let preds: Vec<usize> = data.features().iter().map(|f| svm.predict(f)).collect();
        let cm = ConfusionMatrix::from_predictions(data.labels(), &preds);
        assert!(cm.accuracy() > 0.9, "accuracy {}", cm.accuracy());
    }

    #[test]
    fn rbf_svm_separates_concentric_rings() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut data = Dataset::new();
        for i in 0..200 {
            let label = i % 2;
            let radius = if label == 1 { 3.0 } else { 1.0 };
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            data.push(vec![radius * angle.cos(), radius * angle.sin()], label);
        }
        let svm = Svm::train(
            &data,
            &SvmConfig { kernel: Kernel::Rbf { gamma: 1.0 }, c: 5.0, ..Default::default() },
        );
        let preds: Vec<usize> = data.features().iter().map(|f| svm.predict(f)).collect();
        let cm = ConfusionMatrix::from_predictions(data.labels(), &preds);
        assert!(cm.accuracy() > 0.95, "accuracy {}", cm.accuracy());
    }

    #[test]
    fn generalises_to_held_out_data() {
        let data = blob_dataset(300, 2.5, 7);
        let mut rng = SmallRng::seed_from_u64(9);
        let (train, val) = data.split(0.3, &mut rng);
        let svm = Svm::train(&train, &SvmConfig::default());
        let preds: Vec<usize> = val.features().iter().map(|f| svm.predict(f)).collect();
        let cm = ConfusionMatrix::from_predictions(val.labels(), &preds);
        assert!(cm.accuracy() > 0.9, "validation accuracy {}", cm.accuracy());
    }

    #[test]
    #[should_panic]
    fn single_class_training_panics() {
        let mut data = Dataset::new();
        data.push(vec![1.0], 1);
        data.push(vec![2.0], 1);
        let _ = Svm::train(&data, &SvmConfig::default());
    }

    #[test]
    fn kernel_evaluations() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        assert_eq!(Kernel::Linear.eval(&a, &b), 11.0);
        let poly = Kernel::Polynomial { degree: 2, gamma: 1.0, coef0: 1.0 };
        assert_eq!(poly.eval(&a, &b), 144.0);
        let rbf = Kernel::Rbf { gamma: 0.5 };
        assert!((rbf.eval(&a, &a) - 1.0).abs() < 1e-12);
        assert!(rbf.eval(&a, &b) < 1.0);
    }
}
