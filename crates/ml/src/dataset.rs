//! Datasets and evaluation utilities for the classifiers.

use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled dataset: feature vectors and binary/multiclass labels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dataset from parallel feature and label vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or feature dimensions
    /// are inconsistent.
    pub fn from_parts(features: Vec<Vec<f64>>, labels: Vec<usize>) -> Self {
        assert_eq!(features.len(), labels.len(), "features and labels must align");
        if let Some(first) = features.first() {
            assert!(
                features.iter().all(|f| f.len() == first.len()),
                "all feature vectors must have the same dimension"
            );
        }
        Self { features, labels }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if the feature dimension differs from existing samples.
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        if let Some(first) = self.features.first() {
            assert_eq!(first.len(), features.len(), "inconsistent feature dimension");
        }
        self.features.push(features);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimension (0 for an empty dataset).
    pub fn dimension(&self) -> usize {
        self.features.first().map(|f| f.len()).unwrap_or(0)
    }

    /// The feature vectors.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of samples carrying `label`.
    pub fn count_label(&self, label: usize) -> usize {
        self.labels.iter().filter(|&&l| l == label).count()
    }

    /// Splits the dataset into a training and validation set, withholding
    /// `holdout` (0..1) of the samples for validation, after shuffling.
    pub fn split(&self, holdout: f64, rng: &mut impl Rng) -> (Dataset, Dataset) {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        indices.shuffle(rng);
        let n_val = ((self.len() as f64) * holdout.clamp(0.0, 1.0)).round() as usize;
        let (val_idx, train_idx) = indices.split_at(n_val.min(self.len()));
        let subset = |idx: &[usize]| Dataset {
            features: idx.iter().map(|&i| self.features[i].clone()).collect(),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
        };
        (subset(train_idx), subset(val_idx))
    }
}

/// Per-feature standardisation (z-scoring) fitted on a training set.
///
/// Kernel methods are sensitive to feature scales; the attack's PSD features
/// mix counts, ratios and fractions, so they are standardised before being
/// handed to the SVM.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits the standardiser to a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit a standardiser to an empty dataset");
        let dim = data.dimension();
        let n = data.len() as f64;
        let mut means = vec![0.0; dim];
        for f in data.features() {
            for (m, v) in means.iter_mut().zip(f) {
                *m += v / n;
            }
        }
        let mut stds = vec![0.0; dim];
        for f in data.features() {
            for ((s, v), m) in stds.iter_mut().zip(f).zip(&means) {
                *s += (v - m) * (v - m) / n;
            }
        }
        for s in &mut stds {
            *s = s.sqrt().max(1e-9);
        }
        Self { means, stds }
    }

    /// Standardises one feature vector.
    pub fn transform(&self, features: &[f64]) -> Vec<f64> {
        features
            .iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Standardises a whole dataset, preserving labels.
    pub fn transform_dataset(&self, data: &Dataset) -> Dataset {
        Dataset::from_parts(
            data.features().iter().map(|f| self.transform(f)).collect(),
            data.labels().to_vec(),
        )
    }
}

/// A binary-classification confusion matrix (label 1 = positive).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Tallies predictions against ground-truth labels.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_predictions(truth: &[usize], predicted: &[usize]) -> Self {
        assert_eq!(truth.len(), predicted.len());
        let mut m = Self::default();
        for (&t, &p) in truth.iter().zip(predicted) {
            match (t != 0, p != 0) {
                (true, true) => m.tp += 1,
                (false, true) => m.fp += 1,
                (false, false) => m.tn += 1,
                (true, false) => m.fn_ += 1,
            }
        }
        m
    }

    /// Fraction of all samples classified correctly.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / total as f64
    }

    /// False-positive rate: FP / (FP + TN).
    pub fn false_positive_rate(&self) -> f64 {
        let negatives = self.fp + self.tn;
        if negatives == 0 {
            0.0
        } else {
            self.fp as f64 / negatives as f64
        }
    }

    /// False-negative rate: FN / (FN + TP).
    pub fn false_negative_rate(&self) -> f64 {
        let positives = self.fn_ + self.tp;
        if positives == 0 {
            0.0
        } else {
            self.fn_ as f64 / positives as f64
        }
    }

    /// Precision: TP / (TP + FP).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall: TP / (TP + FN).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn dataset_push_and_counts() {
        let mut d = Dataset::new();
        d.push(vec![1.0, 2.0], 1);
        d.push(vec![3.0, 4.0], 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.dimension(), 2);
        assert_eq!(d.count_label(1), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn split_preserves_all_samples() {
        let features: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let d = Dataset::from_parts(features, labels);
        let mut rng = SmallRng::seed_from_u64(1);
        let (train, val) = d.split(0.3, &mut rng);
        assert_eq!(train.len() + val.len(), 100);
        assert_eq!(val.len(), 30);
    }

    #[test]
    fn confusion_matrix_metrics() {
        let truth = vec![1, 1, 0, 0, 1, 0];
        let pred = vec![1, 0, 0, 1, 1, 0];
        let m = ConfusionMatrix::from_predictions(&truth, &pred);
        assert_eq!(m.tp, 2);
        assert_eq!(m.fn_, 1);
        assert_eq!(m.fp, 1);
        assert_eq!(m.tn, 2);
        assert!((m.accuracy() - 4.0 / 6.0).abs() < 1e-12);
        assert!((m.false_negative_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.false_positive_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_safe() {
        let m = ConfusionMatrix::default();
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.false_positive_rate(), 0.0);
        assert_eq!(m.false_negative_rate(), 0.0);
    }

    #[test]
    fn standardizer_zero_means_unit_stds() {
        let features: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, 1000.0 + 10.0 * i as f64]).collect();
        let labels = vec![0; 50];
        let d = Dataset::from_parts(features, labels);
        let s = Standardizer::fit(&d);
        let t = s.transform_dataset(&d);
        for dim in 0..2 {
            let vals: Vec<f64> = t.features().iter().map(|f| f[dim]).collect();
            let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
            let var: f64 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-9);
            assert!((var - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn standardizer_handles_constant_features() {
        let d = Dataset::from_parts(vec![vec![5.0], vec![5.0]], vec![0, 1]);
        let s = Standardizer::fit(&d);
        let t = s.transform(&[5.0]);
        assert!(t[0].is_finite());
    }

    #[test]
    #[should_panic]
    fn mismatched_dimensions_panic() {
        let mut d = Dataset::new();
        d.push(vec![1.0], 0);
        d.push(vec![1.0, 2.0], 1);
    }
}
