//! # llc-ml
//!
//! Small, dependency-free implementations of the classical machine-learning
//! models the paper uses during target-set identification and nonce
//! extraction (Sections 7.2–7.3):
//!
//! * a soft-margin **kernel SVM** trained with sequential minimal
//!   optimisation — the paper trains a polynomial-kernel SVM on the PSD of
//!   each access trace to recognise the victim's target SF set;
//! * **decision trees** and a bagged **random forest** — the paper uses a
//!   random forest to label detected accesses as Montgomery-ladder iteration
//!   boundaries;
//! * dataset handling and confusion-matrix evaluation utilities.
//!
//! ## Quick example
//!
//! ```
//! use llc_ml::{Dataset, Svm, SvmConfig, Kernel};
//!
//! let mut data = Dataset::new();
//! for i in 0..40 {
//!     let x = i as f64 / 10.0;
//!     data.push(vec![x], usize::from(x > 2.0));
//! }
//! let svm = Svm::train(&data, &SvmConfig { kernel: Kernel::Linear, ..Default::default() });
//! assert_eq!(svm.predict(&[3.5]), 1);
//! assert_eq!(svm.predict(&[0.5]), 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dataset;
mod svm;
mod tree;

pub use dataset::{ConfusionMatrix, Dataset, Standardizer};
pub use svm::{Kernel, Svm, SvmConfig};
pub use tree::{DecisionTree, ForestConfig, RandomForest, TreeConfig};
