//! Decision trees and random forests.
//!
//! The paper trains a random-forest classifier to decide whether a detected
//! memory access corresponds to a Montgomery-ladder iteration boundary
//! (Section 7.3). This module provides a CART-style decision tree (Gini
//! impurity, axis-aligned splits) and a bagged random forest with feature
//! subsampling.

use crate::dataset::Dataset;
use rand::Rng;

/// Hyper-parameters of a decision tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum number of samples required to split a node.
    pub min_samples_split: usize,
    /// Number of candidate features examined per split (`None` = all).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 12, min_samples_split: 4, max_features: None }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        label: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A CART decision tree classifier.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    num_classes: usize,
}

fn gini(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total as f64;
            p * p
        })
        .sum::<f64>()
}

fn majority(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl DecisionTree {
    /// Trains a decision tree on `data`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train(data: &Dataset, config: &TreeConfig, rng: &mut impl Rng) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let num_classes = data.labels().iter().copied().max().unwrap_or(0) + 1;
        let indices: Vec<usize> = (0..data.len()).collect();
        let root = Self::build(data, &indices, config, num_classes, 0, rng);
        Self { root, num_classes }
    }

    fn class_counts(data: &Dataset, indices: &[usize], num_classes: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_classes];
        for &i in indices {
            counts[data.labels()[i]] += 1;
        }
        counts
    }

    fn build(
        data: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        num_classes: usize,
        depth: usize,
        rng: &mut impl Rng,
    ) -> Node {
        let counts = Self::class_counts(data, indices, num_classes);
        let label = majority(&counts);
        if depth >= config.max_depth
            || indices.len() < config.min_samples_split
            || gini(&counts) == 0.0
        {
            return Node::Leaf { label };
        }

        let dim = data.dimension();
        let n_features = config.max_features.unwrap_or(dim).clamp(1, dim);
        // Sample candidate features without replacement.
        let mut features: Vec<usize> = (0..dim).collect();
        for i in 0..n_features {
            let j = rng.gen_range(i..dim);
            features.swap(i, j);
        }
        let features = &features[..n_features];

        let parent_gini = gini(&counts);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, impurity)
        for &f in features {
            let mut values: Vec<f64> = indices.iter().map(|&i| data.features()[i][f]).collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            // Candidate thresholds: midpoints between consecutive distinct values.
            for w in values.windows(2) {
                let threshold = (w[0] + w[1]) / 2.0;
                let (mut lc, mut rc) = (vec![0usize; num_classes], vec![0usize; num_classes]);
                for &i in indices {
                    if data.features()[i][f] <= threshold {
                        lc[data.labels()[i]] += 1;
                    } else {
                        rc[data.labels()[i]] += 1;
                    }
                }
                let ln: usize = lc.iter().sum();
                let rn: usize = rc.iter().sum();
                if ln == 0 || rn == 0 {
                    continue;
                }
                let weighted = (ln as f64 * gini(&lc) + rn as f64 * gini(&rc)) / indices.len() as f64;
                if best.map(|(_, _, b)| weighted < b).unwrap_or(weighted < parent_gini) {
                    best = Some((f, threshold, weighted));
                }
            }
        }

        match best {
            None => Node::Leaf { label },
            Some((feature, threshold, _)) => {
                let left_idx: Vec<usize> = indices
                    .iter()
                    .copied()
                    .filter(|&i| data.features()[i][feature] <= threshold)
                    .collect();
                let right_idx: Vec<usize> = indices
                    .iter()
                    .copied()
                    .filter(|&i| data.features()[i][feature] > threshold)
                    .collect();
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(Self::build(data, &left_idx, config, num_classes, depth + 1, rng)),
                    right: Box::new(Self::build(data, &right_idx, config, num_classes, depth + 1, rng)),
                }
            }
        }
    }

    /// Predicts the class label of a feature vector.
    pub fn predict(&self, features: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label } => return *label,
                Node::Split { feature, threshold, left, right } => {
                    node = if features[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Number of classes seen during training.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

/// Hyper-parameters of a random forest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    /// Number of trees.
    pub num_trees: usize,
    /// Per-tree configuration; `max_features` defaults to √dim when `None`.
    pub tree: TreeConfig,
    /// RNG seed for bagging and feature sampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            num_trees: 25,
            tree: TreeConfig { max_depth: 12, min_samples_split: 4, max_features: None },
            seed: 0xf0_7e57,
        }
    }
}

/// A bagged random-forest classifier.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    num_classes: usize,
}

impl RandomForest {
    /// Trains a random forest on `data`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `num_trees` is zero.
    pub fn train(data: &Dataset, config: &ForestConfig) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        assert!(config.num_trees > 0, "a forest needs at least one tree");
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let num_classes = data.labels().iter().copied().max().unwrap_or(0) + 1;
        let dim = data.dimension();
        let max_features = config
            .tree
            .max_features
            .unwrap_or_else(|| (dim as f64).sqrt().ceil() as usize)
            .clamp(1, dim.max(1));
        let tree_cfg = TreeConfig { max_features: Some(max_features), ..config.tree };

        let trees = (0..config.num_trees)
            .map(|_| {
                // Bootstrap sample.
                let mut boot = Dataset::new();
                for _ in 0..data.len() {
                    let i = rng.gen_range(0..data.len());
                    boot.push(data.features()[i].clone(), data.labels()[i]);
                }
                DecisionTree::train(&boot, &tree_cfg, &mut rng)
            })
            .collect();
        Self { trees, num_classes }
    }

    /// Predicts by majority vote over the trees.
    pub fn predict(&self, features: &[f64]) -> usize {
        let mut votes = vec![0usize; self.num_classes];
        for tree in &self.trees {
            let p = tree.predict(features);
            if p < votes.len() {
                votes[p] += 1;
            }
        }
        majority(&votes)
    }

    /// Fraction of trees voting for class 1 (useful as a confidence score for
    /// binary problems).
    pub fn positive_fraction(&self, features: &[f64]) -> f64 {
        let positive = self.trees.iter().filter(|t| t.predict(features) == 1).count();
        positive as f64 / self.trees.len() as f64
    }

    /// Majority-vote prediction together with the class-1 vote fraction, in a
    /// single pass over the trees (equivalent to calling [`Self::predict`]
    /// and [`Self::positive_fraction`] separately, at half the cost).
    pub fn predict_with_confidence(&self, features: &[f64]) -> (usize, f64) {
        let mut votes = vec![0usize; self.num_classes];
        for tree in &self.trees {
            let p = tree.predict(features);
            if p < votes.len() {
                votes[p] += 1;
            }
        }
        let positive = votes.get(1).copied().unwrap_or(0);
        (majority(&votes), positive as f64 / self.trees.len() as f64)
    }

    /// Number of trees in the forest.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ConfusionMatrix;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn striped_dataset(n: usize, seed: u64) -> Dataset {
        // Label depends on a threshold over feature 0 and feature 1 jointly.
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut data = Dataset::new();
        for _ in 0..n {
            let x = rng.gen_range(0.0..10.0f64);
            let y = rng.gen_range(0.0..10.0f64);
            let label = usize::from(x > 6.0 || (x > 2.0 && y < 3.0));
            data.push(vec![x, y, rng.gen_range(0.0..1.0)], label);
        }
        data
    }

    #[test]
    fn tree_fits_training_data() {
        let data = striped_dataset(300, 1);
        let mut rng = SmallRng::seed_from_u64(2);
        let tree = DecisionTree::train(&data, &TreeConfig::default(), &mut rng);
        let preds: Vec<usize> = data.features().iter().map(|f| tree.predict(f)).collect();
        let cm = ConfusionMatrix::from_predictions(data.labels(), &preds);
        assert!(cm.accuracy() > 0.97, "train accuracy {}", cm.accuracy());
    }

    #[test]
    fn tree_respects_max_depth() {
        let data = striped_dataset(200, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let stump = DecisionTree::train(
            &data,
            &TreeConfig { max_depth: 1, ..TreeConfig::default() },
            &mut rng,
        );
        // A depth-1 tree cannot be perfect on this data but must beat chance.
        let preds: Vec<usize> = data.features().iter().map(|f| stump.predict(f)).collect();
        let cm = ConfusionMatrix::from_predictions(data.labels(), &preds);
        assert!(cm.accuracy() > 0.6 && cm.accuracy() < 1.0, "accuracy {}", cm.accuracy());
    }

    #[test]
    fn forest_generalises_better_than_chance() {
        let data = striped_dataset(600, 5);
        let mut rng = SmallRng::seed_from_u64(6);
        let (train, val) = data.split(0.3, &mut rng);
        let forest = RandomForest::train(&train, &ForestConfig { num_trees: 15, ..Default::default() });
        let preds: Vec<usize> = val.features().iter().map(|f| forest.predict(f)).collect();
        let cm = ConfusionMatrix::from_predictions(val.labels(), &preds);
        assert!(cm.accuracy() > 0.9, "validation accuracy {}", cm.accuracy());
        assert_eq!(forest.num_trees(), 15);
    }

    #[test]
    fn forest_confidence_is_calibrated_to_extremes() {
        let data = striped_dataset(400, 7);
        let forest = RandomForest::train(&data, &ForestConfig { num_trees: 20, ..Default::default() });
        // A point deep inside the positive region.
        assert!(forest.positive_fraction(&[9.0, 5.0, 0.5]) > 0.8);
        // A point deep inside the negative region.
        assert!(forest.positive_fraction(&[0.5, 8.0, 0.5]) < 0.2);
    }

    #[test]
    fn predict_with_confidence_matches_separate_calls() {
        let data = striped_dataset(300, 11);
        let forest = RandomForest::train(&data, &ForestConfig { num_trees: 15, ..Default::default() });
        for sample in [[9.0, 5.0, 0.5], [0.5, 8.0, 0.5], [4.0, 2.0, 0.2], [6.1, 2.9, 0.9]] {
            let (label, fraction) = forest.predict_with_confidence(&sample);
            assert_eq!(label, forest.predict(&sample));
            assert_eq!(fraction, forest.positive_fraction(&sample));
        }
    }

    #[test]
    fn multiclass_labels_supported() {
        let mut data = Dataset::new();
        for i in 0..120 {
            let x = (i % 3) as f64 * 5.0 + (i as f64 * 0.01);
            data.push(vec![x], i % 3);
        }
        let mut rng = SmallRng::seed_from_u64(8);
        let tree = DecisionTree::train(&data, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.num_classes(), 3);
        assert_eq!(tree.predict(&[0.1]), 0);
        assert_eq!(tree.predict(&[5.1]), 1);
        assert_eq!(tree.predict(&[10.1]), 2);
    }

    #[test]
    #[should_panic]
    fn empty_dataset_panics() {
        let mut rng = SmallRng::seed_from_u64(9);
        let _ = DecisionTree::train(&Dataset::new(), &TreeConfig::default(), &mut rng);
    }
}
