//! The end-to-end, cross-tenant attack pipeline (Section 7): Step 1 builds SF
//! eviction sets at the victim's page offset, Step 2 identifies the target SF
//! set with PSD + SVM while triggering the victim, Step 3 monitors the
//! target set with Parallel Probing and soft-decodes the ECDSA nonce bits,
//! and Step 4 (`llc-recovery`) corrects the noisy bits and recovers the
//! victim's private key, verified against the public key only.

use crate::extract::{
    decode_bits_soft, score_extraction, BoundaryClassifier, ExtractionConfig, ExtractionScore,
};
use crate::features::FeatureConfig;
use crate::identify::{scan_for_target, ClassifierTrainingConfig, ScanConfig, TraceClassifier};
use llc_ecdsa_victim::{group_order, EcdsaVictim, EcdsaVictimConfig, Scalar, VictimHandle};
use llc_fleet::stream_seed;
use llc_evsets::{
    BinarySearch, BulkBuilder, BulkConfig, GroupTesting, PrimeScope, PruningAlgorithm, Scope,
};
use llc_machine::{Machine, NoiseModel};
use llc_probe::{AccessTrace, Monitor, Strategy};
use llc_recovery::{
    run_campaign, CampaignConfig, ObservedBit, SearchConfig, SignatureObservation,
};
use llc_cache_model::{CacheSpec, SetLocation};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stream tags for the attack pipeline's RNG streams.
///
/// Every random stream the pipeline consumes is derived from the single
/// `AttackConfig::seed` through [`llc_fleet::stream_seed`], which is
/// injective per tag. The previous recipe derived Steps 1–3 from the same
/// `StdRng::seed_from_u64` base with ad-hoc XOR constants — a latent
/// seed-reuse footgun where two streams could collide or end up as shifted
/// copies of each other. The `pinned_stream_derivation` unit test locks the
/// exact derived values so a change to the derivation cannot slip in
/// unnoticed (it would silently re-randomise every experiment).
pub mod streams {
    /// Machine construction: paging lottery, background noise, jitter.
    pub const MACHINE: u64 = u64::from_le_bytes(*b"machine\0");
    /// Step 1: candidate allocation and pruning randomness.
    pub const STEP1: u64 = u64::from_le_bytes(*b"step1\0\0\0");
    /// Step 2: classifier-training trace synthesis and holdout split.
    pub const STEP2: u64 = u64::from_le_bytes(*b"step2\0\0\0");
    /// Step 3: machine noise/jitter stream during nonce extraction.
    pub const STEP3: u64 = u64::from_le_bytes(*b"step3\0\0\0");
}

/// Which address-pruning algorithm Step 1 uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Baseline group testing.
    Gt,
    /// Optimised group testing (no early termination).
    GtOp,
    /// Baseline Prime+Scope.
    Ps,
    /// Optimised Prime+Scope (front recharging).
    PsOp,
    /// The paper's binary-search algorithm.
    BinS,
}

impl Algorithm {
    /// All algorithms in the order used by the paper's tables.
    pub fn all() -> [Algorithm; 5] {
        [Algorithm::Gt, Algorithm::GtOp, Algorithm::Ps, Algorithm::PsOp, Algorithm::BinS]
    }

    /// Instantiates the algorithm.
    pub fn instance(&self) -> Box<dyn PruningAlgorithm> {
        match self {
            Algorithm::Gt => Box::new(GroupTesting::baseline()),
            Algorithm::GtOp => Box::new(GroupTesting::optimized()),
            Algorithm::Ps => Box::new(PrimeScope::baseline()),
            Algorithm::PsOp => Box::new(PrimeScope::optimized()),
            Algorithm::BinS => Box::new(BinarySearch::new()),
        }
    }

    /// The paper's name for the algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Gt => "Gt",
            Algorithm::GtOp => "GtOp",
            Algorithm::Ps => "Ps",
            Algorithm::PsOp => "PsOp",
            Algorithm::BinS => "BinS",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of the end-to-end attack.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Cache hierarchy of the simulated host.
    pub spec: CacheSpec,
    /// Background-tenant noise level.
    pub noise: NoiseModel,
    /// The victim service's parameters.
    pub victim: EcdsaVictimConfig,
    /// Idle gap between victim requests (the service is kept busy by the
    /// attacker's triggering requests).
    pub victim_request_gap: u64,
    /// Pruning algorithm used for eviction-set construction.
    pub algorithm: Algorithm,
    /// Bulk-construction configuration (filtering, per-set budget, sampling).
    pub bulk: BulkConfig,
    /// Scanning configuration for target-set identification.
    pub scan: ScanConfig,
    /// Classifier training parameters.
    pub classifier: ClassifierTrainingConfig,
    /// Nonce-extraction parameters.
    pub extraction: ExtractionConfig,
    /// Number of signings to capture in Step 3 (paper: 10).
    pub signatures: usize,
    /// Step 4 (key recovery) parameters.
    pub recovery: RecoveryConfig,
    /// Random seed.
    pub seed: u64,
}

/// Configuration of the Step 4 key-recovery campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryConfig {
    /// Maximum signatures the campaign may consume (Step 3 captures first,
    /// then fresh signings are monitored on demand). `0` disables Step 4;
    /// the phase also requires a `full_crypto` victim — without real
    /// signatures there is no key to recover.
    pub max_signatures: usize,
    /// Alignment-shift hypotheses tried per signature (`0..=max`).
    pub max_alignment_shift: usize,
    /// Budget of the per-signature correction search.
    pub search: SearchConfig,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self { max_signatures: 0, max_alignment_shift: 2, search: SearchConfig::default() }
    }
}

impl Default for AttackConfig {
    fn default() -> Self {
        let victim = EcdsaVictimConfig::default();
        let features = FeatureConfig {
            expected_period_cycles: victim.expected_access_period(),
            ..FeatureConfig::default()
        };
        Self {
            spec: CacheSpec::skylake_sp_cloud(),
            noise: NoiseModel::cloud_run(),
            victim_request_gap: 200_000,
            algorithm: Algorithm::BinS,
            bulk: BulkConfig::default(),
            scan: ScanConfig::default(),
            classifier: ClassifierTrainingConfig { features, ..Default::default() },
            extraction: ExtractionConfig::default(),
            signatures: 10,
            recovery: RecoveryConfig::default(),
            seed: 0xa77ac4,
            victim,
        }
    }
}

impl AttackConfig {
    /// A configuration sized for fast tests: the tiny cache hierarchy, a
    /// short-nonce victim and a handful of signatures.
    pub fn fast_test() -> Self {
        let victim = EcdsaVictimConfig::fast_test();
        let mut config = Self {
            spec: CacheSpec::tiny_test(),
            noise: NoiseModel::quiescent_local(),
            victim_request_gap: 50_000,
            signatures: 3,
            ..Self::default()
        };
        config.classifier.features.expected_period_cycles = victim.expected_access_period();
        config.classifier.positive_traces = 60;
        config.classifier.negative_traces = 100;
        config.classifier.trace_cycles = 400_000;
        config.scan.trace_cycles = 400_000;
        config.scan.timeout_cycles = 400_000_000;
        config.extraction.iteration_cycles = victim.iteration_cycles;
        config.victim = victim;
        config
    }

    /// [`AttackConfig::fast_test`] with real crypto and Step 4 enabled: the
    /// victim signs with scaled (64-bit) nonces and the campaign corrects
    /// decoded bits until the private key verifies against the public key.
    pub fn fast_key_recovery() -> Self {
        let mut config = Self::fast_test();
        config.victim.full_crypto = true;
        config.recovery = RecoveryConfig {
            max_signatures: 8,
            max_alignment_shift: 1,
            search: SearchConfig { max_candidates: 300, max_flips: 2 },
        };
        config
    }
}

/// Step 1 report: eviction-set construction.
#[derive(Debug, Clone)]
pub struct EvsetPhase {
    /// Eviction sets constructed, keyed by target address.
    pub sets_built: usize,
    /// Target addresses attempted.
    pub attempted: usize,
    /// Success rate over attempted sets.
    pub success_rate: f64,
    /// Simulated cycles spent.
    pub cycles: u64,
}

/// Step 2 report: target-set identification.
#[derive(Debug, Clone)]
pub struct IdentifyPhase {
    /// Whether a target set was identified.
    pub identified: bool,
    /// Whether the identified set is truly the victim's target set
    /// (oracle-validated, as in the paper's ground-truth checks).
    pub correct: bool,
    /// Simulated cycles spent scanning.
    pub cycles: u64,
    /// Traces collected during the scan.
    pub traces: u64,
    /// Sets scanned per second of simulated time.
    pub scan_rate_per_s: f64,
}

/// Step 3 report: nonce extraction.
#[derive(Debug, Clone)]
pub struct ExtractPhase {
    /// Per-signing extraction scores.
    pub scores: Vec<ExtractionScore>,
    /// Simulated cycles spent monitoring.
    pub cycles: u64,
}

impl ExtractPhase {
    /// Median fraction of nonce bits recovered across signings.
    pub fn median_recovered_fraction(&self) -> f64 {
        if self.scores.is_empty() {
            return 0.0;
        }
        let mut fracs: Vec<f64> = self.scores.iter().map(|s| s.recovered_fraction()).collect();
        fracs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        fracs[fracs.len() / 2]
    }

    /// Mean bit error rate across signings.
    pub fn mean_bit_error_rate(&self) -> f64 {
        if self.scores.is_empty() {
            return 0.0;
        }
        self.scores.iter().map(|s| s.bit_error_rate()).sum::<f64>() / self.scores.len() as f64
    }
}

/// Step 4 report: key recovery from the decoded nonce bits.
#[derive(Debug, Clone)]
pub struct RecoveryPhase {
    /// The recovered private key, verified against the victim's *public*
    /// key only. `None` when every observed signature stayed beyond the
    /// correction budget.
    pub recovered_key: Option<Scalar>,
    /// Oracle validation: whether the recovered key is bit-for-bit the
    /// victim's ground-truth private key (it always is when `recovered_key`
    /// is `Some` — public-key verification admits no false positives — but
    /// the report states it explicitly, like [`IdentifyPhase::correct`]).
    pub matches_ground_truth: bool,
    /// Signatures observed (Step 3 captures plus fresh monitoring).
    pub signatures_observed: usize,
    /// 1-based index of the signature that broke, if any.
    pub signatures_needed: Option<usize>,
    /// Correction-search candidates examined across all attempts.
    pub candidates_examined: u64,
    /// Candidates submitted to public-key verification.
    pub candidates_tested: u64,
    /// Known-bit flips the successful candidate needed.
    pub flips: Option<usize>,
    /// Simulated cycles spent in the phase (additional monitoring).
    pub cycles: u64,
    /// Host wall-clock milliseconds spent in the phase (search included).
    pub wall_ms: f64,
}

/// The complete end-to-end attack report (Section 7.3).
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Step 1 results.
    pub evset: EvsetPhase,
    /// Step 2 results.
    pub identify: IdentifyPhase,
    /// Step 3 results.
    pub extract: ExtractPhase,
    /// Step 4 results (`None` when recovery is disabled or Steps 1–3 left
    /// nothing to attack).
    pub recovery: Option<RecoveryPhase>,
    /// Total simulated cycles of the whole attack.
    pub total_cycles: u64,
    /// Machine frequency used to convert cycles to seconds.
    pub freq_ghz: f64,
}

impl AttackReport {
    /// Total attack time in seconds of simulated time.
    pub fn total_seconds(&self) -> f64 {
        self.total_cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// True if the attack recovered a usable share of the nonce bits from at
    /// least one signing.
    pub fn succeeded(&self) -> bool {
        self.identify.correct && self.extract.median_recovered_fraction() > 0.5
    }
}

/// The end-to-end attack driver.
#[derive(Debug)]
pub struct EndToEndAttack {
    config: AttackConfig,
}

impl EndToEndAttack {
    /// Creates an attack driver for `config`.
    pub fn new(config: AttackConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// Runs the complete attack and returns the report.
    pub fn run(&self) -> AttackReport {
        let cfg = &self.config;
        let mut machine = Machine::builder(cfg.spec.clone())
            .noise(cfg.noise.clone())
            .seed(stream_seed(cfg.seed, streams::MACHINE))
            .build();
        let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, streams::STEP1));

        // Install the co-located victim service. It serves requests
        // back-to-back, driven by the attacker's triggering requests.
        let (victim, handle) = EcdsaVictim::new(cfg.victim.clone());
        machine.install_victim(Box::new(victim), true, cfg.victim_request_gap);
        let layout = handle
            .lock()
            .expect("victim log available")
            .layout
            .clone()
            .expect("victim setup ran");
        let target_offset = layout.target_page_offset();
        let true_target: SetLocation = machine.oracle_victim_location(layout.branch_line);

        let start = machine.now();

        // ---- Step 1: eviction sets at the target page offset --------------
        let algorithm = cfg.algorithm.instance();
        let bulk_cfg = BulkConfig { page_offset: target_offset, ..cfg.bulk.clone() };
        let builder = BulkBuilder::new(algorithm.as_ref(), bulk_cfg);
        let bulk = builder
            .run(&mut machine, Scope::PageOffset, &mut rng)
            .expect("bulk construction must at least start");
        let evset_phase = EvsetPhase {
            sets_built: bulk.successes,
            attempted: bulk.attempted,
            success_rate: bulk.success_rate(),
            cycles: bulk.total_cycles,
        };

        // ---- Step 2: identify the target SF set ---------------------------
        // The training seed folds the user's `classifier.seed` into the
        // derived STEP2 stream (injective in both), so classifier-training
        // sensitivity experiments still see their configured seed while
        // distinct attack seeds still train on distinct streams.
        let classifier_cfg = ClassifierTrainingConfig {
            seed: stream_seed(stream_seed(cfg.seed, streams::STEP2), cfg.classifier.seed),
            ..cfg.classifier.clone()
        };
        let classifier = TraceClassifier::train(&classifier_cfg);
        let identify_start = machine.now();
        let scan = scan_for_target(&mut machine, &bulk.eviction_sets, &classifier, &cfg.scan);
        let correct = scan
            .identified_ta
            .map(|ta| machine.oracle_attacker_location(ta) == true_target)
            .unwrap_or(false);
        let identify_phase = IdentifyPhase {
            identified: scan.identified.is_some(),
            correct,
            cycles: machine.now() - identify_start,
            traces: scan.traces_collected,
            scan_rate_per_s: scan.scan_rate_per_s,
        };

        // ---- Step 3: monitor the target set and extract nonce bits --------
        // Give Step 3 its own noise/jitter stream: without this, the
        // machine-RNG position Step 3 observes depends on exactly how many
        // draws Steps 1–2 consumed, coupling the phases for no reason.
        machine.reseed(stream_seed(cfg.seed, streams::STEP3));
        let extract_start = machine.now();
        let step3 = if let Some(idx) = scan.identified {
            self.extract_nonces(&mut machine, &bulk.eviction_sets[idx].1, &handle)
        } else {
            Step3Output::default()
        };
        let extract_phase =
            ExtractPhase { scores: step3.scores, cycles: machine.now() - extract_start };

        // ---- Step 4: correct the decoded bits and recover the key ---------
        let recovery = match (scan.identified, step3.classifier) {
            (Some(idx), Some(classifier)) if cfg.recovery.max_signatures > 0 => self
                .recover_key(
                    &mut machine,
                    &bulk.eviction_sets[idx].1,
                    &handle,
                    &classifier,
                    step3.observations,
                ),
            _ => None,
        };

        AttackReport {
            evset: evset_phase,
            identify: identify_phase,
            extract: extract_phase,
            recovery,
            total_cycles: machine.now() - start,
            freq_ghz: cfg.spec.freq_ghz,
        }
    }

    /// Step 3: collect traces covering `signatures` victim signings and
    /// decode their nonce bits, scoring each against the victim's ground
    /// truth (the paper's validation instrumentation). Besides the scores,
    /// the output carries the trained boundary classifier and — for
    /// full-crypto victims — one soft-decoded [`SignatureObservation`] per
    /// captured signing, which Step 4 consumes.
    fn extract_nonces(
        &self,
        machine: &mut Machine,
        eviction_set: &llc_evsets::EvictionSet,
        handle: &VictimHandle,
    ) -> Step3Output {
        let cfg = &self.config;
        let runs_before = machine.victim_runs() as usize;

        // Estimate one request's duration from the victim configuration.
        let request_cycles = request_cycles(cfg);
        // One extra request's worth of monitoring for the training signing.
        let window = request_cycles * (cfg.signatures as u64 + 2);

        let mut monitor = Monitor::new(Strategy::Parallel, eviction_set.clone());
        let trace = monitor.collect(machine, window);

        // Align ground truth with the monitored window.
        let log = handle.lock().expect("victim log available");
        let run_starts = machine.victim_run_starts().to_vec();
        let mut per_run: Vec<(u64, &llc_ecdsa_victim::RunGroundTruth)> = run_starts
            .iter()
            .copied()
            .zip(log.runs.iter())
            .skip(runs_before)
            .filter(|(start, run)| *start >= trace.start && start + run.duration <= trace.end)
            .collect();
        if per_run.len() > cfg.signatures + 1 {
            per_run.truncate(cfg.signatures + 1);
        }
        if per_run.is_empty() {
            return Step3Output::default();
        }

        // Train the boundary classifier on the first captured signing.
        let (train_start, train_run) = per_run[0];
        let train_trace = slice_trace(&trace, train_start, train_start + train_run.duration);
        let train_boundaries: Vec<u64> =
            train_run.iteration_starts.iter().map(|&o| train_start + o).collect();
        let boundary_classifier =
            BoundaryClassifier::train(&cfg.extraction, &[(&train_trace, &train_boundaries)]);

        // Decode and score the remaining signings.
        let mut output = Step3Output::default();
        for &(run_start, run) in &per_run[1..] {
            let run_trace = slice_trace(&trace, run_start, run_start + run.duration);
            let decoded = decode_run(&run_trace, &boundary_classifier, &cfg.extraction);
            let starts: Vec<u64> =
                run.iteration_starts.iter().map(|&o| run_start + o).collect();
            output.scores.push(score_extraction(
                &decoded,
                &starts,
                &run.nonce_bits,
                &cfg.extraction,
            ));
            if let Some(observation) = soft_observation(run, &decoded) {
                output.observations.push(observation);
            }
        }
        output.classifier = Some(boundary_classifier);
        output
    }

    /// Step 4: run the multi-signature recovery campaign. Step 3's captured
    /// observations are consumed first; once they run out, the campaign
    /// keeps the victim signing and monitors one fresh window per needed
    /// signature on the live machine, until some signature's corrected nonce
    /// verifies against the victim's public key.
    fn recover_key(
        &self,
        machine: &mut Machine,
        eviction_set: &llc_evsets::EvictionSet,
        handle: &VictimHandle,
        classifier: &BoundaryClassifier,
        captured: Vec<SignatureObservation>,
    ) -> Option<RecoveryPhase> {
        let cfg = &self.config;
        // The public key is what the signing service advertises; no ground
        // truth crosses into the campaign.
        let public = handle.lock().expect("victim log available").key_pair.as_ref()?.public().to_owned();

        let nonce_width = cfg.victim.nonce_bits.min(group_order().bit_length());
        let campaign_cfg = CampaignConfig {
            ladder_bits: nonce_width.saturating_sub(1),
            iteration_cycles: cfg.extraction.iteration_cycles,
            max_signatures: cfg.recovery.max_signatures,
            max_alignment_shift: cfg.recovery.max_alignment_shift,
            search: cfg.recovery.search,
        };

        let phase_start = machine.now();
        let mut captured = captured.into_iter();
        let mut consumed_runs = machine.victim_runs() as usize;
        let window = request_cycles(cfg) * 2;
        let report = run_campaign(&campaign_cfg, &public, |_| {
            if let Some(observation) = captured.next() {
                return Some(observation);
            }
            // Monitor fresh signing windows on the live machine. One window
            // can miss a complete signing (iteration jitter stretches runs
            // past the estimate), and a `None` here ends the whole campaign
            // — so retry a few windows before giving up the budget.
            for _ in 0..3 {
                if let Some(capture) =
                    capture_signing_run(machine, eviction_set, handle, window, consumed_runs)
                {
                    consumed_runs = capture.consumed_runs;
                    let decoded = decode_run(&capture.trace, classifier, &cfg.extraction);
                    // A missing transcript means a schedule-only victim;
                    // retrying cannot fix that.
                    let mut observation = soft_observation(&capture.run, &decoded)?;
                    observation.sim_cycles = capture.cycles;
                    return Some(observation);
                }
            }
            None
        });

        let ground_truth = handle
            .lock()
            .expect("victim log available")
            .key_pair
            .as_ref()
            .map(|k| *k.private());
        let recovered = report.recovered;
        Some(RecoveryPhase {
            matches_ground_truth: recovered
                .as_ref()
                .map(|r| Some(r.private) == ground_truth)
                .unwrap_or(false),
            recovered_key: recovered.as_ref().map(|r| r.private),
            signatures_observed: report.signatures_observed,
            signatures_needed: report.signatures_needed,
            candidates_examined: report.candidates_examined,
            candidates_tested: report.candidates_tested,
            flips: recovered.map(|r| r.flips),
            cycles: machine.now() - phase_start,
            wall_ms: report.wall.as_secs_f64() * 1e3,
        })
    }
}

/// Estimated duration of one victim request, including the idle gap.
fn request_cycles(cfg: &AttackConfig) -> u64 {
    cfg.victim.pre_cycles
        + cfg.victim.post_cycles
        + cfg.victim.nonce_bits as u64 * cfg.victim.iteration_cycles
        + cfg.victim_request_gap
}

/// Soft-decodes one signing's trace with the trained boundary classifier.
fn decode_run(
    run_trace: &AccessTrace,
    classifier: &BoundaryClassifier,
    extraction: &ExtractionConfig,
) -> Vec<crate::extract::DecodedBit> {
    let boundaries = classifier.scored_boundaries(run_trace);
    decode_bits_soft(run_trace, &boundaries, extraction)
}

/// Packages one decoded signing as a Step 4 observation. Only full-crypto
/// runs carry the (public) signature components; schedule-only victims
/// return `None`. `sim_cycles` is left at zero for the caller to fill.
pub fn soft_observation(
    run: &llc_ecdsa_victim::RunGroundTruth,
    decoded: &[crate::extract::DecodedBit],
) -> Option<SignatureObservation> {
    let transcript = run.transcript.as_ref()?;
    Some(SignatureObservation {
        signature: transcript.signature,
        hashed_message: transcript.hashed_message,
        observed: decoded
            .iter()
            .map(|d| ObservedBit { at: d.boundary, bit: d.bit, confidence: d.confidence })
            .collect(),
        sim_cycles: 0,
    })
}

/// One fully monitored victim signing, sliced out of a probe trace.
#[derive(Debug, Clone)]
pub struct CapturedSigning {
    /// The detections inside the signing's `[start, start + duration)`.
    pub trace: AccessTrace,
    /// Absolute start cycle of the signing.
    pub run_start: u64,
    /// The signing's ground-truth record (iteration starts for training,
    /// transcript for Step 4).
    pub run: llc_ecdsa_victim::RunGroundTruth,
    /// 1-past the consumed run's index — pass back as `skip_runs` to
    /// capture the next signing.
    pub consumed_runs: usize,
    /// Simulated cycles the monitoring window cost.
    pub cycles: u64,
}

/// Monitors `eviction_set` for one `window` and returns the first victim
/// signing (at or after `skip_runs`) that the window covers completely, or
/// `None` when no signing finished inside it (retry with another window —
/// iteration jitter can stretch a run past any fixed estimate).
///
/// This is the shared run-capture primitive of Step 3/4: the pipeline's
/// recovery phase and `llc-bench`'s fleet-sharded `e2e_key` campaign both
/// build on it, so run-window matching has exactly one implementation.
pub fn capture_signing_run(
    machine: &mut Machine,
    eviction_set: &llc_evsets::EvictionSet,
    handle: &VictimHandle,
    window: u64,
    skip_runs: usize,
) -> Option<CapturedSigning> {
    let before = machine.now();
    let mut monitor = Monitor::new(Strategy::Parallel, eviction_set.clone());
    let trace = monitor.collect(machine, window);
    let cycles = machine.now() - before;
    let log = handle.lock().expect("victim log available");
    let run_starts = machine.victim_run_starts().to_vec();
    let (index, (run_start, run)) = run_starts
        .iter()
        .copied()
        .zip(log.runs.iter())
        .enumerate()
        .skip(skip_runs)
        .find(|(_, (start, run))| *start >= trace.start && start + run.duration <= trace.end)?;
    Some(CapturedSigning {
        trace: slice_trace(&trace, run_start, run_start + run.duration),
        run_start,
        run: run.clone(),
        consumed_runs: index + 1,
        cycles,
    })
}

/// Everything Step 3 hands to the report and to Step 4.
#[derive(Debug, Default)]
struct Step3Output {
    scores: Vec<ExtractionScore>,
    classifier: Option<BoundaryClassifier>,
    observations: Vec<SignatureObservation>,
}

/// Restricts a trace to the detections inside `[start, end)`.
fn slice_trace(trace: &AccessTrace, start: u64, end: u64) -> AccessTrace {
    AccessTrace {
        start,
        end,
        timestamps: trace
            .timestamps
            .iter()
            .copied()
            .filter(|&t| t >= start && t < end)
            .collect(),
        probes: trace.probes,
        primes: trace.primes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the derived RNG streams of the default attack seed. If the
    /// derivation (or a stream tag) changes, every experiment re-randomises;
    /// this test makes that an explicit, reviewed event instead of a silent
    /// one. The four streams must also be pairwise distinct — the seed-reuse
    /// bug this derivation replaced.
    #[test]
    fn pinned_stream_derivation() {
        let seed = AttackConfig::default().seed;
        assert_eq!(seed, 0xa77ac4);
        let derived = [
            stream_seed(seed, streams::MACHINE),
            stream_seed(seed, streams::STEP1),
            stream_seed(seed, streams::STEP2),
            stream_seed(seed, streams::STEP3),
        ];
        assert_eq!(
            derived,
            [
                0xdc9809837a93b73c,
                0x14b5712f4e6f0c4a,
                0x775841021fc5166f,
                0x3a620e029a110201,
            ]
        );
        let unique: std::collections::HashSet<u64> = derived.iter().copied().collect();
        assert_eq!(unique.len(), derived.len(), "streams must never collide");
    }

    #[test]
    fn algorithm_enum_round_trip() {
        assert_eq!(Algorithm::all().len(), 5);
        for a in Algorithm::all() {
            assert_eq!(a.instance().name(), a.name());
            assert_eq!(a.to_string(), a.name());
        }
    }

    #[test]
    fn fast_config_uses_tiny_machine() {
        let cfg = AttackConfig::fast_test();
        assert_eq!(cfg.spec.cores, 3);
        assert!(cfg.victim.nonce_bits < 100);
    }

    #[test]
    fn end_to_end_attack_on_tiny_machine_recovers_nonce_bits() {
        let report = EndToEndAttack::new(AttackConfig::fast_test()).run();
        assert!(report.evset.sets_built >= 1, "step 1 built no eviction sets");
        assert!(report.identify.identified, "step 2 did not identify a target set");
        assert!(report.identify.correct, "step 2 identified the wrong set");
        assert!(!report.extract.scores.is_empty(), "step 3 produced no scores");
        assert!(
            report.extract.median_recovered_fraction() > 0.5,
            "recovered only {:.2} of the nonce bits",
            report.extract.median_recovered_fraction()
        );
        assert!(
            report.extract.mean_bit_error_rate() < 0.2,
            "bit error rate {:.2}",
            report.extract.mean_bit_error_rate()
        );
        assert!(report.succeeded());
        assert!(report.total_seconds() > 0.0);
    }

    #[test]
    fn report_aggregations_handle_empty_results() {
        let phase = ExtractPhase { scores: vec![], cycles: 0 };
        assert_eq!(phase.median_recovered_fraction(), 0.0);
        assert_eq!(phase.mean_bit_error_rate(), 0.0);
    }

    /// The headline claim: the full pipeline — eviction sets, target-set
    /// identification, soft-decision nonce extraction and the Step 4
    /// correction campaign — recovers the victim's exact private key,
    /// verified against the public key only and equal to the ground truth
    /// bit for bit.
    #[test]
    fn end_to_end_attack_recovers_the_exact_private_key() {
        let config = AttackConfig::fast_key_recovery();
        let report = EndToEndAttack::new(config.clone()).run();
        assert!(report.identify.correct, "step 2 must find the target set");
        let recovery = report.recovery.expect("step 4 must run");
        let key = recovery.recovered_key.expect(
            "the campaign must recover the key within its signature budget",
        );
        assert!(recovery.matches_ground_truth, "recovered key must be the ground truth");
        // Cross-check against the victim's real key, derived from its seed.
        let ground_truth = llc_ecdsa_victim::KeyPair::generate(
            llc_ecdsa_victim::Ecdsa::new().curve(),
            &mut StdRng::seed_from_u64(config.victim.key_seed),
        );
        assert_eq!(&key, ground_truth.private(), "bit-for-bit equality with the real key");
        assert!(recovery.signatures_needed.is_some());
        assert!(recovery.signatures_observed <= config.recovery.max_signatures);
        assert!(recovery.candidates_tested >= 1);
    }

    #[test]
    fn recovery_is_disabled_by_default_and_without_full_crypto() {
        // Default config: max_signatures = 0 → no Step 4, reports stay as
        // before.
        let report = EndToEndAttack::new(AttackConfig::fast_test()).run();
        assert!(report.recovery.is_none());

        // Recovery *enabled* but the victim is schedule-only (no real
        // signatures): Step 4 must decline gracefully, not panic.
        let mut config = AttackConfig::fast_test();
        config.recovery.max_signatures = 2;
        assert!(!config.victim.full_crypto);
        let report = EndToEndAttack::new(config).run();
        assert!(
            report.recovery.is_none(),
            "a schedule-only victim has no key to recover, so the phase must opt out"
        );
    }
}
