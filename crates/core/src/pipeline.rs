//! The end-to-end, cross-tenant attack pipeline (Section 7): Step 1 builds SF
//! eviction sets at the victim's page offset, Step 2 identifies the target SF
//! set with PSD + SVM while triggering the victim, and Step 3 monitors the
//! target set with Parallel Probing and decodes the ECDSA nonce bits.

use crate::extract::{
    decode_bits, score_extraction, BoundaryClassifier, ExtractionConfig, ExtractionScore,
};
use crate::features::FeatureConfig;
use crate::identify::{scan_for_target, ClassifierTrainingConfig, ScanConfig, TraceClassifier};
use llc_ecdsa_victim::{EcdsaVictim, EcdsaVictimConfig, VictimHandle};
use llc_fleet::stream_seed;
use llc_evsets::{
    BinarySearch, BulkBuilder, BulkConfig, GroupTesting, PrimeScope, PruningAlgorithm, Scope,
};
use llc_machine::{Machine, NoiseModel};
use llc_probe::{AccessTrace, Monitor, Strategy};
use llc_cache_model::{CacheSpec, SetLocation};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stream tags for the attack pipeline's RNG streams.
///
/// Every random stream the pipeline consumes is derived from the single
/// `AttackConfig::seed` through [`llc_fleet::stream_seed`], which is
/// injective per tag. The previous recipe derived Steps 1–3 from the same
/// `StdRng::seed_from_u64` base with ad-hoc XOR constants — a latent
/// seed-reuse footgun where two streams could collide or end up as shifted
/// copies of each other. The `pinned_stream_derivation` unit test locks the
/// exact derived values so a change to the derivation cannot slip in
/// unnoticed (it would silently re-randomise every experiment).
pub mod streams {
    /// Machine construction: paging lottery, background noise, jitter.
    pub const MACHINE: u64 = u64::from_le_bytes(*b"machine\0");
    /// Step 1: candidate allocation and pruning randomness.
    pub const STEP1: u64 = u64::from_le_bytes(*b"step1\0\0\0");
    /// Step 2: classifier-training trace synthesis and holdout split.
    pub const STEP2: u64 = u64::from_le_bytes(*b"step2\0\0\0");
    /// Step 3: machine noise/jitter stream during nonce extraction.
    pub const STEP3: u64 = u64::from_le_bytes(*b"step3\0\0\0");
}

/// Which address-pruning algorithm Step 1 uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Baseline group testing.
    Gt,
    /// Optimised group testing (no early termination).
    GtOp,
    /// Baseline Prime+Scope.
    Ps,
    /// Optimised Prime+Scope (front recharging).
    PsOp,
    /// The paper's binary-search algorithm.
    BinS,
}

impl Algorithm {
    /// All algorithms in the order used by the paper's tables.
    pub fn all() -> [Algorithm; 5] {
        [Algorithm::Gt, Algorithm::GtOp, Algorithm::Ps, Algorithm::PsOp, Algorithm::BinS]
    }

    /// Instantiates the algorithm.
    pub fn instance(&self) -> Box<dyn PruningAlgorithm> {
        match self {
            Algorithm::Gt => Box::new(GroupTesting::baseline()),
            Algorithm::GtOp => Box::new(GroupTesting::optimized()),
            Algorithm::Ps => Box::new(PrimeScope::baseline()),
            Algorithm::PsOp => Box::new(PrimeScope::optimized()),
            Algorithm::BinS => Box::new(BinarySearch::new()),
        }
    }

    /// The paper's name for the algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Gt => "Gt",
            Algorithm::GtOp => "GtOp",
            Algorithm::Ps => "Ps",
            Algorithm::PsOp => "PsOp",
            Algorithm::BinS => "BinS",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of the end-to-end attack.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// Cache hierarchy of the simulated host.
    pub spec: CacheSpec,
    /// Background-tenant noise level.
    pub noise: NoiseModel,
    /// The victim service's parameters.
    pub victim: EcdsaVictimConfig,
    /// Idle gap between victim requests (the service is kept busy by the
    /// attacker's triggering requests).
    pub victim_request_gap: u64,
    /// Pruning algorithm used for eviction-set construction.
    pub algorithm: Algorithm,
    /// Bulk-construction configuration (filtering, per-set budget, sampling).
    pub bulk: BulkConfig,
    /// Scanning configuration for target-set identification.
    pub scan: ScanConfig,
    /// Classifier training parameters.
    pub classifier: ClassifierTrainingConfig,
    /// Nonce-extraction parameters.
    pub extraction: ExtractionConfig,
    /// Number of signings to capture in Step 3 (paper: 10).
    pub signatures: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        let victim = EcdsaVictimConfig::default();
        let features = FeatureConfig {
            expected_period_cycles: victim.expected_access_period(),
            ..FeatureConfig::default()
        };
        Self {
            spec: CacheSpec::skylake_sp_cloud(),
            noise: NoiseModel::cloud_run(),
            victim_request_gap: 200_000,
            algorithm: Algorithm::BinS,
            bulk: BulkConfig::default(),
            scan: ScanConfig::default(),
            classifier: ClassifierTrainingConfig { features, ..Default::default() },
            extraction: ExtractionConfig::default(),
            signatures: 10,
            seed: 0xa77ac4,
            victim,
        }
    }
}

impl AttackConfig {
    /// A configuration sized for fast tests: the tiny cache hierarchy, a
    /// short-nonce victim and a handful of signatures.
    pub fn fast_test() -> Self {
        let victim = EcdsaVictimConfig::fast_test();
        let mut config = Self {
            spec: CacheSpec::tiny_test(),
            noise: NoiseModel::quiescent_local(),
            victim_request_gap: 50_000,
            signatures: 3,
            ..Self::default()
        };
        config.classifier.features.expected_period_cycles = victim.expected_access_period();
        config.classifier.positive_traces = 60;
        config.classifier.negative_traces = 100;
        config.classifier.trace_cycles = 400_000;
        config.scan.trace_cycles = 400_000;
        config.scan.timeout_cycles = 400_000_000;
        config.extraction.iteration_cycles = victim.iteration_cycles;
        config.victim = victim;
        config
    }
}

/// Step 1 report: eviction-set construction.
#[derive(Debug, Clone)]
pub struct EvsetPhase {
    /// Eviction sets constructed, keyed by target address.
    pub sets_built: usize,
    /// Target addresses attempted.
    pub attempted: usize,
    /// Success rate over attempted sets.
    pub success_rate: f64,
    /// Simulated cycles spent.
    pub cycles: u64,
}

/// Step 2 report: target-set identification.
#[derive(Debug, Clone)]
pub struct IdentifyPhase {
    /// Whether a target set was identified.
    pub identified: bool,
    /// Whether the identified set is truly the victim's target set
    /// (oracle-validated, as in the paper's ground-truth checks).
    pub correct: bool,
    /// Simulated cycles spent scanning.
    pub cycles: u64,
    /// Traces collected during the scan.
    pub traces: u64,
    /// Sets scanned per second of simulated time.
    pub scan_rate_per_s: f64,
}

/// Step 3 report: nonce extraction.
#[derive(Debug, Clone)]
pub struct ExtractPhase {
    /// Per-signing extraction scores.
    pub scores: Vec<ExtractionScore>,
    /// Simulated cycles spent monitoring.
    pub cycles: u64,
}

impl ExtractPhase {
    /// Median fraction of nonce bits recovered across signings.
    pub fn median_recovered_fraction(&self) -> f64 {
        if self.scores.is_empty() {
            return 0.0;
        }
        let mut fracs: Vec<f64> = self.scores.iter().map(|s| s.recovered_fraction()).collect();
        fracs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        fracs[fracs.len() / 2]
    }

    /// Mean bit error rate across signings.
    pub fn mean_bit_error_rate(&self) -> f64 {
        if self.scores.is_empty() {
            return 0.0;
        }
        self.scores.iter().map(|s| s.bit_error_rate()).sum::<f64>() / self.scores.len() as f64
    }
}

/// The complete end-to-end attack report (Section 7.3).
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// Step 1 results.
    pub evset: EvsetPhase,
    /// Step 2 results.
    pub identify: IdentifyPhase,
    /// Step 3 results.
    pub extract: ExtractPhase,
    /// Total simulated cycles of the whole attack.
    pub total_cycles: u64,
    /// Machine frequency used to convert cycles to seconds.
    pub freq_ghz: f64,
}

impl AttackReport {
    /// Total attack time in seconds of simulated time.
    pub fn total_seconds(&self) -> f64 {
        self.total_cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// True if the attack recovered a usable share of the nonce bits from at
    /// least one signing.
    pub fn succeeded(&self) -> bool {
        self.identify.correct && self.extract.median_recovered_fraction() > 0.5
    }
}

/// The end-to-end attack driver.
#[derive(Debug)]
pub struct EndToEndAttack {
    config: AttackConfig,
}

impl EndToEndAttack {
    /// Creates an attack driver for `config`.
    pub fn new(config: AttackConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AttackConfig {
        &self.config
    }

    /// Runs the complete attack and returns the report.
    pub fn run(&self) -> AttackReport {
        let cfg = &self.config;
        let mut machine = Machine::builder(cfg.spec.clone())
            .noise(cfg.noise.clone())
            .seed(stream_seed(cfg.seed, streams::MACHINE))
            .build();
        let mut rng = StdRng::seed_from_u64(stream_seed(cfg.seed, streams::STEP1));

        // Install the co-located victim service. It serves requests
        // back-to-back, driven by the attacker's triggering requests.
        let (victim, handle) = EcdsaVictim::new(cfg.victim.clone());
        machine.install_victim(Box::new(victim), true, cfg.victim_request_gap);
        let layout = handle
            .lock()
            .expect("victim log available")
            .layout
            .clone()
            .expect("victim setup ran");
        let target_offset = layout.target_page_offset();
        let true_target: SetLocation = machine.oracle_victim_location(layout.branch_line);

        let start = machine.now();

        // ---- Step 1: eviction sets at the target page offset --------------
        let algorithm = cfg.algorithm.instance();
        let bulk_cfg = BulkConfig { page_offset: target_offset, ..cfg.bulk.clone() };
        let builder = BulkBuilder::new(algorithm.as_ref(), bulk_cfg);
        let bulk = builder
            .run(&mut machine, Scope::PageOffset, &mut rng)
            .expect("bulk construction must at least start");
        let evset_phase = EvsetPhase {
            sets_built: bulk.successes,
            attempted: bulk.attempted,
            success_rate: bulk.success_rate(),
            cycles: bulk.total_cycles,
        };

        // ---- Step 2: identify the target SF set ---------------------------
        // The training seed folds the user's `classifier.seed` into the
        // derived STEP2 stream (injective in both), so classifier-training
        // sensitivity experiments still see their configured seed while
        // distinct attack seeds still train on distinct streams.
        let classifier_cfg = ClassifierTrainingConfig {
            seed: stream_seed(stream_seed(cfg.seed, streams::STEP2), cfg.classifier.seed),
            ..cfg.classifier.clone()
        };
        let classifier = TraceClassifier::train(&classifier_cfg);
        let identify_start = machine.now();
        let scan = scan_for_target(&mut machine, &bulk.eviction_sets, &classifier, &cfg.scan);
        let correct = scan
            .identified_ta
            .map(|ta| machine.oracle_attacker_location(ta) == true_target)
            .unwrap_or(false);
        let identify_phase = IdentifyPhase {
            identified: scan.identified.is_some(),
            correct,
            cycles: machine.now() - identify_start,
            traces: scan.traces_collected,
            scan_rate_per_s: scan.scan_rate_per_s,
        };

        // ---- Step 3: monitor the target set and extract nonce bits --------
        // Give Step 3 its own noise/jitter stream: without this, the
        // machine-RNG position Step 3 observes depends on exactly how many
        // draws Steps 1–2 consumed, coupling the phases for no reason.
        machine.reseed(stream_seed(cfg.seed, streams::STEP3));
        let extract_start = machine.now();
        let scores = if let Some(idx) = scan.identified {
            self.extract_nonces(&mut machine, &bulk.eviction_sets[idx].1, &handle)
        } else {
            Vec::new()
        };
        let extract_phase = ExtractPhase { scores, cycles: machine.now() - extract_start };

        AttackReport {
            evset: evset_phase,
            identify: identify_phase,
            extract: extract_phase,
            total_cycles: machine.now() - start,
            freq_ghz: cfg.spec.freq_ghz,
        }
    }

    /// Step 3: collect traces covering `signatures` victim signings and
    /// decode their nonce bits, scoring each against the victim's ground
    /// truth (the paper's validation instrumentation).
    fn extract_nonces(
        &self,
        machine: &mut Machine,
        eviction_set: &llc_evsets::EvictionSet,
        handle: &VictimHandle,
    ) -> Vec<ExtractionScore> {
        let cfg = &self.config;
        let runs_before = machine.victim_runs() as usize;

        // Estimate one request's duration from the victim configuration.
        let request_cycles = cfg.victim.pre_cycles
            + cfg.victim.post_cycles
            + cfg.victim.nonce_bits as u64 * cfg.victim.iteration_cycles
            + cfg.victim_request_gap;
        // One extra request's worth of monitoring for the training signing.
        let window = request_cycles * (cfg.signatures as u64 + 2);

        let mut monitor = Monitor::new(Strategy::Parallel, eviction_set.clone());
        let trace = monitor.collect(machine, window);

        // Align ground truth with the monitored window.
        let log = handle.lock().expect("victim log available");
        let run_starts = machine.victim_run_starts().to_vec();
        let mut per_run: Vec<(u64, &llc_ecdsa_victim::RunGroundTruth)> = run_starts
            .iter()
            .copied()
            .zip(log.runs.iter())
            .skip(runs_before)
            .filter(|(start, run)| *start >= trace.start && start + run.duration <= trace.end)
            .collect();
        if per_run.len() > cfg.signatures + 1 {
            per_run.truncate(cfg.signatures + 1);
        }
        if per_run.is_empty() {
            return Vec::new();
        }

        // Train the boundary classifier on the first captured signing.
        let (train_start, train_run) = per_run[0];
        let train_trace = slice_trace(&trace, train_start, train_start + train_run.duration);
        let train_boundaries: Vec<u64> =
            train_run.iteration_starts.iter().map(|&o| train_start + o).collect();
        let boundary_classifier =
            BoundaryClassifier::train(&cfg.extraction, &[(&train_trace, &train_boundaries)]);

        // Decode and score the remaining signings.
        per_run[1..]
            .iter()
            .map(|&(run_start, run)| {
                let run_trace = slice_trace(&trace, run_start, run_start + run.duration);
                let boundaries = boundary_classifier.boundaries(&run_trace);
                let decoded = decode_bits(&run_trace, &boundaries, &cfg.extraction);
                let starts: Vec<u64> =
                    run.iteration_starts.iter().map(|&o| run_start + o).collect();
                score_extraction(&decoded, &starts, &run.nonce_bits, &cfg.extraction)
            })
            .collect()
    }
}

/// Restricts a trace to the detections inside `[start, end)`.
fn slice_trace(trace: &AccessTrace, start: u64, end: u64) -> AccessTrace {
    AccessTrace {
        start,
        end,
        timestamps: trace
            .timestamps
            .iter()
            .copied()
            .filter(|&t| t >= start && t < end)
            .collect(),
        probes: trace.probes,
        primes: trace.primes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the derived RNG streams of the default attack seed. If the
    /// derivation (or a stream tag) changes, every experiment re-randomises;
    /// this test makes that an explicit, reviewed event instead of a silent
    /// one. The four streams must also be pairwise distinct — the seed-reuse
    /// bug this derivation replaced.
    #[test]
    fn pinned_stream_derivation() {
        let seed = AttackConfig::default().seed;
        assert_eq!(seed, 0xa77ac4);
        let derived = [
            stream_seed(seed, streams::MACHINE),
            stream_seed(seed, streams::STEP1),
            stream_seed(seed, streams::STEP2),
            stream_seed(seed, streams::STEP3),
        ];
        assert_eq!(
            derived,
            [
                0xdc9809837a93b73c,
                0x14b5712f4e6f0c4a,
                0x775841021fc5166f,
                0x3a620e029a110201,
            ]
        );
        let unique: std::collections::HashSet<u64> = derived.iter().copied().collect();
        assert_eq!(unique.len(), derived.len(), "streams must never collide");
    }

    #[test]
    fn algorithm_enum_round_trip() {
        assert_eq!(Algorithm::all().len(), 5);
        for a in Algorithm::all() {
            assert_eq!(a.instance().name(), a.name());
            assert_eq!(a.to_string(), a.name());
        }
    }

    #[test]
    fn fast_config_uses_tiny_machine() {
        let cfg = AttackConfig::fast_test();
        assert_eq!(cfg.spec.cores, 3);
        assert!(cfg.victim.nonce_bits < 100);
    }

    #[test]
    fn end_to_end_attack_on_tiny_machine_recovers_nonce_bits() {
        let report = EndToEndAttack::new(AttackConfig::fast_test()).run();
        assert!(report.evset.sets_built >= 1, "step 1 built no eviction sets");
        assert!(report.identify.identified, "step 2 did not identify a target set");
        assert!(report.identify.correct, "step 2 identified the wrong set");
        assert!(!report.extract.scores.is_empty(), "step 3 produced no scores");
        assert!(
            report.extract.median_recovered_fraction() > 0.5,
            "recovered only {:.2} of the nonce bits",
            report.extract.median_recovered_fraction()
        );
        assert!(
            report.extract.mean_bit_error_rate() < 0.2,
            "bit error rate {:.2}",
            report.extract.mean_bit_error_rate()
        );
        assert!(report.succeeded());
        assert!(report.total_seconds() > 0.0);
    }

    #[test]
    fn report_aggregations_handle_empty_results() {
        let phase = ExtractPhase { scores: vec![], cycles: 0 };
        assert_eq!(phase.median_recovered_fraction(), 0.0);
        assert_eq!(phase.mean_bit_error_rate(), 0.0);
    }
}
