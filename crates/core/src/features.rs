//! Feature extraction: turning a Prime+Probe access trace into the PSD-based
//! feature vector the SVM classifies (Section 6.2 / 7.2).

use llc_probe::AccessTrace;
use llc_sigproc::{period_cycles_to_hz, welch_psd, BinnedTrace, PowerSpectrum, WelchConfig};

/// Parameters of the PSD feature extractor.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureConfig {
    /// Bin width used to sample the access trace, in cycles.
    pub bin_cycles: u64,
    /// Machine frequency in GHz (cycles → seconds conversion).
    pub freq_ghz: f64,
    /// Expected period of the victim's accesses to the target set, in cycles
    /// (half the ladder iteration duration; ~4,850 on Cloud Run hosts).
    pub expected_period_cycles: u64,
    /// Welch segment length.
    pub segment_len: usize,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        Self { bin_cycles: 600, freq_ghz: 2.0, expected_period_cycles: 4_850, segment_len: 256 }
    }
}

impl FeatureConfig {
    /// The expected fundamental frequency of the victim signal in Hz
    /// (≈0.41 MHz for the paper's parameters).
    pub fn expected_frequency_hz(&self) -> f64 {
        period_cycles_to_hz(self.expected_period_cycles, self.freq_ghz)
    }

    /// Number of features produced per trace.
    pub const NUM_FEATURES: usize = 8;

    /// Computes the PSD of an access trace.
    pub fn power_spectrum(&self, trace: &AccessTrace) -> PowerSpectrum {
        let binned = BinnedTrace::from_timestamps(
            &trace.timestamps,
            trace.start,
            trace.duration(),
            self.bin_cycles,
            self.freq_ghz,
        );
        welch_psd(
            binned.samples(),
            &WelchConfig {
                segment_len: self.segment_len,
                sample_rate_hz: binned.sample_rate_hz(),
                ..Default::default()
            },
        )
    }

    /// Extracts the feature vector of an access trace.
    ///
    /// Features (all scale-free or per-millisecond normalised so that traces
    /// of different lengths are comparable):
    ///
    /// 1. detected accesses per millisecond,
    /// 2. peak-to-average PSD ratio around the expected fundamental `f0`,
    /// 3. peak-to-average ratio around the first harmonic `2·f0`,
    /// 4. peak-to-average ratio around the sub-harmonic `f0/2`
    ///    (the full-iteration periodicity),
    /// 5. fraction of non-DC power within ±20% of `f0`,
    /// 6. fraction of non-DC power within ±20% of `f0/2`,
    /// 7. spectral flatness proxy (mean / max power above DC),
    /// 8. strongest-peak frequency normalised by `f0`.
    pub fn features(&self, trace: &AccessTrace) -> Vec<f64> {
        let psd = self.power_spectrum(trace);
        let f0 = self.expected_frequency_hz();
        let min_freq = f0 / 8.0;
        let band = 4.0 * psd.resolution_hz();

        let per_ms = trace.accesses_per_ms(self.freq_ghz);
        let peak_f0 = psd.peak_to_average_ratio(f0, band, min_freq);
        let peak_2f0 = psd.peak_to_average_ratio(2.0 * f0, band, min_freq);
        let peak_half = psd.peak_to_average_ratio(f0 / 2.0, band, min_freq);

        let total = psd.total_power_above(min_freq).max(f64::EPSILON);
        let band_power = |centre: f64| -> f64 {
            psd.frequencies()
                .iter()
                .zip(psd.power())
                .filter(|(f, _)| (**f - centre).abs() <= 0.2 * centre)
                .map(|(_, p)| *p)
                .sum::<f64>()
                / total
        };
        let frac_f0 = band_power(f0);
        let frac_half = band_power(f0 / 2.0);

        let above_dc: Vec<f64> = psd
            .frequencies()
            .iter()
            .zip(psd.power())
            .filter(|(f, _)| **f >= min_freq)
            .map(|(_, p)| *p)
            .collect();
        let max_p = above_dc.iter().cloned().fold(f64::EPSILON, f64::max);
        let mean_p = above_dc.iter().sum::<f64>() / above_dc.len().max(1) as f64;
        let flatness = mean_p / max_p;

        let dominant = psd.dominant_frequency(min_freq).map(|(f, _)| f / f0).unwrap_or(0.0);

        vec![per_ms, peak_f0, peak_2f0, peak_half, frac_f0, frac_half, flatness, dominant]
    }
}

/// Synthesises an access trace (timestamps only) for classifier training:
/// periodic victim accesses with the given period and activity factor plus
/// Poisson background noise, or noise only when `period_cycles` is `None`.
///
/// The paper trains its SVM on ~120k traces collected on Cloud Run; training
/// on synthetic traces with the same statistics keeps the harness fast while
/// exercising the identical feature pipeline.
pub fn synthesize_trace(
    period_cycles: Option<u64>,
    duration_cycles: u64,
    noise_per_ms: f64,
    freq_ghz: f64,
    seed: u64,
) -> AccessTrace {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut timestamps = Vec::new();

    if let Some(period) = period_cycles {
        let mut t = rng.gen_range(0..period);
        while t < duration_cycles {
            // The victim touches the set every `period` cycles on average;
            // every other access is skipped with ~50% probability, mirroring
            // bit-dependent midpoint accesses.
            if rng.gen_bool(0.75) {
                let jitter = rng.gen_range(0..period / 8) as i64 - (period / 16) as i64;
                let at = (t as i64 + jitter).max(0) as u64;
                if at < duration_cycles {
                    timestamps.push(at);
                }
            }
            t += period;
        }
    }

    // Poisson background noise.
    let noise_per_cycle = noise_per_ms / (freq_ghz * 1e6);
    if noise_per_cycle > 0.0 {
        let mut t = 0.0f64;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / noise_per_cycle;
            if t >= duration_cycles as f64 {
                break;
            }
            timestamps.push(t as u64);
        }
    }

    timestamps.sort_unstable();
    AccessTrace {
        start: 0,
        end: duration_cycles,
        timestamps,
        probes: duration_cycles / 200,
        primes: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_frequency_matches_paper() {
        let cfg = FeatureConfig::default();
        let f = cfg.expected_frequency_hz();
        assert!((f - 412_371.0).abs() < 2_000.0, "expected ~0.41 MHz, got {f}");
    }

    #[test]
    fn periodic_trace_has_stronger_peak_features_than_noise() {
        let cfg = FeatureConfig::default();
        let target = synthesize_trace(Some(4_850), 1_000_000, 11.5, 2.0, 1);
        let noise = synthesize_trace(None, 1_000_000, 11.5, 2.0, 2);
        let ft = cfg.features(&target);
        let fn_ = cfg.features(&noise);
        assert_eq!(ft.len(), FeatureConfig::NUM_FEATURES);
        assert!(
            ft[1] + ft[3] > fn_[1] + fn_[3],
            "peak features should separate target ({ft:?}) from noise ({fn_:?})"
        );
    }

    #[test]
    fn feature_vector_is_finite() {
        let cfg = FeatureConfig::default();
        for seed in 0..5 {
            let t = synthesize_trace(Some(4_850), 500_000, 30.0, 2.0, seed);
            for v in cfg.features(&t) {
                assert!(v.is_finite());
            }
        }
        // Degenerate empty trace must not produce NaNs either.
        let empty = AccessTrace { start: 0, end: 100_000, timestamps: vec![], probes: 10, primes: 1 };
        for v in cfg.features(&empty) {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn synthetic_noise_rate_is_respected() {
        let t = synthesize_trace(None, 2_000_000, 11.5, 2.0, 3);
        let per_ms = t.accesses_per_ms(2.0);
        assert!((per_ms - 11.5).abs() < 4.0, "noise rate {per_ms}");
    }
}
