//! Step 3 of the attack: decoding ECDSA nonce bits from the access trace of
//! the monitored target set (Section 7.3).
//!
//! The attacker monitors the target SF set while the victim signs. Every
//! ladder iteration starts with a fetch of the monitored line; iterations
//! whose nonce bit is 0 fetch it a second time at the iteration midpoint. A
//! random-forest classifier labels detected accesses as iteration boundaries
//! (robust against noise accesses and missed detections), then each boundary
//! pair at a plausible iteration distance yields one nonce bit depending on
//! whether a midpoint access was seen.

use llc_ml::{Dataset, ForestConfig, RandomForest};
use llc_probe::AccessTrace;

/// Parameters of the nonce-bit decoder.
#[derive(Debug, Clone)]
pub struct ExtractionConfig {
    /// Nominal ladder iteration duration in cycles (~9,700 on Cloud Run).
    pub iteration_cycles: u64,
    /// Acceptable iteration duration range, as a fraction of the nominal
    /// value (the paper keeps boundary pairs 8k–12k cycles apart).
    pub iteration_tolerance: f64,
    /// Fraction of the iteration defining the "midpoint window" in which an
    /// extra access encodes a zero bit.
    pub midpoint_window: (f64, f64),
    /// Random-forest configuration for the boundary classifier.
    pub forest: ForestConfig,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        Self {
            iteration_cycles: 9_700,
            iteration_tolerance: 0.25,
            midpoint_window: (0.3, 0.72),
            forest: ForestConfig { num_trees: 20, ..Default::default() },
        }
    }
}

impl ExtractionConfig {
    fn min_iteration(&self) -> u64 {
        (self.iteration_cycles as f64 * (1.0 - self.iteration_tolerance)) as u64
    }

    fn max_iteration(&self) -> u64 {
        (self.iteration_cycles as f64 * (1.0 + self.iteration_tolerance)) as u64
    }
}

/// Per-access features used by the boundary classifier: gaps to neighbouring
/// detections, normalised by the iteration duration.
fn access_features(timestamps: &[u64], idx: usize, config: &ExtractionConfig) -> Vec<f64> {
    let iter = config.iteration_cycles as f64;
    let t = timestamps[idx] as f64;
    let prev = if idx > 0 { t - timestamps[idx - 1] as f64 } else { 2.0 * iter };
    let next = if idx + 1 < timestamps.len() { timestamps[idx + 1] as f64 - t } else { 2.0 * iter };
    let next2 = if idx + 2 < timestamps.len() { timestamps[idx + 2] as f64 - t } else { 3.0 * iter };
    let prev2 = if idx >= 2 { t - timestamps[idx - 2] as f64 } else { 3.0 * iter };
    vec![
        (prev / iter).min(4.0),
        (next / iter).min(4.0),
        (prev2 / iter).min(6.0),
        (next2 / iter).min(6.0),
        ((prev + next) / iter).min(6.0),
    ]
}

/// A trained iteration-boundary classifier.
#[derive(Debug)]
pub struct BoundaryClassifier {
    forest: RandomForest,
    config: ExtractionConfig,
}

impl BoundaryClassifier {
    /// Trains the boundary classifier from one or more traces with known
    /// ground-truth iteration starts (the attacker profiles its own victim
    /// copy offline, exactly as the paper instruments its validation victim).
    pub fn train(
        config: &ExtractionConfig,
        traces: &[(&AccessTrace, &[u64])],
    ) -> BoundaryClassifier {
        let mut data = Dataset::new();
        let tolerance = (config.iteration_cycles as f64 * 0.2) as u64;
        for (trace, boundaries) in traces {
            for idx in 0..trace.timestamps.len() {
                let t = trace.timestamps[idx];
                let is_boundary = boundaries
                    .iter()
                    .any(|&b| t >= b.saturating_sub(tolerance / 2) && t <= b + tolerance);
                data.push(access_features(&trace.timestamps, idx, config), usize::from(is_boundary));
            }
        }
        let forest = RandomForest::train(&data, &config.forest);
        BoundaryClassifier { forest, config: config.clone() }
    }

    /// Classifies which detected accesses are iteration boundaries.
    pub fn boundaries(&self, trace: &AccessTrace) -> Vec<u64> {
        (0..trace.timestamps.len())
            .filter(|&idx| {
                self.forest.predict(&access_features(&trace.timestamps, idx, &self.config)) == 1
            })
            .map(|idx| trace.timestamps[idx])
            .collect()
    }
}

/// One decoded nonce bit with its position in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedBit {
    /// Cycle of the iteration boundary this bit was decoded from.
    pub boundary: u64,
    /// The decoded bit value.
    pub bit: bool,
}

/// Decodes nonce bits from a trace given the classified iteration boundaries:
/// consecutive boundaries a plausible iteration apart yield one bit; a
/// detection inside the midpoint window means the bit is 0.
pub fn decode_bits(
    trace: &AccessTrace,
    boundaries: &[u64],
    config: &ExtractionConfig,
) -> Vec<DecodedBit> {
    let mut bits = Vec::new();
    for pair in boundaries.windows(2) {
        let (start, end) = (pair[0], pair[1]);
        let gap = end - start;
        if gap < config.min_iteration() || gap > config.max_iteration() {
            continue;
        }
        let lo = start + (gap as f64 * config.midpoint_window.0) as u64;
        let hi = start + (gap as f64 * config.midpoint_window.1) as u64;
        let has_midpoint = trace.timestamps.iter().any(|&t| t > lo && t < hi);
        bits.push(DecodedBit { boundary: start, bit: !has_midpoint });
    }
    bits
}

/// Accuracy of a decoded bit sequence against the ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExtractionScore {
    /// Number of ladder iterations in the ground truth.
    pub total_bits: usize,
    /// Number of iterations for which a bit was decoded.
    pub recovered_bits: usize,
    /// Number of recovered bits whose value is wrong.
    pub bit_errors: usize,
}

impl ExtractionScore {
    /// Fraction of nonce bits recovered (the paper's headline 81% median).
    pub fn recovered_fraction(&self) -> f64 {
        if self.total_bits == 0 {
            0.0
        } else {
            self.recovered_bits as f64 / self.total_bits as f64
        }
    }

    /// Error rate among the recovered bits (the paper reports 3% average).
    pub fn bit_error_rate(&self) -> f64 {
        if self.recovered_bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.recovered_bits as f64
        }
    }
}

/// Scores decoded bits against ground truth: `iteration_starts[i]` is the
/// absolute cycle at which ladder iteration `i` (bit `ground_truth[i]`)
/// started.
pub fn score_extraction(
    decoded: &[DecodedBit],
    iteration_starts: &[u64],
    ground_truth: &[bool],
    config: &ExtractionConfig,
) -> ExtractionScore {
    let tolerance = (config.iteration_cycles as f64 * 0.35) as u64;
    let mut score = ExtractionScore { total_bits: ground_truth.len(), ..Default::default() };
    for (i, (&start, &truth)) in iteration_starts.iter().zip(ground_truth).enumerate() {
        let _ = i;
        // Find a decoded bit whose boundary lies near this iteration start.
        let found = decoded
            .iter()
            .filter(|d| d.boundary.abs_diff(start) <= tolerance)
            .min_by_key(|d| d.boundary.abs_diff(start));
        if let Some(d) = found {
            score.recovered_bits += 1;
            if d.bit != truth {
                score.bit_errors += 1;
            }
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic "perfect monitor" trace for a given bit pattern.
    fn perfect_trace(bits: &[bool], iteration: u64, start: u64) -> (AccessTrace, Vec<u64>) {
        let mut timestamps = Vec::new();
        let mut starts = Vec::new();
        let mut t = start;
        for &bit in bits {
            starts.push(t);
            timestamps.push(t + 40); // detection lag of the probe
            if !bit {
                timestamps.push(t + iteration / 2 + 40);
            }
            t += iteration;
        }
        starts.push(t);
        timestamps.push(t + 40);
        let trace = AccessTrace {
            start,
            end: t + iteration,
            timestamps,
            probes: 1000,
            primes: 10,
        };
        (trace, starts)
    }

    fn test_bits(n: usize, seed: u64) -> Vec<bool> {
        (0..n).map(|i| ((seed >> (i % 60)) ^ (i as u64 * 2654435761)) % 3 != 0).collect()
    }

    #[test]
    fn perfect_trace_decodes_exactly() {
        let config = ExtractionConfig::default();
        let bits = test_bits(64, 0xabcdef);
        let (trace, starts) = perfect_trace(&bits, config.iteration_cycles, 10_000);
        let classifier = BoundaryClassifier::train(&config, &[(&trace, &starts)]);
        let boundaries = classifier.boundaries(&trace);
        assert!(boundaries.len() >= bits.len() / 2, "boundary classifier found {}", boundaries.len());
        let decoded = decode_bits(&trace, &boundaries, &config);
        let score = score_extraction(&decoded, &starts[..bits.len()], &bits, &config);
        assert!(
            score.recovered_fraction() > 0.8,
            "recovered only {:.2}",
            score.recovered_fraction()
        );
        assert!(score.bit_error_rate() < 0.1, "bit error rate {:.2}", score.bit_error_rate());
    }

    #[test]
    fn decoder_generalises_to_unseen_nonce() {
        let config = ExtractionConfig::default();
        let train_bits = test_bits(80, 1);
        let (train_trace, train_starts) = perfect_trace(&train_bits, config.iteration_cycles, 0);
        let classifier = BoundaryClassifier::train(&config, &[(&train_trace, &train_starts)]);

        let attack_bits = test_bits(80, 99);
        let (attack_trace, attack_starts) = perfect_trace(&attack_bits, config.iteration_cycles, 5_000);
        let boundaries = classifier.boundaries(&attack_trace);
        let decoded = decode_bits(&attack_trace, &boundaries, &config);
        let score = score_extraction(&decoded, &attack_starts[..attack_bits.len()], &attack_bits, &config);
        assert!(score.recovered_fraction() > 0.7, "recovered {:.2}", score.recovered_fraction());
        assert!(score.bit_error_rate() < 0.12, "errors {:.2}", score.bit_error_rate());
    }

    #[test]
    fn missing_detections_reduce_recovery_but_not_correctness() {
        let config = ExtractionConfig::default();
        let bits = test_bits(60, 7);
        let (mut trace, starts) = perfect_trace(&bits, config.iteration_cycles, 0);
        // Drop every 6th detection to emulate missed probes.
        trace.timestamps = trace
            .timestamps
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 6 != 5)
            .map(|(_, &t)| t)
            .collect();
        let classifier = BoundaryClassifier::train(&config, &[(&trace, &starts)]);
        let boundaries = classifier.boundaries(&trace);
        let decoded = decode_bits(&trace, &boundaries, &config);
        let score = score_extraction(&decoded, &starts[..bits.len()], &bits, &config);
        assert!(score.recovered_fraction() > 0.4);
        assert!(score.bit_error_rate() < 0.35);
    }

    #[test]
    fn score_handles_empty_inputs() {
        let config = ExtractionConfig::default();
        let score = score_extraction(&[], &[], &[], &config);
        assert_eq!(score.recovered_fraction(), 0.0);
        assert_eq!(score.bit_error_rate(), 0.0);
    }
}
