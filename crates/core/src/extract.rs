//! Step 3 of the attack: decoding ECDSA nonce bits from the access trace of
//! the monitored target set (Section 7.3).
//!
//! The attacker monitors the target SF set while the victim signs. Every
//! ladder iteration starts with a fetch of the monitored line; iterations
//! whose nonce bit is 0 fetch it a second time at the iteration midpoint. A
//! random-forest classifier labels detected accesses as iteration boundaries
//! (robust against noise accesses and missed detections), then each boundary
//! pair at a plausible iteration distance yields one nonce bit depending on
//! whether a midpoint access was seen.
//!
//! Decoding is *soft-decision*: every [`DecodedBit`] carries a confidence in
//! `[0, 1]` combining the random forest's class-1 vote fraction for the two
//! enclosing boundaries with the midpoint-access margin (how unambiguously
//! the midpoint window was hit or missed). Step 4 (`llc-recovery`) consumes
//! these confidences to order its error-correction search.

use llc_ml::{Dataset, ForestConfig, RandomForest};
use llc_probe::AccessTrace;

/// Parameters of the nonce-bit decoder.
#[derive(Debug, Clone)]
pub struct ExtractionConfig {
    /// Nominal ladder iteration duration in cycles (~9,700 on Cloud Run).
    pub iteration_cycles: u64,
    /// Acceptable iteration duration range, as a fraction of the nominal
    /// value (the paper keeps boundary pairs 8k–12k cycles apart). Also
    /// defines the half-width of the symmetric window used to label
    /// boundary-classifier training samples.
    pub iteration_tolerance: f64,
    /// Fraction of the iteration defining the "midpoint window" in which an
    /// extra access encodes a zero bit.
    pub midpoint_window: (f64, f64),
    /// Matching tolerance of [`score_extraction`], as a fraction of the
    /// iteration duration: a decoded bit and a ground-truth iteration start
    /// may only be paired when they lie within this distance.
    pub score_match_tolerance: f64,
    /// Random-forest configuration for the boundary classifier.
    pub forest: ForestConfig,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        Self {
            iteration_cycles: 9_700,
            iteration_tolerance: 0.25,
            midpoint_window: (0.3, 0.72),
            score_match_tolerance: 0.35,
            forest: ForestConfig { num_trees: 20, ..Default::default() },
        }
    }
}

impl ExtractionConfig {
    fn min_iteration(&self) -> u64 {
        (self.iteration_cycles as f64 * (1.0 - self.iteration_tolerance)) as u64
    }

    fn max_iteration(&self) -> u64 {
        (self.iteration_cycles as f64 * (1.0 + self.iteration_tolerance)) as u64
    }

    /// Half-width, in cycles, of the symmetric window around a ground-truth
    /// boundary within which a detection is labelled as a positive training
    /// sample. Derived from `iteration_tolerance` (the window the decoder
    /// itself accepts), not a hard-coded constant.
    fn label_half_window(&self) -> u64 {
        (self.iteration_cycles as f64 * self.iteration_tolerance / 2.0) as u64
    }

    /// Matching tolerance of [`score_extraction`] in cycles.
    fn score_tolerance_cycles(&self) -> u64 {
        (self.iteration_cycles as f64 * self.score_match_tolerance) as u64
    }
}

/// True if `t` lies within the symmetric labelling window of any boundary.
///
/// The window used to be asymmetric (`[b − tol/2, b + tol]`, with `tol` from
/// a hard-coded `0.2` instead of the config) — detections trailing a
/// boundary were labelled positive twice as far out as leading ones, biasing
/// the classifier late. The `symmetric_labelling_window` regression test
/// pins the fixed behaviour.
fn near_boundary(t: u64, boundaries: &[u64], half_window: u64) -> bool {
    boundaries.iter().any(|&b| t >= b.saturating_sub(half_window) && t <= b + half_window)
}

/// Per-access features used by the boundary classifier: gaps to neighbouring
/// detections, normalised by the iteration duration.
fn access_features(timestamps: &[u64], idx: usize, config: &ExtractionConfig) -> Vec<f64> {
    let iter = config.iteration_cycles as f64;
    let t = timestamps[idx] as f64;
    let prev = if idx > 0 { t - timestamps[idx - 1] as f64 } else { 2.0 * iter };
    let next = if idx + 1 < timestamps.len() { timestamps[idx + 1] as f64 - t } else { 2.0 * iter };
    let next2 = if idx + 2 < timestamps.len() { timestamps[idx + 2] as f64 - t } else { 3.0 * iter };
    let prev2 = if idx >= 2 { t - timestamps[idx - 2] as f64 } else { 3.0 * iter };
    vec![
        (prev / iter).min(4.0),
        (next / iter).min(4.0),
        (prev2 / iter).min(6.0),
        (next2 / iter).min(6.0),
        ((prev + next) / iter).min(6.0),
    ]
}

/// A detection the classifier accepted as an iteration boundary, with the
/// forest's class-1 vote fraction as a soft score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredBoundary {
    /// Cycle of the detection.
    pub at: u64,
    /// Fraction of forest trees voting "boundary" (in `(0.5, 1.0]` for
    /// accepted detections).
    pub vote_fraction: f64,
}

/// A trained iteration-boundary classifier.
#[derive(Debug)]
pub struct BoundaryClassifier {
    forest: RandomForest,
    config: ExtractionConfig,
}

impl BoundaryClassifier {
    /// Trains the boundary classifier from one or more traces with known
    /// ground-truth iteration starts (the attacker profiles its own victim
    /// copy offline, exactly as the paper instruments its validation victim).
    pub fn train(
        config: &ExtractionConfig,
        traces: &[(&AccessTrace, &[u64])],
    ) -> BoundaryClassifier {
        let mut data = Dataset::new();
        let half_window = config.label_half_window();
        for (trace, boundaries) in traces {
            for idx in 0..trace.timestamps.len() {
                let t = trace.timestamps[idx];
                let is_boundary = near_boundary(t, boundaries, half_window);
                data.push(access_features(&trace.timestamps, idx, config), usize::from(is_boundary));
            }
        }
        let forest = RandomForest::train(&data, &config.forest);
        BoundaryClassifier { forest, config: config.clone() }
    }

    /// Classifies which detected accesses are iteration boundaries.
    pub fn boundaries(&self, trace: &AccessTrace) -> Vec<u64> {
        self.scored_boundaries(trace).into_iter().map(|b| b.at).collect()
    }

    /// Classifies iteration boundaries and reports each accepted detection's
    /// class-1 vote fraction (the soft-decision input of Step 4).
    pub fn scored_boundaries(&self, trace: &AccessTrace) -> Vec<ScoredBoundary> {
        (0..trace.timestamps.len())
            .filter_map(|idx| {
                let features = access_features(&trace.timestamps, idx, &self.config);
                let (label, vote_fraction) = self.forest.predict_with_confidence(&features);
                (label == 1).then_some(ScoredBoundary { at: trace.timestamps[idx], vote_fraction })
            })
            .collect()
    }
}

/// One decoded nonce bit with its position in time and a soft confidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedBit {
    /// Cycle of the iteration boundary this bit was decoded from.
    pub boundary: u64,
    /// The decoded bit value.
    pub bit: bool,
    /// Confidence in `[0, 1]`: the boundary classifier's vote fraction for
    /// the enclosing boundaries combined with the midpoint-access margin.
    pub confidence: f64,
}

/// Midpoint-access margin of one iteration in `[0, 1]`.
///
/// For a zero bit (midpoint access present), the margin is highest when the
/// access sits dead-centre in the midpoint window and decays towards the
/// window edges. For a one bit (no access in the window), the margin is the
/// normalised distance of the nearest interior detection to the window — 1.0
/// when the iteration interior is empty.
fn midpoint_margin(
    trace: &AccessTrace,
    start: u64,
    gap: u64,
    has_midpoint: bool,
    config: &ExtractionConfig,
) -> f64 {
    let (w0, w1) = config.midpoint_window;
    let centre = (w0 + w1) / 2.0;
    let half = ((w1 - w0) / 2.0).max(f64::EPSILON);
    let positions = trace
        .timestamps
        .iter()
        .filter(|&&t| t > start && t < start + gap)
        .map(|&t| (t - start) as f64 / gap as f64);
    if has_midpoint {
        // Best (most central) access inside the window.
        positions
            .filter(|&p| p > w0 && p < w1)
            .map(|p| 1.0 - (p - centre).abs() / half)
            .fold(0.0, f64::max)
    } else {
        // Distance of the nearest interior detection to the window.
        positions
            .map(|p| if p <= w0 { w0 - p } else { p - w1 })
            .fold(f64::INFINITY, f64::min)
            .min(half)
            .max(0.0)
            / half
    }
}

/// Combines the boundary vote fraction with the midpoint margin into one
/// confidence. The margin dominates (it carries the bit value), the vote
/// fraction scales it down when the enclosing boundaries were themselves
/// uncertain.
fn combine_confidence(vote: f64, margin: f64) -> f64 {
    ((0.25 + 0.75 * margin.clamp(0.0, 1.0)) * vote.clamp(0.0, 1.0)).clamp(0.0, 1.0)
}

fn decode_pairs(
    trace: &AccessTrace,
    boundaries: &[(u64, f64)],
    config: &ExtractionConfig,
) -> Vec<DecodedBit> {
    let mut bits = Vec::new();
    for pair in boundaries.windows(2) {
        let ((start, v_start), (end, v_end)) = (pair[0], pair[1]);
        let gap = end - start;
        if gap < config.min_iteration() || gap > config.max_iteration() {
            continue;
        }
        let lo = start + (gap as f64 * config.midpoint_window.0) as u64;
        let hi = start + (gap as f64 * config.midpoint_window.1) as u64;
        let has_midpoint = trace.timestamps.iter().any(|&t| t > lo && t < hi);
        let margin = midpoint_margin(trace, start, gap, has_midpoint, config);
        let vote = (v_start * v_end).sqrt();
        bits.push(DecodedBit {
            boundary: start,
            bit: !has_midpoint,
            confidence: combine_confidence(vote, margin),
        });
    }
    bits
}

/// Decodes nonce bits from a trace given the classified iteration boundaries:
/// consecutive boundaries a plausible iteration apart yield one bit; a
/// detection inside the midpoint window means the bit is 0.
///
/// Boundaries passed as plain timestamps are treated as fully confident
/// (vote fraction 1.0); the per-bit confidence then reflects only the
/// midpoint-access margin. Use [`decode_bits_soft`] with
/// [`BoundaryClassifier::scored_boundaries`] to fold the classifier's own
/// uncertainty into the confidences.
pub fn decode_bits(
    trace: &AccessTrace,
    boundaries: &[u64],
    config: &ExtractionConfig,
) -> Vec<DecodedBit> {
    let scored: Vec<(u64, f64)> = boundaries.iter().map(|&b| (b, 1.0)).collect();
    decode_pairs(trace, &scored, config)
}

/// Soft-decision decoding: like [`decode_bits`], but each bit's confidence
/// additionally folds in the boundary classifier's vote fractions for the
/// two boundaries enclosing the iteration.
pub fn decode_bits_soft(
    trace: &AccessTrace,
    boundaries: &[ScoredBoundary],
    config: &ExtractionConfig,
) -> Vec<DecodedBit> {
    let scored: Vec<(u64, f64)> = boundaries.iter().map(|b| (b.at, b.vote_fraction)).collect();
    decode_pairs(trace, &scored, config)
}

/// Accuracy of a decoded bit sequence against the ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExtractionScore {
    /// Number of ladder iterations in the ground truth.
    pub total_bits: usize,
    /// Number of iterations for which a bit was decoded.
    pub recovered_bits: usize,
    /// Number of recovered bits whose value is wrong.
    pub bit_errors: usize,
}

impl ExtractionScore {
    /// Fraction of nonce bits recovered (the paper's headline 81% median).
    pub fn recovered_fraction(&self) -> f64 {
        if self.total_bits == 0 {
            0.0
        } else {
            self.recovered_bits as f64 / self.total_bits as f64
        }
    }

    /// Error rate among the recovered bits (the paper reports 3% average).
    pub fn bit_error_rate(&self) -> f64 {
        if self.recovered_bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.recovered_bits as f64
        }
    }
}

/// Scores decoded bits against ground truth: `iteration_starts[i]` is the
/// absolute cycle at which ladder iteration `i` (bit `ground_truth[i]`)
/// started.
///
/// Matching is one-to-one: candidate (iteration, decoded-bit) pairs within
/// the configured tolerance are claimed greedily by ascending distance, and
/// each decoded bit is credited to at most one iteration. (The previous
/// implementation matched each iteration independently, so one decoded bit
/// could be credited to several adjacent iteration starts, inflating
/// `recovered_bits`; and the tolerance was a hard-coded `0.35` rather than
/// [`ExtractionConfig::score_match_tolerance`].)
pub fn score_extraction(
    decoded: &[DecodedBit],
    iteration_starts: &[u64],
    ground_truth: &[bool],
    config: &ExtractionConfig,
) -> ExtractionScore {
    let tolerance = config.score_tolerance_cycles();
    let mut score = ExtractionScore { total_bits: ground_truth.len(), ..Default::default() };

    // All candidate pairings within tolerance, cheapest (closest) first.
    // Ties break on (iteration, decoded) index, keeping the greedy matching
    // deterministic.
    let mut pairs: Vec<(u64, usize, usize)> = Vec::new();
    for (i, (&start, _)) in iteration_starts.iter().zip(ground_truth).enumerate() {
        for (j, d) in decoded.iter().enumerate() {
            let dist = d.boundary.abs_diff(start);
            if dist <= tolerance {
                pairs.push((dist, i, j));
            }
        }
    }
    pairs.sort_unstable();

    let mut start_claimed = vec![false; iteration_starts.len().min(ground_truth.len())];
    let mut decoded_claimed = vec![false; decoded.len()];
    for (_, i, j) in pairs {
        if start_claimed[i] || decoded_claimed[j] {
            continue;
        }
        start_claimed[i] = true;
        decoded_claimed[j] = true;
        score.recovered_bits += 1;
        if decoded[j].bit != ground_truth[i] {
            score.bit_errors += 1;
        }
    }
    score
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic "perfect monitor" trace for a given bit pattern.
    fn perfect_trace(bits: &[bool], iteration: u64, start: u64) -> (AccessTrace, Vec<u64>) {
        let mut timestamps = Vec::new();
        let mut starts = Vec::new();
        let mut t = start;
        for &bit in bits {
            starts.push(t);
            timestamps.push(t + 40); // detection lag of the probe
            if !bit {
                timestamps.push(t + iteration / 2 + 40);
            }
            t += iteration;
        }
        starts.push(t);
        timestamps.push(t + 40);
        let trace = AccessTrace {
            start,
            end: t + iteration,
            timestamps,
            probes: 1000,
            primes: 10,
        };
        (trace, starts)
    }

    fn test_bits(n: usize, seed: u64) -> Vec<bool> {
        (0..n).map(|i| ((seed >> (i % 60)) ^ (i as u64 * 2654435761)) % 3 != 0).collect()
    }

    #[test]
    fn perfect_trace_decodes_exactly() {
        let config = ExtractionConfig::default();
        let bits = test_bits(64, 0xabcdef);
        let (trace, starts) = perfect_trace(&bits, config.iteration_cycles, 10_000);
        let classifier = BoundaryClassifier::train(&config, &[(&trace, &starts)]);
        let boundaries = classifier.boundaries(&trace);
        assert!(boundaries.len() >= bits.len() / 2, "boundary classifier found {}", boundaries.len());
        let decoded = decode_bits(&trace, &boundaries, &config);
        let score = score_extraction(&decoded, &starts[..bits.len()], &bits, &config);
        assert!(
            score.recovered_fraction() > 0.8,
            "recovered only {:.2}",
            score.recovered_fraction()
        );
        assert!(score.bit_error_rate() < 0.1, "bit error rate {:.2}", score.bit_error_rate());
    }

    #[test]
    fn decoder_generalises_to_unseen_nonce() {
        let config = ExtractionConfig::default();
        let train_bits = test_bits(80, 1);
        let (train_trace, train_starts) = perfect_trace(&train_bits, config.iteration_cycles, 0);
        let classifier = BoundaryClassifier::train(&config, &[(&train_trace, &train_starts)]);

        let attack_bits = test_bits(80, 99);
        let (attack_trace, attack_starts) = perfect_trace(&attack_bits, config.iteration_cycles, 5_000);
        let boundaries = classifier.boundaries(&attack_trace);
        let decoded = decode_bits(&attack_trace, &boundaries, &config);
        let score = score_extraction(&decoded, &attack_starts[..attack_bits.len()], &attack_bits, &config);
        assert!(score.recovered_fraction() > 0.7, "recovered {:.2}", score.recovered_fraction());
        assert!(score.bit_error_rate() < 0.12, "errors {:.2}", score.bit_error_rate());
    }

    #[test]
    fn missing_detections_reduce_recovery_but_not_correctness() {
        let config = ExtractionConfig::default();
        let bits = test_bits(60, 7);
        let (mut trace, starts) = perfect_trace(&bits, config.iteration_cycles, 0);
        // Drop every 6th detection to emulate missed probes.
        trace.timestamps = trace
            .timestamps
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 6 != 5)
            .map(|(_, &t)| t)
            .collect();
        let classifier = BoundaryClassifier::train(&config, &[(&trace, &starts)]);
        let boundaries = classifier.boundaries(&trace);
        let decoded = decode_bits(&trace, &boundaries, &config);
        let score = score_extraction(&decoded, &starts[..bits.len()], &bits, &config);
        assert!(score.recovered_fraction() > 0.4);
        assert!(score.bit_error_rate() < 0.35);
    }

    #[test]
    fn score_handles_empty_inputs() {
        let config = ExtractionConfig::default();
        let score = score_extraction(&[], &[], &[], &config);
        assert_eq!(score.recovered_fraction(), 0.0);
        assert_eq!(score.bit_error_rate(), 0.0);
    }

    /// Regression test for the training-label window: it must be symmetric
    /// around the boundary and derived from `iteration_tolerance`. The old
    /// code used a hard-coded `0.2` and accepted detections up to `tol`
    /// *after* the boundary but only `tol/2` before it.
    #[test]
    fn symmetric_labelling_window_derived_from_config() {
        let config = ExtractionConfig::default();
        let half = config.label_half_window();
        assert_eq!(
            half,
            (config.iteration_cycles as f64 * config.iteration_tolerance / 2.0) as u64,
            "label window must derive from the configured tolerance"
        );
        let b = 100_000u64;
        for offset in [1, half / 2, half] {
            assert_eq!(
                near_boundary(b - offset, &[b], half),
                near_boundary(b + offset, &[b], half),
                "labelling must be symmetric at ±{offset}"
            );
        }
        // Outside the window on both sides.
        assert!(!near_boundary(b - half - 1, &[b], half));
        assert!(!near_boundary(b + half - 1 + 2, &[b], half));
        // The pre-fix asymmetric window accepted `b + 0.2·iter` while
        // rejecting `b − 0.2·iter`; the fixed window rejects both (default
        // tolerance 0.25 gives a ±0.125·iter window).
        let old_upper = b + (config.iteration_cycles as f64 * 0.2) as u64;
        assert!(!near_boundary(old_upper, &[b], half));

        // A tighter config must shrink the window accordingly.
        let tight = ExtractionConfig { iteration_tolerance: 0.1, ..ExtractionConfig::default() };
        let tight_half = tight.label_half_window();
        assert!(tight_half < half);
        assert!(near_boundary(b + tight_half, &[b], tight_half));
        assert!(!near_boundary(b + half, &[b], tight_half));
    }

    /// Regression test for the double-credit bug: two iteration starts closer
    /// together than the matching tolerance used to *both* claim the same
    /// decoded bit, reporting 2 recovered bits for 1 decoded bit.
    #[test]
    fn score_matching_is_one_to_one() {
        let config = ExtractionConfig::default();
        let tolerance = config.score_tolerance_cycles();
        // Two ground-truth starts within one tolerance of a single decoded
        // bit sitting between them.
        let decoded = [DecodedBit { boundary: 10_000, bit: true, confidence: 1.0 }];
        let starts = [10_000 - tolerance / 2, 10_000 + tolerance / 2];
        let truth = [true, true];
        let score = score_extraction(&decoded, &starts, &truth, &config);
        assert_eq!(
            score.recovered_bits, 1,
            "one decoded bit must be credited to at most one iteration"
        );
        assert_eq!(score.bit_errors, 0);

        // The closest pairing wins: the decoded bit matches the nearer start
        // even when the farther one comes first.
        let decoded = [DecodedBit { boundary: 10_000, bit: false, confidence: 1.0 }];
        let starts = [10_000 - tolerance / 2, 10_000 - 1];
        let truth = [false, true];
        let score = score_extraction(&decoded, &starts, &truth, &config);
        assert_eq!(score.recovered_bits, 1);
        assert_eq!(score.bit_errors, 1, "bit must pair with the nearest start (truth=true)");
    }

    #[test]
    fn score_tolerance_comes_from_config() {
        let decoded = [DecodedBit { boundary: 12_000, bit: true, confidence: 1.0 }];
        let starts = [10_000u64];
        let truth = [true];
        let wide = ExtractionConfig::default(); // 0.35 · 9,700 = 3,395 ≥ 2,000
        assert_eq!(score_extraction(&decoded, &starts, &truth, &wide).recovered_bits, 1);
        let narrow =
            ExtractionConfig { score_match_tolerance: 0.1, ..ExtractionConfig::default() };
        assert_eq!(score_extraction(&decoded, &starts, &truth, &narrow).recovered_bits, 0);
    }

    #[test]
    fn soft_confidences_are_well_formed_and_order_clean_bits_first() {
        let config = ExtractionConfig::default();
        let bits = test_bits(64, 0x50f7);
        let (trace, starts) = perfect_trace(&bits, config.iteration_cycles, 0);
        let classifier = BoundaryClassifier::train(&config, &[(&trace, &starts)]);
        let scored = classifier.scored_boundaries(&trace);
        assert!(!scored.is_empty());
        for b in &scored {
            assert!((0.0..=1.0).contains(&b.vote_fraction));
        }
        // Scored and plain boundaries agree on the accepted detections.
        let plain = classifier.boundaries(&trace);
        assert_eq!(plain, scored.iter().map(|b| b.at).collect::<Vec<_>>());

        let decoded = decode_bits_soft(&trace, &scored, &config);
        assert!(!decoded.is_empty());
        for d in &decoded {
            assert!((0.0..=1.0).contains(&d.confidence), "confidence {}", d.confidence);
            // A perfect trace decodes every bit with high confidence.
            assert!(d.confidence > 0.5, "perfect-trace confidence {}", d.confidence);
        }
        // Hard and soft decoding agree on positions and values.
        let hard = decode_bits(&trace, &plain, &config);
        assert_eq!(
            hard.iter().map(|d| (d.boundary, d.bit)).collect::<Vec<_>>(),
            decoded.iter().map(|d| (d.boundary, d.bit)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ambiguous_midpoint_accesses_lower_confidence() {
        let config = ExtractionConfig::default();
        let iter = config.iteration_cycles;
        // Two iterations delimited by three boundaries; the first has a
        // dead-centre midpoint access (confident 0), the second has an access
        // just inside the window edge (ambiguous 0).
        let (w0, w1) = config.midpoint_window;
        let centre = ((w0 + w1) / 2.0 * iter as f64) as u64;
        let edge = (w0 * iter as f64) as u64 + 30;
        let trace = AccessTrace {
            start: 0,
            end: 3 * iter,
            timestamps: vec![0, centre, iter, iter + edge, 2 * iter],
            probes: 100,
            primes: 1,
        };
        let boundaries = [0, iter, 2 * iter];
        let decoded = decode_bits(&trace, &boundaries, &config);
        assert_eq!(decoded.len(), 2);
        assert!(!decoded[0].bit && !decoded[1].bit);
        assert!(
            decoded[0].confidence > decoded[1].confidence,
            "centred access ({}) must beat edge access ({})",
            decoded[0].confidence,
            decoded[1].confidence
        );
    }
}
