//! Step 2 of the attack: identifying the victim's target SF set among the
//! eviction sets built in Step 1, using PSD features and an SVM classifier
//! (Sections 6.2 and 7.2).

use crate::features::{synthesize_trace, FeatureConfig};
use llc_evsets::EvictionSet;
use llc_machine::Machine;
use llc_ml::{ConfusionMatrix, Dataset, Kernel, Standardizer, Svm, SvmConfig};
use llc_probe::{AccessTrace, Monitor, Strategy};
use llc_cache_model::VirtAddr;

/// A trained target-set classifier: SVM over PSD features plus the
/// access-count pre-filter the paper applies before classification.
#[derive(Debug)]
pub struct TraceClassifier {
    features: FeatureConfig,
    standardizer: Standardizer,
    svm: Svm,
    /// Pre-filter: traces with fewer detected accesses are skipped.
    pub min_accesses: usize,
    /// Pre-filter: traces with more detected accesses are skipped.
    pub max_accesses: usize,
    /// Validation metrics measured on the held-out split during training.
    pub validation: ConfusionMatrix,
}

/// Training parameters for [`TraceClassifier::train`].
#[derive(Debug, Clone)]
pub struct ClassifierTrainingConfig {
    /// Feature extraction parameters (shared with scanning).
    pub features: FeatureConfig,
    /// Number of positive (target-set) training traces.
    pub positive_traces: usize,
    /// Number of negative (non-target-set) training traces.
    pub negative_traces: usize,
    /// Duration of each training trace in cycles (the paper uses 500 µs).
    pub trace_cycles: u64,
    /// Background noise level used for synthetic training traces, in
    /// accesses per millisecond per set.
    pub noise_per_ms: f64,
    /// Fraction of traces withheld for validation.
    pub holdout: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClassifierTrainingConfig {
    fn default() -> Self {
        Self {
            features: FeatureConfig::default(),
            positive_traces: 220,
            negative_traces: 400,
            trace_cycles: 1_000_000,
            noise_per_ms: 11.5,
            holdout: 0.3,
            seed: 0x5c1,
        }
    }
}

impl TraceClassifier {
    /// Trains the classifier on synthetic traces with the same statistics as
    /// the monitored signal (periodic victim accesses + tenant noise), the
    /// role played by the paper's 122k Cloud Run training traces.
    pub fn train(config: &ClassifierTrainingConfig) -> Self {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut data = Dataset::new();
        let period = config.features.expected_period_cycles;
        for i in 0..config.positive_traces {
            let trace = synthesize_trace(
                Some(period),
                config.trace_cycles,
                config.noise_per_ms,
                config.features.freq_ghz,
                config.seed ^ (i as u64),
            );
            data.push(config.features.features(&trace), 1);
        }
        for i in 0..config.negative_traces {
            let trace = synthesize_trace(
                None,
                config.trace_cycles,
                config.noise_per_ms,
                config.features.freq_ghz,
                config.seed ^ 0xdead_0000 ^ (i as u64),
            );
            data.push(config.features.features(&trace), 0);
        }
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let (train, val) = data.split(config.holdout, &mut rng);
        // Standardise the features: the PSD feature vector mixes counts,
        // ratios and fractions whose raw scales would dominate the kernel.
        let standardizer = Standardizer::fit(&train);
        let train = standardizer.transform_dataset(&train);
        let val = standardizer.transform_dataset(&val);
        let svm = Svm::train(
            &train,
            &SvmConfig {
                kernel: Kernel::Polynomial { degree: 3, gamma: 0.3, coef0: 1.0 },
                c: 2.0,
                ..Default::default()
            },
        );
        let predictions: Vec<usize> = val.features().iter().map(|f| svm.predict(f)).collect();
        let validation = ConfusionMatrix::from_predictions(val.labels(), &predictions);

        // Access-count pre-filter bounds scale with the trace duration: the
        // paper keeps traces with 50–400 accesses in 500 µs windows.
        let ms = config.trace_cycles as f64 / (config.features.freq_ghz * 1e6);
        let min_accesses = (50.0 * ms).round() as usize;
        let max_accesses = (800.0 * ms).round() as usize;

        Self {
            features: config.features.clone(),
            standardizer,
            svm,
            min_accesses,
            max_accesses,
            validation,
        }
    }

    /// The feature configuration used by this classifier.
    pub fn feature_config(&self) -> &FeatureConfig {
        &self.features
    }

    /// Applies the access-count pre-filter (Section 7.2).
    pub fn passes_prefilter(&self, trace: &AccessTrace) -> bool {
        (self.min_accesses..=self.max_accesses).contains(&trace.len())
    }

    /// Classifies one trace: true = collected from the victim's target set.
    pub fn is_target(&self, trace: &AccessTrace) -> bool {
        self.passes_prefilter(trace)
            && self.svm.predict(&self.standardizer.transform(&self.features.features(trace))) == 1
    }
}

/// Configuration of the scanning loop.
#[derive(Debug, Clone)]
pub struct ScanConfig {
    /// Duration of the trace collected from each set (paper: 500 µs).
    pub trace_cycles: u64,
    /// Overall scan timeout in cycles (paper: 60 s PageOffset, 900 s WholeSys).
    pub timeout_cycles: u64,
    /// Monitoring strategy used while scanning.
    pub strategy: Strategy,
    /// Number of consecutive positive classifications required to accept a
    /// set (false-positive filtering).
    pub confirmations: u32,
}

impl Default for ScanConfig {
    fn default() -> Self {
        Self {
            trace_cycles: 1_000_000,
            timeout_cycles: 120_000_000_000,
            strategy: Strategy::Parallel,
            confirmations: 1,
        }
    }
}

/// Result of a target-set scan.
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// Index (into the scanned eviction-set list) of the identified target.
    pub identified: Option<usize>,
    /// The target address associated with the identified eviction set.
    pub identified_ta: Option<VirtAddr>,
    /// Cycles spent scanning.
    pub elapsed_cycles: u64,
    /// Number of (set, trace) scan operations performed.
    pub traces_collected: u64,
    /// Sets scanned per second of simulated time.
    pub scan_rate_per_s: f64,
}

/// Scans eviction sets until a target set is identified or the timeout hits.
///
/// `eviction_sets` is the Step 1 output: one `(target address, eviction set)`
/// pair per candidate SF set. The victim must already be installed on the
/// machine and serving requests (the attacker keeps triggering it).
pub fn scan_for_target(
    machine: &mut Machine,
    eviction_sets: &[(VirtAddr, EvictionSet)],
    classifier: &TraceClassifier,
    config: &ScanConfig,
) -> ScanOutcome {
    let start = machine.now();
    let deadline = start + config.timeout_cycles;
    let mut traces_collected = 0u64;
    let mut identified = None;

    'outer: while machine.now() < deadline {
        for (idx, (ta, set)) in eviction_sets.iter().enumerate() {
            if machine.now() >= deadline {
                break 'outer;
            }
            let mut positives = 0;
            // One monitor per set: `collect` re-prepares (and re-compiles the
            // traversal plan) per trace, so confirmations are independent
            // exactly as before — without re-cloning the eviction set.
            let mut monitor = Monitor::new(config.strategy, set.clone());
            for _ in 0..config.confirmations {
                let trace = monitor.collect(machine, config.trace_cycles);
                traces_collected += 1;
                if classifier.is_target(&trace) {
                    positives += 1;
                } else {
                    break;
                }
            }
            if positives == config.confirmations {
                identified = Some((idx, *ta));
                break 'outer;
            }
        }
        if eviction_sets.is_empty() {
            break;
        }
    }

    let elapsed_cycles = machine.now() - start;
    let seconds = elapsed_cycles as f64 / (machine.spec().freq_ghz * 1e9);
    ScanOutcome {
        identified: identified.map(|(i, _)| i),
        identified_ta: identified.map(|(_, ta)| ta),
        elapsed_cycles,
        traces_collected,
        scan_rate_per_s: if seconds > 0.0 { traces_collected as f64 / seconds } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::synthesize_trace;

    fn quick_training() -> ClassifierTrainingConfig {
        ClassifierTrainingConfig {
            positive_traces: 60,
            negative_traces: 100,
            trace_cycles: 600_000,
            ..Default::default()
        }
    }

    #[test]
    fn classifier_separates_synthetic_target_and_noise_traces() {
        let classifier = TraceClassifier::train(&quick_training());
        assert!(
            classifier.validation.accuracy() > 0.9,
            "validation accuracy {} too low",
            classifier.validation.accuracy()
        );
        assert!(classifier.validation.false_positive_rate() < 0.1);

        let mut correct = 0;
        let n = 30;
        for i in 0..n {
            let target = synthesize_trace(Some(4_850), 600_000, 11.5, 2.0, 10_000 + i);
            let noise = synthesize_trace(None, 600_000, 11.5, 2.0, 20_000 + i);
            if classifier.is_target(&target) {
                correct += 1;
            }
            if !classifier.is_target(&noise) {
                correct += 1;
            }
        }
        assert!(correct as f64 / (2 * n) as f64 > 0.85, "accuracy {correct}/{}", 2 * n);
    }

    #[test]
    fn prefilter_rejects_empty_and_overfull_traces() {
        let classifier = TraceClassifier::train(&quick_training());
        let empty = AccessTrace { start: 0, end: 600_000, timestamps: vec![], probes: 1, primes: 1 };
        assert!(!classifier.passes_prefilter(&empty));
        let overfull = AccessTrace {
            start: 0,
            end: 600_000,
            timestamps: (0..10_000).map(|i| i * 50).collect(),
            probes: 1,
            primes: 1,
        };
        assert!(!classifier.passes_prefilter(&overfull));
        assert!(!classifier.is_target(&empty));
    }
}
