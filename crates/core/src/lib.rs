//! # llc-core
//!
//! The end-to-end LLC/SF Prime+Probe attack pipeline of *"Last-Level Cache
//! Side-Channel Attacks Are Feasible in the Modern Public Cloud"*
//! (ASPLOS 2024), assembled from the workspace's building blocks:
//!
//! * **Step 1 — prepare LLC side channels**: bulk SF eviction-set
//!   construction at the victim's page offset (`llc-evsets`, Sections 4–5);
//! * **Step 2 — identify the target LLC/SF set**: Prime+Probe traces of each
//!   candidate set are converted to power-spectral-density features
//!   (`llc-sigproc`) and classified by an SVM (`llc-ml`), Sections 6.2/7.2;
//! * **Step 3 — exfiltrate information**: the target set is monitored with
//!   Parallel Probing (`llc-probe`), iteration boundaries are recognised with
//!   a random forest and the ECDSA nonce bits are soft-decoded (value +
//!   confidence) and scored against the victim's ground truth
//!   (`llc-ecdsa-victim`), Section 7.3;
//! * **Step 4 — recover the key**: the decoded bits are aligned, corrected
//!   in confidence order and turned into the victim's private key via
//!   `d = r⁻¹(s·k − z) mod n`, verified against the *public* key only
//!   (`llc-recovery`).
//!
//! The [`EndToEndAttack`] driver runs the steps against a simulated
//! multi-tenant host and produces an [`AttackReport`] with the same metrics
//! the paper reports (fraction of nonce bits recovered, bit error rate,
//! recovered key, end-to-end time).
//!
//! ## Quick example
//!
//! ```
//! use llc_core::{AttackConfig, EndToEndAttack};
//!
//! // A scaled-down configuration that runs in a few seconds.
//! let report = EndToEndAttack::new(AttackConfig::fast_test()).run();
//! assert!(report.identify.identified);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod extract;
mod features;
mod identify;
mod pipeline;

pub use extract::{
    decode_bits, decode_bits_soft, score_extraction, BoundaryClassifier, DecodedBit,
    ExtractionConfig, ExtractionScore, ScoredBoundary,
};
pub use features::{synthesize_trace, FeatureConfig};
pub use identify::{
    scan_for_target, ClassifierTrainingConfig, ScanConfig, ScanOutcome, TraceClassifier,
};
pub use pipeline::{
    capture_signing_run, soft_observation, streams, Algorithm, AttackConfig, AttackReport,
    CapturedSigning, EndToEndAttack, EvsetPhase, ExtractPhase, IdentifyPhase, RecoveryConfig,
    RecoveryPhase,
};
