//! The simulated host: cache hierarchy + cycle clock + latency model +
//! background noise + co-located victim, driven by the attacker's operations.
//!
//! The attacker interacts with the machine exclusively through timed and
//! untimed loads of its own virtual addresses, `clflush` of its own lines,
//! and idling — exactly the interface an unprivileged Cloud Run container
//! has. Everything else (victim progress, other tenants' noise) happens as a
//! side effect of simulated time advancing.

use crate::latency::LatencyModel;
use crate::noise::{NoiseConfig, NoiseFidelity, NoiseModel, NoiseProcess};
use crate::schedule::{VictimProgram, VictimSchedule};
use crate::tenant::{HostSim, StatisticalTenant, TenantBurst, TenantPopulation};
use llc_cache_model::{
    AccessKind, AddressSpace, CacheSpec, CoreId, Hierarchy, HierarchyOptions, HitLevel, LineAddr,
    SetLocation, VirtAddr,
};
use llc_fleet::stream_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stream tags for [`Machine::reseed`]'s two derived sub-streams (jitter/
/// noise RNG and the attacker frame lottery), kept distinct through the
/// injective `llc-fleet` derivation rather than XOR constants.
const RESEED_RNG_STREAM: u64 = u64::from_le_bytes(*b"mrng\0\0\0\0");
const RESEED_ASPACE_STREAM: u64 = u64::from_le_bytes(*b"maspace\0");
/// Stream tag for the background-tenant seed family (each slot then derives
/// its own sub-stream inside [`HostSim`]).
const RESEED_TENANT_STREAM: u64 = u64::from_le_bytes(*b"mtenant\0");

/// Counters describing how much work a simulation performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineStats {
    /// Memory accesses issued by the attacker (including helper echoes).
    pub attacker_accesses: u64,
    /// Memory accesses replayed on behalf of the victim.
    pub victim_accesses: u64,
    /// Background-noise insertions applied to the LLC/SF.
    pub noise_events: u64,
    /// Victim requests completed.
    pub victim_runs: u64,
    /// Accesses posted by scheduled background tenants (event-queue actors;
    /// the lazy statistical tenant's insertions count as `noise_events`).
    pub tenant_accesses: u64,
}

/// Builder for [`Machine`]; see [`Machine::builder`].
#[derive(Debug)]
pub struct MachineBuilder {
    spec: CacheSpec,
    noise: NoiseConfig,
    latency: LatencyModel,
    hierarchy_options: HierarchyOptions,
    tenants: TenantPopulation,
    seed: u64,
}

impl MachineBuilder {
    /// Starts building a machine with the given cache specification.
    pub fn new(spec: CacheSpec) -> Self {
        Self {
            spec,
            noise: NoiseConfig::exact(NoiseModel::quiescent_local()),
            latency: LatencyModel::default(),
            hierarchy_options: HierarchyOptions::default(),
            tenants: TenantPopulation::empty(),
            seed: 0xC10D_5EED,
        }
    }

    /// Sets the background-noise model (e.g. [`NoiseModel::cloud_run`]),
    /// keeping the configured fidelity and first-touch semantics.
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise.model = noise;
        self
    }

    /// Sets the complete noise configuration (model, fidelity, first-touch
    /// semantics) in one call.
    pub fn noise_config(mut self, config: NoiseConfig) -> Self {
        self.noise = config;
        self
    }

    /// Sets the noise fidelity ([`NoiseFidelity::Exact`] replays individual
    /// events and is the bit-pinned default; [`NoiseFidelity::Aggregate`]
    /// applies bulk per-sync transitions, statistically equivalent and
    /// several times faster under heavy noise).
    pub fn noise_fidelity(mut self, fidelity: NoiseFidelity) -> Self {
        self.noise.fidelity = fidelity;
        self
    }

    /// Sets the latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets hierarchy behaviour options (reuse predictor, ...).
    pub fn hierarchy_options(mut self, options: HierarchyOptions) -> Self {
        self.hierarchy_options = options;
        self
    }

    /// Sets the background tenant population co-resident with the
    /// attacker/victim pair (see [`TenantPopulation`]). The default is the
    /// empty population — the legacy single-attacker/single-victim host,
    /// bit-identical to the pre-tenant-model machine.
    pub fn tenants(mut self, tenants: TenantPopulation) -> Self {
        self.tenants = tenants;
        self
    }

    /// Sets the random seed controlling paging, noise and jitter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the machine.
    ///
    /// # Panics
    ///
    /// Panics if the specification has fewer than 3 cores (attacker, helper
    /// and victim need distinct physical cores).
    pub fn build(self) -> Machine {
        assert!(self.spec.cores >= 3, "need at least 3 cores (attacker, helper, victim)");
        let sets_per_slice = self.spec.llc.slice_geometry().sets();
        let num_slices = self.spec.llc.num_slices();
        let mut hierarchy = Hierarchy::new(self.spec.clone(), self.seed);
        hierarchy.set_options(self.hierarchy_options);
        let mut noise = NoiseProcess::with_config(self.noise, sets_per_slice, num_slices);
        // The reuse predictor forces `Hierarchy::noise_advance_bulk` onto
        // per-event dispatch, so an Aggregate configuration effectively runs
        // Exact; record that so reports can label the run truthfully.
        noise.set_per_event_fallback(self.hierarchy_options.reuse_insert_probability > 0.0);
        let mut host = HostSim::new(hierarchy, StatisticalTenant::new(noise), self.tenants);
        // Zero work and zero RNG draws for the empty population, preserving
        // the legacy configuration bit-for-bit.
        host.reseed_tenants(stream_seed(self.seed, RESEED_TENANT_STREAM), 0);
        Machine {
            host,
            latency: self.latency,
            clock: 0,
            rng: StdRng::seed_from_u64(self.seed ^ 0x6d61_6368),
            attacker_aspace: AddressSpace::with_seed(self.seed ^ 0xa77a),
            attacker_core: 0,
            helper_core: 1,
            helper_echo: false,
            victim_core: 2,
            victim: None,
            victim_run_starts: Vec::new(),
            stats: MachineStats::default(),
            scratch_lines: Vec::new(),
            scratch_levels: Vec::new(),
            scratch_locs: Vec::new(),
            scratch_locs_sorted: Vec::new(),
            scratch_burst: TenantBurst::default(),
            plan_epoch: 0,
            trial_deadline: None,
        }
    }
}

/// A point-in-time copy of a [`Machine`] without its victim program.
///
/// Snapshots are the substrate of `llc-fleet`'s parallel trial execution:
/// building a machine from scratch re-derives the paging layout, replacement
/// metadata and noise bookkeeping for every cache set, while restoring from a
/// snapshot is a plain memory copy of the already-warmed state. A snapshot is
/// immutable, `Send + Sync`, and can be shared by reference across worker
/// threads; each worker materialises its own [`Machine`] from it with
/// [`MachineSnapshot::to_machine`] and then rewinds between trials with
/// [`Machine::reset_to`].
///
/// Victim programs are deliberately excluded (they are `Box<dyn ...>` state
/// machines with interior handles): take the snapshot *before* installing a
/// victim and install a fresh victim per trial after each reset.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    host: HostSim,
    latency: LatencyModel,
    clock: u64,
    rng: StdRng,
    attacker_aspace: AddressSpace,
    attacker_core: CoreId,
    helper_core: CoreId,
    helper_echo: bool,
    victim_core: CoreId,
    stats: MachineStats,
}

impl MachineSnapshot {
    /// Materialises an independent machine in exactly the snapshotted state.
    pub fn to_machine(&self) -> Machine {
        Machine {
            host: self.host.clone(),
            latency: self.latency.clone(),
            clock: self.clock,
            rng: self.rng.clone(),
            attacker_aspace: self.attacker_aspace.clone(),
            attacker_core: self.attacker_core,
            helper_core: self.helper_core,
            helper_echo: self.helper_echo,
            victim_core: self.victim_core,
            victim: None,
            victim_run_starts: Vec::new(),
            stats: self.stats,
            scratch_lines: Vec::new(),
            scratch_levels: Vec::new(),
            scratch_locs: Vec::new(),
            scratch_locs_sorted: Vec::new(),
            scratch_burst: TenantBurst::default(),
            plan_epoch: 0,
            trial_deadline: None,
        }
    }
}

/// A compiled traversal: the per-call-invariant part of a prime/probe
/// traversal, computed once by [`Machine::compile_plan`].
///
/// Every experiment in the paper bottoms out in millions of traversals of
/// *fixed* eviction sets, yet the ad-hoc traverse path re-derives the same
/// VA→PA translations, slice-hash locations and sorted/deduped touched-set
/// list on every call. A plan captures all three up front; the
/// `*_traverse_plan` hot paths then go straight to noise catch-up and the
/// cache accesses. Traversing via a plan is **bit-identical** to traversing
/// the same addresses ad hoc: identical access order, identical noise
/// catch-up order (canonical sorted distinct sets), identical RNG stream.
///
/// Lifecycle:
///
/// * Plans are per-machine. They stay valid across [`Machine::reset_to`]
///   (snapshots keep the VA→PA lottery, so translations cannot change) but
///   are invalidated by [`Machine::reseed`], which redraws the frame lottery
///   for future allocations — recompile with [`Machine::compile_plan_into`]
///   after reseeding (the buffers are reused, so recompiles don't allocate
///   in steady state).
/// * A default-constructed plan is empty and never valid; compile before
///   traversing.
#[derive(Debug, Clone)]
pub struct TraversalPlan {
    /// The traversed virtual addresses, in traversal order.
    vas: Vec<VirtAddr>,
    /// Pre-translated physical lines, 1:1 with `vas`.
    lines: Vec<LineAddr>,
    /// Pre-computed LLC/SF locations, 1:1 with `lines`.
    locs: Vec<SetLocation>,
    /// The distinct touched locations in canonical sorted order (the noise
    /// catch-up order the ad-hoc path derives per call via sort + dedup).
    distinct: Vec<SetLocation>,
    /// The machine's plan epoch at compile time (see [`Machine::reseed`]).
    epoch: u64,
}

impl Default for TraversalPlan {
    fn default() -> Self {
        Self {
            vas: Vec::new(),
            lines: Vec::new(),
            locs: Vec::new(),
            distinct: Vec::new(),
            epoch: u64::MAX,
        }
    }
}

impl TraversalPlan {
    /// The planned addresses, in traversal order.
    pub fn addresses(&self) -> &[VirtAddr] {
        &self.vas
    }

    /// Number of planned accesses.
    pub fn len(&self) -> usize {
        self.vas.len()
    }

    /// True if the plan covers no addresses.
    pub fn is_empty(&self) -> bool {
        self.vas.is_empty()
    }

    /// The distinct LLC/SF sets the traversal touches, in the canonical
    /// (sorted) noise catch-up order.
    pub fn distinct_sets(&self) -> &[SetLocation] {
        &self.distinct
    }
}

/// A running victim request.
#[derive(Debug)]
struct ActiveRun {
    schedule: VictimSchedule,
    start: u64,
    next: usize,
}

#[derive(Debug)]
struct VictimRuntime {
    aspace: AddressSpace,
    program: Box<dyn VictimProgram>,
    active: Option<ActiveRun>,
    next_start: Option<u64>,
    auto_repeat: bool,
    request_gap: u64,
}

/// The simulated host machine.
#[derive(Debug)]
pub struct Machine {
    /// The shared hierarchy plus every co-resident tenant — the lazy
    /// statistical noise tenant and the event-scheduled background
    /// workloads (see [`HostSim`]).
    host: HostSim,
    latency: LatencyModel,
    clock: u64,
    rng: StdRng,
    attacker_aspace: AddressSpace,
    attacker_core: CoreId,
    helper_core: CoreId,
    helper_echo: bool,
    victim_core: CoreId,
    victim: Option<VictimRuntime>,
    victim_run_starts: Vec<u64>,
    stats: MachineStats,
    /// Reusable buffers for the traverse hot paths (probe strategies call
    /// them once per monitoring interval; allocating per call dominated the
    /// probe profile). Not part of snapshots: scratch contents are dead
    /// outside a single call.
    scratch_lines: Vec<LineAddr>,
    scratch_levels: Vec<HitLevel>,
    scratch_locs: Vec<SetLocation>,
    scratch_locs_sorted: Vec<SetLocation>,
    /// Reusable buffer tenant bursts are drawn into (same rationale as the
    /// other scratch buffers; not part of snapshots).
    scratch_burst: TenantBurst,
    /// Monotonic counter of [`Machine::reseed`] calls; a [`TraversalPlan`]
    /// is valid while its recorded epoch matches. Deliberately *not* part of
    /// snapshots and never rewound by `reset_to`: plans survive rewinds (the
    /// snapshot keeps the VA→PA lottery) and a restored epoch could alias a
    /// stale plan onto a machine whose lottery has since been redrawn.
    plan_epoch: u64,
    /// Armed per-trial virtual-time watchdog as `(deadline_cycle, budget)`;
    /// `None` when disarmed. Not part of snapshots (the campaign layer arms
    /// it per trial, after `reset_to`/`reseed`): see
    /// [`Machine::arm_trial_budget`].
    trial_deadline: Option<(u64, u64)>,
}

impl Machine {
    /// Starts building a machine for the given cache specification.
    pub fn builder(spec: CacheSpec) -> MachineBuilder {
        MachineBuilder::new(spec)
    }

    /// Convenience constructor with default latency and quiescent noise.
    pub fn new(spec: CacheSpec, seed: u64) -> Self {
        MachineBuilder::new(spec).seed(seed).build()
    }

    /// Current simulated cycle count ("rdtsc").
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// The cache specification of this machine.
    pub fn spec(&self) -> &CacheSpec {
        self.host.hierarchy.spec()
    }

    /// The latency model in force.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// The background-noise model in force.
    pub fn noise_model(&self) -> &NoiseModel {
        self.host.statistical.process.model()
    }

    /// The noise fidelity in force (see [`NoiseFidelity`]).
    pub fn noise_fidelity(&self) -> NoiseFidelity {
        self.host.statistical.process.fidelity()
    }

    /// The noise fidelity the simulation *actually runs at*: an `Aggregate`
    /// configuration degrades to exact per-event dispatch when the
    /// hierarchy's reuse predictor is active (see
    /// [`NoiseProcess::effective_fidelity`]). Report headers print this.
    pub fn effective_noise_fidelity(&self) -> NoiseFidelity {
        self.host.statistical.process.effective_fidelity()
    }

    /// Simulation work counters.
    pub fn stats(&self) -> MachineStats {
        self.stats
    }

    /// The configured background tenant population (empty for the legacy
    /// single-attacker/single-victim host).
    pub fn tenant_population(&self) -> &TenantPopulation {
        self.host.population()
    }

    /// Number of background tenants currently resident on the host
    /// (excludes slots waiting out a churn vacancy).
    pub fn tenants_present(&self) -> usize {
        self.host.tenants_present()
    }

    /// Total background-tenant arrivals: initial placements plus churn
    /// migrations since the last (re)seed.
    pub fn tenant_arrivals(&self) -> u64 {
        self.host.arrivals()
    }

    /// Enables or disables the helper thread that echoes every attacker
    /// access from a second core, forcing the touched lines into Shared state
    /// (and therefore into the LLC), as described in Section 4.2.
    pub fn set_helper_echo(&mut self, enabled: bool) {
        self.helper_echo = enabled;
    }

    /// Whether helper echoing is currently enabled.
    pub fn helper_echo(&self) -> bool {
        self.helper_echo
    }

    // ---- attacker memory management ---------------------------------------

    /// Allocates `count` pages of attacker memory and returns the base VA.
    pub fn alloc_attacker_pages(&mut self, count: usize) -> VirtAddr {
        self.attacker_aspace.allocate_pages(count)
    }

    /// Ground-truth (slice, set) location of an attacker VA in the LLC/SF.
    ///
    /// This is an *oracle* for validation and success-rate accounting; the
    /// attack algorithms themselves never rely on it.
    pub fn oracle_attacker_location(&self, va: VirtAddr) -> SetLocation {
        self.host.hierarchy.shared_location(self.attacker_line(va))
    }

    /// Ground-truth L2 set index of an attacker VA (oracle, validation only).
    pub fn oracle_attacker_l2_set(&self, va: VirtAddr) -> usize {
        self.host.hierarchy.l2_set(self.attacker_line(va))
    }

    /// Ground-truth (slice, set) location of a victim VA (oracle).
    ///
    /// # Panics
    ///
    /// Panics if no victim program is installed or the VA is unmapped.
    pub fn oracle_victim_location(&self, va: VirtAddr) -> SetLocation {
        let victim = self.victim.as_ref().expect("no victim installed");
        self.host.hierarchy.shared_location(victim.aspace.translate_unchecked(va).line())
    }

    // ---- attacker operations ----------------------------------------------

    /// Performs one untimed attacker load of `va`; returns the level that
    /// served it. Advances the clock by the access latency.
    pub fn access(&mut self, va: VirtAddr) -> HitLevel {
        let line = self.attacker_line(va);
        let loc = self.host.hierarchy.shared_location(line);
        self.prepare_set(loc);
        let level = self.do_attacker_access(line, loc);
        let cost = self.latency.level_latency(level) + self.latency.issue_overhead;
        let cost = self.latency.jittered(cost, &mut self.rng);
        self.tick(cost);
        level
    }

    /// Performs one *timed* attacker load of `va`; returns the measured
    /// latency in cycles (including timer overhead) and the serving level.
    pub fn timed_access(&mut self, va: VirtAddr) -> (u64, HitLevel) {
        let line = self.attacker_line(va);
        let loc = self.host.hierarchy.shared_location(line);
        self.prepare_set(loc);
        let level = self.do_attacker_access(line, loc);
        let raw = self.latency.level_latency(level) + self.latency.timer_overhead;
        let measured = self.latency.jittered(raw, &mut self.rng);
        self.tick(measured);
        (measured, level)
    }

    /// Traverses `vas` with overlapped (parallel) accesses, untimed.
    /// Returns the total cycles consumed.
    pub fn parallel_traverse(&mut self, vas: &[VirtAddr]) -> u64 {
        let levels = self.traverse(vas);
        let cost = self.latency.parallel_cost(&levels);
        self.scratch_levels = levels;
        let cost = self.latency.jittered(cost, &mut self.rng);
        self.tick(cost);
        cost
    }

    /// Traverses `vas` with overlapped accesses and *times the traversal*;
    /// returns the measured latency (including timer overhead).
    pub fn timed_parallel_traverse(&mut self, vas: &[VirtAddr]) -> u64 {
        let levels = self.traverse(vas);
        let raw = self.latency.parallel_cost(&levels) + self.latency.timer_overhead;
        self.scratch_levels = levels;
        let measured = self.latency.jittered(raw, &mut self.rng);
        self.tick(measured);
        measured
    }

    /// Traverses `vas` sequentially (pointer-chase style), untimed.
    /// Returns the total cycles consumed.
    pub fn sequential_traverse(&mut self, vas: &[VirtAddr]) -> u64 {
        let levels = self.traverse(vas);
        let cost = self.latency.sequential_cost(&levels);
        self.scratch_levels = levels;
        let cost = self.latency.jittered(cost, &mut self.rng);
        self.tick(cost);
        cost
    }

    /// Shared traverse core: translates `vas`, applies pending background
    /// noise to the touched sets, performs the accesses and returns the
    /// serving levels in the reusable scratch buffer (handed back by the
    /// caller via `self.scratch_levels` so repeated probes allocate nothing).
    /// The per-line shared locations computed for the noise catch-up are
    /// passed through to the hierarchy, so each access evaluates the slice
    /// hash exactly once.
    fn traverse(&mut self, vas: &[VirtAddr]) -> Vec<HitLevel> {
        let mut lines = std::mem::take(&mut self.scratch_lines);
        lines.clear();
        lines.extend(vas.iter().map(|&va| self.attacker_line(va)));
        self.prepare_sets(&lines);
        let locs = std::mem::take(&mut self.scratch_locs);
        let mut levels = std::mem::take(&mut self.scratch_levels);
        levels.clear();
        for (&l, &loc) in lines.iter().zip(&locs) {
            let level = self.do_attacker_access(l, loc);
            levels.push(level);
        }
        self.scratch_lines = lines;
        self.scratch_locs = locs;
        levels
    }

    // ---- compiled traversal plans -----------------------------------------

    /// Compiles `vas` into a [`TraversalPlan`]: VA→PA translation, slice-hash
    /// locations and the canonical sorted/deduped distinct-set list are
    /// computed once, so the `*_traverse_plan` hot paths skip all three.
    ///
    /// The plan is valid for this machine until the next [`Machine::reseed`];
    /// it survives [`Machine::reset_to`].
    pub fn compile_plan(&self, vas: &[VirtAddr]) -> TraversalPlan {
        let mut plan = TraversalPlan::default();
        self.compile_plan_into(vas, &mut plan);
        plan
    }

    /// [`Machine::compile_plan`] into an existing plan, reusing its buffers
    /// (the "plan arena" pattern: pruning loops that compile a fresh
    /// candidate subset per test keep one plan and recompile it in place,
    /// allocation-free in steady state).
    pub fn compile_plan_into(&self, vas: &[VirtAddr], plan: &mut TraversalPlan) {
        plan.vas.clear();
        plan.vas.extend_from_slice(vas);
        plan.lines.clear();
        plan.lines.extend(vas.iter().map(|&va| self.attacker_line(va)));
        plan.locs.clear();
        plan.locs.extend(plan.lines.iter().map(|&l| self.host.hierarchy.shared_location(l)));
        plan.distinct.clear();
        plan.distinct.extend_from_slice(&plan.locs);
        plan.distinct.sort_unstable();
        plan.distinct.dedup();
        plan.epoch = self.plan_epoch;
    }

    /// True if `plan` was compiled against this machine's current VA→PA
    /// lottery (i.e. no [`Machine::reseed`] happened since compilation).
    pub fn plan_is_current(&self, plan: &TraversalPlan) -> bool {
        plan.epoch == self.plan_epoch
    }

    /// [`Machine::parallel_traverse`] over a compiled plan.
    pub fn parallel_traverse_plan(&mut self, plan: &TraversalPlan) -> u64 {
        self.traverse_plan(plan);
        let cost = self.latency.parallel_cost(&self.scratch_levels);
        let cost = self.latency.jittered(cost, &mut self.rng);
        self.tick(cost);
        cost
    }

    /// [`Machine::timed_parallel_traverse`] over a compiled plan.
    pub fn timed_parallel_traverse_plan(&mut self, plan: &TraversalPlan) -> u64 {
        self.traverse_plan(plan);
        let raw = self.latency.parallel_cost(&self.scratch_levels) + self.latency.timer_overhead;
        let measured = self.latency.jittered(raw, &mut self.rng);
        self.tick(measured);
        measured
    }

    /// [`Machine::sequential_traverse`] over a compiled plan.
    pub fn sequential_traverse_plan(&mut self, plan: &TraversalPlan) -> u64 {
        self.traverse_plan(plan);
        let cost = self.latency.sequential_cost(&self.scratch_levels);
        let cost = self.latency.jittered(cost, &mut self.rng);
        self.tick(cost);
        cost
    }

    /// Plan-based traverse core: applies pending background noise to the
    /// plan's pre-sorted distinct sets and performs the accesses with the
    /// pre-computed locations, leaving the serving levels in
    /// `scratch_levels`. No translation, slice hash, sort or heap allocation
    /// on this path.
    ///
    /// # Panics
    ///
    /// Panics if the plan is stale (compiled before the last
    /// [`Machine::reseed`]) or was never compiled.
    fn traverse_plan(&mut self, plan: &TraversalPlan) {
        assert!(
            plan.epoch == self.plan_epoch,
            "stale TraversalPlan (compiled at epoch {}, machine at {}): recompile after reseed",
            plan.epoch,
            self.plan_epoch
        );
        for &loc in &plan.distinct {
            self.prepare_set(loc);
        }
        self.scratch_levels.clear();
        for (&line, &loc) in plan.lines.iter().zip(&plan.locs) {
            let level = self.do_attacker_access(line, loc);
            self.scratch_levels.push(level);
        }
    }

    /// Re-establishes `va` as the eviction candidate (next victim) of its
    /// LLC/SF set without touching it.
    ///
    /// This models the effect of Prime+Scope's replacement-state priming
    /// pattern (Section 6.1 of the paper): after the pattern, the chosen line
    /// is displaced by the very next conflicting insertion even though the
    /// attacker keeps probing it. The operation costs a small fixed number of
    /// cycles (the priming accesses are already charged by the caller's
    /// strategy; this just marks the state).
    pub fn prime_as_victim(&mut self, va: VirtAddr) {
        let line = self.attacker_line(va);
        self.host.hierarchy.prime_as_victim(line);
    }

    /// Performs a Prime+Scope-style *scope check* of `va`: a timed access
    /// that additionally restores the line as the eviction candidate of its
    /// LLC/SF set (see [`Machine::prime_as_victim`]).
    pub fn scope_check(&mut self, va: VirtAddr) -> (u64, HitLevel) {
        let result = self.timed_access(va);
        let line = self.attacker_line(va);
        self.host.hierarchy.prime_as_victim(line);
        result
    }

    /// Flushes an attacker line from the whole hierarchy (`clflush`).
    pub fn clflush(&mut self, va: VirtAddr) {
        let line = self.attacker_line(va);
        self.host.hierarchy.clflush(line);
        let cost = self.latency.jittered(self.latency.clflush, &mut self.rng);
        self.tick(cost);
    }

    /// Burns `cycles` cycles of attacker compute without touching memory.
    pub fn idle(&mut self, cycles: u64) {
        self.tick(cycles);
    }

    // ---- victim management -------------------------------------------------

    /// Installs a victim program on its own core with its own address space.
    ///
    /// If `auto_repeat` is true the victim serves requests back-to-back with
    /// `request_gap` idle cycles between them (a busy service); otherwise a
    /// run only starts when [`Machine::request_victim`] is called.
    pub fn install_victim(
        &mut self,
        mut program: Box<dyn VictimProgram>,
        auto_repeat: bool,
        request_gap: u64,
    ) {
        let mut aspace = AddressSpace::with_seed(self.rng_seed() ^ 0x71c7);
        program.setup(&mut aspace);
        self.victim = Some(VictimRuntime {
            aspace,
            program,
            active: None,
            next_start: if auto_repeat { Some(self.clock) } else { None },
            auto_repeat,
            request_gap,
        });
    }

    /// Sends one request to the victim service (no-op if `auto_repeat`).
    ///
    /// The run starts after a short dispatch delay, mimicking request routing.
    pub fn request_victim(&mut self) {
        let now = self.clock;
        if let Some(v) = &mut self.victim {
            if v.active.is_none() && v.next_start.is_none() {
                v.next_start = Some(now + 2_000);
            }
        }
    }

    /// Number of victim requests completed so far.
    pub fn victim_runs(&self) -> u64 {
        self.stats.victim_runs
    }

    /// Absolute start cycle of every victim run begun so far (completed or
    /// in progress), in order. Experiment harnesses use this to align
    /// attacker-observed traces with victim ground truth.
    pub fn victim_run_starts(&self) -> &[u64] {
        &self.victim_run_starts
    }

    /// True if the victim currently has a run in progress or queued.
    pub fn victim_busy(&self) -> bool {
        self.victim
            .as_ref()
            .map(|v| v.active.is_some() || v.next_start.is_some())
            .unwrap_or(false)
    }

    // ---- snapshot / reset ---------------------------------------------------

    /// Captures the complete machine state — hierarchy contents, replacement
    /// metadata, paging, noise bookkeeping, clock, RNG position and counters —
    /// as an immutable [`MachineSnapshot`].
    ///
    /// # Panics
    ///
    /// Panics if a victim program is installed: victims are boxed state
    /// machines and are intentionally re-installed per trial rather than
    /// snapshotted (see [`MachineSnapshot`]).
    pub fn snapshot(&self) -> MachineSnapshot {
        assert!(
            self.victim.is_none(),
            "snapshot a machine before installing a victim; install victims per trial"
        );
        MachineSnapshot {
            host: self.host.clone(),
            latency: self.latency.clone(),
            clock: self.clock,
            rng: self.rng.clone(),
            attacker_aspace: self.attacker_aspace.clone(),
            attacker_core: self.attacker_core,
            helper_core: self.helper_core,
            helper_echo: self.helper_echo,
            victim_core: self.victim_core,
            stats: self.stats,
        }
    }

    /// Rewinds this machine to `snapshot`, dropping any installed victim and
    /// run history. After the call the machine is indistinguishable from one
    /// returned by [`MachineSnapshot::to_machine`].
    ///
    /// This is the per-trial hot path of the `llc-fleet` executor, so the
    /// copy is performed **in place**: every tag array, replacement box,
    /// page-table and noise-map allocation of `self` is reused. The machine
    /// must have been created from this snapshot's specification (snapshot
    /// restores across different specs are a programming error and panic in
    /// debug builds).
    pub fn reset_to(&mut self, snapshot: &MachineSnapshot) {
        self.host.restore_from(&snapshot.host);
        self.latency.clone_from(&snapshot.latency);
        self.clock = snapshot.clock;
        self.rng = snapshot.rng.clone();
        self.attacker_aspace.restore_from(&snapshot.attacker_aspace);
        self.attacker_core = snapshot.attacker_core;
        self.helper_core = snapshot.helper_core;
        self.helper_echo = snapshot.helper_echo;
        self.victim_core = snapshot.victim_core;
        self.victim = None;
        self.victim_run_starts.clear();
        self.stats = snapshot.stats;
    }

    /// Reseeds the machine's stochastic streams: background noise and
    /// latency jitter, plus the attacker address space's frame lottery
    /// (future allocations only; existing mappings keep their frames).
    ///
    /// After a [`Machine::reset_to`] every trial would otherwise replay the
    /// identical noise, jitter and VA→PA lottery streams; reseeding with a
    /// per-trial seed (see `llc-fleet`'s seed derivation) keeps trials
    /// statistically independent while remaining fully deterministic.
    /// Reseeding also invalidates every [`TraversalPlan`] compiled against
    /// this machine (the frame lottery behind future allocations changes);
    /// recompile plans after reseeding.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(stream_seed(seed, RESEED_RNG_STREAM));
        self.attacker_aspace.reseed(stream_seed(seed, RESEED_ASPACE_STREAM));
        // Background tenants re-derive their per-slot sub-streams, redraw
        // their working sets and rebuild the event queue as of now. A no-op
        // (zero RNG draws) for the empty population.
        self.host.reseed_tenants(stream_seed(seed, RESEED_TENANT_STREAM), self.clock);
        self.plan_epoch += 1;
    }

    // ---- trial watchdog -----------------------------------------------------

    /// Arms the per-trial virtual-time watchdog: if the simulated clock would
    /// advance more than `budget` cycles past its current value, the machine
    /// panics with the stable message `"trial budget exhausted: <budget>
    /// virtual cycles"`. The campaign layer's `catch_unwind` retry/quarantine
    /// path converts that panic into a quarantined trial, so a runaway trial
    /// (pathological parameter cell, livelocked probe loop) degrades to one
    /// quarantine entry instead of a hung fleet.
    ///
    /// The check runs at the single clock-advance choke point, so it costs
    /// one comparison per timed operation. Because virtual time is a pure
    /// function of the trial's accesses, the panic fires at the identical
    /// point on every retry of the same seed — a budget overrun is by
    /// construction a *deterministic* failure, which is exactly what the
    /// retry loop needs to quarantine it. Re-arm per trial (after
    /// `reset_to`/`reseed`); the deadline is not part of snapshots.
    pub fn arm_trial_budget(&mut self, budget: u64) {
        self.trial_deadline = Some((self.clock.saturating_add(budget), budget));
    }

    /// Disarms the watchdog armed by [`Machine::arm_trial_budget`].
    pub fn disarm_trial_budget(&mut self) {
        self.trial_deadline = None;
    }

    // ---- internals ----------------------------------------------------------

    fn rng_seed(&mut self) -> u64 {
        use rand::Rng;
        self.rng.gen()
    }

    fn attacker_line(&self, va: VirtAddr) -> LineAddr {
        self.attacker_aspace.translate_unchecked(va).line()
    }

    /// Applies background noise to the shared sets of the given lines,
    /// leaving the per-line locations in `scratch_locs` (1:1 with `lines`)
    /// for the caller to thread into the accesses.
    ///
    /// Noise catch-up runs over the distinct locations in canonical sorted
    /// order so the RNG stream does not depend on the traversal order (the
    /// executor's determinism guarantee relies on this).
    fn prepare_sets(&mut self, lines: &[LineAddr]) {
        let mut locs = std::mem::take(&mut self.scratch_locs);
        locs.clear();
        locs.extend(lines.iter().map(|&l| self.host.hierarchy.shared_location(l)));
        let mut sorted = std::mem::take(&mut self.scratch_locs_sorted);
        sorted.clear();
        sorted.extend_from_slice(&locs);
        sorted.sort_unstable();
        sorted.dedup();
        for &loc in &sorted {
            self.prepare_set(loc);
        }
        self.scratch_locs_sorted = sorted;
        self.scratch_locs = locs;
    }

    /// Applies pending background noise to one shared set.
    fn prepare_set(&mut self, loc: SetLocation) {
        self.prepare_set_at(loc, self.clock);
    }

    /// Applies pending background noise to one shared set as of cycle `at`
    /// (the victim replay synchronises sets at each access's own timestamp,
    /// not the post-tick clock).
    ///
    /// This — the innermost step of every traversal — performs no heap
    /// allocation and borrows each set view once per burst, in both
    /// fidelities. Exact mode borrows the noise process's event scratch
    /// buffer and replays it through the hierarchy's bulk event path;
    /// aggregate mode draws only the per-structure insertion counts and
    /// applies them as one evict-and-fill transition.
    fn prepare_set_at(&mut self, loc: SetLocation, at: u64) {
        match self.host.statistical.process.fidelity() {
            NoiseFidelity::Exact => {
                let events = self.host.statistical.process.catch_up(loc, at, &mut self.rng);
                self.stats.noise_events += events.len() as u64;
                self.host.hierarchy.noise_access_bulk(loc, events.iter().map(|e| e.shared));
            }
            NoiseFidelity::Aggregate => {
                let advance = self.host.statistical.process.catch_up_aggregate(loc, at, &mut self.rng);
                self.stats.noise_events += advance.total();
                self.host.hierarchy.noise_advance_bulk(loc, advance.llc, advance.sf);
            }
        }
    }

    fn do_attacker_access(&mut self, line: LineAddr, loc: SetLocation) -> HitLevel {
        let outcome = self.host.hierarchy.access_at(self.attacker_core, line, loc, AccessKind::Read);
        self.stats.attacker_accesses += 1;
        if self.helper_echo {
            // The helper thread repeats the access from another core shortly
            // afterwards, turning the line Shared and pushing it to the LLC.
            self.host.hierarchy.access_at(self.helper_core, line, loc, AccessKind::Read);
            self.stats.attacker_accesses += 1;
        }
        outcome.level
    }

    /// Advances the clock by `cost`, replaying victim activity and scheduled
    /// tenant events that happen in the meantime.
    fn tick(&mut self, cost: u64) {
        let target = self.clock + cost;
        if let Some((deadline, budget)) = self.trial_deadline {
            // Deterministic by construction: the same trial issues the same
            // timed operations, so the overrun fires at the same access with
            // the same payload on every retry.
            assert!(target <= deadline, "trial budget exhausted: {budget} virtual cycles");
        }
        if self.host.has_scheduled() {
            self.advance_host(target);
        } else {
            // The legacy path: no background tenants, the event queue is
            // empty for the whole simulation and only the victim replays.
            self.advance_victim(target);
        }
        self.clock = target;
    }

    /// Interleaves queued tenant events with victim replay in timestamp
    /// order up to `to`. Ties resolve victim-first: the victim's accesses at
    /// cycle `t` land before any tenant burst scheduled at `t`, matching the
    /// pre-refactor ordering where victim replay was the only timed agent.
    fn advance_host(&mut self, to: u64) {
        while let Some(at) = self.host.next_event_at(to) {
            self.advance_victim(at);
            let event = self.host.pop_event();
            let mut burst = std::mem::take(&mut self.scratch_burst);
            self.host.step_tenant(event, &mut burst);
            self.apply_tenant_burst(&mut burst, at);
            self.scratch_burst = burst;
        }
        self.advance_victim(to);
    }

    /// Lands one tenant burst at cycle `at`: statistical catch-up over the
    /// burst's distinct sets first (canonical sorted order, same discipline
    /// as attacker traversals and victim replay), then the burst's accesses
    /// in posting order, with consecutive same-set runs applied through one
    /// borrowed set view each.
    fn apply_tenant_burst(&mut self, burst: &mut TenantBurst, at: u64) {
        if burst.accesses.is_empty() {
            return;
        }
        burst.locs.clear();
        burst.locs.extend(burst.accesses.iter().map(|&(loc, _)| loc));
        burst.locs.sort_unstable();
        burst.locs.dedup();
        for &loc in &burst.locs {
            self.prepare_set_at(loc, at);
        }
        let accesses = &burst.accesses;
        let mut i = 0;
        while i < accesses.len() {
            let loc = accesses[i].0;
            let mut j = i + 1;
            while j < accesses.len() && accesses[j].0 == loc {
                j += 1;
            }
            self.host.hierarchy.noise_access_bulk(loc, accesses[i..j].iter().map(|&(_, s)| s));
            i = j;
        }
        self.stats.tenant_accesses += accesses.len() as u64;
    }

    fn advance_victim(&mut self, to: u64) {
        // Take the runtime out to sidestep borrow conflicts with &mut self.
        let Some(mut v) = self.victim.take() else {
            return;
        };
        loop {
            if let Some(run) = &mut v.active {
                let mut finished = false;
                while run.next < run.schedule.accesses().len() {
                    let acc = run.schedule.accesses()[run.next];
                    let at = run.start + acc.offset;
                    if at > to {
                        break;
                    }
                    let line = v.aspace.translate_unchecked(acc.va).line();
                    // Background noise also hits the victim's sets.
                    let loc = self.host.hierarchy.shared_location(line);
                    self.prepare_set_at(loc, at);
                    self.host.hierarchy.access_at(self.victim_core, line, loc, AccessKind::Read);
                    self.stats.victim_accesses += 1;
                    run.next += 1;
                }
                let end = run.start + run.schedule.duration();
                if run.next >= run.schedule.accesses().len() && end <= to {
                    self.stats.victim_runs += 1;
                    let gap = v.request_gap;
                    let auto = v.auto_repeat;
                    v.active = None;
                    if auto {
                        v.next_start = Some(end + gap);
                    }
                    finished = true;
                }
                if !finished {
                    break;
                }
            } else if let Some(start) = v.next_start {
                if start <= to {
                    let schedule = v.program.on_request();
                    v.next_start = None;
                    v.active = Some(ActiveRun { schedule, start, next: 0 });
                    self.victim_run_starts.push(start);
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        self.victim = Some(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::PeriodicToucher;
    use llc_cache_model::CacheSpec;

    fn quiet_machine() -> Machine {
        Machine::builder(CacheSpec::tiny_test())
            .noise(NoiseModel::silent())
            .seed(3)
            .build()
    }

    /// Aggregate fidelity + an active reuse predictor runs per-event in the
    /// hierarchy, and the machine must report that as an effectively exact
    /// run (the bench layer prints this in report headers).
    #[test]
    fn reuse_predictor_degrades_effective_fidelity() {
        let aggregate = |reuse: f64| {
            Machine::builder(CacheSpec::tiny_test())
                .noise(NoiseModel::cloud_run())
                .noise_fidelity(NoiseFidelity::Aggregate)
                .hierarchy_options(HierarchyOptions { reuse_insert_probability: reuse })
                .seed(3)
                .build()
        };
        let clean = aggregate(0.0);
        assert_eq!(clean.noise_fidelity(), NoiseFidelity::Aggregate);
        assert_eq!(clean.effective_noise_fidelity(), NoiseFidelity::Aggregate);

        let degraded = aggregate(0.3);
        assert_eq!(degraded.noise_fidelity(), NoiseFidelity::Aggregate);
        assert_eq!(degraded.effective_noise_fidelity(), NoiseFidelity::Exact);

        // The flag survives the snapshot/rewind cycle every fleet trial uses.
        let snapshot = degraded.snapshot();
        let mut rewound = snapshot.to_machine();
        rewound.reset_to(&snapshot);
        assert_eq!(rewound.effective_noise_fidelity(), NoiseFidelity::Exact);
    }

    #[test]
    fn first_access_slow_second_fast() {
        let mut m = quiet_machine();
        let base = m.alloc_attacker_pages(1);
        let (miss, level) = m.timed_access(base);
        assert_eq!(level, HitLevel::Memory);
        let (hit, level2) = m.timed_access(base);
        assert_eq!(level2, HitLevel::L1);
        assert!(miss > hit, "miss {miss} should be slower than hit {hit}");
        assert!(hit < m.latency_model().private_miss_threshold());
        assert!(miss > m.latency_model().llc_miss_threshold());
    }

    #[test]
    fn clock_advances_with_every_operation() {
        let mut m = quiet_machine();
        let base = m.alloc_attacker_pages(1);
        let t0 = m.now();
        m.access(base);
        assert!(m.now() > t0);
        let t1 = m.now();
        m.idle(500);
        assert_eq!(m.now(), t1 + 500);
    }

    #[test]
    fn helper_echo_moves_lines_into_llc() {
        let mut m = quiet_machine();
        let base = m.alloc_attacker_pages(1);
        m.set_helper_echo(true);
        m.access(base);
        // The second access should now be served from a local cache, and
        // the line must be in Shared state (observable by disabling echo and
        // timing after a flush of private copies is not possible here, so we
        // check via a fresh timed access level instead).
        let (_lat, level) = m.timed_access(base);
        assert!(level == HitLevel::L1 || level == HitLevel::L2);
    }

    #[test]
    fn parallel_traverse_faster_than_sequential() {
        let mut m = quiet_machine();
        let base = m.alloc_attacker_pages(64);
        let vas: Vec<VirtAddr> = (0..64).map(|i| base.offset(i * 4096)).collect();
        // Cold misses both times: flush between runs by using disjoint lines.
        let cost_par = m.parallel_traverse(&vas);
        let vas2: Vec<VirtAddr> = (0..64).map(|i| base.offset(i * 4096 + 64)).collect();
        let cost_seq = m.sequential_traverse(&vas2);
        assert!(cost_par * 3 < cost_seq, "parallel {cost_par} vs sequential {cost_seq}");
    }

    #[test]
    fn victim_periodic_accesses_show_up_in_time() {
        let mut m = quiet_machine();
        let toucher = PeriodicToucher::new(1_000, 10, 0x240);
        m.install_victim(Box::new(toucher), true, 0);
        // Let simulated time pass; the victim should complete runs.
        m.idle(50_000);
        assert!(m.victim_runs() >= 1, "victim should have completed at least one run");
        assert!(m.stats().victim_accesses >= 10);
    }

    #[test]
    fn request_victim_triggers_single_run() {
        let mut m = quiet_machine();
        let toucher = PeriodicToucher::new(100, 5, 0);
        m.install_victim(Box::new(toucher), false, 0);
        m.idle(10_000);
        assert_eq!(m.victim_runs(), 0, "no run without a request");
        m.request_victim();
        m.idle(10_000);
        assert_eq!(m.victim_runs(), 1);
        assert!(!m.victim_busy());
    }

    #[test]
    fn noise_fills_attacker_monitored_set_over_time() {
        let mut m = Machine::builder(CacheSpec::tiny_test())
            .noise(NoiseModel::cloud_run())
            .seed(5)
            .build();
        let base = m.alloc_attacker_pages(1);
        // Bring the line into the private cache.
        m.access(base);
        let (hit, _) = m.timed_access(base);
        assert!(hit < m.latency_model().private_miss_threshold());
        // Wait ~10 ms of simulated time: the noise should have displaced the
        // attacker's SF entry and back-invalidated the line.
        m.idle(20_000_000);
        let (lat, level) = m.timed_access(base);
        assert!(
            level != HitLevel::L1 && lat > m.latency_model().private_miss_threshold(),
            "noise should evict the attacker's line (level {level:?}, lat {lat})"
        );
    }

    #[test]
    fn oracle_locations_are_consistent() {
        let mut m = quiet_machine();
        let base = m.alloc_attacker_pages(2);
        let a = m.oracle_attacker_location(base);
        let b = m.oracle_attacker_location(base.offset(64));
        // Different line offsets in the same page map to different sets.
        assert_ne!(a, b);
        assert_eq!(a, m.oracle_attacker_location(base));
    }

    #[test]
    fn stats_count_work() {
        let mut m = quiet_machine();
        let base = m.alloc_attacker_pages(1);
        m.access(base);
        m.access(base);
        assert_eq!(m.stats().attacker_accesses, 2);
    }

    #[test]
    #[should_panic]
    fn victim_oracle_without_victim_panics() {
        let m = quiet_machine();
        let _ = m.oracle_victim_location(VirtAddr::new(0x1000));
    }

    /// Drives `m` through a fixed access script and returns every observable:
    /// measured latencies, serving levels and final clock.
    fn observe_script(m: &mut Machine, base: VirtAddr) -> (Vec<(u64, HitLevel)>, u64) {
        let mut out = Vec::new();
        for i in 0..32u64 {
            out.push(m.timed_access(base.offset((i % 7) * 64)));
        }
        m.idle(10_000);
        for i in 0..16u64 {
            out.push(m.timed_access(base.offset(i * 4096)));
        }
        (out, m.now())
    }

    #[test]
    fn snapshot_restore_replays_bit_identically() {
        let mut m = Machine::builder(CacheSpec::tiny_test())
            .noise(NoiseModel::cloud_run())
            .seed(11)
            .build();
        let base = m.alloc_attacker_pages(16);
        // Warm the machine so the snapshot captures non-trivial state.
        for i in 0..8u64 {
            m.access(base.offset(i * 64));
        }
        let snap = m.snapshot();

        let (a, clock_a) = observe_script(&mut m, base);
        m.reset_to(&snap);
        let (b, clock_b) = observe_script(&mut m, base);
        let mut fresh = snap.to_machine();
        let (c, clock_c) = observe_script(&mut fresh, base);

        assert_eq!(a, b, "reset_to must rewind every observable");
        assert_eq!(a, c, "to_machine must materialise the identical state");
        assert_eq!(clock_a, clock_b);
        assert_eq!(clock_a, clock_c);
    }

    #[test]
    fn reseed_diverges_noise_and_jitter_streams() {
        let mut m = Machine::builder(CacheSpec::tiny_test())
            .noise(NoiseModel::cloud_run())
            .seed(11)
            .build();
        let base = m.alloc_attacker_pages(16);
        let snap = m.snapshot();
        let (a, _) = observe_script(&mut m, base);
        m.reset_to(&snap);
        m.reseed(0xfee1);
        let (b, _) = observe_script(&mut m, base);
        assert_ne!(a, b, "a different trial seed must produce a different stream");
        // And the reseeded stream is itself reproducible.
        m.reset_to(&snap);
        m.reseed(0xfee1);
        let (b2, _) = observe_script(&mut m, base);
        assert_eq!(b, b2);
    }

    #[test]
    fn reseed_redraws_the_frame_lottery_for_future_allocations() {
        let mut m = quiet_machine();
        let snap = m.snapshot();
        let locations = |m: &mut Machine, seed: u64| -> Vec<_> {
            m.reset_to(&snap);
            m.reseed(seed);
            let base = m.alloc_attacker_pages(4);
            (0..4).map(|i| m.oracle_attacker_location(base.offset(i * 4096))).collect()
        };
        let a = locations(&mut m, 1);
        let b = locations(&mut m, 2);
        assert_ne!(a, b, "different trial seeds must sample different physical layouts");
        assert_eq!(b, locations(&mut m, 2), "the lottery must stay deterministic per seed");
    }

    #[test]
    fn reset_drops_victim_and_run_history() {
        let mut m = quiet_machine();
        let snap = m.snapshot();
        let toucher = PeriodicToucher::new(1_000, 10, 0x240);
        m.install_victim(Box::new(toucher), true, 0);
        m.idle(50_000);
        assert!(m.victim_runs() >= 1);
        m.reset_to(&snap);
        assert_eq!(m.victim_runs(), 0);
        assert!(m.victim_run_starts().is_empty());
        assert!(!m.victim_busy());
    }

    #[test]
    #[should_panic]
    fn snapshot_with_victim_panics() {
        let mut m = quiet_machine();
        m.install_victim(Box::new(PeriodicToucher::new(100, 5, 0)), true, 0);
        let _ = m.snapshot();
    }

    #[test]
    fn trial_budget_converts_runaway_time_into_a_deterministic_panic() {
        let overrun_at = |mut m: Machine| -> (u64, String) {
            m.arm_trial_budget(500);
            let mut steps = 0u64;
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
                m.idle(100);
                steps += 1;
            }))
            .unwrap_err();
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default();
            (steps, msg)
        };
        let (steps_a, msg_a) = overrun_at(quiet_machine());
        let (steps_b, msg_b) = overrun_at(quiet_machine());
        // Same machine, same accesses: the overrun fires at the same step
        // with the same stable payload — the retry loop's quarantine relies
        // on exactly this.
        assert_eq!((steps_a, &msg_a), (steps_b, &msg_b));
        assert!(msg_a.contains("trial budget exhausted: 500 virtual cycles"), "{msg_a}");

        // Disarming (or never arming) lets the clock run free.
        let mut free = quiet_machine();
        free.arm_trial_budget(500);
        free.disarm_trial_budget();
        free.idle(10_000);
        assert!(free.now() >= 10_000);
    }

    #[test]
    fn snapshot_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MachineSnapshot>();
        fn assert_send<T: Send>() {}
        assert_send::<Machine>();
    }
}
