//! Victim access schedules: the memory-access behaviour of the co-located
//! victim service, expressed as a timed sequence of virtual-address touches.
//!
//! The attack never sees victim code directly; it only observes the cache
//! footprint of the victim's execution. A [`VictimSchedule`] is that
//! footprint for one request: a list of `(cycle offset, virtual address)`
//! pairs. [`VictimProgram`] produces a fresh schedule every time the victim
//! service handles a request (e.g. one ECDSA signing with a fresh nonce).

use llc_cache_model::{AddressSpace, VirtAddr};

/// One victim memory access, relative to the start of the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledAccess {
    /// Cycle offset from the start of the run.
    pub offset: u64,
    /// Victim virtual address touched.
    pub va: VirtAddr,
}

/// The complete, ordered access schedule of one victim request.
#[derive(Debug, Clone, Default)]
pub struct VictimSchedule {
    accesses: Vec<ScheduledAccess>,
    duration: u64,
}

impl VictimSchedule {
    /// Creates a schedule from a list of accesses and a total run duration.
    ///
    /// Accesses are sorted by offset; `duration` is clamped to at least the
    /// last access offset.
    pub fn new(mut accesses: Vec<ScheduledAccess>, duration: u64) -> Self {
        accesses.sort_by_key(|a| a.offset);
        let min_duration = accesses.last().map(|a| a.offset).unwrap_or(0);
        Self { accesses, duration: duration.max(min_duration) }
    }

    /// An empty schedule of the given duration (victim busy on non-monitored
    /// work, e.g. request parsing).
    pub fn idle(duration: u64) -> Self {
        Self { accesses: Vec::new(), duration }
    }

    /// The accesses, ordered by offset.
    pub fn accesses(&self) -> &[ScheduledAccess] {
        &self.accesses
    }

    /// Total duration of the run in cycles.
    pub fn duration(&self) -> u64 {
        self.duration
    }

    /// Number of accesses in the schedule.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True if the schedule contains no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Appends another schedule after this one, shifting its offsets.
    pub fn append(&mut self, other: &VictimSchedule) {
        let base = self.duration;
        self.accesses
            .extend(other.accesses.iter().map(|a| ScheduledAccess { offset: base + a.offset, va: a.va }));
        self.duration += other.duration;
    }
}

/// A victim service: owns victim memory and produces one [`VictimSchedule`]
/// per request.
pub trait VictimProgram: std::fmt::Debug + Send {
    /// Called once when the program is installed on a machine, with the
    /// victim's private address space. Implementations allocate their code
    /// and data pages here.
    fn setup(&mut self, aspace: &mut AddressSpace);

    /// Called whenever the victim service receives a request; returns the
    /// access schedule of that request.
    fn on_request(&mut self) -> VictimSchedule;
}

/// A simple victim/sender that periodically touches a single line.
///
/// This is the "sender" of the covert-channel experiment used to evaluate
/// monitoring strategies (Figure 6): it accesses the agreed-upon line every
/// `interval` cycles, `count` times per request.
#[derive(Debug)]
pub struct PeriodicToucher {
    interval: u64,
    count: usize,
    pages: usize,
    target_page_offset: u64,
    va: Option<VirtAddr>,
}

impl PeriodicToucher {
    /// Creates a sender that touches its line every `interval` cycles,
    /// `count` times per request, at the given page offset.
    pub fn new(interval: u64, count: usize, target_page_offset: u64) -> Self {
        Self { interval, count, pages: 1, target_page_offset, va: None }
    }

    /// The virtual address of the touched line (available after `setup`).
    pub fn target_va(&self) -> Option<VirtAddr> {
        self.va
    }
}

impl VictimProgram for PeriodicToucher {
    fn setup(&mut self, aspace: &mut AddressSpace) {
        let base = aspace.allocate_pages(self.pages);
        self.va = Some(base.offset(self.target_page_offset));
    }

    fn on_request(&mut self) -> VictimSchedule {
        let va = self.va.expect("setup must run before on_request");
        let accesses = (0..self.count)
            .map(|i| ScheduledAccess { offset: i as u64 * self.interval, va })
            .collect();
        VictimSchedule::new(accesses, self.count as u64 * self.interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_accesses_and_clamps_duration() {
        let s = VictimSchedule::new(
            vec![
                ScheduledAccess { offset: 500, va: VirtAddr::new(0x40) },
                ScheduledAccess { offset: 100, va: VirtAddr::new(0x80) },
            ],
            10,
        );
        assert_eq!(s.accesses()[0].offset, 100);
        assert_eq!(s.duration(), 500);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn append_shifts_offsets() {
        let mut a = VictimSchedule::new(
            vec![ScheduledAccess { offset: 10, va: VirtAddr::new(0) }],
            100,
        );
        let b = VictimSchedule::new(
            vec![ScheduledAccess { offset: 5, va: VirtAddr::new(64) }],
            50,
        );
        a.append(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.accesses()[1].offset, 105);
        assert_eq!(a.duration(), 150);
    }

    #[test]
    fn idle_schedule_is_empty() {
        let s = VictimSchedule::idle(1000);
        assert!(s.is_empty());
        assert_eq!(s.duration(), 1000);
    }

    #[test]
    fn periodic_toucher_produces_expected_schedule() {
        let mut aspace = AddressSpace::with_seed(1);
        let mut p = PeriodicToucher::new(2000, 5, 0x240);
        p.setup(&mut aspace);
        let va = p.target_va().expect("set up");
        assert_eq!(va.page_offset(), 0x240);
        let s = p.on_request();
        assert_eq!(s.len(), 5);
        assert_eq!(s.accesses()[4].offset, 8000);
        assert!(s.accesses().iter().all(|a| a.va == va));
    }
}
