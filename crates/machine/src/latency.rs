//! Latency model: converts hit levels into cycle costs, including the
//! memory-level-parallelism (MLP) model behind *parallel* access patterns.
//!
//! The paper's key observation (Sections 4.1 and 6.1) is that overlapping
//! accesses to many candidate addresses exploits MLP and makes both
//! `TestEviction` and probing an order of magnitude faster than pointer-chase
//! style sequential accesses. The model here charges:
//!
//! * sequential accesses: the full latency of every access, plus a small
//!   per-access issue overhead;
//! * parallel (overlapped) accesses: one issue overhead per access, the
//!   latency of the slowest access, and the remaining latencies divided by
//!   the MLP width (outstanding-miss capacity).
//!
//! Constants default to values calibrated so that the simulated Skylake-SP
//! reproduces the order of magnitude of the paper's Table 5 latencies at
//! 2 GHz (Parallel prime ≈ 1.1k cycles, PS-Flush prime ≈ 6k cycles, probe
//! ≈ 100–120 cycles).

use llc_cache_model::HitLevel;
use rand::Rng;

/// Cycle costs of the memory system and measurement instructions.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// L1 hit latency.
    pub l1_hit: u64,
    /// L2 hit latency.
    pub l2_hit: u64,
    /// LLC hit latency (includes mesh/slice traversal).
    pub llc_hit: u64,
    /// Cross-core snoop latency (line was private to another core).
    pub sf_snoop: u64,
    /// DRAM access latency.
    pub memory: u64,
    /// Cost of a `clflush` instruction.
    pub clflush: u64,
    /// Fixed cost of a timed measurement (serialising `rdtscp` pairs).
    pub timer_overhead: u64,
    /// Per-access issue/AGU overhead charged for every access.
    pub issue_overhead: u64,
    /// Number of outstanding misses the core can overlap (MSHR capacity).
    pub mlp_width: u64,
    /// Relative jitter applied to every latency sample (0.0 disables).
    pub jitter: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            l1_hit: 4,
            l2_hit: 14,
            llc_hit: 62,
            sf_snoop: 84,
            memory: 190,
            clflush: 110,
            timer_overhead: 88,
            issue_overhead: 6,
            mlp_width: 10,
            jitter: 0.04,
        }
    }
}

impl LatencyModel {
    /// Latency of a single untimed access served at `level`, without jitter.
    pub fn level_latency(&self, level: HitLevel) -> u64 {
        match level {
            HitLevel::L1 => self.l1_hit,
            HitLevel::L2 => self.l2_hit,
            HitLevel::Llc => self.llc_hit,
            HitLevel::SfSnoop => self.sf_snoop,
            HitLevel::Memory => self.memory,
        }
    }

    /// Applies multiplicative jitter to a latency sample.
    pub fn jittered(&self, base: u64, rng: &mut impl Rng) -> u64 {
        if self.jitter <= 0.0 {
            return base;
        }
        let factor = 1.0 + rng.gen_range(-self.jitter..self.jitter);
        ((base as f64) * factor).round().max(1.0) as u64
    }

    /// Total cycles consumed by a *sequential* traversal of accesses served at
    /// the given levels (pointer-chase style: no overlap).
    pub fn sequential_cost(&self, levels: &[HitLevel]) -> u64 {
        levels
            .iter()
            .map(|&l| self.level_latency(l) + self.issue_overhead)
            .sum()
    }

    /// Total cycles consumed by an *overlapped* (parallel) traversal of
    /// accesses served at the given levels.
    ///
    /// The slowest access is paid in full; the rest are overlapped subject to
    /// the MLP width; every access pays its issue overhead. Runs once per
    /// probe on the monitoring hot path, so the max/sum fold is a single
    /// allocation-free pass.
    pub fn parallel_cost(&self, levels: &[HitLevel]) -> u64 {
        if levels.is_empty() {
            return 0;
        }
        let mut max = 0u64;
        let mut sum = 0u64;
        for &level in levels {
            let latency = self.level_latency(level);
            sum += latency;
            max = max.max(latency);
        }
        let issue = self.issue_overhead * levels.len() as u64;
        issue + max + (sum - max) / self.mlp_width
    }

    /// Threshold (for a *timed* single access) above which the line was not
    /// in the accessing core's private caches (L1/L2).
    pub fn private_miss_threshold(&self) -> u64 {
        self.timer_overhead + (self.l2_hit + self.llc_hit) / 2
    }

    /// Threshold (for a *timed* single access) above which the line was not
    /// in the LLC either, i.e. it had been evicted to memory.
    pub fn llc_miss_threshold(&self) -> u64 {
        self.timer_overhead + (self.sf_snoop + self.memory) / 2
    }

    /// Threshold for a *timed parallel* probe of `count` lines above which at
    /// least one of the lines missed the private caches.
    pub fn parallel_probe_threshold(&self, count: usize) -> u64 {
        // All-hit baseline plus half the gap to a single LLC/memory miss.
        // The baseline is `parallel_cost` of `count` L2 hits, written in
        // closed form: this runs once per probe and must not allocate.
        let baseline = if count == 0 {
            0
        } else {
            let sum = self.l2_hit * count as u64;
            self.issue_overhead * count as u64 + self.l2_hit + (sum - self.l2_hit) / self.mlp_width
        };
        self.timer_overhead + baseline + (self.llc_hit.max(self.memory / 2)) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_is_much_faster_than_sequential_for_misses() {
        let m = LatencyModel::default();
        let levels = vec![HitLevel::Memory; 64];
        let seq = m.sequential_cost(&levels);
        let par = m.parallel_cost(&levels);
        assert!(
            par * 5 < seq,
            "parallel ({par}) should be at least 5x faster than sequential ({seq})"
        );
    }

    #[test]
    fn parallel_cost_of_hits_is_small() {
        let m = LatencyModel::default();
        let probe = m.parallel_cost(&[HitLevel::L1; 12]);
        // Ballpark of the paper's 118-cycle parallel probe (minus timer).
        assert!(probe > 20 && probe < 200, "probe cost {probe} out of range");
    }

    #[test]
    fn thresholds_are_ordered() {
        let m = LatencyModel::default();
        assert!(m.private_miss_threshold() < m.llc_miss_threshold());
        assert!(m.timer_overhead + m.l2_hit < m.private_miss_threshold());
        assert!(m.timer_overhead + m.memory > m.llc_miss_threshold());
        assert!(m.timer_overhead + m.llc_hit < m.llc_miss_threshold());
        assert!(m.timer_overhead + m.llc_hit > m.private_miss_threshold());
    }

    /// `parallel_probe_threshold` inlines `parallel_cost` of `count` L2 hits
    /// in closed form (the vec-based call allocated on the probe hot path);
    /// this pins the two formulas together so an edit to one cannot silently
    /// skew probe classification.
    #[test]
    fn probe_threshold_closed_form_matches_parallel_cost() {
        let m = LatencyModel::default();
        for count in [0usize, 1, 2, 5, 12, 16, 64] {
            let baseline = m.parallel_cost(&vec![HitLevel::L2; count]);
            assert_eq!(
                m.parallel_probe_threshold(count),
                m.timer_overhead + baseline + (m.llc_hit.max(m.memory / 2)) / 2,
                "closed form diverged from parallel_cost at count {count}"
            );
        }
    }

    #[test]
    fn jitter_zero_is_identity() {
        let m = LatencyModel { jitter: 0.0, ..Default::default() };
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(m.jittered(100, &mut rng), 100);
    }

    #[test]
    fn jitter_bounded() {
        let m = LatencyModel::default();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = m.jittered(1000, &mut rng);
            assert!((950..=1050).contains(&v), "jittered value {v} outside 5% band");
        }
    }

    #[test]
    fn empty_parallel_cost_is_zero() {
        assert_eq!(LatencyModel::default().parallel_cost(&[]), 0);
    }

    #[test]
    fn level_latencies_monotonic() {
        let m = LatencyModel::default();
        assert!(m.level_latency(HitLevel::L1) < m.level_latency(HitLevel::L2));
        assert!(m.level_latency(HitLevel::L2) < m.level_latency(HitLevel::Llc));
        assert!(m.level_latency(HitLevel::Llc) < m.level_latency(HitLevel::SfSnoop));
        assert!(m.level_latency(HitLevel::SfSnoop) < m.level_latency(HitLevel::Memory));
    }
}
