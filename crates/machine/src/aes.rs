//! An AES T-table victim: the second victim service beyond ECDSA, with
//! *data*-dependent rather than code-dependent leakage.
//!
//! The service encrypts one random 16-byte plaintext per request with a
//! classic T-table AES implementation. Only the first round is modelled,
//! which is all a first-round Prime+Probe attack uses: state byte `i` indexes
//! table `T[i mod 4]` with `p[i] ^ k[i]`, so the *cache line* of the lookup —
//! entry `(p[i] ^ k[i]) >> 4` with 16 four-byte entries per 64-byte line —
//! depends on the upper nibble of the key byte. An attacker monitoring the
//! set of one table line learns, per request, whether that line was touched;
//! correlating detections against the known plaintexts recovers the upper
//! nibble of every key byte that indexes the monitored table.
//!
//! The schedule is the victim's memory footprint only (the attack never sees
//! plaintext-dependent *timing* of the victim itself): per request, a
//! request-parsing phase, the sixteen first-round lookups at a fixed cadence,
//! and a serialisation phase.

use crate::schedule::{ScheduledAccess, VictimProgram, VictimSchedule};
use llc_cache_model::{AddressSpace, VirtAddr, LINE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

/// Bytes per T-table (256 four-byte entries).
pub const TABLE_BYTES: u64 = 1024;
/// T-table entries per cache line (64 / 4).
pub const ENTRIES_PER_LINE: u8 = 16;
/// Cache lines per T-table.
pub const LINES_PER_TABLE: u8 = (TABLE_BYTES / LINE_SIZE) as u8;

/// Virtual-address layout of the victim's four T-tables, fixed at container
/// start-up. All four tables share one page (their usual `.rodata` layout),
/// so the attacker knows every table line's page offset from the public
/// binary.
#[derive(Debug, Clone, Copy)]
pub struct AesLayout {
    /// Base of the page holding `T0..T3` back-to-back.
    pub tables: VirtAddr,
}

impl AesLayout {
    /// The address of cache line `line` of table `table`.
    pub fn table_line(&self, table: usize, line: u8) -> VirtAddr {
        assert!(table < 4 && line < LINES_PER_TABLE);
        self.tables.offset(table as u64 * TABLE_BYTES + line as u64 * LINE_SIZE)
    }

    /// The line a first-round lookup of state byte `i` touches for plaintext
    /// byte `p` under key byte `k`.
    pub fn lookup_line(i: usize, p: u8, k: u8) -> u8 {
        let _ = i;
        (p ^ k) >> 4
    }
}

/// Ground truth shared with the experiment harness: the layout (public
/// knowledge) and the plaintext of every served request (known-plaintext
/// attack, as in first-round AES Prime+Probe).
#[derive(Debug, Default)]
pub struct AesLog {
    /// Populated during `setup`.
    pub layout: Option<AesLayout>,
    /// One plaintext per served request, in order.
    pub plaintexts: Vec<[u8; 16]>,
}

/// Handle to the shared AES victim log.
pub type AesHandle = Arc<Mutex<AesLog>>;

/// Configuration of the AES T-table victim service.
#[derive(Debug, Clone)]
pub struct AesTTableConfig {
    /// The service's secret AES-128 key.
    pub key: [u8; 16],
    /// Cycles between consecutive first-round lookups.
    pub access_gap: u64,
    /// Cycles of request parsing before the lookups.
    pub pre_cycles: u64,
    /// Cycles of response serialisation after the lookups.
    pub post_cycles: u64,
    /// RNG seed for the plaintext stream.
    pub seed: u64,
}

impl Default for AesTTableConfig {
    fn default() -> Self {
        Self {
            // The FIPS-197 appendix key; any fixed key works, this one makes
            // the goldens self-describing.
            key: [
                0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09,
                0xcf, 0x4f, 0x3c,
            ],
            access_gap: 1_500,
            pre_cycles: 40_000,
            post_cycles: 20_000,
            seed: 0xAE5,
        }
    }
}

impl AesTTableConfig {
    /// Total duration of one request in cycles.
    pub fn request_cycles(&self) -> u64 {
        self.pre_cycles + 16 * self.access_gap + self.post_cycles
    }

    /// Start (relative to the request) of the first-round lookup phase.
    pub fn lookup_start(&self) -> u64 {
        self.pre_cycles
    }

    /// End (relative to the request) of the first-round lookup phase.
    pub fn lookup_end(&self) -> u64 {
        self.pre_cycles + 16 * self.access_gap
    }
}

/// The AES T-table victim service.
#[derive(Debug)]
pub struct AesTTableVictim {
    config: AesTTableConfig,
    rng: StdRng,
    layout: Option<AesLayout>,
    frontend_lines: Vec<VirtAddr>,
    log: AesHandle,
}

impl AesTTableVictim {
    /// Creates the victim service and the shared log handle.
    pub fn new(config: AesTTableConfig) -> (Self, AesHandle) {
        let log: AesHandle = Arc::new(Mutex::new(AesLog::default()));
        let victim = Self {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            layout: None,
            frontend_lines: Vec::new(),
            log: Arc::clone(&log),
        };
        (victim, log)
    }

    /// The victim's configuration.
    pub fn config(&self) -> &AesTTableConfig {
        &self.config
    }
}

impl VictimProgram for AesTTableVictim {
    fn setup(&mut self, aspace: &mut AddressSpace) {
        let tables = aspace.allocate_pages(1);
        let frontend = aspace.allocate_pages(1);
        let layout = AesLayout { tables };
        self.layout = Some(layout);
        self.frontend_lines = (0..8).map(|i| frontend.offset(i * 8 * LINE_SIZE)).collect();
        self.log.lock().expect("AES victim log poisoned").layout = Some(layout);
    }

    fn on_request(&mut self) -> VictimSchedule {
        let layout = self.layout.expect("setup must run before requests");
        let plaintext: [u8; 16] = self.rng.gen();
        let key = self.config.key;
        let mut accesses: Vec<ScheduledAccess> = Vec::with_capacity(16 + 8);

        // Request parsing touches front-end lines (never the tables).
        let mut t = 0u64;
        while t < self.config.pre_cycles {
            let line = self.frontend_lines[(t as usize / 769) % self.frontend_lines.len()];
            accesses.push(ScheduledAccess { offset: t, va: line });
            t += 10_000;
        }

        // First round: byte i looks up T[i mod 4] at index p[i] ^ k[i].
        for (i, (&p, &k)) in plaintext.iter().zip(&key).enumerate() {
            let line = AesLayout::lookup_line(i, p, k);
            accesses.push(ScheduledAccess {
                offset: self.config.lookup_start() + i as u64 * self.config.access_gap,
                va: layout.table_line(i % 4, line),
            });
        }

        // Response serialisation.
        let post_start = self.config.lookup_end();
        let mut t = post_start;
        while t < post_start + self.config.post_cycles {
            let line = self.frontend_lines[(t as usize / 1_031) % self.frontend_lines.len()];
            accesses.push(ScheduledAccess { offset: t, va: line });
            t += 10_000;
        }

        self.log.lock().expect("AES victim log poisoned").plaintexts.push(plaintext);
        VictimSchedule::new(accesses, self.config.request_cycles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup_victim(config: AesTTableConfig) -> (AesTTableVictim, AesHandle, AesLayout) {
        let (mut victim, log) = AesTTableVictim::new(config);
        let mut aspace = AddressSpace::with_seed(11);
        victim.setup(&mut aspace);
        let layout = log.lock().unwrap().layout.expect("layout set by setup");
        (victim, log, layout)
    }

    #[test]
    fn tables_pack_into_one_page() {
        let (_victim, _log, layout) = setup_victim(AesTTableConfig::default());
        assert_eq!(layout.table_line(0, 0), layout.tables);
        assert_eq!(layout.table_line(0, 0).page_offset(), 0);
        assert_eq!(layout.table_line(3, 15).page_offset(), 3 * TABLE_BYTES + 15 * LINE_SIZE);
        // 4 tables x 16 lines of 64 B exactly fill the 4 kB page.
        assert_eq!(4 * TABLE_BYTES, 4096);
    }

    #[test]
    fn schedule_touches_the_key_dependent_lines() {
        let (mut victim, log, layout) = setup_victim(AesTTableConfig::default());
        let schedule = victim.on_request();
        let p = *log.lock().unwrap().plaintexts.last().expect("plaintext recorded");
        let key = victim.config().key;
        let lookup_start = victim.config().lookup_start();
        for i in 0..16 {
            let expected = layout.table_line(i % 4, (p[i] ^ key[i]) >> 4);
            let at = lookup_start + i as u64 * victim.config().access_gap;
            assert!(
                schedule.accesses().iter().any(|a| a.offset == at && a.va == expected),
                "byte {i} must touch its first-round line at its slot"
            );
        }
        assert_eq!(schedule.duration(), victim.config().request_cycles());
    }

    #[test]
    fn parsing_phases_never_touch_the_tables() {
        let (mut victim, _log, layout) = setup_victim(AesTTableConfig::default());
        let schedule = victim.on_request();
        let (start, end) = (victim.config().lookup_start(), victim.config().lookup_end());
        for a in schedule.accesses() {
            let in_tables = a.va.page_base() == layout.tables.page_base();
            if in_tables {
                assert!((start..end).contains(&a.offset), "table access outside lookup phase");
            } else {
                assert!(!(start..end).contains(&a.offset), "non-table access inside lookup phase");
            }
        }
    }

    #[test]
    fn fresh_plaintext_per_request() {
        let (mut victim, log, _layout) = setup_victim(AesTTableConfig::default());
        let _ = victim.on_request();
        let _ = victim.on_request();
        let log = log.lock().unwrap();
        assert_eq!(log.plaintexts.len(), 2);
        assert_ne!(log.plaintexts[0], log.plaintexts[1]);
    }

    #[test]
    fn lookup_line_depends_on_the_upper_nibble_only() {
        assert_eq!(AesLayout::lookup_line(0, 0x2b, 0x2b), 0);
        assert_eq!(AesLayout::lookup_line(0, 0x20, 0x2f), 0);
        assert_eq!(AesLayout::lookup_line(0, 0x00, 0xf0), 15);
        for low in 0..16u8 {
            assert_eq!(AesLayout::lookup_line(0, 0x50 | low, 0x00), 5);
        }
    }
}
