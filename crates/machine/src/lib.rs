//! # llc-machine
//!
//! A cycle-level, event-driven simulation of the multi-tenant host the paper
//! attacks: the cache hierarchy from `llc-cache-model` plus
//!
//! * a [`LatencyModel`] that turns hit levels into cycle costs and models the
//!   memory-level parallelism exploited by parallel `TestEviction` and
//!   Parallel Probing;
//! * a [`NoiseModel`]/[`NoiseProcess`] reproducing the background LLC/SF
//!   traffic of other Cloud Run tenants (11.5 accesses/ms/set) or of a
//!   quiescent lab machine (0.29 accesses/ms/set);
//! * a co-located victim service, described by a [`VictimProgram`] that emits
//!   one [`VictimSchedule`] per request;
//! * an event-scheduled tenant actor layer ([`HostSim`], [`Tenant`]): the
//!   noise process is the lazy [`StatisticalTenant`], and optional background
//!   workload tenants (idle sidecars, bursty web serving, batch scans) post
//!   timed bursts from per-tenant seeded streams, with placement/churn
//!   modelling co-residency ([`TenantPopulation`], [`ChurnConfig`]);
//! * the [`Machine`] itself, which exposes to the attack code exactly the
//!   operations an unprivileged attacker has: timed/untimed loads of its own
//!   memory, `clflush` of its own lines, and waiting;
//! * compiled [`TraversalPlan`]s ([`Machine::compile_plan`]): the
//!   per-call-invariant part of a prime/probe traversal (translation, slice
//!   hashing, touched-set sorting) computed once, with bit-identical
//!   `*_traverse_plan` hot paths for the millions of traversals every
//!   experiment performs over fixed eviction sets.
//!
//! ## Quick example
//!
//! ```
//! use llc_cache_model::CacheSpec;
//! use llc_machine::{Machine, NoiseModel};
//!
//! let mut m = Machine::builder(CacheSpec::skylake_sp_cloud())
//!     .noise(NoiseModel::cloud_run())
//!     .seed(1)
//!     .build();
//! let page = m.alloc_attacker_pages(1);
//! let (latency, _level) = m.timed_access(page);
//! assert!(latency > m.latency_model().llc_miss_threshold()); // cold miss
//! let (latency, _level) = m.timed_access(page);
//! assert!(latency < m.latency_model().private_miss_threshold()); // hot hit
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod aes;
mod latency;
mod machine;
mod noise;
mod pool;
mod schedule;
mod tenant;

pub use aes::{
    AesHandle, AesLayout, AesLog, AesTTableConfig, AesTTableVictim, ENTRIES_PER_LINE,
    LINES_PER_TABLE, TABLE_BYTES,
};
pub use latency::LatencyModel;
pub use machine::{Machine, MachineBuilder, MachineSnapshot, MachineStats, TraversalPlan};
pub use noise::{
    aggregate_fallback_warned, sample_poisson, InitialSync, NoiseAdvance, NoiseConfig, NoiseEvent,
    NoiseFidelity, NoiseModel, NoiseProcess, AGGREGATE_FALLBACK_WARNING,
};
pub use pool::{config_key, MachinePool, PooledMachine, PoolStats};
pub use schedule::{PeriodicToucher, ScheduledAccess, VictimProgram, VictimSchedule};
pub use tenant::{
    BatchScanTenant, BurstyWebTenant, ChurnConfig, HostSim, IdleTenant, StatisticalTenant, Tenant,
    TenantAccess, TenantBurst, TenantPopulation, WorkloadKind,
};

// Re-export the types attack code needs constantly, so downstream crates can
// depend on a single façade for machine-level interaction.
pub use llc_cache_model::{CacheSpec, HitLevel, SetLocation, VirtAddr};
