//! A shared pool of built machines, keyed by machine-configuration hash.
//!
//! Building a [`Machine`] is the dominant *fixed* cost of a sweep: PR 2
//! measured a fresh build at ~2.3–2.7× the price of an in-place snapshot
//! reset. A per-cell experiment loop pays that price once per cell per
//! worker; a campaign over a large grid pays it O(cells × workers) times
//! even though only a handful of *distinct* machine configurations exist.
//!
//! `MachinePool` bounds machine construction at O(workers × distinct
//! configurations): the first checkout of a key builds the machine (and
//! captures its pristine snapshot); every later checkout pops an idle
//! machine back off the shelf, and callers rewind it per trial with
//! [`PooledMachine::reset`] + [`Machine::reseed`] exactly as they would a
//! privately-built machine.
//!
//! ## Determinism contract
//!
//! A pooled machine is interchangeable with a freshly built one **provided
//! the caller reseeds it**: `reset_to` restores every piece of
//! run-time state captured by the snapshot (hierarchy contents, noise
//! process, clock, stats, address space), and `reseed` replaces the two
//! run-time RNG streams (machine RNG, attacker address-space lottery). The
//! only build-seed residue that survives is the per-set replacement RNG
//! array inside the hierarchy, which is consulted exclusively by
//! `ReplacementKind::Random` — under the deterministic policies every
//! experiment default uses, pooled and unpooled runs are byte-identical
//! (pinned by `llc-bench`'s golden smoke tests and an explicit equality
//! test). Keys must therefore capture everything that distinguishes one
//! build from another: spec, environment, noise fidelity, hierarchy
//! options, *and* build seed if the caller runs `Random` replacement.
//!
//! Machines checked into a pool must not have a victim installed
//! ([`Machine::snapshot`] enforces this at build time).

use crate::machine::{Machine, MachineSnapshot};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex};

/// Construction/traffic counters for a [`MachinePool`].
///
/// `builds` counts machine *constructions* — from-scratch builds plus
/// snapshot materialisations — which is the quantity the campaign
/// throughput claim pins at O(workers × distinct keys). `acquisitions`
/// counts every checkout, pooled or not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Machines constructed (fresh builds + snapshot materialisations).
    pub builds: u64,
    /// Total checkouts served, including reused idle machines.
    pub acquisitions: u64,
    /// Distinct keys the pool has seen.
    pub keys: u64,
    /// Machines dropped instead of returned (trial panicked mid-flight, or
    /// the caller called [`PooledMachine::discard`]).
    pub discards: u64,
}

#[derive(Debug)]
struct PoolEntry {
    snapshot: Arc<MachineSnapshot>,
    idle: Vec<Machine>,
}

#[derive(Debug, Default)]
struct PoolInner {
    entries: HashMap<u64, PoolEntry>,
    builds: u64,
    acquisitions: u64,
    discards: u64,
}

/// A thread-safe machine pool keyed by caller-supplied configuration hash.
///
/// Cheap to share: clone the [`Arc`] into each worker. All bookkeeping sits
/// behind one mutex, which is touched per *checkout* (per cell segment in a
/// campaign), not per trial.
#[derive(Debug, Default)]
pub struct MachinePool {
    inner: Mutex<PoolInner>,
}

impl MachinePool {
    /// A fresh, empty pool, ready to share across workers.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Checks out a machine for configuration `key`, building one with
    /// `build` only if the pool has neither an idle machine nor a snapshot
    /// for that key. The machine is returned **as last seen** — callers
    /// rewind it with [`PooledMachine::reset`] (and typically
    /// [`Machine::reseed`]) before use, exactly as the per-cell experiment
    /// loops rewind their private snapshots.
    ///
    /// `build` must produce a machine with no victim installed; its pristine
    /// state is captured as the pool snapshot for `key` on first build.
    pub fn acquire(
        self: &Arc<Self>,
        key: u64,
        build: impl FnOnce() -> Machine,
    ) -> PooledMachine {
        let mut inner = self.inner.lock().expect("machine pool poisoned");
        inner.acquisitions += 1;
        let (snapshot, machine) = match inner.entries.get_mut(&key) {
            Some(entry) => {
                let snapshot = Arc::clone(&entry.snapshot);
                match entry.idle.pop() {
                    Some(machine) => (snapshot, machine),
                    None => {
                        // Another worker holds this key's machines; clone a
                        // sibling from the pristine snapshot.
                        inner.builds += 1;
                        let machine = snapshot.to_machine();
                        (snapshot, machine)
                    }
                }
            }
            None => {
                // First sighting of this configuration: build under the lock
                // so concurrent first-checkouts of the same key cannot race
                // to two different snapshots.
                inner.builds += 1;
                let machine = build();
                let snapshot = Arc::new(machine.snapshot());
                inner.entries.insert(
                    key,
                    PoolEntry { snapshot: Arc::clone(&snapshot), idle: Vec::new() },
                );
                (snapshot, machine)
            }
        };
        drop(inner);
        PooledMachine { pool: Arc::clone(self), key, snapshot, machine: Some(machine) }
    }

    /// Current construction/traffic counters.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock().expect("machine pool poisoned");
        PoolStats {
            builds: inner.builds,
            acquisitions: inner.acquisitions,
            keys: inner.entries.len() as u64,
            discards: inner.discards,
        }
    }

    fn check_in(&self, key: u64, machine: Machine) {
        let mut inner = self.inner.lock().expect("machine pool poisoned");
        if let Some(entry) = inner.entries.get_mut(&key) {
            entry.idle.push(machine);
        }
    }

    fn note_discard(&self) {
        // `lock()` would poison-panic if the pool mutex was held across a
        // panic; the pool only ever locks for short bookkeeping, so a
        // poisoned lock here means the process is already going down —
        // swallow it rather than double-panic inside a Drop.
        if let Ok(mut inner) = self.inner.lock() {
            inner.discards += 1;
        }
    }
}

/// A checked-out machine. Dereferences to [`Machine`]; returns itself to the
/// pool on drop.
#[derive(Debug)]
pub struct PooledMachine {
    pool: Arc<MachinePool>,
    key: u64,
    snapshot: Arc<MachineSnapshot>,
    machine: Option<Machine>,
}

impl PooledMachine {
    /// Rewinds the machine to the pool's pristine snapshot for its key —
    /// the pooled equivalent of `machine.reset_to(&snapshot)` in the
    /// per-cell loops. Call once per trial, before `reseed`.
    pub fn reset(&mut self) {
        let snapshot = &self.snapshot;
        self.machine
            .as_mut()
            .expect("pooled machine already returned")
            .reset_to(snapshot);
    }

    /// The pristine snapshot this machine rewinds to.
    pub fn pristine(&self) -> &MachineSnapshot {
        &self.snapshot
    }

    /// The pool key this machine was checked out under.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Consumes the checkout **without** returning the machine to the pool.
    ///
    /// Use after a trial failed mid-flight: the machine's hierarchy state is
    /// whatever the aborted trial left behind, and while `reset` would
    /// rewind it, a failed trial may also have left the machine in a state
    /// the failure itself was a symptom of. Dropping it is the conservative
    /// choice; the pool rebuilds a sibling from the pristine snapshot on the
    /// next checkout.
    pub fn discard(mut self) {
        self.machine = None;
        self.pool.note_discard();
    }
}

impl Deref for PooledMachine {
    type Target = Machine;
    fn deref(&self) -> &Machine {
        self.machine.as_ref().expect("pooled machine already returned")
    }
}

impl DerefMut for PooledMachine {
    fn deref_mut(&mut self) -> &mut Machine {
        self.machine.as_mut().expect("pooled machine already returned")
    }
}

impl Drop for PooledMachine {
    fn drop(&mut self) {
        if let Some(machine) = self.machine.take() {
            // A checkout dropped during a panic unwind was mid-trial when it
            // died: its hierarchy state is garbage relative to the pristine
            // snapshot's contract, so it must not rejoin the idle shelf. The
            // campaign's catch_unwind retry path also discards explicitly
            // (the unwind may be caught below this frame), but this guard
            // makes reuse-after-panic impossible even for direct pool users.
            if std::thread::panicking() {
                drop(machine);
                self.pool.note_discard();
            } else {
                self.pool.check_in(self.key, machine);
            }
        }
    }
}

/// FNV-1a over a byte string: the workspace's canonical way to derive a
/// pool key from a machine configuration's debug representation.
pub fn config_key(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineBuilder;
    use llc_cache_model::CacheSpec;

    fn build_tiny(seed: u64) -> Machine {
        MachineBuilder::new(CacheSpec::tiny_test()).seed(seed).build()
    }

    #[test]
    fn sequential_checkouts_build_once() {
        let pool = MachinePool::new();
        for _ in 0..5 {
            let mut m = pool.acquire(1, || build_tiny(7));
            m.reset();
        }
        let stats = pool.stats();
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.acquisitions, 5);
        assert_eq!(stats.keys, 1);
    }

    #[test]
    fn concurrent_checkouts_build_at_most_workers_per_key() {
        let pool = MachinePool::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for _ in 0..8 {
                        let mut m = pool.acquire(42, || build_tiny(9));
                        m.reset();
                    }
                });
            }
        });
        let stats = pool.stats();
        assert!(stats.builds <= 4, "builds {} > workers", stats.builds);
        assert_eq!(stats.acquisitions, 32);
    }

    #[test]
    fn distinct_keys_get_distinct_snapshots() {
        let pool = MachinePool::new();
        let a = pool.acquire(1, || build_tiny(1));
        let b = pool.acquire(2, || build_tiny(2));
        assert_ne!(a.key(), b.key());
        drop((a, b));
        assert_eq!(pool.stats().keys, 2);
        assert_eq!(pool.stats().builds, 2);
    }

    #[test]
    fn reset_then_reseed_matches_a_fresh_build() {
        // The determinism contract: pooled machine rewound + reseeded is
        // interchangeable with a fresh build + reseed under deterministic
        // replacement. Drive both through an identical access pattern and
        // compare observable latencies.
        let pool = MachinePool::new();
        {
            // Dirty the pooled machine under a different seed first.
            let mut m = pool.acquire(1, || build_tiny(111));
            m.reset();
            m.reseed(999);
        }
        let mut pooled = pool.acquire(1, || build_tiny(111));
        pooled.reset();
        pooled.reseed(5);

        let mut fresh = build_tiny(222);
        fresh.reseed(5);

        let pa = pooled.alloc_attacker_pages(4);
        let fa = fresh.alloc_attacker_pages(4);
        assert_eq!(pa, fa);
        let probe = |m: &mut Machine, base: llc_cache_model::VirtAddr| -> Vec<u64> {
            (0..64)
                .map(|i| m.timed_access(llc_cache_model::VirtAddr::new(base.raw() + i * 64)).0)
                .collect()
        };
        let lat_pooled = probe(&mut pooled, pa);
        let lat_fresh = probe(&mut fresh, fa);
        assert_eq!(lat_pooled, lat_fresh);
    }

    #[test]
    fn config_key_is_stable_and_spreads() {
        assert_eq!(config_key(b"abc"), config_key(b"abc"));
        assert_ne!(config_key(b"abc"), config_key(b"abd"));
    }

    #[test]
    fn discard_drops_the_machine_instead_of_pooling_it() {
        let pool = MachinePool::new();
        pool.acquire(1, || build_tiny(7)).discard();
        assert_eq!(pool.stats().discards, 1);
        // The shelf is empty, so the next checkout must build a sibling.
        drop(pool.acquire(1, || build_tiny(7)));
        assert_eq!(pool.stats().builds, 2);
    }

    #[test]
    fn a_checkout_dropped_during_unwind_never_rejoins_the_pool() {
        let pool = MachinePool::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut m = pool.acquire(1, || build_tiny(7));
            m.reset();
            // Dirty the machine mid-"trial", then die holding the checkout.
            let base = m.alloc_attacker_pages(1);
            m.timed_access(base);
            panic!("trial died mid-flight");
        }));
        assert!(result.is_err());
        assert_eq!(pool.stats().discards, 1);
        let before = pool.stats().builds;
        drop(pool.acquire(1, || build_tiny(7)));
        assert_eq!(pool.stats().builds, before + 1, "dirty machine was reused");
    }

    #[test]
    fn post_panic_pooled_run_matches_an_unpooled_one() {
        // The reuse-after-panic pin: after a trial panics while holding a
        // pooled checkout, the next pooled trial must still be byte-identical
        // to the same trial on a privately built machine.
        let probe = |m: &mut Machine| -> Vec<u64> {
            let base = m.alloc_attacker_pages(4);
            (0..64)
                .map(|i| m.timed_access(llc_cache_model::VirtAddr::new(base.raw() + i * 64)).0)
                .collect()
        };

        let pool = MachinePool::new();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut m = pool.acquire(1, || build_tiny(111));
            m.reset();
            m.reseed(999);
            // Leave half-trial state behind, then panic.
            let base = m.alloc_attacker_pages(2);
            m.timed_access(base);
            panic!("injected");
        }));

        let mut pooled = pool.acquire(1, || build_tiny(111));
        pooled.reset();
        pooled.reseed(5);
        let lat_pooled = probe(&mut pooled);

        let mut fresh = build_tiny(111);
        fresh.reseed(5);
        let lat_fresh = probe(&mut fresh);
        assert_eq!(lat_pooled, lat_fresh);
    }
}
