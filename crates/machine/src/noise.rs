//! Background-tenant noise: the multi-tenant LLC/SF interference that makes
//! Cloud Run so much harder than a quiescent lab machine.
//!
//! Section 4.3 of the paper characterises the noise by the rate of background
//! accesses observed on a randomly chosen LLC set: **11.5 accesses/ms/set on
//! Cloud Run** versus **0.29 accesses/ms/set on the quiescent local machine**
//! (Figure 2 shows the inter-access-time CDF). The model reproduces this with
//! an independent Poisson process per (slice, set): whenever the simulation
//! needs the state of a set, the elapsed interval since the set was last
//! synchronised is converted into a Poisson-distributed number of background
//! insertions.
//!
//! Two fidelities of that conversion exist (see [`NoiseFidelity`]):
//!
//! * **Exact** (the default): every background insertion is materialised as
//!   an individual timestamped [`NoiseEvent`] and replayed through the
//!   hierarchy. This path is bit-for-bit pinned by the golden experiment
//!   outputs.
//! * **Aggregate**: the catch-up draws only the *counts* of LLC and SF
//!   insertions for the gap (Poisson thinning of the same rate) and the
//!   hierarchy applies them as one bulk evict-and-fill state transition per
//!   sync (`Hierarchy::noise_advance_bulk`). Statistically equivalent to the
//!   exact path — the equivalence harness in `tests/noise_equivalence.rs`
//!   pins eviction probabilities, probe-latency distributions and pruning
//!   success rates across the noise presets — but several times faster under
//!   Cloud Run noise because the per-event timestamps, their sort and the
//!   per-event replacement updates all disappear.

use llc_cache_model::SetLocation;
use rand::Rng;
use std::sync::atomic::{AtomicBool, Ordering};

/// The one-time warning printed when an aggregate-fidelity configuration
/// degrades to per-event dispatch (see
/// [`NoiseProcess::set_per_event_fallback`]).
pub const AGGREGATE_FALLBACK_WARNING: &str = "noise fidelity 'aggregate' degraded to per-event \
     dispatch: the reuse predictor is active (reuse_insert_probability > 0), and the bulk \
     evict-and-fill transition cannot reproduce its mid-burst re-insertions. The run is \
     bit-faithful but ~5x slower than an aggregate configuration implies; report headers show \
     the effective fidelity.";

/// Process-wide latch for the one-time fallback warning.
static AGGREGATE_FALLBACK_WARNED: AtomicBool = AtomicBool::new(false);

/// True once the aggregate-fallback warning has been emitted by this
/// process (test hook; see [`NoiseProcess::set_per_event_fallback`]).
pub fn aggregate_fallback_warned() -> bool {
    AGGREGATE_FALLBACK_WARNED.load(Ordering::Relaxed)
}

/// Parameters of the background-tenant access process.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    /// Average background accesses per cycle per (slice, set).
    ///
    /// 11.5 accesses/ms/set at 2 GHz is `11.5 / 2e6` accesses/cycle/set.
    pub accesses_per_cycle_per_set: f64,
    /// Fraction of background accesses that behave like *shared* lines
    /// (allocate in the LLC); the rest allocate snoop-filter entries.
    pub shared_fraction: f64,
    /// Human-readable label used in experiment reports.
    pub label: String,
}

impl NoiseModel {
    /// Cloud Run noise level: 11.5 accesses per millisecond per set at 2 GHz.
    pub fn cloud_run() -> Self {
        Self::from_accesses_per_ms(11.5, 2.0, "Cloud Run")
    }

    /// Quiescent local machine: 0.29 accesses per millisecond per set.
    pub fn quiescent_local() -> Self {
        Self::from_accesses_per_ms(0.29, 2.0, "Quiescent Local")
    }

    /// A completely silent machine (unit tests).
    pub fn silent() -> Self {
        Self {
            accesses_per_cycle_per_set: 0.0,
            shared_fraction: 0.5,
            label: "Silent".to_string(),
        }
    }

    /// Builds a noise model from an access rate expressed in accesses per
    /// millisecond per set, at the given core frequency.
    pub fn from_accesses_per_ms(per_ms: f64, freq_ghz: f64, label: &str) -> Self {
        let cycles_per_ms = freq_ghz * 1e6;
        Self {
            accesses_per_cycle_per_set: per_ms / cycles_per_ms,
            shared_fraction: 0.5,
            label: label.to_string(),
        }
    }

    /// The configured rate expressed in accesses per millisecond per set.
    pub fn accesses_per_ms(&self, freq_ghz: f64) -> f64 {
        self.accesses_per_cycle_per_set * freq_ghz * 1e6
    }

    /// Returns true if this model produces no noise at all.
    pub fn is_silent(&self) -> bool {
        self.accesses_per_cycle_per_set <= 0.0
    }
}

/// How faithfully the noise process converts elapsed time into hierarchy
/// state changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NoiseFidelity {
    /// Materialise every background insertion as an individual timestamped
    /// [`NoiseEvent`]. Bit-for-bit reproducible and pinned by the golden
    /// experiment outputs; this is the oracle the aggregate mode is
    /// validated against.
    #[default]
    Exact,
    /// Draw only the per-structure insertion *counts* for the gap and let the
    /// hierarchy apply them as one bulk evict-and-fill transition per sync.
    /// Statistically equivalent to [`NoiseFidelity::Exact`] (same Poisson
    /// rate, thinned per structure) but does O(min(count, ways)) work per
    /// sync instead of O(count) event materialisation.
    Aggregate,
}

impl NoiseFidelity {
    /// Parses a fidelity name as used by `--noise-fidelity` /
    /// `LLC_NOISE_FIDELITY` (`"exact"` or `"aggregate"`, case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "exact" => Some(Self::Exact),
            "aggregate" => Some(Self::Aggregate),
            _ => None,
        }
    }

    /// The canonical lowercase name (`"exact"` / `"aggregate"`).
    pub fn label(self) -> &'static str {
        match self {
            Self::Exact => "exact",
            Self::Aggregate => "aggregate",
        }
    }
}

/// What a set's first observation assumes about its unobserved pre-history.
///
/// The noise process only tracks sets lazily: a set that has never been
/// touched has no synchronisation timestamp, so its first `catch_up` must
/// pick an effective "last sync". Both variants apply identically to both
/// fidelities (the window computation is shared), so switching fidelity never
/// changes first-touch semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InitialSync {
    /// Treat `now` as the sync point: the first observation of a set sees no
    /// pre-history noise at all. This is the historical (and default)
    /// behaviour — experiments prime every set they care about anyway, and an
    /// arbitrarily long simulated pre-history must not produce an arbitrary
    /// burst on first touch.
    #[default]
    TreatAsSynced,
    /// Behave as if the set was last synchronised `gap` cycles before its
    /// first observation (saturating at cycle 0), i.e. the first catch-up
    /// replays up to `gap` cycles of pre-history noise. Models a host that
    /// was already busy before the attacker arrived.
    Warmup(u64),
}

/// Complete configuration of the background-noise process: the rate model
/// plus the two behavioural knobs ([`NoiseFidelity`], [`InitialSync`]).
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseConfig {
    /// The Poisson rate model.
    pub model: NoiseModel,
    /// Exact per-event replay or aggregate bulk transitions.
    pub fidelity: NoiseFidelity,
    /// What the first observation of a set assumes about its pre-history.
    pub initial_sync: InitialSync,
}

impl NoiseConfig {
    /// Exact-fidelity configuration with default first-touch semantics
    /// (the historical behaviour of `NoiseProcess::new`).
    pub fn exact(model: NoiseModel) -> Self {
        Self { model, fidelity: NoiseFidelity::Exact, initial_sync: InitialSync::default() }
    }

    /// Aggregate-fidelity configuration with default first-touch semantics.
    pub fn aggregate(model: NoiseModel) -> Self {
        Self { model, fidelity: NoiseFidelity::Aggregate, initial_sync: InitialSync::default() }
    }

    /// Returns the configuration with `fidelity` substituted.
    pub fn with_fidelity(mut self, fidelity: NoiseFidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Returns the configuration with `initial_sync` substituted.
    pub fn with_initial_sync(mut self, initial_sync: InitialSync) -> Self {
        self.initial_sync = initial_sync;
        self
    }
}

impl From<NoiseModel> for NoiseConfig {
    fn from(model: NoiseModel) -> Self {
        Self::exact(model)
    }
}

/// Result of an aggregate-fidelity catch-up: how many background insertions
/// each shared structure absorbs for the elapsed gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoiseAdvance {
    /// Shared-line insertions into the LLC set.
    pub llc: u64,
    /// Private-line (other-tenant) insertions into the SF set.
    pub sf: u64,
}

impl NoiseAdvance {
    /// An advance that changes nothing.
    pub const NONE: Self = Self { llc: 0, sf: 0 };

    /// Total insertions across both structures.
    pub fn total(self) -> u64 {
        self.llc + self.sf
    }

    /// True if the advance performs no insertions.
    pub fn is_empty(self) -> bool {
        self.llc == 0 && self.sf == 0
    }
}

/// Lazily-evaluated per-set Poisson noise process.
///
/// Synchronisation timestamps live in a flat vector indexed by the flattened
/// `(slice, set)` location rather than a hash map: the map lookup ran once
/// per simulated memory access (the noise catch-up in `Machine`'s
/// `prepare_sets`), where a SipHash round per access is measurable. The
/// vector is pre-sized to the full `(slice, set)` index space at
/// construction, so the hot path is a plain bounds-checked index with no
/// resize branch, and restores are a same-length `clone_from`.
///
/// Catch-up events are materialised into a reusable scratch buffer owned by
/// the process (borrowed out as a slice), so the per-traversal hot path of
/// the machine performs **zero heap allocations** in steady state.
#[derive(Debug)]
pub struct NoiseProcess {
    model: NoiseModel,
    /// Exact per-event replay or aggregate bulk transitions.
    fidelity: NoiseFidelity,
    /// First-touch semantics shared by both fidelities.
    initial_sync: InitialSync,
    /// Last cycle at which each set was synchronised with the noise process,
    /// indexed by `slice * sets_per_slice + set`; [`NEVER_SYNCED`] marks a
    /// set that has not been observed yet. Pre-sized to cover every set of
    /// the simulated host's shared structures.
    last_sync: Vec<u64>,
    /// Sets per slice of the flattened index space.
    sets_per_slice: usize,
    /// Maximum number of noise insertions applied in one catch-up; older
    /// insertions are fully masked by newer ones, so this only needs to cover
    /// a few times the associativity.
    max_burst: u32,
    /// True when the hierarchy this process feeds dispatches aggregate
    /// advances per event anyway (the reuse-predictor fallback of
    /// `Hierarchy::noise_advance_bulk`), in which case the *effective*
    /// fidelity of an `Aggregate` configuration is `Exact`. Set by the
    /// machine layer at build time; see [`NoiseProcess::effective_fidelity`].
    per_event_fallback: bool,
    /// Reusable event buffer filled by [`NoiseProcess::catch_up`]. Its
    /// contents are dead between calls; it exists only so the hot path does
    /// not allocate. Capacity converges to `max_burst` and stays there.
    scratch: Vec<NoiseEvent>,
}

impl Clone for NoiseProcess {
    /// Clones the process state. The event scratch buffer is deliberately
    /// *not* cloned (its contents are dead outside a `catch_up` call), so
    /// snapshots stay as small as the bookkeeping they actually need.
    fn clone(&self) -> Self {
        Self {
            model: self.model.clone(),
            fidelity: self.fidelity,
            initial_sync: self.initial_sync,
            last_sync: self.last_sync.clone(),
            sets_per_slice: self.sets_per_slice,
            max_burst: self.max_burst,
            per_event_fallback: self.per_event_fallback,
            scratch: Vec::new(),
        }
    }
}

/// `last_sync` sentinel: the set has never been synchronised.
const NEVER_SYNCED: u64 = u64::MAX;

/// One background access to apply to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseEvent {
    /// Cycle at which the background access (notionally) happened.
    pub at: u64,
    /// Whether it allocates in the LLC (`true`) or the snoop filter.
    pub shared: bool,
}

impl NoiseProcess {
    /// Creates a noise process for `model`, flattening `(slice, set)`
    /// locations over `sets_per_slice` sets per slice across `num_slices`
    /// slices (the LLC/SF slice geometry of the simulated host). The
    /// synchronisation vector is sized for the whole geometry up front so
    /// the per-access hot path never grows it.
    pub fn new(model: NoiseModel, sets_per_slice: usize, num_slices: usize) -> Self {
        Self::with_config(NoiseConfig::exact(model), sets_per_slice, num_slices)
    }

    /// [`NoiseProcess::new`] with explicit fidelity and first-touch
    /// semantics.
    pub fn with_config(config: NoiseConfig, sets_per_slice: usize, num_slices: usize) -> Self {
        assert!(sets_per_slice > 0, "sets_per_slice must be non-zero");
        assert!(num_slices > 0, "num_slices must be non-zero");
        Self {
            model: config.model,
            fidelity: config.fidelity,
            initial_sync: config.initial_sync,
            last_sync: vec![NEVER_SYNCED; sets_per_slice * num_slices],
            sets_per_slice,
            max_burst: 96,
            per_event_fallback: false,
            scratch: Vec::new(),
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &NoiseModel {
        &self.model
    }

    /// The configured fidelity. The machine layer dispatches on this:
    /// [`NoiseProcess::catch_up`] for exact,
    /// [`NoiseProcess::catch_up_aggregate`] for aggregate.
    pub fn fidelity(&self) -> NoiseFidelity {
        self.fidelity
    }

    /// The configured first-touch semantics.
    pub fn initial_sync(&self) -> InitialSync {
        self.initial_sync
    }

    /// Records whether the consuming hierarchy degrades aggregate advances
    /// to per-event dispatch (e.g. its reuse predictor is active, which
    /// forces `Hierarchy::noise_advance_bulk` onto the exact per-event
    /// path).
    ///
    /// When an **aggregate** configuration hits this fallback, a one-time
    /// warning ([`AGGREGATE_FALLBACK_WARNING`]) is printed to stderr — a
    /// campaign cell that silently ran ~5× slower than its preset implies
    /// was only discoverable from a header tag before. The warning fires at
    /// most once per process; report headers still carry the per-run
    /// effective-fidelity tag.
    pub fn set_per_event_fallback(&mut self, fallback: bool) {
        self.per_event_fallback = fallback;
        if fallback
            && self.fidelity == NoiseFidelity::Aggregate
            && !AGGREGATE_FALLBACK_WARNED.swap(true, Ordering::Relaxed)
        {
            eprintln!("warning: {AGGREGATE_FALLBACK_WARNING}");
        }
    }

    /// The fidelity the simulation *actually runs at*.
    ///
    /// `NoiseFidelity::Aggregate` silently degrades to per-event dispatch
    /// when the hierarchy's reuse predictor is enabled — the bulk
    /// evict-and-fill transition cannot reproduce the predictor's mid-burst
    /// SF→LLC re-insertions, so `Hierarchy::noise_advance_bulk` replays
    /// events one by one. Report headers must print this value rather than
    /// [`NoiseProcess::fidelity`], otherwise such runs are mislabelled as
    /// aggregate.
    pub fn effective_fidelity(&self) -> NoiseFidelity {
        match self.fidelity {
            NoiseFidelity::Aggregate if self.per_event_fallback => NoiseFidelity::Exact,
            configured => configured,
        }
    }

    /// Copies `source`'s state into `self` in place, reusing the
    /// synchronisation vector's allocation (hot path of machine restores).
    /// The event scratch buffer is per-machine transient state and keeps
    /// `self`'s allocation.
    pub fn restore_from(&mut self, source: &NoiseProcess) {
        self.model.clone_from(&source.model);
        self.fidelity = source.fidelity;
        self.initial_sync = source.initial_sync;
        self.last_sync.clone_from(&source.last_sync);
        self.sets_per_slice = source.sets_per_slice;
        self.max_burst = source.max_burst;
        self.per_event_fallback = source.per_event_fallback;
    }

    /// Flat `last_sync` index of `loc`. The vector covers the whole slice
    /// geometry by construction, so this is a plain index (no resize branch
    /// on the hot path; an out-of-geometry location is a caller bug and
    /// panics via the bounds check).
    #[inline]
    fn sync_slot(&mut self, loc: SetLocation) -> &mut u64 {
        debug_assert!(loc.set < self.sets_per_slice, "set index outside the slice geometry");
        &mut self.last_sync[loc.flat_index(self.sets_per_slice)]
    }

    /// Computes the background accesses that hit `loc` between the last
    /// synchronisation of that set and `now`, and marks the set synchronised.
    ///
    /// The returned events are ordered by timestamp and borrowed from an
    /// internal scratch buffer (valid until the next `catch_up` call), so
    /// the traversal hot path allocates nothing. At most `max_burst` events
    /// are produced; when the Poisson draw for the gap exceeds that cap, the
    /// burst is *thinned*: `max_burst` insertion timestamps are sampled
    /// uniformly over the **whole** gap (not just its most recent portion).
    /// This bounds the per-catch-up work without biasing where in the gap
    /// insertions land; a gap long enough to hit the cap has filled the set
    /// with noise many times over either way, so only the last ~associativity
    /// insertions are observable.
    pub fn catch_up(&mut self, loc: SetLocation, now: u64, rng: &mut impl Rng) -> &[NoiseEvent] {
        self.scratch.clear();
        let (last, gap) = self.advance_window(loc, now);
        if self.model.is_silent() || gap == 0 {
            return &self.scratch;
        }
        let lambda = gap as f64 * self.model.accesses_per_cycle_per_set;
        let count = sample_poisson(lambda, rng).min(self.max_burst as u64);
        let span = gap.max(1);
        let shared_fraction = self.model.shared_fraction;
        self.scratch.extend((0..count).map(|_| NoiseEvent {
            at: last + rng.gen_range(0..span),
            shared: rng.gen_bool(shared_fraction),
        }));
        // Stable insertion sort by timestamp: identical output (ties
        // included) to the slice stable sort it replaces, but without the
        // merge buffer std's stable sort heap-allocates — bursts are capped
        // at `max_burst`, so quadratic worst case is bounded and rare.
        let events = self.scratch.as_mut_slice();
        for i in 1..events.len() {
            let mut j = i;
            while j > 0 && events[j - 1].at > events[j].at {
                events.swap(j - 1, j);
                j -= 1;
            }
        }
        &self.scratch
    }

    /// Resolves the catch-up window for `loc` ending at `now` and marks the
    /// set synchronised: returns `(effective last sync, gap)`. First
    /// observations resolve through [`InitialSync`]; this helper is the
    /// single place that does so, which is what keeps first-touch semantics
    /// identical across the two fidelities.
    #[inline]
    fn advance_window(&mut self, loc: SetLocation, now: u64) -> (u64, u64) {
        let initial_sync = self.initial_sync;
        let slot = self.sync_slot(loc);
        let last = if *slot == NEVER_SYNCED {
            match initial_sync {
                InitialSync::TreatAsSynced => now,
                InitialSync::Warmup(gap) => now.saturating_sub(gap),
            }
        } else {
            *slot
        };
        *slot = now;
        (last, now.saturating_sub(last))
    }

    /// Aggregate-fidelity catch-up: draws the number of LLC and SF insertions
    /// that hit `loc` between the last synchronisation and `now`, without
    /// materialising per-event timestamps, and marks the set synchronised.
    ///
    /// The joint distribution of the two counts is Poisson thinning of the
    /// exact path's rate: independent `Poisson(λ·p)` and `Poisson(λ·(1−p))`
    /// (where `p` is the shared fraction), identical to drawing `Poisson(λ)`
    /// events and splitting each with a Bernoulli(`p`) coin. The sampling
    /// strategy switches on `λ` so the common case stays as cheap as the
    /// exact path's own count draw:
    ///
    /// * **Short windows** (`λ < 30`, every in-traversal sync): one total
    ///   `Poisson(λ)` draw — usually resolved by a single uniform sample
    ///   returning 0 — followed by a Bernoulli split only when events
    ///   actually occurred.
    /// * **Long windows**: two independent draws at the thinned rates, each
    ///   taking `sample_poisson`'s constant-cost branch.
    ///
    /// The counts are *not* capped at the exact path's `max_burst`: the bulk
    /// applier does `O(min(count, ways))` work regardless, so saturating
    /// gaps stay cheap without biasing the count distribution.
    ///
    /// Silent models and zero-length gaps return [`NoiseAdvance::NONE`]
    /// without consuming any randomness.
    pub fn catch_up_aggregate(
        &mut self,
        loc: SetLocation,
        now: u64,
        rng: &mut impl Rng,
    ) -> NoiseAdvance {
        let (_, gap) = self.advance_window(loc, now);
        if self.model.is_silent() || gap == 0 {
            return NoiseAdvance::NONE;
        }
        let lambda = gap as f64 * self.model.accesses_per_cycle_per_set;
        let p = self.model.shared_fraction;
        if lambda < 30.0 {
            let total = sample_poisson(lambda, rng);
            if total == 0 {
                return NoiseAdvance::NONE;
            }
            let llc = (0..total).filter(|_| rng.gen_bool(p)).count() as u64;
            NoiseAdvance { llc, sf: total - llc }
        } else {
            NoiseAdvance {
                llc: sample_poisson(lambda * p, rng),
                sf: sample_poisson(lambda * (1.0 - p), rng),
            }
        }
    }

    /// Marks a set as synchronised at `now` without generating events.
    ///
    /// Used when a set is first observed so that an arbitrarily long
    /// pre-history does not produce a burst on first touch (under the
    /// default [`InitialSync::TreatAsSynced`] this happens automatically).
    pub fn mark_synced(&mut self, loc: SetLocation, now: u64) {
        *self.sync_slot(loc) = now;
    }

    /// Samples the waiting time (in cycles) until the next background access
    /// to a single set. Used by experiment harnesses that need explicit
    /// inter-arrival samples (Figure 2).
    pub fn sample_interarrival(&self, rng: &mut impl Rng) -> u64 {
        if self.model.is_silent() {
            return u64::MAX;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        (-u.ln() / self.model.accesses_per_cycle_per_set).round() as u64
    }
}

/// Samples a Poisson random variable with mean `lambda`.
///
/// Uses Knuth's multiplication method for small means and a normal
/// approximation for large ones, which is plenty accurate for noise modelling.
pub fn sample_poisson(lambda: f64, rng: &mut impl Rng) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen_range(0.0..1.0f64);
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // Normal approximation with continuity correction.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (lambda + z * lambda.sqrt()).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn cloud_run_rate_matches_paper() {
        let m = NoiseModel::cloud_run();
        assert!((m.accesses_per_ms(2.0) - 11.5).abs() < 1e-9);
        let l = NoiseModel::quiescent_local();
        assert!((l.accesses_per_ms(2.0) - 0.29).abs() < 1e-9);
        assert!(m.accesses_per_cycle_per_set > 30.0 * l.accesses_per_cycle_per_set);
    }

    #[test]
    fn silent_noise_produces_no_events() {
        let mut p = NoiseProcess::new(NoiseModel::silent(), 2048, 8);
        let mut rng = SmallRng::seed_from_u64(0);
        let loc = SetLocation::new(0, 0);
        p.mark_synced(loc, 0);
        assert!(p.catch_up(loc, 1_000_000, &mut rng).is_empty());
    }

    #[test]
    fn catch_up_mean_matches_rate() {
        let mut p = NoiseProcess::new(NoiseModel::cloud_run(), 2048, 8);
        let mut rng = SmallRng::seed_from_u64(7);
        let loc = SetLocation::new(1, 5);
        // 1 ms at 2 GHz = 2e6 cycles -> expect ~11.5 events per window.
        let mut total = 0usize;
        let windows = 200;
        let mut now = 0u64;
        p.mark_synced(loc, 0);
        for _ in 0..windows {
            now += 2_000_000;
            total += p.catch_up(loc, now, &mut rng).len();
        }
        let mean = total as f64 / windows as f64;
        assert!((mean - 11.5).abs() < 1.5, "mean {mean} too far from 11.5");
    }

    #[test]
    fn first_touch_does_not_burst() {
        let mut p = NoiseProcess::new(NoiseModel::cloud_run(), 2048, 8);
        let mut rng = SmallRng::seed_from_u64(3);
        // Never marked synced: under the default InitialSync::TreatAsSynced
        // the first catch_up treats `now` as the sync point (opt into
        // pre-history replay with InitialSync::Warmup).
        let events = p.catch_up(SetLocation::new(0, 3), 10_000_000_000, &mut rng);
        assert!(events.is_empty());
    }

    #[test]
    fn events_are_sorted_and_in_window() {
        let mut p = NoiseProcess::new(NoiseModel::cloud_run(), 2048, 8);
        let mut rng = SmallRng::seed_from_u64(11);
        let loc = SetLocation::new(2, 9);
        p.mark_synced(loc, 1000);
        let events = p.catch_up(loc, 5_000_000, &mut rng);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for e in events {
            assert!(e.at >= 1000 && e.at < 5_000_000);
        }
    }

    /// Pins the capped-burst semantics: when the Poisson draw for a long gap
    /// exceeds `max_burst`, the burst is *thinned* — `max_burst` timestamps
    /// sampled uniformly over the whole gap — not truncated to the gap's
    /// most recent portion. The doc comment promises exactly this; if the
    /// sampling ever changes (e.g. to a genuinely "most recent events"
    /// scheme), this test forces the docs and the RNG-stream impact to be
    /// revisited together.
    #[test]
    fn capped_burst_thins_uniformly_over_the_whole_gap() {
        let mut p = NoiseProcess::new(NoiseModel::cloud_run(), 2048, 8);
        let mut rng = SmallRng::seed_from_u64(17);
        let loc = SetLocation::new(1, 7);
        p.mark_synced(loc, 0);
        // 100 ms at 2 GHz: the expected count (~1150) is far beyond the cap.
        let gap = 200_000_000u64;
        let events = p.catch_up(loc, gap, &mut rng).to_vec();
        assert_eq!(events.len(), 96, "burst must cap at max_burst");
        // Uniform sampling over the gap: every quarter of the window holds
        // events. A "most recent" scheme would leave the early quarters empty.
        for quarter in 0..4u64 {
            let lo = quarter * gap / 4;
            let hi = (quarter + 1) * gap / 4;
            assert!(
                events.iter().any(|e| e.at >= lo && e.at < hi),
                "no events in quarter {quarter} — sampling is not gap-uniform"
            );
        }
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at, "events must stay timestamp-ordered");
        }
    }

    /// The scratch-buffer rewrite must not change the event stream: a second
    /// process driven by an identical RNG produces bit-identical events, and
    /// reusing one process across calls leaves no stale events behind.
    #[test]
    fn scratch_reuse_is_stream_transparent() {
        let mut a = NoiseProcess::new(NoiseModel::cloud_run(), 2048, 8);
        let mut b = NoiseProcess::new(NoiseModel::cloud_run(), 2048, 8);
        let mut rng_a = SmallRng::seed_from_u64(23);
        let mut rng_b = SmallRng::seed_from_u64(23);
        let loc = SetLocation::new(0, 42);
        a.mark_synced(loc, 0);
        b.mark_synced(loc, 0);
        let mut now = 0u64;
        let mut lens = Vec::new();
        for step in 1..20u64 {
            now += step * 250_000; // growing gaps: small and large bursts
            let ea = a.catch_up(loc, now, &mut rng_a).to_vec();
            let eb = b.catch_up(loc, now, &mut rng_b).to_vec();
            assert_eq!(ea, eb, "identical RNG streams must give identical events");
            lens.push(ea.len());
        }
        // The sweep must have exercised both shrinking and growing bursts,
        // otherwise stale-scratch bugs could hide.
        assert!(lens.windows(2).any(|w| w[1] < w[0]) && lens.windows(2).any(|w| w[1] > w[0]));
    }

    /// Regression pin for the former first-sync blind spot: the first-touch
    /// semantics are now an explicit [`InitialSync`] knob resolved in one
    /// shared helper, so they are identical across fidelities by
    /// construction — and pinned here. `TreatAsSynced` (the default) sees no
    /// pre-history in either mode; `Warmup(gap)` replays exactly `gap`
    /// cycles of pre-history in either mode.
    #[test]
    fn initial_sync_semantics_are_identical_across_fidelities() {
        let loc = SetLocation::new(0, 3);
        // TreatAsSynced: no burst on first touch, both fidelities.
        let mut exact = NoiseProcess::new(NoiseModel::cloud_run(), 2048, 8);
        let mut agg = NoiseProcess::with_config(
            NoiseConfig::aggregate(NoiseModel::cloud_run()),
            2048,
            8,
        );
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(exact.catch_up(loc, 10_000_000_000, &mut rng).is_empty());
        assert!(agg.catch_up_aggregate(loc, 10_000_000_000, &mut rng).is_empty());

        // Warmup(gap): the first catch-up covers exactly `gap` cycles. A
        // 2 ms warm-up at Cloud Run rate means ~23 expected insertions —
        // far beyond zero in both modes.
        let warm = InitialSync::Warmup(4_000_000);
        let mut exact = NoiseProcess::with_config(
            NoiseConfig::exact(NoiseModel::cloud_run()).with_initial_sync(warm),
            2048,
            8,
        );
        let mut agg = NoiseProcess::with_config(
            NoiseConfig::aggregate(NoiseModel::cloud_run()).with_initial_sync(warm),
            2048,
            8,
        );
        let now = 10_000_000_000;
        let events = exact.catch_up(loc, now, &mut rng).to_vec();
        assert!(!events.is_empty(), "warm-up must replay pre-history noise");
        for e in &events {
            assert!(e.at >= now - 4_000_000 && e.at < now, "events confined to the warm-up gap");
        }
        let adv = agg.catch_up_aggregate(loc, now, &mut rng);
        assert!(adv.total() > 0, "warm-up must replay pre-history in aggregate mode too");
        // Both are now synced: an immediate re-observation is a no-op.
        assert!(exact.catch_up(loc, now, &mut rng).is_empty());
        assert!(agg.catch_up_aggregate(loc, now, &mut rng).is_empty());
    }

    /// Warm-up near cycle 0 must saturate instead of underflowing.
    #[test]
    fn warmup_saturates_at_time_zero() {
        let warm = InitialSync::Warmup(u64::MAX);
        let mut p = NoiseProcess::with_config(
            NoiseConfig::exact(NoiseModel::cloud_run()).with_initial_sync(warm),
            64,
            2,
        );
        let mut rng = SmallRng::seed_from_u64(9);
        let events = p.catch_up(SetLocation::new(0, 0), 1_000, &mut rng).to_vec();
        for e in &events {
            assert!(e.at < 1_000);
        }
    }

    /// Zero-gap and silent aggregate syncs must not consume randomness, so
    /// interleaving them into a trial leaves the RNG stream untouched.
    #[test]
    fn aggregate_noop_syncs_consume_no_randomness() {
        let loc = SetLocation::new(1, 1);
        let mut silent = NoiseProcess::with_config(
            NoiseConfig::aggregate(NoiseModel::silent()),
            2048,
            8,
        );
        let mut p = NoiseProcess::with_config(
            NoiseConfig::aggregate(NoiseModel::cloud_run()),
            2048,
            8,
        );
        let mut rng = SmallRng::seed_from_u64(21);
        let mut probe = SmallRng::seed_from_u64(21);
        assert!(silent.catch_up_aggregate(loc, 5_000_000, &mut rng).is_empty());
        p.mark_synced(loc, 7_000);
        assert!(p.catch_up_aggregate(loc, 7_000, &mut rng).is_empty(), "zero gap");
        assert!(p.catch_up_aggregate(loc, 6_000, &mut rng).is_empty(), "backwards gap");
        use rand::RngCore;
        assert_eq!(rng.next_u64(), probe.next_u64(), "no-op syncs must not advance the RNG");
    }

    /// The thinned per-structure counts must preserve the total rate and the
    /// shared split: E[llc] = λp·dt, E[sf] = λ(1−p)·dt.
    #[test]
    fn aggregate_counts_match_rate_and_split() {
        let mut p = NoiseProcess::with_config(
            NoiseConfig::aggregate(NoiseModel::cloud_run()),
            2048,
            8,
        );
        let mut rng = SmallRng::seed_from_u64(31);
        let loc = SetLocation::new(1, 5);
        p.mark_synced(loc, 0);
        let (mut llc, mut sf) = (0u64, 0u64);
        let windows = 400;
        let mut now = 0u64;
        for _ in 0..windows {
            now += 2_000_000; // 1 ms at 2 GHz -> ~11.5 insertions expected
            let adv = p.catch_up_aggregate(loc, now, &mut rng);
            llc += adv.llc;
            sf += adv.sf;
        }
        let mean = (llc + sf) as f64 / windows as f64;
        assert!((mean - 11.5).abs() < 1.0, "total mean {mean} too far from 11.5");
        let shared = llc as f64 / (llc + sf) as f64;
        assert!((shared - 0.5).abs() < 0.05, "shared split {shared} too far from 0.5");
    }

    #[test]
    fn fidelity_parse_round_trips() {
        for f in [NoiseFidelity::Exact, NoiseFidelity::Aggregate] {
            assert_eq!(NoiseFidelity::parse(f.label()), Some(f));
        }
        assert_eq!(NoiseFidelity::parse("AGGREGATE"), Some(NoiseFidelity::Aggregate));
        assert_eq!(NoiseFidelity::parse("bogus"), None);
    }

    /// Config round-trip through clone + restore_from: the new fields are
    /// machine-snapshot state and must survive both paths.
    #[test]
    fn clone_and_restore_carry_fidelity_and_initial_sync() {
        let cfg = NoiseConfig::aggregate(NoiseModel::cloud_run())
            .with_initial_sync(InitialSync::Warmup(1234));
        let p = NoiseProcess::with_config(cfg, 64, 2);
        let c = p.clone();
        assert_eq!(c.fidelity(), NoiseFidelity::Aggregate);
        assert_eq!(c.initial_sync(), InitialSync::Warmup(1234));
        let mut q = NoiseProcess::new(NoiseModel::silent(), 64, 2);
        q.restore_from(&p);
        assert_eq!(q.fidelity(), NoiseFidelity::Aggregate);
        assert_eq!(q.initial_sync(), InitialSync::Warmup(1234));
        assert_eq!(q.model(), p.model());
    }

    /// The per-event fallback downgrades the *effective* fidelity of an
    /// aggregate configuration (never of an exact one), and the flag
    /// survives clone + restore_from so snapshot rewinds keep reporting
    /// truthfully.
    #[test]
    fn effective_fidelity_reports_per_event_fallback() {
        let cfg = NoiseConfig::aggregate(NoiseModel::cloud_run());
        let mut p = NoiseProcess::with_config(cfg, 64, 2);
        assert_eq!(p.effective_fidelity(), NoiseFidelity::Aggregate);
        p.set_per_event_fallback(true);
        assert_eq!(p.fidelity(), NoiseFidelity::Aggregate, "configured fidelity is unchanged");
        assert_eq!(p.effective_fidelity(), NoiseFidelity::Exact);

        let c = p.clone();
        assert_eq!(c.effective_fidelity(), NoiseFidelity::Exact);
        let mut q = NoiseProcess::new(NoiseModel::silent(), 64, 2);
        q.restore_from(&p);
        assert_eq!(q.effective_fidelity(), NoiseFidelity::Exact);

        let mut exact = NoiseProcess::new(NoiseModel::cloud_run(), 64, 2);
        exact.set_per_event_fallback(true);
        assert_eq!(exact.effective_fidelity(), NoiseFidelity::Exact);
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut rng = SmallRng::seed_from_u64(5);
        for &lambda in &[0.5f64, 3.0, 50.0] {
            let n = 4000;
            let total: u64 = (0..n).map(|_| sample_poisson(lambda, &mut rng)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.2 + 0.1,
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn interarrival_mean_is_inverse_rate() {
        let p = NoiseProcess::new(NoiseModel::cloud_run(), 2048, 8);
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| p.sample_interarrival(&mut rng) as f64).sum();
        let mean = total / n as f64;
        let expected = 1.0 / NoiseModel::cloud_run().accesses_per_cycle_per_set;
        assert!((mean - expected).abs() / expected < 0.05, "mean {mean} vs {expected}");
    }
}
