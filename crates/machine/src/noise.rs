//! Background-tenant noise: the multi-tenant LLC/SF interference that makes
//! Cloud Run so much harder than a quiescent lab machine.
//!
//! Section 4.3 of the paper characterises the noise by the rate of background
//! accesses observed on a randomly chosen LLC set: **11.5 accesses/ms/set on
//! Cloud Run** versus **0.29 accesses/ms/set on the quiescent local machine**
//! (Figure 2 shows the inter-access-time CDF). The model reproduces this with
//! an independent Poisson process per (slice, set): whenever the simulation
//! needs the state of a set, the elapsed interval since the set was last
//! synchronised is converted into a Poisson-distributed number of background
//! insertions.

use llc_cache_model::SetLocation;
use rand::Rng;

/// Parameters of the background-tenant access process.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseModel {
    /// Average background accesses per cycle per (slice, set).
    ///
    /// 11.5 accesses/ms/set at 2 GHz is `11.5 / 2e6` accesses/cycle/set.
    pub accesses_per_cycle_per_set: f64,
    /// Fraction of background accesses that behave like *shared* lines
    /// (allocate in the LLC); the rest allocate snoop-filter entries.
    pub shared_fraction: f64,
    /// Human-readable label used in experiment reports.
    pub label: String,
}

impl NoiseModel {
    /// Cloud Run noise level: 11.5 accesses per millisecond per set at 2 GHz.
    pub fn cloud_run() -> Self {
        Self::from_accesses_per_ms(11.5, 2.0, "Cloud Run")
    }

    /// Quiescent local machine: 0.29 accesses per millisecond per set.
    pub fn quiescent_local() -> Self {
        Self::from_accesses_per_ms(0.29, 2.0, "Quiescent Local")
    }

    /// A completely silent machine (unit tests).
    pub fn silent() -> Self {
        Self {
            accesses_per_cycle_per_set: 0.0,
            shared_fraction: 0.5,
            label: "Silent".to_string(),
        }
    }

    /// Builds a noise model from an access rate expressed in accesses per
    /// millisecond per set, at the given core frequency.
    pub fn from_accesses_per_ms(per_ms: f64, freq_ghz: f64, label: &str) -> Self {
        let cycles_per_ms = freq_ghz * 1e6;
        Self {
            accesses_per_cycle_per_set: per_ms / cycles_per_ms,
            shared_fraction: 0.5,
            label: label.to_string(),
        }
    }

    /// The configured rate expressed in accesses per millisecond per set.
    pub fn accesses_per_ms(&self, freq_ghz: f64) -> f64 {
        self.accesses_per_cycle_per_set * freq_ghz * 1e6
    }

    /// Returns true if this model produces no noise at all.
    pub fn is_silent(&self) -> bool {
        self.accesses_per_cycle_per_set <= 0.0
    }
}

/// Lazily-evaluated per-set Poisson noise process.
///
/// Synchronisation timestamps live in a flat vector indexed by the flattened
/// `(slice, set)` location rather than a hash map: the map lookup ran once
/// per simulated memory access (the noise catch-up in `Machine`'s
/// `prepare_sets`), where a SipHash round per access is measurable. The
/// vector is pre-sized to the full `(slice, set)` index space at
/// construction, so the hot path is a plain bounds-checked index with no
/// resize branch, and restores are a same-length `clone_from`.
///
/// Catch-up events are materialised into a reusable scratch buffer owned by
/// the process (borrowed out as a slice), so the per-traversal hot path of
/// the machine performs **zero heap allocations** in steady state.
#[derive(Debug)]
pub struct NoiseProcess {
    model: NoiseModel,
    /// Last cycle at which each set was synchronised with the noise process,
    /// indexed by `slice * sets_per_slice + set`; [`NEVER_SYNCED`] marks a
    /// set that has not been observed yet. Pre-sized to cover every set of
    /// the simulated host's shared structures.
    last_sync: Vec<u64>,
    /// Sets per slice of the flattened index space.
    sets_per_slice: usize,
    /// Maximum number of noise insertions applied in one catch-up; older
    /// insertions are fully masked by newer ones, so this only needs to cover
    /// a few times the associativity.
    max_burst: u32,
    /// Reusable event buffer filled by [`NoiseProcess::catch_up`]. Its
    /// contents are dead between calls; it exists only so the hot path does
    /// not allocate. Capacity converges to `max_burst` and stays there.
    scratch: Vec<NoiseEvent>,
}

impl Clone for NoiseProcess {
    /// Clones the process state. The event scratch buffer is deliberately
    /// *not* cloned (its contents are dead outside a `catch_up` call), so
    /// snapshots stay as small as the bookkeeping they actually need.
    fn clone(&self) -> Self {
        Self {
            model: self.model.clone(),
            last_sync: self.last_sync.clone(),
            sets_per_slice: self.sets_per_slice,
            max_burst: self.max_burst,
            scratch: Vec::new(),
        }
    }
}

/// `last_sync` sentinel: the set has never been synchronised.
const NEVER_SYNCED: u64 = u64::MAX;

/// One background access to apply to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseEvent {
    /// Cycle at which the background access (notionally) happened.
    pub at: u64,
    /// Whether it allocates in the LLC (`true`) or the snoop filter.
    pub shared: bool,
}

impl NoiseProcess {
    /// Creates a noise process for `model`, flattening `(slice, set)`
    /// locations over `sets_per_slice` sets per slice across `num_slices`
    /// slices (the LLC/SF slice geometry of the simulated host). The
    /// synchronisation vector is sized for the whole geometry up front so
    /// the per-access hot path never grows it.
    pub fn new(model: NoiseModel, sets_per_slice: usize, num_slices: usize) -> Self {
        assert!(sets_per_slice > 0, "sets_per_slice must be non-zero");
        assert!(num_slices > 0, "num_slices must be non-zero");
        Self {
            model,
            last_sync: vec![NEVER_SYNCED; sets_per_slice * num_slices],
            sets_per_slice,
            max_burst: 96,
            scratch: Vec::new(),
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &NoiseModel {
        &self.model
    }

    /// Copies `source`'s state into `self` in place, reusing the
    /// synchronisation vector's allocation (hot path of machine restores).
    /// The event scratch buffer is per-machine transient state and keeps
    /// `self`'s allocation.
    pub fn restore_from(&mut self, source: &NoiseProcess) {
        self.model.clone_from(&source.model);
        self.last_sync.clone_from(&source.last_sync);
        self.sets_per_slice = source.sets_per_slice;
        self.max_burst = source.max_burst;
    }

    /// Flat `last_sync` index of `loc`. The vector covers the whole slice
    /// geometry by construction, so this is a plain index (no resize branch
    /// on the hot path; an out-of-geometry location is a caller bug and
    /// panics via the bounds check).
    #[inline]
    fn sync_slot(&mut self, loc: SetLocation) -> &mut u64 {
        debug_assert!(loc.set < self.sets_per_slice, "set index outside the slice geometry");
        &mut self.last_sync[loc.flat_index(self.sets_per_slice)]
    }

    /// Computes the background accesses that hit `loc` between the last
    /// synchronisation of that set and `now`, and marks the set synchronised.
    ///
    /// The returned events are ordered by timestamp and borrowed from an
    /// internal scratch buffer (valid until the next `catch_up` call), so
    /// the traversal hot path allocates nothing. At most `max_burst` events
    /// are produced; when the Poisson draw for the gap exceeds that cap, the
    /// burst is *thinned*: `max_burst` insertion timestamps are sampled
    /// uniformly over the **whole** gap (not just its most recent portion).
    /// This bounds the per-catch-up work without biasing where in the gap
    /// insertions land; a gap long enough to hit the cap has filled the set
    /// with noise many times over either way, so only the last ~associativity
    /// insertions are observable.
    pub fn catch_up(&mut self, loc: SetLocation, now: u64, rng: &mut impl Rng) -> &[NoiseEvent] {
        self.scratch.clear();
        let slot = self.sync_slot(loc);
        let last = if *slot == NEVER_SYNCED { now } else { *slot };
        *slot = now;
        if self.model.is_silent() || now <= last {
            return &self.scratch;
        }
        let dt = (now - last) as f64;
        let lambda = dt * self.model.accesses_per_cycle_per_set;
        let count = sample_poisson(lambda, rng).min(self.max_burst as u64);
        let span = (now - last).max(1);
        let shared_fraction = self.model.shared_fraction;
        self.scratch.extend((0..count).map(|_| NoiseEvent {
            at: last + rng.gen_range(0..span),
            shared: rng.gen_bool(shared_fraction),
        }));
        // Stable insertion sort by timestamp: identical output (ties
        // included) to the slice stable sort it replaces, but without the
        // merge buffer std's stable sort heap-allocates — bursts are capped
        // at `max_burst`, so quadratic worst case is bounded and rare.
        let events = self.scratch.as_mut_slice();
        for i in 1..events.len() {
            let mut j = i;
            while j > 0 && events[j - 1].at > events[j].at {
                events.swap(j - 1, j);
                j -= 1;
            }
        }
        &self.scratch
    }

    /// Marks a set as synchronised at `now` without generating events.
    ///
    /// Used when a set is first observed so that an arbitrarily long
    /// pre-history does not produce a burst on first touch.
    pub fn mark_synced(&mut self, loc: SetLocation, now: u64) {
        *self.sync_slot(loc) = now;
    }

    /// Samples the waiting time (in cycles) until the next background access
    /// to a single set. Used by experiment harnesses that need explicit
    /// inter-arrival samples (Figure 2).
    pub fn sample_interarrival(&self, rng: &mut impl Rng) -> u64 {
        if self.model.is_silent() {
            return u64::MAX;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        (-u.ln() / self.model.accesses_per_cycle_per_set).round() as u64
    }
}

/// Samples a Poisson random variable with mean `lambda`.
///
/// Uses Knuth's multiplication method for small means and a normal
/// approximation for large ones, which is plenty accurate for noise modelling.
pub fn sample_poisson(lambda: f64, rng: &mut impl Rng) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen_range(0.0..1.0f64);
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        // Normal approximation with continuity correction.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (lambda + z * lambda.sqrt()).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn cloud_run_rate_matches_paper() {
        let m = NoiseModel::cloud_run();
        assert!((m.accesses_per_ms(2.0) - 11.5).abs() < 1e-9);
        let l = NoiseModel::quiescent_local();
        assert!((l.accesses_per_ms(2.0) - 0.29).abs() < 1e-9);
        assert!(m.accesses_per_cycle_per_set > 30.0 * l.accesses_per_cycle_per_set);
    }

    #[test]
    fn silent_noise_produces_no_events() {
        let mut p = NoiseProcess::new(NoiseModel::silent(), 2048, 8);
        let mut rng = SmallRng::seed_from_u64(0);
        let loc = SetLocation::new(0, 0);
        p.mark_synced(loc, 0);
        assert!(p.catch_up(loc, 1_000_000, &mut rng).is_empty());
    }

    #[test]
    fn catch_up_mean_matches_rate() {
        let mut p = NoiseProcess::new(NoiseModel::cloud_run(), 2048, 8);
        let mut rng = SmallRng::seed_from_u64(7);
        let loc = SetLocation::new(1, 5);
        // 1 ms at 2 GHz = 2e6 cycles -> expect ~11.5 events per window.
        let mut total = 0usize;
        let windows = 200;
        let mut now = 0u64;
        p.mark_synced(loc, 0);
        for _ in 0..windows {
            now += 2_000_000;
            total += p.catch_up(loc, now, &mut rng).len();
        }
        let mean = total as f64 / windows as f64;
        assert!((mean - 11.5).abs() < 1.5, "mean {mean} too far from 11.5");
    }

    #[test]
    fn first_touch_does_not_burst() {
        let mut p = NoiseProcess::new(NoiseModel::cloud_run(), 2048, 8);
        let mut rng = SmallRng::seed_from_u64(3);
        // Never marked synced: first catch_up treats `now` as the sync point.
        let events = p.catch_up(SetLocation::new(0, 3), 10_000_000_000, &mut rng);
        assert!(events.is_empty());
    }

    #[test]
    fn events_are_sorted_and_in_window() {
        let mut p = NoiseProcess::new(NoiseModel::cloud_run(), 2048, 8);
        let mut rng = SmallRng::seed_from_u64(11);
        let loc = SetLocation::new(2, 9);
        p.mark_synced(loc, 1000);
        let events = p.catch_up(loc, 5_000_000, &mut rng);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        for e in events {
            assert!(e.at >= 1000 && e.at < 5_000_000);
        }
    }

    /// Pins the capped-burst semantics: when the Poisson draw for a long gap
    /// exceeds `max_burst`, the burst is *thinned* — `max_burst` timestamps
    /// sampled uniformly over the whole gap — not truncated to the gap's
    /// most recent portion. The doc comment promises exactly this; if the
    /// sampling ever changes (e.g. to a genuinely "most recent events"
    /// scheme), this test forces the docs and the RNG-stream impact to be
    /// revisited together.
    #[test]
    fn capped_burst_thins_uniformly_over_the_whole_gap() {
        let mut p = NoiseProcess::new(NoiseModel::cloud_run(), 2048, 8);
        let mut rng = SmallRng::seed_from_u64(17);
        let loc = SetLocation::new(1, 7);
        p.mark_synced(loc, 0);
        // 100 ms at 2 GHz: the expected count (~1150) is far beyond the cap.
        let gap = 200_000_000u64;
        let events = p.catch_up(loc, gap, &mut rng).to_vec();
        assert_eq!(events.len(), 96, "burst must cap at max_burst");
        // Uniform sampling over the gap: every quarter of the window holds
        // events. A "most recent" scheme would leave the early quarters empty.
        for quarter in 0..4u64 {
            let lo = quarter * gap / 4;
            let hi = (quarter + 1) * gap / 4;
            assert!(
                events.iter().any(|e| e.at >= lo && e.at < hi),
                "no events in quarter {quarter} — sampling is not gap-uniform"
            );
        }
        for w in events.windows(2) {
            assert!(w[0].at <= w[1].at, "events must stay timestamp-ordered");
        }
    }

    /// The scratch-buffer rewrite must not change the event stream: a second
    /// process driven by an identical RNG produces bit-identical events, and
    /// reusing one process across calls leaves no stale events behind.
    #[test]
    fn scratch_reuse_is_stream_transparent() {
        let mut a = NoiseProcess::new(NoiseModel::cloud_run(), 2048, 8);
        let mut b = NoiseProcess::new(NoiseModel::cloud_run(), 2048, 8);
        let mut rng_a = SmallRng::seed_from_u64(23);
        let mut rng_b = SmallRng::seed_from_u64(23);
        let loc = SetLocation::new(0, 42);
        a.mark_synced(loc, 0);
        b.mark_synced(loc, 0);
        let mut now = 0u64;
        let mut lens = Vec::new();
        for step in 1..20u64 {
            now += step * 250_000; // growing gaps: small and large bursts
            let ea = a.catch_up(loc, now, &mut rng_a).to_vec();
            let eb = b.catch_up(loc, now, &mut rng_b).to_vec();
            assert_eq!(ea, eb, "identical RNG streams must give identical events");
            lens.push(ea.len());
        }
        // The sweep must have exercised both shrinking and growing bursts,
        // otherwise stale-scratch bugs could hide.
        assert!(lens.windows(2).any(|w| w[1] < w[0]) && lens.windows(2).any(|w| w[1] > w[0]));
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut rng = SmallRng::seed_from_u64(5);
        for &lambda in &[0.5f64, 3.0, 50.0] {
            let n = 4000;
            let total: u64 = (0..n).map(|_| sample_poisson(lambda, &mut rng)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.2 + 0.1,
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn interarrival_mean_is_inverse_rate() {
        let p = NoiseProcess::new(NoiseModel::cloud_run(), 2048, 8);
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| p.sample_interarrival(&mut rng) as f64).sum();
        let mean = total / n as f64;
        let expected = 1.0 / NoiseModel::cloud_run().accesses_per_cycle_per_set;
        assert!((mean - expected).abs() / expected < 0.05, "mean {mean} vs {expected}");
    }
}
