//! The tenant actor layer: every source of cache activity on the simulated
//! host — the statistical noise floor and structured background workloads —
//! expressed as [`Tenant`] actors scheduled by a [`HostSim`].
//!
//! The host owns the [`Hierarchy`] plus a binary-heap event queue keyed on
//! the machine's virtual clock. Scheduled tenants (bursty web serving, batch
//! scans, idle sidecars) post timed cache-access events drawn from
//! per-tenant seeded streams; the [`StatisticalTenant`] — the former
//! free-standing `NoiseProcess` — stays *lazily* synchronised per set
//! instead, exactly as before the refactor, which is what keeps the legacy
//! single-attacker/single-victim configuration bit-identical (it posts no
//! events, draws from the same machine RNG in the same order, and the event
//! queue stays empty).
//!
//! Tenant placement and churn model the paper's co-residency question:
//! neighbours arrive, dwell for an exponentially distributed time, depart,
//! and are replaced by a fresh neighbour (a migration) with a newly drawn
//! working set. All churn randomness comes from per-tenant sub-streams
//! derived with `llc_fleet::stream_seed`, so adding or churning tenants
//! never perturbs the attacker's jitter stream, and every fleet trial
//! re-derives the whole population deterministically from its trial seed.

use crate::noise::NoiseProcess;
use llc_cache_model::{Hierarchy, SetLocation, SharedGeometry};
use llc_fleet::stream_seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Stream tag under which [`HostSim`] derives the per-tenant seed family
/// from a machine (re)seed, via the injective `llc-fleet` derivation.
const TENANT_STREAM: u64 = u64::from_le_bytes(*b"tenant\0\0");

/// One background access posted by a tenant: the shared set it lands in and
/// whether it allocates in the LLC (`true`, a shared line) or the snoop
/// filter (`false`, another tenant's private line).
pub type TenantAccess = (SetLocation, bool);

/// Reusable buffer a tenant fills with one event's burst of accesses.
///
/// Owned by the machine and handed to [`Tenant::on_event`] so the event
/// dispatch hot path allocates nothing in steady state.
#[derive(Debug, Clone, Default)]
pub struct TenantBurst {
    /// The burst's accesses, in posting order. Consecutive accesses to the
    /// same set are applied through one borrowed set view
    /// (`Hierarchy::noise_access_bulk`).
    pub accesses: Vec<TenantAccess>,
    /// Scratch: the burst's distinct locations, for canonical noise
    /// catch-up ordering before the accesses land.
    pub(crate) locs: Vec<SetLocation>,
}

impl TenantBurst {
    /// Empties the buffer (keeping its allocations).
    pub fn clear(&mut self) {
        self.accesses.clear();
        self.locs.clear();
    }
}

/// A co-resident tenant actor.
///
/// Tenants come in two temporal shapes, distinguished by what
/// [`Tenant::place`] returns:
///
/// * **Scheduled** tenants return their first event time; the host enqueues
///   it and thereafter calls [`Tenant::on_event`] at each scheduled cycle,
///   interleaved with victim replay in timestamp order.
/// * **Lazy** tenants return `None`: they post no events and are instead
///   synchronised per set at observation time (the [`StatisticalTenant`]'s
///   Poisson catch-up, evaluated only for sets somebody actually looks at).
pub trait Tenant: std::fmt::Debug {
    /// Short human label for reports ("idle", "bursty-web", ...).
    fn label(&self) -> &'static str;

    /// (Re)places the tenant on a host with the given shared geometry:
    /// draws a fresh working-set footprint from `rng` and returns the cycle
    /// of its first activity event (`None` for lazy tenants).
    fn place(&mut self, geometry: SharedGeometry, now: u64, rng: &mut StdRng) -> Option<u64>;

    /// Executes the activity event scheduled at `at`: posts the burst's
    /// accesses into `burst` and returns the next event time (`None` to
    /// stop scheduling).
    fn on_event(
        &mut self,
        at: u64,
        geometry: SharedGeometry,
        rng: &mut StdRng,
        burst: &mut TenantBurst,
    ) -> Option<u64>;
}

/// Draws an exponentially distributed gap with the given mean, in cycles
/// (minimum 1, so event times strictly advance).
fn exp_gap(rng: &mut StdRng, mean: f64) -> u64 {
    // 1 - u ∈ (0, 1]: ln never sees zero.
    let u: f64 = 1.0 - rng.gen::<f64>();
    (-u.ln() * mean).ceil().max(1.0) as u64
}

/// Draws a uniformly random shared-set location.
fn random_loc(geometry: SharedGeometry, rng: &mut StdRng) -> SetLocation {
    geometry.location(rng.gen::<u64>() as usize % geometry.total_sets())
}

// ---------------------------------------------------------------------------
// The statistical tenant (the former free-standing noise process)
// ---------------------------------------------------------------------------

/// The statistical noise floor as a tenant: wraps the Poisson
/// [`NoiseProcess`] that models the aggregate LLC/SF traffic of all the
/// *unmodelled* neighbours (11.5 accesses/ms/set on Cloud Run).
///
/// This is the lazy tenant kind: it never posts events. Each shared set is
/// caught up on demand when the attacker or victim touches it, drawing from
/// the machine's RNG in exactly the pre-refactor order — the bit-identity
/// anchor for every existing golden.
#[derive(Debug, Clone)]
pub struct StatisticalTenant {
    pub(crate) process: NoiseProcess,
}

impl StatisticalTenant {
    /// Wraps a noise process as the host's lazy statistical tenant.
    pub fn new(process: NoiseProcess) -> Self {
        Self { process }
    }

    /// The wrapped noise process.
    pub fn process(&self) -> &NoiseProcess {
        &self.process
    }

    /// Mutable access to the wrapped noise process.
    pub fn process_mut(&mut self) -> &mut NoiseProcess {
        &mut self.process
    }
}

impl Tenant for StatisticalTenant {
    fn label(&self) -> &'static str {
        "statistical"
    }

    fn place(&mut self, _geometry: SharedGeometry, _now: u64, _rng: &mut StdRng) -> Option<u64> {
        None // lazy: synchronised per set at observation time
    }

    fn on_event(
        &mut self,
        _at: u64,
        _geometry: SharedGeometry,
        _rng: &mut StdRng,
        _burst: &mut TenantBurst,
    ) -> Option<u64> {
        None // never scheduled
    }
}

// ---------------------------------------------------------------------------
// Scheduled background workloads
// ---------------------------------------------------------------------------

/// An idle neighbour: a mostly-sleeping sidecar that touches a tiny
/// working set about once per millisecond.
#[derive(Debug, Clone, Default)]
pub struct IdleTenant {
    footprint: Vec<SetLocation>,
}

impl IdleTenant {
    const FOOTPRINT_SETS: usize = 8;
    const MEAN_GAP_CYCLES: f64 = 2_000_000.0; // ~1 wakeup per ms at 2 GHz
    const ACCESSES_PER_EVENT: usize = 2;
}

impl Tenant for IdleTenant {
    fn label(&self) -> &'static str {
        "idle"
    }

    fn place(&mut self, geometry: SharedGeometry, now: u64, rng: &mut StdRng) -> Option<u64> {
        self.footprint.clear();
        self.footprint.extend((0..Self::FOOTPRINT_SETS).map(|_| random_loc(geometry, rng)));
        Some(now + exp_gap(rng, Self::MEAN_GAP_CYCLES))
    }

    fn on_event(
        &mut self,
        at: u64,
        _geometry: SharedGeometry,
        rng: &mut StdRng,
        burst: &mut TenantBurst,
    ) -> Option<u64> {
        for _ in 0..Self::ACCESSES_PER_EVENT {
            let loc = self.footprint[rng.gen::<u64>() as usize % self.footprint.len()];
            burst.accesses.push((loc, rng.gen::<f64>() < 0.5));
        }
        Some(at + exp_gap(rng, Self::MEAN_GAP_CYCLES))
    }
}

/// A bursty web-serving neighbour: requests arrive as a Poisson process
/// (~5 per millisecond) and each request touches a few hot sets of a larger
/// footprint with a short same-set run per hot set (the shape that makes
/// the set-view bulk access path pay off).
#[derive(Debug, Clone, Default)]
pub struct BurstyWebTenant {
    footprint: Vec<SetLocation>,
}

impl BurstyWebTenant {
    const FOOTPRINT_SETS: usize = 32;
    const MEAN_GAP_CYCLES: f64 = 400_000.0; // ~5 requests per ms at 2 GHz
    const HOT_SETS_PER_REQUEST: usize = 4;
    const RUN_PER_HOT_SET: usize = 6;
}

impl Tenant for BurstyWebTenant {
    fn label(&self) -> &'static str {
        "bursty-web"
    }

    fn place(&mut self, geometry: SharedGeometry, now: u64, rng: &mut StdRng) -> Option<u64> {
        self.footprint.clear();
        self.footprint.extend((0..Self::FOOTPRINT_SETS).map(|_| random_loc(geometry, rng)));
        Some(now + exp_gap(rng, Self::MEAN_GAP_CYCLES))
    }

    fn on_event(
        &mut self,
        at: u64,
        _geometry: SharedGeometry,
        rng: &mut StdRng,
        burst: &mut TenantBurst,
    ) -> Option<u64> {
        for _ in 0..Self::HOT_SETS_PER_REQUEST {
            let loc = self.footprint[rng.gen::<u64>() as usize % self.footprint.len()];
            for _ in 0..Self::RUN_PER_HOT_SET {
                // Web-serving working sets are mostly shared (page cache,
                // code): most insertions contend in the LLC.
                burst.accesses.push((loc, rng.gen::<f64>() < 0.6));
            }
        }
        Some(at + exp_gap(rng, Self::MEAN_GAP_CYCLES))
    }
}

/// A batch-scan neighbour: a steady sequential sweep over the whole shared
/// set space (analytics / compaction / backup traffic), one stripe of
/// consecutive sets per fixed-interval event.
#[derive(Debug, Clone, Default)]
pub struct BatchScanTenant {
    cursor: usize,
}

impl BatchScanTenant {
    const INTERVAL_CYCLES: u64 = 25_000;
    const SETS_PER_EVENT: usize = 8;
}

impl Tenant for BatchScanTenant {
    fn label(&self) -> &'static str {
        "batch-scan"
    }

    fn place(&mut self, geometry: SharedGeometry, now: u64, rng: &mut StdRng) -> Option<u64> {
        self.cursor = rng.gen::<u64>() as usize % geometry.total_sets();
        Some(now + Self::INTERVAL_CYCLES)
    }

    fn on_event(
        &mut self,
        at: u64,
        geometry: SharedGeometry,
        rng: &mut StdRng,
        burst: &mut TenantBurst,
    ) -> Option<u64> {
        let total = geometry.total_sets();
        for k in 0..Self::SETS_PER_EVENT {
            let loc = geometry.location((self.cursor + k) % total);
            // Streaming reads of private buffers: mostly SF insertions.
            burst.accesses.push((loc, rng.gen::<f64>() < 0.25));
        }
        self.cursor = (self.cursor + Self::SETS_PER_EVENT) % total;
        Some(at + Self::INTERVAL_CYCLES)
    }
}

/// The background workload kinds a host population can be composed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Mostly-sleeping sidecar ([`IdleTenant`]).
    Idle,
    /// Poisson request bursts over hot sets ([`BurstyWebTenant`]).
    BurstyWeb,
    /// Steady sequential sweep of the set space ([`BatchScanTenant`]).
    BatchScan,
}

impl WorkloadKind {
    /// Parses a workload name (the `--tenants` vocabulary).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "idle" => Some(Self::Idle),
            "bursty-web" | "bursty" => Some(Self::BurstyWeb),
            "batch-scan" | "batch" => Some(Self::BatchScan),
            _ => None,
        }
    }

    /// Canonical label (round-trips through [`WorkloadKind::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            Self::Idle => "idle",
            Self::BurstyWeb => "bursty-web",
            Self::BatchScan => "batch-scan",
        }
    }

    fn instance(self) -> WorkloadTenant {
        match self {
            Self::Idle => WorkloadTenant::Idle(IdleTenant::default()),
            Self::BurstyWeb => WorkloadTenant::Bursty(BurstyWebTenant::default()),
            Self::BatchScan => WorkloadTenant::Batch(BatchScanTenant::default()),
        }
    }
}

/// Runtime state of a scheduled workload, enum-dispatched (like the cache
/// core's replacement policies) so slots stay `Clone` for snapshots.
#[derive(Debug, Clone)]
enum WorkloadTenant {
    Idle(IdleTenant),
    Bursty(BurstyWebTenant),
    Batch(BatchScanTenant),
}

impl WorkloadTenant {
    fn as_tenant_mut(&mut self) -> &mut dyn Tenant {
        match self {
            Self::Idle(t) => t,
            Self::Bursty(t) => t,
            Self::Batch(t) => t,
        }
    }
}

/// Churn model: every tenant slot dwells for an exponentially distributed
/// time, departs, and is replaced after an exponential vacancy gap by a
/// fresh neighbour of the same workload kind with a newly drawn working set
/// (arrival → dwell → departure → migration, repeated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Mean co-residency dwell time, in cycles.
    pub mean_dwell_cycles: f64,
}

impl ChurnConfig {
    /// Mean vacancy between a departure and the replacement's arrival: a
    /// quarter of the dwell time (hosts in the paper's setting are rarely
    /// left under-committed for long).
    fn mean_gap_cycles(self) -> f64 {
        (self.mean_dwell_cycles / 4.0).max(1.0)
    }
}

/// The configured tenant population of a host: which background workloads
/// co-reside with the attacker/victim pair, and whether they churn.
///
/// The empty population is the legacy single-attacker/single-victim host
/// and is guaranteed bit-identical to the pre-actor-model machine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TenantPopulation {
    /// One entry per background tenant slot.
    pub workloads: Vec<WorkloadKind>,
    /// Churn model; `None` pins the population for the whole simulation.
    pub churn: Option<ChurnConfig>,
}

impl TenantPopulation {
    /// Upper bound on the number of background tenant slots a parsed spec
    /// may configure. Far above anything a simulated host can make progress
    /// with, but low enough that a typo'd `N*kind` repeat count fails to
    /// parse instead of materialising billions of slots.
    pub const MAX_TENANTS: usize = 256;

    /// The empty (legacy) population.
    pub fn empty() -> Self {
        Self::default()
    }

    /// True if no background tenants are configured.
    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }

    /// Number of configured background tenant slots.
    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    /// Returns this population with the given churn model.
    pub fn with_churn(mut self, churn: ChurnConfig) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Parses a population spec: comma- or plus-separated entries of the
    /// form `N*kind` or `kind`, e.g. `2*idle,1*bursty-web` or
    /// `idle+batch-scan`. Kinds: `idle`, `bursty-web`, `batch-scan`.
    /// Rejects specs totalling more than [`Self::MAX_TENANTS`] slots.
    pub fn parse(spec: &str) -> Option<Self> {
        let mut workloads = Vec::new();
        for entry in spec.split([',', '+']).map(str::trim).filter(|e| !e.is_empty()) {
            let (count, name) = match entry.split_once('*') {
                Some((n, name)) => (n.trim().parse::<usize>().ok()?, name.trim()),
                None => (1, entry),
            };
            let kind = WorkloadKind::parse(name)?;
            if count > Self::MAX_TENANTS - workloads.len() {
                return None;
            }
            workloads.extend(std::iter::repeat(kind).take(count));
        }
        Some(Self { workloads, churn: None })
    }

    /// Canonical label for report headers: consecutive equal kinds grouped,
    /// e.g. `2*idle+1*bursty-web`. Empty string for the empty population.
    pub fn label(&self) -> String {
        let mut parts: Vec<(WorkloadKind, usize)> = Vec::new();
        for &kind in &self.workloads {
            match parts.last_mut() {
                Some((k, n)) if *k == kind => *n += 1,
                _ => parts.push((kind, 1)),
            }
        }
        parts
            .iter()
            .map(|(k, n)| format!("{n}*{}", k.label()))
            .collect::<Vec<_>>()
            .join("+")
    }
}

// ---------------------------------------------------------------------------
// The host simulator
// ---------------------------------------------------------------------------

/// What a queued host event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum EventKind {
    /// Tenant activity burst.
    Work,
    /// The slot's tenant leaves the host.
    Depart,
    /// A replacement tenant (fresh working set) migrates in.
    Arrive,
}

/// One entry of the host's event queue. Ordered by `(at, seq)`: `seq` is a
/// monotonically increasing push counter, so same-cycle events fire in
/// deterministic insertion order regardless of heap internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct HostEvent {
    pub(crate) at: u64,
    seq: u64,
    pub(crate) slot: u32,
    pub(crate) kind: EventKind,
    /// The slot generation that posted the event. A `Work` event whose
    /// generation no longer matches the slot's is a leftover of a departed
    /// tenant's chain and must be dropped, or the replacement tenant ends up
    /// running two work chains at once (the `present` flag alone only
    /// catches stale events that fire inside the vacancy window).
    generation: u64,
}

/// One background tenant slot: the workload state machine plus its private
/// seeded stream and churn bookkeeping.
#[derive(Debug, Clone)]
struct TenantSlot {
    workload: WorkloadTenant,
    kind: WorkloadKind,
    rng: StdRng,
    /// Per-slot base seed (derived from the machine seed via
    /// `stream_seed`); generations re-derive from it.
    seed: u64,
    /// Migration counter: each arrival re-seeds the slot RNG from
    /// `stream_seed(seed, generation)` and redraws the working set.
    generation: u64,
    present: bool,
}

/// The simulated host: the shared [`Hierarchy`], the lazy
/// [`StatisticalTenant`], and the scheduled background tenants with their
/// binary-heap event queue keyed on the machine's virtual clock.
///
/// The machine drives it: `Machine::tick` interleaves queued tenant events
/// with victim replay in timestamp order (ties resolve victim-first), and
/// routes each burst through the statistical tenant's per-set catch-up
/// before the burst's own accesses land — identical ordering discipline to
/// the victim replay path.
#[derive(Debug, Clone)]
pub struct HostSim {
    pub(crate) hierarchy: Hierarchy,
    pub(crate) statistical: StatisticalTenant,
    population: TenantPopulation,
    slots: Vec<TenantSlot>,
    queue: BinaryHeap<Reverse<HostEvent>>,
    seq: u64,
    /// Total tenant arrivals (initial placements + churn migrations).
    arrivals: u64,
}

impl HostSim {
    pub(crate) fn new(
        hierarchy: Hierarchy,
        statistical: StatisticalTenant,
        population: TenantPopulation,
    ) -> Self {
        let slots = population
            .workloads
            .iter()
            .map(|&kind| TenantSlot {
                workload: kind.instance(),
                kind,
                rng: StdRng::seed_from_u64(0),
                seed: 0,
                generation: 0,
                present: false,
            })
            .collect();
        Self {
            hierarchy,
            statistical,
            population,
            slots,
            queue: BinaryHeap::new(),
            seq: 0,
            arrivals: 0,
        }
    }

    /// The configured tenant population.
    pub fn population(&self) -> &TenantPopulation {
        &self.population
    }

    /// Number of background tenants currently resident (excludes slots
    /// waiting out a churn vacancy).
    pub fn tenants_present(&self) -> usize {
        self.slots.iter().filter(|s| s.present).count()
    }

    /// Total tenant arrivals so far: initial placements plus churn
    /// migrations.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    pub(crate) fn has_scheduled(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Time of the earliest queued event at or before `to`, if any.
    pub(crate) fn next_event_at(&self, to: u64) -> Option<u64> {
        self.queue.peek().map(|Reverse(e)| e.at).filter(|&at| at <= to)
    }

    pub(crate) fn pop_event(&mut self) -> HostEvent {
        self.queue.pop().expect("pop_event called with an empty queue").0
    }

    fn push(&mut self, at: u64, slot: u32, kind: EventKind, generation: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(HostEvent { at, seq, slot, kind, generation }));
    }

    /// (Re)derives every tenant slot's sub-stream from `master`, redraws
    /// working sets and rebuilds the event queue from scratch as of `now`.
    ///
    /// Called at machine build and from `Machine::reseed`, so each fleet
    /// trial gets an independent, deterministic tenant population. Performs
    /// **zero work and zero RNG draws** for the empty population — the
    /// legacy configuration's bit-identity depends on it.
    pub(crate) fn reseed_tenants(&mut self, master: u64, now: u64) {
        self.queue.clear();
        self.seq = 0;
        self.arrivals = 0;
        if self.slots.is_empty() {
            return;
        }
        let family = stream_seed(master, TENANT_STREAM);
        let geometry = self.hierarchy.shared_geometry();
        let churn = self.population.churn;
        for index in 0..self.slots.len() {
            let slot = &mut self.slots[index];
            slot.seed = stream_seed(family, index as u64);
            slot.generation = 0;
            slot.rng = StdRng::seed_from_u64(stream_seed(slot.seed, 0));
            slot.workload = slot.kind.instance();
            slot.present = true;
            let first = slot.workload.as_tenant_mut().place(geometry, now, &mut slot.rng);
            let dwell = churn.map(|c| now + exp_gap(&mut slot.rng, c.mean_dwell_cycles));
            self.arrivals += 1;
            if let Some(at) = first {
                self.push(at, index as u32, EventKind::Work, 0);
            }
            if let Some(at) = dwell {
                self.push(at, index as u32, EventKind::Depart, 0);
            }
        }
    }

    /// Advances one popped event's tenant: fills `burst` with the accesses
    /// to apply (empty for churn bookkeeping events) and enqueues the
    /// slot's follow-up events.
    pub(crate) fn step_tenant(&mut self, event: HostEvent, burst: &mut TenantBurst) {
        burst.clear();
        let geometry = self.hierarchy.shared_geometry();
        let churn = self.population.churn;
        let index = event.slot as usize;
        let slot = &mut self.slots[index];
        match event.kind {
            EventKind::Work => {
                // Drop stale work: the posting tenant has departed (vacancy
                // window) or has already been replaced (generation moved on
                // — executing the event would fork a second work chain
                // against the replacement's state and RNG).
                if !slot.present || event.generation != slot.generation {
                    return;
                }
                let next =
                    slot.workload.as_tenant_mut().on_event(event.at, geometry, &mut slot.rng, burst);
                if let Some(at) = next {
                    self.push(at, event.slot, EventKind::Work, event.generation);
                }
            }
            EventKind::Depart => {
                let Some(churn) = churn else { return };
                slot.present = false;
                let gap = exp_gap(&mut slot.rng, churn.mean_gap_cycles());
                let generation = slot.generation;
                self.push(event.at + gap, event.slot, EventKind::Arrive, generation);
            }
            EventKind::Arrive => {
                let Some(churn) = churn else { return };
                // A *different* neighbour moves in: new generation, new
                // sub-stream, fresh working set.
                slot.generation += 1;
                slot.rng = StdRng::seed_from_u64(stream_seed(slot.seed, slot.generation));
                slot.workload = slot.kind.instance();
                slot.present = true;
                self.arrivals += 1;
                let first = slot.workload.as_tenant_mut().place(geometry, event.at, &mut slot.rng);
                let dwell = event.at + exp_gap(&mut slot.rng, churn.mean_dwell_cycles);
                let generation = slot.generation;
                if let Some(at) = first {
                    self.push(at, event.slot, EventKind::Work, generation);
                }
                self.push(dwell, event.slot, EventKind::Depart, generation);
            }
        }
    }

    /// Copies `source`'s state into `self` in place, reusing allocations
    /// where the collections allow (the per-trial machine-restore hot path).
    pub(crate) fn restore_from(&mut self, source: &HostSim) {
        self.hierarchy.restore_from(&source.hierarchy);
        self.statistical.process.restore_from(&source.statistical.process);
        self.population.clone_from(&source.population);
        self.slots.clone_from(&source.slots);
        self.queue.clone_from(&source.queue);
        self.seq = source.seq;
        self.arrivals = source.arrivals;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_parse_round_trips() {
        let p = TenantPopulation::parse("2*idle,1*bursty-web").expect("valid spec");
        assert_eq!(p.workloads, vec![WorkloadKind::Idle, WorkloadKind::Idle, WorkloadKind::BurstyWeb]);
        assert_eq!(p.label(), "2*idle+1*bursty-web");
        let q = TenantPopulation::parse(&p.label()).expect("label is parseable");
        assert_eq!(p, q);
        assert_eq!(TenantPopulation::parse("idle+batch").unwrap().label(), "1*idle+1*batch-scan");
        assert!(TenantPopulation::parse("3*webscale").is_none());
        assert!(TenantPopulation::parse("").unwrap().is_empty());
    }

    #[test]
    fn exp_gap_is_positive_and_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let ga = exp_gap(&mut a, 1000.0);
            assert!(ga >= 1);
            assert_eq!(ga, exp_gap(&mut b, 1000.0));
        }
    }

    #[test]
    fn workload_kinds_parse_and_label() {
        for kind in [WorkloadKind::Idle, WorkloadKind::BurstyWeb, WorkloadKind::BatchScan] {
            assert_eq!(WorkloadKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(WorkloadKind::parse("bursty"), Some(WorkloadKind::BurstyWeb));
        assert_eq!(WorkloadKind::parse("nfs"), None);
    }

    #[test]
    fn host_events_order_by_time_then_sequence() {
        let a = HostEvent { at: 5, seq: 1, slot: 0, kind: EventKind::Work, generation: 0 };
        let b = HostEvent { at: 5, seq: 2, slot: 1, kind: EventKind::Depart, generation: 1 };
        let c = HostEvent { at: 4, seq: 9, slot: 2, kind: EventKind::Arrive, generation: 2 };
        let mut heap = BinaryHeap::from([Reverse(a), Reverse(b), Reverse(c)]);
        assert_eq!(heap.pop().unwrap().0, c);
        assert_eq!(heap.pop().unwrap().0, a);
        assert_eq!(heap.pop().unwrap().0, b);
    }

    #[test]
    fn population_parse_rejects_runaway_repeat_counts() {
        assert!(TenantPopulation::parse("999999999999*idle").is_none());
        assert!(TenantPopulation::parse("200*idle,100*bursty-web").is_none());
        let max = TenantPopulation::parse(&format!("{}*idle", TenantPopulation::MAX_TENANTS))
            .expect("the cap itself is accepted");
        assert_eq!(max.len(), TenantPopulation::MAX_TENANTS);
        assert!(
            TenantPopulation::parse(&format!("{}*idle", TenantPopulation::MAX_TENANTS + 1))
                .is_none()
        );
    }

    /// A churned single-slot host for the stale-event tests.
    fn churned_host(spec: &str) -> HostSim {
        use crate::noise::NoiseModel;
        let hierarchy = Hierarchy::new(llc_cache_model::CacheSpec::tiny_test(), 1);
        let geometry = hierarchy.shared_geometry();
        let noise =
            NoiseProcess::new(NoiseModel::silent(), geometry.sets_per_slice, geometry.slices);
        let population = TenantPopulation::parse(spec)
            .expect("valid spec")
            .with_churn(ChurnConfig { mean_dwell_cycles: 100_000.0 });
        let mut host = HostSim::new(hierarchy, StatisticalTenant::new(noise), population);
        host.reseed_tenants(42, 0);
        host
    }

    /// A `Work` event posted by a previous generation of a slot must be
    /// dropped once the replacement tenant has arrived — otherwise the old
    /// chain executes against the new tenant's state and RNG and forks a
    /// second, permanent work chain.
    #[test]
    fn stale_generation_work_is_dropped() {
        let mut host = churned_host("1*bursty-web");
        let mut burst = TenantBurst::default();
        // The slot departs, leaving a vacancy.
        let depart = HostEvent { at: 1_000, seq: 100, slot: 0, kind: EventKind::Depart, generation: 0 };
        host.step_tenant(depart, &mut burst);
        assert_eq!(host.tenants_present(), 0);
        // Stale work firing inside the vacancy window: the `present` guard
        // drops it.
        let vacant = HostEvent { at: 1_500, seq: 101, slot: 0, kind: EventKind::Work, generation: 0 };
        host.step_tenant(vacant, &mut burst);
        assert!(burst.accesses.is_empty(), "work executed against a vacant slot");
        // The replacement migrates in: generation 1.
        let arrive = HostEvent { at: 2_000, seq: 102, slot: 0, kind: EventKind::Arrive, generation: 0 };
        host.step_tenant(arrive, &mut burst);
        assert_eq!(host.tenants_present(), 1);
        let queued = host.queue.len();
        // Stale generation-0 work firing after the replacement arrived: must
        // neither execute nor schedule a follow-up (the double-chain bug).
        let stale = HostEvent { at: 2_500, seq: 103, slot: 0, kind: EventKind::Work, generation: 0 };
        host.step_tenant(stale, &mut burst);
        assert!(burst.accesses.is_empty(), "stale work executed against the replacement");
        assert_eq!(host.queue.len(), queued, "stale work forked a second chain");
        // Current-generation work still executes and continues its chain.
        let live = HostEvent { at: 3_000, seq: 104, slot: 0, kind: EventKind::Work, generation: 1 };
        host.step_tenant(live, &mut burst);
        assert!(!burst.accesses.is_empty(), "live work must execute");
        assert_eq!(host.queue.len(), queued + 1, "live work must continue its chain");
    }

    /// Driving the queue through many churn cycles, each slot always has at
    /// most one live (current-generation) work chain queued.
    #[test]
    fn work_chains_never_fork_under_churn() {
        let mut host = churned_host("2*idle,1*bursty-web");
        let mut burst = TenantBurst::default();
        let mut stale_drops = 0u32;
        for _ in 0..5_000 {
            if !host.has_scheduled() {
                break;
            }
            let event = host.pop_event();
            if event.kind == EventKind::Work
                && event.generation != host.slots[event.slot as usize].generation
            {
                stale_drops += 1;
            }
            host.step_tenant(event, &mut burst);
            let mut live = vec![0usize; host.slots.len()];
            for Reverse(e) in &host.queue {
                let slot = &host.slots[e.slot as usize];
                if e.kind == EventKind::Work && e.generation == slot.generation {
                    live[e.slot as usize] += 1;
                }
            }
            for (slot, &chains) in live.iter().enumerate() {
                assert!(chains <= 1, "slot {slot} runs {chains} concurrent work chains");
            }
        }
        assert!(host.arrivals() > 3, "the horizon saw no churn; the property is vacuous");
        assert!(stale_drops > 0, "no work event outlived its generation; the guard is untested");
    }
}
