//! Pins the headline claim of the plan rewrite: a plan-based traverse under
//! Cloud Run noise performs **zero heap allocations** per probe.
//!
//! The test installs a counting wrapper around the system allocator (its own
//! process — integration tests each get one binary), warms the machine until
//! every scratch buffer has reached steady-state capacity, and then asserts
//! that a long plan-based prime/probe loop neither allocates nor frees.
//! Counting is armed per-thread (const-initialised TLS, so arming itself
//! cannot allocate): the libtest harness prints from other threads while the
//! test runs, and those buffers must not pollute the measurement.

use llc_machine::{Machine, NoiseModel, VirtAddr};
use llc_cache_model::CacheSpec;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

fn armed() -> bool {
    ARMED.try_with(|armed| armed.get()).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if armed() {
            FREES.fetch_add(1, Ordering::Relaxed);
        }
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if armed() {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn plan_based_probe_loop_is_allocation_free() {
    // Cloud Run noise: the worst case — every traversal runs a Poisson
    // catch-up per touched set, which used to allocate and sort a Vec each.
    let mut machine = Machine::builder(CacheSpec::tiny_test())
        .noise(NoiseModel::cloud_run())
        .seed(0xa110c)
        .build();
    let base = machine.alloc_attacker_pages(16);
    let vas: Vec<VirtAddr> = (0..16u64).map(|i| base.offset(i * 4096)).collect();
    let plan = machine.compile_plan(&vas);

    // Warm-up: grow every reusable buffer to steady state — the machine's
    // level scratch, the noise process's event scratch and the hierarchy's
    // back-invalidation queue. The first traverse only *synchronises* the
    // never-touched sets (no burst); the long idle after it makes the second
    // traverse catch up a capped `max_burst` burst on every set, which is
    // the scratch buffers' high-water mark.
    machine.parallel_traverse_plan(&plan);
    machine.idle(500_000_000);
    for _ in 0..64 {
        machine.timed_parallel_traverse_plan(&plan);
        machine.sequential_traverse_plan(&plan);
        machine.idle(2_000_000);
    }

    ARMED.with(|armed| armed.set(true));
    for _ in 0..10_000 {
        machine.timed_parallel_traverse_plan(&plan);
    }
    machine.idle(100_000_000); // accumulate a fat noise gap mid-loop
    for _ in 0..10_000 {
        machine.parallel_traverse_plan(&plan);
    }
    ARMED.with(|armed| armed.set(false));

    let allocs = ALLOCS.load(Ordering::Relaxed);
    let frees = FREES.load(Ordering::Relaxed);
    assert_eq!(
        (allocs, frees),
        (0, 0),
        "plan-based probing must not touch the heap: {allocs} allocs / {frees} frees in 20k probes",
    );
}
