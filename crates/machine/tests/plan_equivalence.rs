//! Property-based equivalence of the compiled-plan hot paths against the
//! ad-hoc VA paths they replace.
//!
//! The plan rewrite moves VA translation, slice hashing and touched-set
//! sorting out of the per-traversal loop, and the noise engine trades its
//! per-catch-up `Vec` for a reusable scratch buffer. Neither change is
//! allowed to move a single RNG draw or cache operation: the golden
//! experiment outputs are byte-pinned on the ad-hoc semantics. These
//! properties drive random traversal mixes through paired machines — one on
//! each path — and require every observable (returned costs, clock, work
//! counters, and the downstream timed-access stream, which is sensitive to
//! the full hierarchy + RNG state) to stay bit-identical.

use llc_machine::{Machine, NoiseEvent, NoiseModel, NoiseProcess, sample_poisson};
use llc_cache_model::{CacheSpec, SetLocation, VirtAddr};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Pages available to the traversal generator.
const POOL_PAGES: usize = 24;

/// Builds a Cloud-Run-noisy machine with `POOL_PAGES` attacker pages and
/// returns the page-base VAs (noise is the stressful case: every traversal
/// draws catch-up randomness per touched set).
fn noisy_machine(seed: u64) -> (Machine, Vec<VirtAddr>) {
    let mut m = Machine::builder(CacheSpec::tiny_test())
        .noise(NoiseModel::cloud_run())
        .seed(seed)
        .build();
    let base = m.alloc_attacker_pages(POOL_PAGES);
    let pages = (0..POOL_PAGES as u64).map(|i| base.offset(i * 4096)).collect();
    (m, pages)
}

/// Decodes a raw index stream into VAs over the pool (several per page so
/// traversals hit duplicate and distinct sets in arbitrary orders).
fn decode_vas(pages: &[VirtAddr], raw: &[(u8, u8)]) -> Vec<VirtAddr> {
    raw.iter()
        .map(|&(p, l)| pages[p as usize % pages.len()].offset((l as u64 % 8) * 64))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Plan-based traversals leave the machine bit-identical to ad-hoc
    /// traversals of the same VAs: same per-call costs, same clock, same
    /// stats, and an identical downstream observation stream.
    #[test]
    fn plan_traversals_match_adhoc_bit_for_bit(
        seed in 0u64..1024,
        raw in prop::collection::vec((any::<u8>(), any::<u8>()), 1..48),
        idle in 1_000u64..2_000_000,
        mode in 0u8..3,
    ) {
        let (mut adhoc, pages_a) = noisy_machine(seed);
        let (mut planned, pages_b) = noisy_machine(seed);
        prop_assert_eq!(&pages_a, &pages_b);
        let vas = decode_vas(&pages_a, &raw);
        let plan = planned.compile_plan(&vas);
        prop_assert_eq!(plan.addresses(), vas.as_slice());
        prop_assert!(planned.plan_is_current(&plan));

        // Interleave idles (noise gaps accumulate) with repeated traversals.
        for round in 0..3 {
            adhoc.idle(idle);
            planned.idle(idle);
            let (a, b) = match (mode + round) % 3 {
                0 => (adhoc.parallel_traverse(&vas), planned.parallel_traverse_plan(&plan)),
                1 => (
                    adhoc.timed_parallel_traverse(&vas),
                    planned.timed_parallel_traverse_plan(&plan),
                ),
                _ => (adhoc.sequential_traverse(&vas), planned.sequential_traverse_plan(&plan)),
            };
            prop_assert_eq!(a, b, "round {} cost diverged", round);
            prop_assert_eq!(adhoc.now(), planned.now());
        }
        prop_assert_eq!(adhoc.stats(), planned.stats());

        // The timed-access stream is a function of the complete hierarchy
        // state (tags + replacement metadata) and the RNG position; any
        // divergence the costs above missed surfaces here.
        for &va in &vas {
            prop_assert_eq!(adhoc.timed_access(va), planned.timed_access(va));
        }
        for &page in &pages_a {
            prop_assert_eq!(adhoc.timed_access(page), planned.timed_access(page));
        }
        prop_assert_eq!(adhoc.now(), planned.now());
    }

    /// The scratch-buffer `catch_up` yields the exact event sequence of the
    /// old allocating implementation for identical RNG streams, across
    /// empty, small and capped bursts.
    #[test]
    fn scratch_catch_up_matches_allocating_oracle(
        seed in 0u64..4096,
        gaps in prop::collection::vec(1u64..40_000_000, 1..24),
    ) {
        let model = NoiseModel::cloud_run();
        let mut process = NoiseProcess::new(model.clone(), 64, 2);
        let mut rng_new = SmallRng::seed_from_u64(seed);
        let mut rng_old = SmallRng::seed_from_u64(seed);
        let loc = SetLocation::new(1, 7);
        process.mark_synced(loc, 0);
        let mut oracle_last = 0u64;
        let mut now = 0u64;
        for &gap in &gaps {
            now += gap;
            let new_events = process.catch_up(loc, now, &mut rng_new).to_vec();
            let old_events = oracle_catch_up(&model, oracle_last, now, &mut rng_old);
            oracle_last = now;
            prop_assert_eq!(new_events, old_events);
        }
    }
}

/// The pre-rewrite `catch_up` body, kept verbatim as the oracle (allocating
/// a fresh `Vec` per call). `MAX_BURST` pins the process's cap; if the cap
/// ever changes, this test forces the equivalence story to be revisited.
fn oracle_catch_up(
    model: &NoiseModel,
    last: u64,
    now: u64,
    rng: &mut impl Rng,
) -> Vec<NoiseEvent> {
    const MAX_BURST: u64 = 96;
    if model.is_silent() || now <= last {
        return Vec::new();
    }
    let dt = (now - last) as f64;
    let lambda = dt * model.accesses_per_cycle_per_set;
    let count = sample_poisson(lambda, rng).min(MAX_BURST);
    let mut events: Vec<NoiseEvent> = (0..count)
        .map(|_| NoiseEvent {
            at: last + rng.gen_range(0..(now - last).max(1)),
            shared: rng.gen_bool(model.shared_fraction),
        })
        .collect();
    events.sort_by_key(|e| e.at);
    events
}

/// Plans survive `reset_to` (snapshots keep the VA→PA lottery) …
#[test]
fn plans_survive_reset_to() {
    let (mut m, pages) = noisy_machine(9);
    let snap = m.snapshot();
    let plan = m.compile_plan(&pages);
    let a = m.timed_parallel_traverse_plan(&plan);
    m.reset_to(&snap);
    assert!(m.plan_is_current(&plan), "reset_to must not invalidate plans");
    let b = m.timed_parallel_traverse_plan(&plan);
    assert_eq!(a, b, "a rewound machine must replay the plan identically");
}

/// … but `reseed` invalidates them, and traversing a stale plan panics.
#[test]
fn reseed_invalidates_plans() {
    let (mut m, pages) = noisy_machine(10);
    let mut plan = m.compile_plan(&pages);
    assert!(m.plan_is_current(&plan));
    m.reseed(0x5eed);
    assert!(!m.plan_is_current(&plan));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        m.parallel_traverse_plan(&plan)
    }));
    assert!(result.is_err(), "traversing a stale plan must panic");
    // Recompiling in place revalidates (and reuses the plan's buffers).
    m.compile_plan_into(&pages, &mut plan);
    assert!(m.plan_is_current(&plan));
    m.parallel_traverse_plan(&plan);
}
