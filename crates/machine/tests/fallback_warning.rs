//! Pins the one-time aggregate-fallback warning: an `Aggregate` noise
//! configuration that the reuse predictor degrades to per-event dispatch
//! must announce itself once on stderr, not only via the report-header tag
//! (a campaign cell could otherwise silently run ~5× slower than its
//! preset implies).
//!
//! This lives in its own integration-test binary because the warning latch
//! is process-wide: a single `#[test]` controls the exact build order so the
//! latch's before/after states are observable.

use llc_cache_model::{CacheSpec, HierarchyOptions};
use llc_machine::{aggregate_fallback_warned, Machine, NoiseFidelity, NoiseModel};

fn build(fidelity: NoiseFidelity, reuse: f64) -> Machine {
    Machine::builder(CacheSpec::tiny_test())
        .noise(NoiseModel::cloud_run())
        .noise_fidelity(fidelity)
        .hierarchy_options(HierarchyOptions { reuse_insert_probability: reuse })
        .seed(3)
        .build()
}

#[test]
fn aggregate_fallback_warns_exactly_when_degraded() {
    assert!(!aggregate_fallback_warned(), "no machine built yet: latch must be clear");

    // Exact fidelity with an active reuse predictor is not a degradation —
    // per-event dispatch is what 'exact' means.
    let exact = build(NoiseFidelity::Exact, 0.3);
    assert_eq!(exact.effective_noise_fidelity(), NoiseFidelity::Exact);
    assert!(!aggregate_fallback_warned(), "exact + reuse predictor must not warn");

    // Aggregate fidelity without the reuse predictor runs genuinely
    // aggregate: still no warning.
    let clean = build(NoiseFidelity::Aggregate, 0.0);
    assert_eq!(clean.effective_noise_fidelity(), NoiseFidelity::Aggregate);
    assert!(!aggregate_fallback_warned(), "undegraded aggregate must not warn");

    // Aggregate + reuse predictor is the silent 5× slowdown: warn now.
    let degraded = build(NoiseFidelity::Aggregate, 0.3);
    assert_eq!(degraded.effective_noise_fidelity(), NoiseFidelity::Exact);
    assert!(aggregate_fallback_warned(), "degraded aggregate must warn");

    // And only once per process, no matter how many machines follow.
    let _again = build(NoiseFidelity::Aggregate, 0.5);
    assert!(aggregate_fallback_warned());
}
