//! Property-based bit-identity of the tenant-actor refactor: the
//! [`StatisticalTenant`] is a transparent wrapper over the legacy
//! `NoiseProcess` (identical events from identical RNG positions over any
//! schedule), an empty tenant population leaves the machine bit-identical to
//! the pre-refactor builder, and churned tenant populations are fully
//! deterministic — per seed, across snapshot/reset replay, and across fleet
//! thread counts.

use llc_cache_model::{CacheSpec, SharedGeometry, VirtAddr};
use llc_fleet::Fleet;
use llc_machine::{
    ChurnConfig, Machine, NoiseModel, NoiseProcess, StatisticalTenant, TenantPopulation,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Shared-set geometry used by the process-level properties.
const GEOMETRY: SharedGeometry = SharedGeometry { slices: 2, sets_per_slice: 64 };

/// The co-resident population the churn properties run under.
fn churned_population() -> TenantPopulation {
    TenantPopulation::parse("2*idle,1*bursty-web")
        .expect("population spec parses")
        .with_churn(ChurnConfig { mean_dwell_cycles: 300_000.0 })
}

/// One deterministic attacker script: per round, idle long enough for
/// background tenants to act, then probe. Returns a digest that covers both
/// the attacker-visible timings and the tenant layer's own counters.
fn run_script(machine: &mut Machine, probes: &[VirtAddr], rounds: usize) -> (u64, u64, u64) {
    let mut latency_total = 0u64;
    for round in 0..rounds {
        let va = probes[round % probes.len()];
        machine.access(va);
        machine.idle(400_000);
        latency_total += machine.timed_access(va).0;
    }
    (latency_total, machine.stats().tenant_accesses, machine.tenant_arrivals())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The statistical tenant is the legacy noise process, verbatim: over an
    /// arbitrary observation schedule, a wrapped and a free-standing process
    /// with the same model and RNG position emit identical event streams.
    #[test]
    fn statistical_tenant_matches_legacy_noise_process(
        seed in any::<u64>(),
        per_ms in 0.2f64..30.0,
        schedule in prop::collection::vec((0usize..128, 1u64..2_000_000), 1..32),
    ) {
        let model = NoiseModel::from_accesses_per_ms(per_ms, 1.5, "prop");
        let legacy = NoiseProcess::new(model, GEOMETRY.sets_per_slice, GEOMETRY.slices);
        let mut wrapped = StatisticalTenant::new(legacy.clone());
        let mut legacy = legacy;
        let mut rng_a = SmallRng::seed_from_u64(seed);
        let mut rng_b = rng_a.clone();
        let mut now = 0u64;
        for (flat, gap) in schedule {
            now += gap;
            let loc = GEOMETRY.location(flat);
            let via_tenant =
                wrapped.process_mut().catch_up(loc, now, &mut rng_a).to_vec();
            let direct = legacy.catch_up(loc, now, &mut rng_b).to_vec();
            prop_assert_eq!(via_tenant, direct);
        }
    }

    /// An empty tenant population is the pre-refactor machine: every timed
    /// observation, the clock and the noise counters match a machine built
    /// without the `.tenants()` call, and the tenant layer does no work.
    #[test]
    fn empty_population_is_bit_identical_to_legacy_builder(
        seed in any::<u64>(),
        gaps in prop::collection::vec(1u64..2_000_000, 1..12),
    ) {
        let build = |tenants: Option<TenantPopulation>| {
            let mut builder = Machine::builder(CacheSpec::tiny_test())
                .noise(NoiseModel::cloud_run())
                .seed(seed);
            if let Some(tenants) = tenants {
                builder = builder.tenants(tenants);
            }
            builder.build()
        };
        let mut legacy = build(None);
        let mut refactored = build(Some(TenantPopulation::empty()));
        let va_legacy = legacy.alloc_attacker_pages(1);
        let va_refactored = refactored.alloc_attacker_pages(1);
        prop_assert_eq!(va_legacy, va_refactored);
        for gap in gaps {
            legacy.idle(gap);
            refactored.idle(gap);
            prop_assert_eq!(
                legacy.timed_access(va_legacy),
                refactored.timed_access(va_refactored)
            );
        }
        prop_assert_eq!(legacy.now(), refactored.now());
        prop_assert_eq!(legacy.stats().noise_events, refactored.stats().noise_events);
        prop_assert_eq!(refactored.stats().tenant_accesses, 0);
        prop_assert_eq!(refactored.tenant_arrivals(), 0);
        prop_assert_eq!(refactored.tenants_present(), 0);
    }

    /// A churned population is a pure function of the machine seed: two
    /// machines built alike replay the same arrivals, bursts and timings.
    #[test]
    fn churned_population_is_deterministic_per_seed(seed in any::<u64>()) {
        let digest = || {
            let mut machine = Machine::builder(CacheSpec::tiny_test())
                .noise(NoiseModel::quiescent_local())
                .tenants(churned_population())
                .seed(seed)
                .build();
            let va = machine.alloc_attacker_pages(1);
            run_script(&mut machine, &[va], 6)
        };
        prop_assert_eq!(digest(), digest());
    }

    /// Fleet sweeps over churned machines are bit-identical at 1, 2 and 8
    /// threads: every trial's tenant population derives from its trial seed
    /// alone, so the work partition cannot leak into the results.
    #[test]
    fn churned_fleet_results_are_thread_invariant(master in any::<u64>()) {
        let workload = |threads: usize| -> Vec<(u64, u64, u64)> {
            Fleet::new(threads).with_chunk(1).run_with(6, master, |_| (), |_, ctx| {
                let mut machine = Machine::builder(CacheSpec::tiny_test())
                    .noise(NoiseModel::quiescent_local())
                    .tenants(churned_population())
                    .seed(ctx.seed)
                    .build();
                let base = machine.alloc_attacker_pages(2);
                let probes: Vec<_> =
                    (0..2).map(|i| VirtAddr::new(base.raw() + i * 4096)).collect();
                run_script(&mut machine, &probes, 4)
            })
        };
        let serial = workload(1);
        prop_assert_eq!(&serial, &workload(2));
        prop_assert_eq!(&serial, &workload(8));
    }
}

/// Non-proptest anchor: snapshot/reset replay restores the whole tenant
/// layer — event queue, per-slot RNG positions and churn bookkeeping — so a
/// reset machine replays its first run bit-identically, and a reseed after
/// reset re-derives the population deterministically.
#[test]
fn snapshot_reset_replays_churned_tenants_bit_identically() {
    let mut machine = Machine::builder(CacheSpec::tiny_test())
        .noise(NoiseModel::quiescent_local())
        .tenants(churned_population())
        .seed(41)
        .build();
    let va = machine.alloc_attacker_pages(1);
    // Let some tenant activity (and possibly churn) happen before the
    // snapshot so the captured queue is mid-flight, not pristine.
    machine.idle(700_000);
    let snapshot = machine.snapshot();

    let first = run_script(&mut machine, &[va], 6);
    machine.reset_to(&snapshot);
    assert_eq!(run_script(&mut machine, &[va], 6), first, "reset replay diverged");

    // Reseeding after reset rebuilds the population from the new seed; the
    // result is again a pure function of that seed.
    machine.reset_to(&snapshot);
    machine.reseed(97);
    let reseeded = run_script(&mut machine, &[va], 6);
    machine.reset_to(&snapshot);
    machine.reseed(97);
    assert_eq!(run_script(&mut machine, &[va], 6), reseeded, "reseeded replay diverged");
}

/// Non-proptest anchor: the churned population actually churns within the
/// probed horizon (the determinism properties above are not vacuous).
#[test]
fn churned_population_sees_arrivals_and_tenant_traffic() {
    let mut machine = Machine::builder(CacheSpec::tiny_test())
        .noise(NoiseModel::silent())
        .tenants(churned_population())
        .seed(7)
        .build();
    assert_eq!(machine.tenants_present(), 3);
    machine.idle(20_000_000);
    assert!(machine.stats().tenant_accesses > 0, "tenants posted no accesses");
    assert!(machine.tenant_arrivals() > 0, "churn produced no migrations");
}
