//! Property-based invariants of the aggregate noise fidelity at the machine
//! and noise-process level: silent models and empty windows are strict
//! no-ops, and aggregate results are bit-reproducible — per seed and per
//! fleet thread count.

use llc_cache_model::{CacheSpec, SetLocation, VirtAddr};
use llc_fleet::{Fleet, Samples};
use llc_machine::{Machine, NoiseAdvance, NoiseConfig, NoiseModel, NoiseProcess};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A silent noise model never produces an aggregate advance, no matter
    /// the sync pattern.
    #[test]
    fn zero_rate_is_a_noop(
        seed in any::<u64>(),
        times in prop::collection::vec(0u64..1_000_000_000, 1..24),
        set in 0usize..4,
    ) {
        let mut process =
            NoiseProcess::with_config(NoiseConfig::aggregate(NoiseModel::silent()), 4, 2);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut times = times;
        times.sort_unstable();
        for now in times {
            let advance = process.catch_up_aggregate(SetLocation::new(0, set), now, &mut rng);
            prop_assert_eq!(advance, NoiseAdvance::NONE);
        }
    }

    /// A zero-cycle window (re-observation at the same timestamp) never
    /// produces an aggregate advance, even at the Cloud Run rate.
    #[test]
    fn zero_gap_is_a_noop(
        seed in any::<u64>(),
        now in 0u64..1_000_000_000,
        repeats in 1usize..8,
        set in 0usize..4,
    ) {
        let mut process =
            NoiseProcess::with_config(NoiseConfig::aggregate(NoiseModel::cloud_run()), 4, 2);
        let mut rng = SmallRng::seed_from_u64(seed);
        let loc = SetLocation::new(0, set);
        // First observation under TreatAsSynced is itself a zero window.
        for _ in 0..=repeats {
            let advance = process.catch_up_aggregate(loc, now, &mut rng);
            prop_assert_eq!(advance, NoiseAdvance::NONE);
        }
    }

    /// On a machine with a silent model, aggregate mode models no events and
    /// never evicts the attacker's lines, whatever the idle pattern.
    #[test]
    fn silent_machine_stays_silent(
        seed in any::<u64>(),
        gaps in prop::collection::vec(1u64..4_000_000, 1..12),
    ) {
        let mut machine = Machine::builder(CacheSpec::tiny_test())
            .noise_config(NoiseConfig::aggregate(NoiseModel::silent()))
            .seed(seed)
            .build();
        let va = machine.alloc_attacker_pages(1);
        machine.access(va);
        for gap in gaps {
            machine.idle(gap);
            let (_, level) = machine.timed_access(va);
            prop_assert!(level <= llc_cache_model::HitLevel::L2,
                "probe reached {level:?} with a silent noise model");
        }
        prop_assert_eq!(machine.stats().noise_events, 0);
    }

    /// Aggregate-mode fleet workloads are bit-identical across thread
    /// counts: the per-trial seeds fully determine every machine's noise.
    #[test]
    fn aggregate_fleet_results_are_thread_invariant(master in any::<u64>()) {
        let workload = |threads: usize| -> Samples {
            Fleet::new(threads).with_chunk(1).run_fold(8, master, |ctx| {
                let mut machine = Machine::builder(CacheSpec::tiny_test())
                    .noise_config(NoiseConfig::aggregate(NoiseModel::cloud_run()))
                    .seed(ctx.seed)
                    .build();
                let base = machine.alloc_attacker_pages(2);
                let probes: Vec<_> =
                    (0..2).map(|i| VirtAddr::new(base.raw() + i * 4096)).collect();
                let mut total = 0u64;
                for round in 0..6 {
                    let va = probes[round % probes.len()];
                    machine.access(va);
                    machine.idle(1_500_000);
                    total += machine.timed_access(va).0;
                }
                total as f64
            })
        };
        let serial = workload(1);
        let threaded = workload(3);
        prop_assert_eq!(serial.summary(), threaded.summary());
    }
}

/// Non-proptest anchor: the zero-gap property also holds mid-stream after
/// real windows have elapsed (not only on first observation).
#[test]
fn zero_gap_after_real_windows_is_still_a_noop() {
    let mut process =
        NoiseProcess::with_config(NoiseConfig::aggregate(NoiseModel::cloud_run()), 4, 2);
    let mut rng = SmallRng::seed_from_u64(7);
    let loc = SetLocation::new(1, 2);
    process.catch_up_aggregate(loc, 0, &mut rng);
    let advance = process.catch_up_aggregate(loc, 10_000_000, &mut rng);
    assert!(!advance.is_empty(), "a 10M-cycle Cloud Run window must model events");
    assert_eq!(process.catch_up_aggregate(loc, 10_000_000, &mut rng), NoiseAdvance::NONE);
}
