//! Property-based and scenario tests for the machine layer: noise statistics,
//! victim scheduling, and the attacker operation timing invariants.

use llc_cache_model::CacheSpec;
use llc_machine::{Machine, NoiseModel, PeriodicToucher, ScheduledAccess, VictimSchedule};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The clock is monotone and every operation consumes at least one cycle.
    #[test]
    fn clock_is_monotone(ops in prop::collection::vec(0u8..4, 1..60)) {
        let mut m = Machine::builder(CacheSpec::tiny_test())
            .noise(NoiseModel::quiescent_local())
            .seed(1)
            .build();
        let page = m.alloc_attacker_pages(4);
        let vas: Vec<_> = (0..16u64).map(|i| page.offset(i * 256)).collect();
        let mut last = m.now();
        for op in ops {
            match op {
                0 => { m.access(vas[3]); }
                1 => { m.timed_access(vas[5]); }
                2 => { m.parallel_traverse(&vas); }
                _ => { m.clflush(vas[7]); }
            }
            prop_assert!(m.now() > last, "operation did not advance the clock");
            last = m.now();
        }
    }

    /// Timed hits are always classified below the private-miss threshold and
    /// cold misses above the LLC-miss threshold, for any page offset.
    #[test]
    fn timed_access_thresholds_hold(offset_lines in 0u64..64) {
        let mut m = Machine::builder(CacheSpec::tiny_test())
            .noise(NoiseModel::silent())
            .seed(2)
            .build();
        let page = m.alloc_attacker_pages(1);
        let va = page.offset(offset_lines * 64);
        let (cold, _) = m.timed_access(va);
        let (hot, _) = m.timed_access(va);
        prop_assert!(cold > m.latency_model().llc_miss_threshold());
        prop_assert!(hot < m.latency_model().private_miss_threshold());
    }

    /// Victim schedules are replayed completely: every scheduled access is
    /// performed exactly once per run, regardless of the attacker's activity.
    #[test]
    fn victim_schedules_are_replayed(count in 1usize..40, interval in 100u64..5_000) {
        let mut m = Machine::builder(CacheSpec::tiny_test())
            .noise(NoiseModel::silent())
            .seed(3)
            .build();
        let toucher = PeriodicToucher::new(interval, count, 0x40);
        m.install_victim(Box::new(toucher), false, 0);
        m.request_victim();
        m.idle(interval * count as u64 + 10_000);
        prop_assert_eq!(m.victim_runs(), 1);
        prop_assert_eq!(m.stats().victim_accesses, count as u64);
        prop_assert_eq!(m.victim_run_starts().len(), 1);
    }
}

#[test]
fn cloud_noise_rate_observed_by_hierarchy_matches_model() {
    // Run the machine for 20 ms of simulated time while touching one set and
    // check the number of injected noise events against the configured rate.
    let mut m = Machine::builder(CacheSpec::tiny_test()).noise(NoiseModel::cloud_run()).seed(4).build();
    let page = m.alloc_attacker_pages(1);
    let window_ms = 20.0;
    let cycles = (window_ms * 2e6) as u64;
    let step = 10_000u64;
    let mut elapsed = 0;
    while elapsed < cycles {
        m.access(page);
        m.idle(step);
        elapsed += step;
    }
    let per_ms = m.stats().noise_events as f64 / window_ms;
    // The attacker line occupies one (slice, set); expect ~11.5 events/ms.
    assert!(
        (per_ms - 11.5).abs() < 5.0,
        "observed {per_ms:.1} noise events/ms, expected about 11.5"
    );
}

#[test]
fn auto_repeat_victim_runs_back_to_back() {
    let mut m =
        Machine::builder(CacheSpec::tiny_test()).noise(NoiseModel::silent()).seed(5).build();
    let schedule_len = 50u64 * 1_000;
    let toucher = PeriodicToucher::new(1_000, 50, 0);
    m.install_victim(Box::new(toucher), true, 500);
    m.idle(5 * (schedule_len + 500));
    assert!(m.victim_runs() >= 4, "expected several back-to-back runs, got {}", m.victim_runs());
    let starts = m.victim_run_starts();
    for pair in starts.windows(2) {
        assert!(pair[1] - pair[0] >= schedule_len, "runs must not overlap");
    }
}

#[test]
fn empty_victim_schedule_is_handled() {
    #[derive(Debug)]
    struct Idler;
    impl llc_machine::VictimProgram for Idler {
        fn setup(&mut self, _aspace: &mut llc_cache_model::AddressSpace) {}
        fn on_request(&mut self) -> VictimSchedule {
            VictimSchedule::idle(10_000)
        }
    }
    let mut m =
        Machine::builder(CacheSpec::tiny_test()).noise(NoiseModel::silent()).seed(6).build();
    m.install_victim(Box::new(Idler), false, 0);
    m.request_victim();
    m.idle(50_000);
    assert_eq!(m.victim_runs(), 1);
    assert_eq!(m.stats().victim_accesses, 0);
}

#[test]
fn schedule_append_and_access_types_compose() {
    let mut a = VictimSchedule::new(
        vec![ScheduledAccess { offset: 10, va: llc_machine::VirtAddr::new(0x40) }],
        1_000,
    );
    let b = VictimSchedule::new(
        vec![ScheduledAccess { offset: 20, va: llc_machine::VirtAddr::new(0x80) }],
        2_000,
    );
    a.append(&b);
    assert_eq!(a.duration(), 3_000);
    assert_eq!(a.accesses()[1].offset, 1_020);
}
