//! Statistical-equivalence harness for `NoiseFidelity::Aggregate`.
//!
//! The aggregate noise mode replaces per-event background-tenant sampling
//! with one bulk state transition per catch-up window. It is *not* meant to
//! be bit-identical to the exact reference — it is meant to be drawn from
//! the same distribution. These tests pin that claim with the two-sample
//! machinery from `llc_fleet::stats`:
//!
//! * the probability that a primed line is evicted from the SF during an
//!   idle window (the attacker-visible signal every probe step depends on)
//!   must agree between fidelities within a pooled z bound;
//! * the probe-latency distribution must agree in Kolmogorov–Smirnov
//!   distance;
//! * the number of modelled noise events per window must agree in mean
//!   (both fidelities draw Poisson counts at the same rate).
//!
//! All trials derive from one master seed, `LLC_EQUIV_SEED` (default
//! pinned), so a failure reproduces exactly; the thresholds use the
//! conservative α = 0.001 coefficients to keep the suite deterministic in
//! CI while still detecting real modelling drift (a rate shift of a few
//! percent fails these bounds comfortably).

use llc_cache_model::{CacheSpec, HitLevel};
use llc_fleet::stats::{compare_means, compare_rates, ecdf_distance, ks_threshold, KS_ALPHA_001};
use llc_machine::{Machine, NoiseConfig, NoiseFidelity, NoiseModel};

/// Master seed for the equivalence suite (`LLC_EQUIV_SEED` to override).
fn equiv_seed() -> u64 {
    std::env::var("LLC_EQUIV_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xE901_5EED)
}

/// Attacker-visible observations from one fidelity's trial sequence.
struct ProbeSample {
    /// Per-trial probe latencies in cycles.
    latencies: Vec<f64>,
    /// Trials whose probe missed all the way to memory (the primed line's
    /// SF entry was evicted by noise and back-invalidated).
    evictions: u64,
    /// Per-trial modelled noise-event counts (`MachineStats::noise_events`
    /// deltas).
    events_per_trial: Vec<f64>,
}

/// Primes a handful of lines, idles for `gap` cycles and probes them again,
/// `trials` times. A probe that comes back from memory means background
/// noise evicted the line's SF entry during the window (SF evictions
/// back-invalidate the private caches, so nothing else can produce a miss
/// here: the attacker touches nothing in between).
fn run_probe_trials(
    fidelity: NoiseFidelity,
    model: NoiseModel,
    gap: u64,
    trials: usize,
) -> ProbeSample {
    let mut machine = Machine::builder(CacheSpec::tiny_test())
        .noise_config(NoiseConfig::exact(model).with_fidelity(fidelity))
        .seed(equiv_seed())
        .build();
    // Eight probe lines on distinct pages: different LLC/SF sets, so the
    // sample averages over per-set replacement states.
    let base = machine.alloc_attacker_pages(8);
    let probes: Vec<_> =
        (0..8).map(|i| llc_cache_model::VirtAddr::new(base.raw() + i * 4096)).collect();

    let mut sample =
        ProbeSample { latencies: Vec::with_capacity(trials), evictions: 0, events_per_trial: Vec::with_capacity(trials) };
    let mut last_events = machine.stats().noise_events;
    for trial in 0..trials {
        let va = probes[trial % probes.len()];
        machine.access(va);
        machine.idle(gap);
        let (latency, level) = machine.timed_access(va);
        sample.latencies.push(latency as f64);
        if level == HitLevel::Memory {
            sample.evictions += 1;
        }
        let events = machine.stats().noise_events;
        sample.events_per_trial.push((events - last_events) as f64);
        last_events = events;
    }
    sample
}

/// Runs both fidelities on one preset and asserts distributional agreement.
fn assert_equivalent(model: NoiseModel, gap: u64, trials: usize, label: &str) {
    let exact = run_probe_trials(NoiseFidelity::Exact, model.clone(), gap, trials);
    let aggregate = run_probe_trials(NoiseFidelity::Aggregate, model, gap, trials);

    let rates =
        compare_rates(exact.evictions, trials as u64, aggregate.evictions, trials as u64);
    assert!(
        rates.within(4.0),
        "{label}: eviction rates diverged: exact {:.3} vs aggregate {:.3} (z = {:.2})",
        rates.rate_a,
        rates.rate_b,
        rates.z
    );

    let d = ecdf_distance(&exact.latencies, &aggregate.latencies);
    let threshold = ks_threshold(trials, trials, KS_ALPHA_001);
    assert!(
        d < threshold,
        "{label}: probe-latency ECDF distance {d:.4} exceeds KS threshold {threshold:.4}"
    );

    let events = compare_means(&exact.events_per_trial, &aggregate.events_per_trial);
    assert!(
        events.within(4.0),
        "{label}: noise-event counts diverged: exact {:.2} vs aggregate {:.2} (z = {:.2})",
        events.mean_a,
        events.mean_b,
        events.z
    );
}

#[test]
fn aggregate_matches_exact_under_cloud_run_noise() {
    // 1 ms windows at the Cloud Run rate: ~11.5 modelled accesses per set
    // per window, enough churn that a meaningful share of probes miss.
    assert_equivalent(NoiseModel::cloud_run(), 2_000_000, 400, "cloud_run");
}

#[test]
fn aggregate_matches_exact_under_quiescent_noise() {
    // Long (8 ms) windows so the quiescent rate (0.29/ms/set) still
    // produces occasional evictions rather than an all-zero sample.
    assert_equivalent(NoiseModel::quiescent_local(), 16_000_000, 300, "quiescent_local");
}

#[test]
fn exact_eviction_signal_is_plausible_under_cloud_run() {
    // Sanity anchor for the harness itself: under Cloud Run noise some
    // probes must miss and some must hit, otherwise the comparisons above
    // are vacuous.
    let exact = run_probe_trials(NoiseFidelity::Exact, NoiseModel::cloud_run(), 2_000_000, 400);
    assert!(exact.evictions > 0, "no evictions observed — gap too short");
    assert!((exact.evictions as usize) < 400, "every probe missed — gap too long");
    let mean_events =
        exact.events_per_trial.iter().sum::<f64>() / exact.events_per_trial.len() as f64;
    assert!(mean_events > 1.0, "noise process mostly silent (mean {mean_events:.2})");
}

#[test]
fn equivalence_suite_is_deterministic_for_a_fixed_seed() {
    let a = run_probe_trials(NoiseFidelity::Aggregate, NoiseModel::cloud_run(), 2_000_000, 120);
    let b = run_probe_trials(NoiseFidelity::Aggregate, NoiseModel::cloud_run(), 2_000_000, 120);
    assert_eq!(a.latencies, b.latencies);
    assert_eq!(a.evictions, b.evictions);
    assert_eq!(a.events_per_trial, b.events_per_trial);
}
