//! Configuration shared by all eviction-set construction algorithms.

use llc_cache_model::CacheSpec;

/// Which cache structure an eviction set targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetCache {
    /// The attacker core's private L2 (used for candidate filtering).
    L2,
    /// The shared last-level cache.
    Llc,
    /// The snoop filter (an SF eviction set is also an LLC eviction set).
    Sf,
}

impl TargetCache {
    /// Associativity of the targeted structure on `spec`.
    pub fn ways(self, spec: &CacheSpec) -> usize {
        match self {
            TargetCache::L2 => spec.l2.ways(),
            TargetCache::Llc => spec.llc.ways(),
            TargetCache::Sf => spec.sf.ways(),
        }
    }

    /// Cache uncertainty `U` of the targeted structure on `spec`.
    pub fn uncertainty(self, spec: &CacheSpec) -> usize {
        match self {
            TargetCache::L2 => spec.l2.uncertainty(),
            TargetCache::Llc => spec.llc.uncertainty(),
            TargetCache::Sf => spec.sf.uncertainty(),
        }
    }
}

impl std::fmt::Display for TargetCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TargetCache::L2 => write!(f, "L2"),
            TargetCache::Llc => write!(f, "LLC"),
            TargetCache::Sf => write!(f, "SF"),
        }
    }
}

/// Tunables of the construction pipeline (Section 4.2's experimental setup).
#[derive(Debug, Clone, PartialEq)]
pub struct EvsetConfig {
    /// Maximum construction attempts per eviction set (paper: 10).
    pub max_attempts: u32,
    /// Maximum backtracks per attempt (paper: 20).
    pub max_backtracks: u32,
    /// Per-eviction-set time budget in cycles (paper: 1,000 ms without
    /// candidate filtering, 100 ms with filtering, at 2 GHz).
    pub time_budget_cycles: u64,
    /// Candidate-set size as a multiple of `U * W` (paper: 3).
    pub candidate_scale: usize,
    /// Number of consecutive positive `TestEviction` results required by the
    /// final verification of a constructed set.
    pub verify_rounds: u32,
}

impl Default for EvsetConfig {
    fn default() -> Self {
        Self {
            max_attempts: 10,
            max_backtracks: 20,
            // 1,000 ms at 2 GHz.
            time_budget_cycles: 2_000_000_000,
            candidate_scale: 3,
            verify_rounds: 2,
        }
    }
}

impl EvsetConfig {
    /// Configuration used in Table 3 (no candidate filtering, 1 s budget).
    pub fn unfiltered() -> Self {
        Self::default()
    }

    /// Configuration used in Table 4 (with candidate filtering, 100 ms budget).
    pub fn filtered() -> Self {
        Self { time_budget_cycles: 200_000_000, ..Self::default() }
    }

    /// Recommended candidate-set size for `target` on `spec`:
    /// `candidate_scale * U * W` (Section 4.2).
    pub fn candidate_count(&self, spec: &CacheSpec, target: TargetCache) -> usize {
        self.candidate_scale * target.uncertainty(spec) * target.ways(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ways_and_uncertainty_match_spec() {
        let spec = CacheSpec::skylake_sp_cloud();
        assert_eq!(TargetCache::L2.ways(&spec), 16);
        assert_eq!(TargetCache::Llc.ways(&spec), 11);
        assert_eq!(TargetCache::Sf.ways(&spec), 12);
        assert_eq!(TargetCache::L2.uncertainty(&spec), 16);
        assert_eq!(TargetCache::Sf.uncertainty(&spec), 896);
    }

    #[test]
    fn candidate_count_is_3uw() {
        let spec = CacheSpec::skylake_sp_cloud();
        let cfg = EvsetConfig::default();
        assert_eq!(cfg.candidate_count(&spec, TargetCache::Sf), 3 * 896 * 12);
        assert_eq!(cfg.candidate_count(&spec, TargetCache::L2), 3 * 16 * 16);
    }

    #[test]
    fn filtered_config_has_smaller_budget() {
        assert!(EvsetConfig::filtered().time_budget_cycles < EvsetConfig::unfiltered().time_budget_cycles);
    }

    #[test]
    fn target_cache_display() {
        assert_eq!(TargetCache::Sf.to_string(), "SF");
        assert_eq!(TargetCache::Llc.to_string(), "LLC");
        assert_eq!(TargetCache::L2.to_string(), "L2");
    }
}
