//! The `TestEviction` primitive (Section 4.1).
//!
//! Every address-pruning algorithm is built on one operation: *after touching
//! a set of candidate addresses, is a target line still cached?* The paper
//! distinguishes
//!
//! * **sequential** `TestEviction` — a pointer-chase over the candidates,
//!   slow but required by Prime+Scope's per-candidate checks; and
//! * **parallel** `TestEviction` — overlapped accesses that exploit
//!   memory-level parallelism and run an order of magnitude faster, which is
//!   what makes the test usable at Cloud Run noise levels.
//!
//! The primitive's latency matters twice: it bounds the end-to-end
//! construction time, and the longer it runs the more likely another tenant
//! touches the set mid-test and corrupts the answer.

use crate::config::TargetCache;
use llc_machine::{Machine, TraversalPlan};
use llc_cache_model::VirtAddr;

/// How candidate addresses are traversed by `TestEviction`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraversalOrder {
    /// Overlapped accesses exploiting memory-level parallelism.
    Parallel,
    /// Serialised pointer-chase accesses.
    Sequential,
}

/// Detection threshold (cycles, timed access) for "the target was evicted
/// from `target`" on this machine.
pub fn eviction_threshold(machine: &Machine, target: TargetCache) -> u64 {
    match target {
        TargetCache::L2 => machine.latency_model().private_miss_threshold(),
        TargetCache::Llc | TargetCache::Sf => machine.latency_model().llc_miss_threshold(),
    }
}

/// Brings the target address into the state from which eviction is tested:
///
/// * `Llc`: Shared and LLC-resident (the helper thread echoes the access);
/// * `Sf`: Exclusive in the attacker's private caches and SF-tracked
///   (flushed first so a stale Shared copy cannot linger);
/// * `L2`: resident in the attacker's L2.
pub fn load_target(machine: &mut Machine, ta: VirtAddr, target: TargetCache) {
    let prev = machine.helper_echo();
    match target {
        TargetCache::Llc => {
            machine.set_helper_echo(true);
            machine.access(ta);
        }
        TargetCache::Sf => {
            machine.set_helper_echo(false);
            machine.clflush(ta);
            machine.access(ta);
        }
        TargetCache::L2 => {
            machine.set_helper_echo(false);
            machine.access(ta);
        }
    }
    machine.set_helper_echo(prev);
}

/// Runs one `TestEviction`: loads `ta`, traverses `candidates`, and reports
/// whether `ta` was evicted from `target`.
///
/// Returns `(evicted, elapsed_cycles)`.
///
/// When the same candidate set (or many subsets of one pool) is tested
/// repeatedly, prefer [`test_eviction_plan`] with a reused
/// [`TraversalPlan`]: it skips the per-call VA translation, slice hashing
/// and touched-set sorting while producing bit-identical simulation
/// behaviour.
pub fn test_eviction(
    machine: &mut Machine,
    ta: VirtAddr,
    candidates: &[VirtAddr],
    target: TargetCache,
    order: TraversalOrder,
) -> (bool, u64) {
    let start = machine.now();
    let prev = machine.helper_echo();
    if target == TargetCache::Sf {
        // Snoop-filter tests need the candidate lines to allocate SF entries.
        // Lines left Shared (LLC-resident, possibly still cached by the
        // helper core) from earlier LLC-level work would not, so reset them —
        // mirroring the real attack, which stops the helper thread and
        // flushes its working set before switching to SF priming.
        for &c in candidates {
            machine.clflush(c);
        }
    }
    load_target(machine, ta, target);
    machine.set_helper_echo(target == TargetCache::Llc);
    // The private L2 uses Tree-PLRU, under which a single pass over W
    // congruent lines does not reliably evict the target; real eviction-set
    // code traverses the candidates twice to defeat non-LRU policies.
    let passes = if target == TargetCache::L2 { 2 } else { 1 };
    for _ in 0..passes {
        match order {
            TraversalOrder::Parallel => {
                machine.parallel_traverse(candidates);
            }
            TraversalOrder::Sequential => {
                machine.sequential_traverse(candidates);
            }
        }
    }
    let (latency, _level) = machine.timed_access(ta);
    machine.set_helper_echo(prev);
    let evicted = latency >= eviction_threshold(machine, target);
    (evicted, machine.now() - start)
}

/// [`test_eviction`] over a compiled [`TraversalPlan`] (the candidates are
/// `plan.addresses()`). Pruning loops compile each candidate subset into a
/// reused plan and test through this entry point, so the per-test
/// translation/sort overhead is paid once per subset instead of once per
/// traversal pass — and the simulated behaviour is bit-identical to the
/// slice-based path.
pub fn test_eviction_plan(
    machine: &mut Machine,
    ta: VirtAddr,
    plan: &TraversalPlan,
    target: TargetCache,
    order: TraversalOrder,
) -> (bool, u64) {
    let start = machine.now();
    let prev = machine.helper_echo();
    if target == TargetCache::Sf {
        // See `test_eviction`: SF tests reset Shared candidate lines first.
        for &c in plan.addresses() {
            machine.clflush(c);
        }
    }
    load_target(machine, ta, target);
    machine.set_helper_echo(target == TargetCache::Llc);
    let passes = if target == TargetCache::L2 { 2 } else { 1 };
    for _ in 0..passes {
        match order {
            TraversalOrder::Parallel => {
                machine.parallel_traverse_plan(plan);
            }
            TraversalOrder::Sequential => {
                machine.sequential_traverse_plan(plan);
            }
        }
    }
    let (latency, _level) = machine.timed_access(ta);
    machine.set_helper_echo(prev);
    let evicted = latency >= eviction_threshold(machine, target);
    (evicted, machine.now() - start)
}

/// Convenience wrapper for the parallel variant, returning only the verdict.
pub fn parallel_test_eviction(
    machine: &mut Machine,
    ta: VirtAddr,
    candidates: &[VirtAddr],
    target: TargetCache,
) -> bool {
    test_eviction(machine, ta, candidates, target, TraversalOrder::Parallel).0
}

/// Convenience wrapper for the sequential variant, returning only the verdict.
pub fn sequential_test_eviction(
    machine: &mut Machine,
    ta: VirtAddr,
    candidates: &[VirtAddr],
    target: TargetCache,
) -> bool {
    test_eviction(machine, ta, candidates, target, TraversalOrder::Sequential).0
}

/// Ground-truth helpers used to *validate* constructed eviction sets in tests
/// and experiment harnesses. The attack algorithms never call these.
pub mod oracle {
    use super::*;
    use llc_cache_model::SetLocation;
    use std::collections::HashMap;

    /// Returns the candidates that are truly congruent with `ta` in the
    /// LLC/SF (same slice and set), according to the simulator's page tables.
    pub fn congruent_with(machine: &Machine, ta: VirtAddr, candidates: &[VirtAddr]) -> Vec<VirtAddr> {
        let loc = machine.oracle_attacker_location(ta);
        candidates
            .iter()
            .copied()
            .filter(|&c| machine.oracle_attacker_location(c) == loc)
            .collect()
    }

    /// Groups candidates by their true (slice, set) location.
    pub fn group_by_location(
        machine: &Machine,
        candidates: &[VirtAddr],
    ) -> HashMap<SetLocation, Vec<VirtAddr>> {
        let mut map: HashMap<SetLocation, Vec<VirtAddr>> = HashMap::new();
        for &c in candidates {
            map.entry(machine.oracle_attacker_location(c)).or_default().push(c);
        }
        map
    }

    /// True if every member of `set` is congruent with `ta` and the set has
    /// at least `required` members: the definition of a correct minimal
    /// eviction set used for success-rate accounting.
    pub fn is_true_eviction_set(
        machine: &Machine,
        ta: VirtAddr,
        set: &[VirtAddr],
        required: usize,
    ) -> bool {
        let loc = machine.oracle_attacker_location(ta);
        set.len() >= required && set.iter().all(|&a| machine.oracle_attacker_location(a) == loc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_cache_model::CacheSpec;
    use llc_machine::NoiseModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn machine() -> Machine {
        Machine::builder(CacheSpec::tiny_test()).noise(NoiseModel::silent()).seed(11).build()
    }

    /// Allocates pages and returns (target, congruent addresses, non-congruent addresses).
    fn setup(m: &mut Machine, congruent: usize, other: usize) -> (VirtAddr, Vec<VirtAddr>, Vec<VirtAddr>) {
        let mut rng = SmallRng::seed_from_u64(5);
        let cands =
            crate::candidates::CandidateSet::allocate(m, 0x40, 4096, &mut rng);
        let ta = cands.addresses()[0];
        let cong: Vec<VirtAddr> = oracle::congruent_with(m, ta, &cands.addresses()[1..]);
        assert!(cong.len() >= congruent, "not enough congruent addresses in fixture");
        let non: Vec<VirtAddr> = cands.addresses()[1..]
            .iter()
            .copied()
            .filter(|c| !cong.contains(c))
            .take(other)
            .collect();
        (ta, cong.into_iter().take(congruent).collect(), non)
    }

    #[test]
    fn congruent_addresses_evict_llc_target() {
        let mut m = machine();
        let w = m.spec().llc.ways();
        let (ta, cong, _) = setup(&mut m, w + 1, 0);
        assert!(parallel_test_eviction(&mut m, ta, &cong, TargetCache::Llc));
    }

    #[test]
    fn non_congruent_addresses_do_not_evict_llc_target() {
        let mut m = machine();
        let (ta, _, non) = setup(&mut m, 1, 40);
        assert!(!parallel_test_eviction(&mut m, ta, &non, TargetCache::Llc));
    }

    #[test]
    fn sf_target_evicted_by_sf_ways_congruent_lines() {
        let mut m = machine();
        let w = m.spec().sf.ways();
        let (ta, cong, _) = setup(&mut m, w, 0);
        assert!(parallel_test_eviction(&mut m, ta, &cong, TargetCache::Sf));
        // One fewer congruent address fills the set exactly (together with the
        // target) and must not evict it.
        assert!(!parallel_test_eviction(&mut m, ta, &cong[..w - 1], TargetCache::Sf));
    }

    /// The plan-based entry point must be observationally identical to the
    /// slice-based one: same verdicts, same elapsed cycles, same downstream
    /// machine state (checked through the next timed access).
    #[test]
    fn plan_based_test_eviction_is_bit_identical() {
        let mut a = machine();
        let mut b = machine();
        let w = a.spec().llc.ways();
        let (ta_a, cong_a, _) = setup(&mut a, w + 1, 0);
        let (ta_b, cong_b, _) = setup(&mut b, w + 1, 0);
        assert_eq!(ta_a, ta_b);
        for target in [TargetCache::Llc, TargetCache::Sf] {
            for order in [TraversalOrder::Parallel, TraversalOrder::Sequential] {
                let (ev_a, t_a) = test_eviction(&mut a, ta_a, &cong_a, target, order);
                let plan = b.compile_plan(&cong_b);
                let (ev_b, t_b) = test_eviction_plan(&mut b, ta_b, &plan, target, order);
                assert_eq!(ev_a, ev_b, "{target:?}/{order:?} verdict diverged");
                assert_eq!(t_a, t_b, "{target:?}/{order:?} elapsed cycles diverged");
            }
        }
        assert_eq!(a.now(), b.now());
        assert_eq!(a.timed_access(ta_a), b.timed_access(ta_b));
    }

    #[test]
    fn sequential_and_parallel_agree_but_parallel_is_faster() {
        let mut m = machine();
        let w = m.spec().llc.ways();
        let (ta, cong, non) = setup(&mut m, w + 1, 30);
        let mut all: Vec<VirtAddr> = cong.clone();
        all.extend(non);
        let (ev_par, t_par) = test_eviction(&mut m, ta, &all, TargetCache::Llc, TraversalOrder::Parallel);
        let (ev_seq, t_seq) = test_eviction(&mut m, ta, &all, TargetCache::Llc, TraversalOrder::Sequential);
        assert!(ev_par && ev_seq);
        assert!(t_par < t_seq, "parallel {t_par} should beat sequential {t_seq}");
    }

    #[test]
    fn l2_test_detects_l2_eviction() {
        let mut m = machine();
        let mut rng = SmallRng::seed_from_u64(9);
        let cands = crate::candidates::CandidateSet::allocate(&mut m, 0x80, 512, &mut rng);
        let ta = cands.addresses()[0];
        // All candidates at one page offset share the same L2 set on the tiny
        // machine only if their set-index bits match; gather true L2-congruent
        // ones via the oracle.
        let l2_set = m.oracle_attacker_l2_set(ta);
        let cong: Vec<VirtAddr> = cands.addresses()[1..]
            .iter()
            .copied()
            .filter(|&c| m.oracle_attacker_l2_set(c) == l2_set)
            .take(m.spec().l2.ways() + 1)
            .collect();
        assert!(parallel_test_eviction(&mut m, ta, &cong, TargetCache::L2));
        assert!(!parallel_test_eviction(&mut m, ta, &cong[..2], TargetCache::L2));
    }

    #[test]
    fn oracle_validation_helpers() {
        let mut m = machine();
        let (ta, cong, non) = setup(&mut m, 4, 4);
        assert!(oracle::is_true_eviction_set(&m, ta, &cong, 4));
        assert!(!oracle::is_true_eviction_set(&m, ta, &non, 4));
        let groups = oracle::group_by_location(&m, &cong);
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn thresholds_differ_by_target() {
        let m = machine();
        assert!(eviction_threshold(&m, TargetCache::L2) < eviction_threshold(&m, TargetCache::Llc));
        assert_eq!(
            eviction_threshold(&m, TargetCache::Llc),
            eviction_threshold(&m, TargetCache::Sf)
        );
    }
}
