//! # llc-evsets
//!
//! Eviction-set construction for the non-inclusive Skylake-SP LLC and snoop
//! filter, reproducing Sections 4 and 5 of *"Last-Level Cache Side-Channel
//! Attacks Are Feasible in the Modern Public Cloud"* (ASPLOS 2024):
//!
//! * the [`test_eviction`] primitive in sequential and parallel
//!   (memory-level-parallel) flavours;
//! * candidate-set generation at a chosen page offset ([`CandidateSet`]);
//! * the state-of-the-art pruning algorithms the paper evaluates — group
//!   testing ([`GroupTesting`], `Gt`/`GtOp`) and Prime+Scope
//!   ([`PrimeScope`], `Ps`/`PsOp`) — plus the paper's contributions:
//!   **L2-driven candidate filtering** ([`filter_for_target`]) and the
//!   **binary-search pruning algorithm** ([`BinarySearch`], `BinS`);
//! * single-set construction with retries ([`EvsetBuilder`]) and bulk
//!   construction for the `PageOffset` / `WholeSys` scenarios
//!   ([`BulkBuilder`]).
//!
//! ## Quick example
//!
//! ```
//! use llc_cache_model::CacheSpec;
//! use llc_machine::{Machine, NoiseModel};
//! use llc_evsets::{BinarySearch, EvsetBuilder};
//! use rand::SeedableRng;
//!
//! let mut machine = Machine::builder(CacheSpec::tiny_test())
//!     .noise(NoiseModel::quiescent_local())
//!     .seed(7)
//!     .build();
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let algorithm = BinarySearch::new();
//! let result = EvsetBuilder::new(&algorithm).build_random_set(&mut machine, &mut rng);
//! assert!(result.is_success());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod algorithms;
mod builder;
mod bulk;
mod candidates;
mod config;
mod error;
mod evset;
mod filter;
mod test_eviction;

pub use algorithms::{
    all_algorithms, BinarySearch, GroupTesting, PrimeScope, PruneOutcome, PruningAlgorithm,
};
pub use builder::{extend_to_sf, ConstructionResult, EvsetBuilder};
pub use bulk::{BulkBuilder, BulkConfig, BulkOutcome, Scope};
pub use candidates::CandidateSet;
pub use config::{EvsetConfig, TargetCache};
pub use error::EvsetError;
pub use evset::EvictionSet;
pub use filter::{
    build_l2_eviction_set, filter_candidates, filter_for_target, partition_by_l2, FilterGroup,
    FilteredCandidates,
};
pub use test_eviction::{
    eviction_threshold, load_target, oracle, parallel_test_eviction, sequential_test_eviction,
    test_eviction, test_eviction_plan, TraversalOrder,
};
