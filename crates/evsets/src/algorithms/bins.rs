//! The paper's binary-search address-pruning algorithm (`BinS`, Section 5.2).
//!
//! For a list of candidates, define the *tipping point* τ as the smallest
//! prefix length whose addresses evict the target: τ is the index of the
//! W-th congruent address. `BinS` finds τ by binary search using the fast
//! parallel `TestEviction`, swaps the found congruent address to the front,
//! and repeats until `W` congruent addresses occupy the first `W` slots.
//! The whole construction needs `O(W·N·log N)` accesses, versus `O(W²N)` for
//! group testing, and each individual test is short, which is what makes the
//! algorithm robust against Cloud Run's background noise.
//!
//! Noise can still produce a false-positive test, making the search converge
//! below the true tipping point. The backtracking mechanism (Section 5.2)
//! detects this when the final prefix fails to evict the target and recovers
//! by growing the upper bound with a large stride and re-running the search.

use super::{check_deadline, counted_test_planned, verify_set, PruneOutcome, PruningAlgorithm};
use crate::config::{EvsetConfig, TargetCache};
use crate::error::EvsetError;
use crate::evset::EvictionSet;
use llc_machine::{Machine, TraversalPlan};
use llc_cache_model::VirtAddr;

/// The binary-search pruning algorithm (`BinS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BinarySearch {
    _private: (),
}

impl BinarySearch {
    /// Creates the algorithm with the paper's default backtracking stride.
    pub fn new() -> Self {
        Self { _private: () }
    }
}

impl PruningAlgorithm for BinarySearch {
    fn name(&self) -> &'static str {
        "BinS"
    }

    fn prune(
        &self,
        machine: &mut Machine,
        ta: VirtAddr,
        candidates: &[VirtAddr],
        target: TargetCache,
        config: &EvsetConfig,
        deadline: u64,
    ) -> Result<PruneOutcome, EvsetError> {
        let start = machine.now();
        let ways = target.ways(machine.spec());
        let n = candidates.len();
        if n < ways {
            return Err(EvsetError::InsufficientCandidates { found: n, required: ways });
        }

        let mut addrs: Vec<VirtAddr> = candidates.to_vec();
        let mut tests = 0u32;
        let mut backtracks = 0u32;
        // The first UB addresses always contain at least W congruent addresses
        // (initially the whole list; preserved by the front swaps).
        let mut ub = n;
        let stride = (n / 8).max(ways).max(8);
        // Reused plan arena: every prefix test recompiles this one plan in
        // place, so the whole search allocates nothing per test.
        let mut plan = TraversalPlan::default();

        for i in 1..=ways {
            // Addresses 0..i-1 are congruent addresses found so far.
            let mut lb = i - 1;
            loop {
                check_deadline(machine, start, deadline)?;
                // Erroneous tests (noise, cross-structure interference) can
                // leave the upper bound at or below the lower bound; recover
                // by growing it before searching.
                if ub <= lb {
                    backtracks += 1;
                    if backtracks > config.max_backtracks {
                        return Err(EvsetError::BacktrackLimit { backtracks });
                    }
                    ub = (lb + stride).min(n);
                    if ub <= lb {
                        return Err(EvsetError::InsufficientCandidates {
                            found: i - 1,
                            required: ways,
                        });
                    }
                }
                // Binary search for the tipping point of this iteration.
                while ub > lb + 1 {
                    check_deadline(machine, start, deadline)?;
                    let mid = (lb + ub) / 2;
                    if counted_test_planned(machine, ta, &addrs[..mid], &mut plan, target, &mut tests) {
                        ub = mid;
                    } else {
                        lb = mid;
                    }
                }
                // Verify: the prefix of length UB must genuinely evict the
                // target. A noise-induced false positive during the search can
                // leave UB below the true tipping point.
                if counted_test_planned(machine, ta, &addrs[..ub], &mut plan, target, &mut tests) {
                    break;
                }
                backtracks += 1;
                if backtracks > config.max_backtracks {
                    return Err(EvsetError::BacktrackLimit { backtracks });
                }
                ub = (ub + stride).min(n);
                lb = i - 1;
                if ub == n && !counted_test_planned(machine, ta, &addrs[..ub], &mut plan, target, &mut tests) {
                    // Even the full candidate list no longer evicts: either the
                    // set is genuinely short of congruent addresses, or noise
                    // struck twice; retry once more before giving up.
                    if !counted_test_planned(machine, ta, &addrs[..ub], &mut plan, target, &mut tests) {
                        return Err(EvsetError::InsufficientCandidates {
                            found: i - 1,
                            required: ways,
                        });
                    }
                }
            }
            // addrs[ub-1] is the i-th congruent address; move it to the front.
            addrs.swap(i - 1, ub - 1);
        }

        let evset: Vec<VirtAddr> = addrs[..ways].to_vec();
        if !verify_set(machine, ta, &evset, target, config) {
            return Err(EvsetError::VerificationFailed);
        }
        Ok(PruneOutcome {
            eviction_set: EvictionSet::new(evset, target),
            test_evictions: tests,
            backtracks,
            elapsed_cycles: machine.now() - start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateSet;
    use crate::test_eviction::oracle;
    use llc_cache_model::CacheSpec;
    use llc_machine::{Machine, NoiseModel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn quiet_machine(seed: u64) -> Machine {
        Machine::builder(CacheSpec::tiny_test()).noise(NoiseModel::silent()).seed(seed).build()
    }

    #[test]
    fn bins_builds_true_minimal_eviction_set() {
        let mut m = quiet_machine(41);
        let mut rng = SmallRng::seed_from_u64(41);
        let cands = CandidateSet::allocate(&mut m, 0x40, 256, &mut rng);
        let ta = cands.addresses()[0];
        let cfg = EvsetConfig::default();
        let out = BinarySearch::new()
            .prune(
                &mut m,
                ta,
                &cands.addresses()[1..],
                TargetCache::Llc,
                &cfg,
                u64::MAX / 4,
            )
            .expect("BinS should succeed in a quiet environment");
        let w = m.spec().llc.ways();
        assert_eq!(out.eviction_set.len(), w);
        assert!(oracle::is_true_eviction_set(&m, ta, out.eviction_set.addresses(), w));
        assert_eq!(out.backtracks, 0, "no backtracks expected without noise");
    }

    #[test]
    fn bins_works_for_the_sf_too() {
        // Unfiltered pruning straight against the SF is sensitive to the page
        // coloring: some layouts evict ta through mixed L2/LLC pressure and
        // fail verification (the cross-structure interference that motivates
        // candidate filtering, Section 5.1). The seed picks a layout where a
        // single attempt succeeds; `EvsetBuilder` retries for the rest.
        let mut m = quiet_machine(44);
        let mut rng = SmallRng::seed_from_u64(44);
        let cands = CandidateSet::allocate(&mut m, 0x100, 300, &mut rng);
        let ta = cands.addresses()[0];
        let cfg = EvsetConfig::default();
        let out = BinarySearch::new()
            .prune(
                &mut m,
                ta,
                &cands.addresses()[1..],
                TargetCache::Sf,
                &cfg,
                u64::MAX / 4,
            )
            .expect("BinS should build an SF eviction set");
        let w = m.spec().sf.ways();
        assert_eq!(out.eviction_set.len(), w);
        assert!(oracle::is_true_eviction_set(&m, ta, out.eviction_set.addresses(), w));
    }

    #[test]
    fn bins_succeeds_under_cloud_noise_on_small_machine() {
        let mut m = Machine::builder(CacheSpec::tiny_test())
            .noise(NoiseModel::cloud_run())
            .seed(43)
            .build();
        let mut rng = SmallRng::seed_from_u64(43);
        let cands = CandidateSet::allocate(&mut m, 0x40, 256, &mut rng);
        let ta = cands.addresses()[0];
        let cfg = EvsetConfig::default();
        let mut successes = 0;
        for _ in 0..5 {
            if let Ok(out) = BinarySearch::new().prune(
                &mut m,
                ta,
                &cands.addresses()[1..],
                TargetCache::Llc,
                &cfg,
                u64::MAX / 4,
            ) {
                if oracle::is_true_eviction_set(&m, ta, out.eviction_set.addresses(), m.spec().llc.ways()) {
                    successes += 1;
                }
            }
        }
        assert!(successes >= 3, "BinS should usually succeed under noise, got {successes}/5");
    }

    #[test]
    fn bins_uses_fewer_tests_than_group_testing() {
        use crate::algorithms::GroupTesting;
        let mut m = quiet_machine(44);
        let mut rng = SmallRng::seed_from_u64(44);
        let cands = CandidateSet::allocate(&mut m, 0x40, 512, &mut rng);
        let ta = cands.addresses()[0];
        let cfg = EvsetConfig::default();
        let rest: Vec<VirtAddr> = cands.addresses()[1..].to_vec();
        let deadline = m.now() + 10 * cfg.time_budget_cycles;
        let bins = BinarySearch::new().prune(&mut m, ta, &rest, TargetCache::Llc, &cfg, deadline).unwrap();
        let gt = GroupTesting::baseline().prune(&mut m, ta, &rest, TargetCache::Llc, &cfg, deadline).unwrap();
        // Complexity argument of Section 5.2: O(W log N) tests vs O(W^2) groups;
        // what matters for the paper's claim is total accesses, checked in the
        // bench harness, but the test count already shows the trend.
        assert!(bins.test_evictions <= gt.test_evictions * 2);
    }

    #[test]
    fn too_few_candidates_error() {
        let mut m = quiet_machine(45);
        let mut rng = SmallRng::seed_from_u64(45);
        let cands = CandidateSet::allocate(&mut m, 0x0, 3, &mut rng);
        let cfg = EvsetConfig::default();
        let out = BinarySearch::new().prune(
            &mut m,
            cands.addresses()[0],
            &cands.addresses()[1..],
            TargetCache::Llc,
            &cfg,
            u64::MAX / 4,
        );
        assert!(matches!(out, Err(EvsetError::InsufficientCandidates { .. })));
    }
}
