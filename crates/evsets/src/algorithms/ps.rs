//! Prime+Scope-style address pruning (`Ps` and `PsOp`).
//!
//! Prime+Scope [Purnal et al. 2021] finds congruent addresses one at a time:
//! after loading the target, it accesses candidates sequentially and checks
//! after every access whether the target is still cached. The check is an
//! inherently *sequential* `TestEviction`, which is why the paper finds the
//! approach fragile under Cloud Run noise (Section 4.2): the longer scan gives
//! other tenants many opportunities to evict the target themselves, producing
//! false congruent addresses.
//!
//! `PsOp` (Appendix A) additionally "recharges" the front of the candidate
//! list after each hit by moving addresses from the back towards the front,
//! so later searches do not have to scan ever deeper.

use super::{check_deadline, verify_set, PruneOutcome, PruningAlgorithm};
use crate::config::{EvsetConfig, TargetCache};
use crate::error::EvsetError;
use crate::evset::EvictionSet;
use crate::test_eviction::{eviction_threshold, load_target};
use llc_machine::Machine;
use llc_cache_model::VirtAddr;

/// The Prime+Scope pruning algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimeScope {
    recharge_front: bool,
    /// How many addresses are moved from the back of the list to the scan
    /// position after each congruent address is found (only for `PsOp`).
    recharge_batch: usize,
}

impl PrimeScope {
    /// The baseline `Ps`: candidates are scanned from the head after every
    /// find, with found addresses removed.
    pub fn baseline() -> Self {
        Self { recharge_front: false, recharge_batch: 0 }
    }

    /// The optimised `PsOp`: the front of the list is recharged with
    /// addresses from the back after each find.
    pub fn optimized() -> Self {
        Self { recharge_front: true, recharge_batch: 64 }
    }

    /// Whether this instance recharges the list front.
    pub fn recharges_front(&self) -> bool {
        self.recharge_front
    }
}

impl PruningAlgorithm for PrimeScope {
    fn name(&self) -> &'static str {
        if self.recharge_front {
            "PsOp"
        } else {
            "Ps"
        }
    }

    fn prune(
        &self,
        machine: &mut Machine,
        ta: VirtAddr,
        candidates: &[VirtAddr],
        target: TargetCache,
        config: &EvsetConfig,
        deadline: u64,
    ) -> Result<PruneOutcome, EvsetError> {
        let start = machine.now();
        let ways = target.ways(machine.spec());
        if candidates.len() < ways {
            return Err(EvsetError::InsufficientCandidates {
                found: candidates.len(),
                required: ways,
            });
        }

        let threshold = eviction_threshold(machine, target);
        let mut list: Vec<VirtAddr> = candidates.to_vec();
        let mut evset: Vec<VirtAddr> = Vec::with_capacity(ways);
        let mut tests = 0u32;

        let prev_echo = machine.helper_echo();
        let result = (|| {
            while evset.len() < ways {
                check_deadline(machine, start, deadline)?;
                // (Re-)load the target, prime it as the eviction candidate of
                // its set, and scan from the head of the list. Every scope
                // check re-establishes the eviction-candidate state, exactly
                // like Prime+Scope's priming pattern.
                load_target(machine, ta, target);
                machine.prime_as_victim(ta);
                machine.set_helper_echo(target == TargetCache::Llc);
                let mut found_at: Option<usize> = None;
                for (idx, &candidate) in list.iter().enumerate() {
                    if idx % 64 == 0 {
                        check_deadline(machine, start, deadline)?;
                    }
                    machine.access(candidate);
                    let (latency, _) = machine.scope_check(ta);
                    tests += 1;
                    if latency >= threshold {
                        found_at = Some(idx);
                        break;
                    }
                }
                machine.set_helper_echo(prev_echo);
                match found_at {
                    Some(idx) => {
                        let congruent = list.remove(idx);
                        evset.push(congruent);
                        if self.recharge_front && !list.is_empty() {
                            let take = self.recharge_batch.min(list.len().saturating_sub(idx));
                            // Move `take` addresses from the back of the list
                            // to the position where the scan stopped.
                            for k in 0..take {
                                let last = list.pop().expect("list non-empty");
                                list.insert((idx + k).min(list.len()), last);
                            }
                        }
                    }
                    None => {
                        return Err(EvsetError::InsufficientCandidates {
                            found: evset.len(),
                            required: ways,
                        })
                    }
                }
            }
            Ok(())
        })();
        machine.set_helper_echo(prev_echo);
        result?;

        if !verify_set(machine, ta, &evset, target, config) {
            return Err(EvsetError::VerificationFailed);
        }
        Ok(PruneOutcome {
            eviction_set: EvictionSet::new(evset, target),
            test_evictions: tests,
            backtracks: 0,
            elapsed_cycles: machine.now() - start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateSet;
    use crate::test_eviction::oracle;
    use llc_cache_model::CacheSpec;
    use llc_machine::NoiseModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn run(ps: PrimeScope, seed: u64) -> (Machine, VirtAddr, Result<PruneOutcome, EvsetError>) {
        let mut m =
            Machine::builder(CacheSpec::tiny_test()).noise(NoiseModel::silent()).seed(seed).build();
        let mut rng = SmallRng::seed_from_u64(seed);
        let cands = CandidateSet::allocate(&mut m, 0x80, 256, &mut rng);
        let ta = cands.addresses()[0];
        let rest: Vec<VirtAddr> = cands.addresses()[1..].to_vec();
        let cfg = EvsetConfig::default();
        let deadline = m.now() + cfg.time_budget_cycles;
        let out = ps.prune(&mut m, ta, &rest, TargetCache::Llc, &cfg, deadline);
        (m, ta, out)
    }

    #[test]
    fn ps_builds_true_eviction_set_in_quiet_environment() {
        let (m, ta, out) = run(PrimeScope::baseline(), 31);
        let out = out.expect("Ps should succeed without noise");
        let w = m.spec().llc.ways();
        assert_eq!(out.eviction_set.len(), w);
        assert!(oracle::is_true_eviction_set(&m, ta, out.eviction_set.addresses(), w));
    }

    #[test]
    fn psop_builds_true_eviction_set_in_quiet_environment() {
        let (m, ta, out) = run(PrimeScope::optimized(), 32);
        let out = out.expect("PsOp should succeed without noise");
        let w = m.spec().llc.ways();
        assert!(oracle::is_true_eviction_set(&m, ta, out.eviction_set.addresses(), w));
    }

    #[test]
    fn ps_uses_more_scope_checks_than_ways() {
        let (m, _ta, out) = run(PrimeScope::baseline(), 33);
        let out = out.expect("Ps should succeed");
        assert!(out.test_evictions as usize > m.spec().llc.ways());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(PrimeScope::baseline().name(), "Ps");
        assert_eq!(PrimeScope::optimized().name(), "PsOp");
    }

    #[test]
    fn insufficient_candidates_detected() {
        let mut m =
            Machine::builder(CacheSpec::tiny_test()).noise(NoiseModel::silent()).seed(7).build();
        let mut rng = SmallRng::seed_from_u64(7);
        let cands = CandidateSet::allocate(&mut m, 0x0, 3, &mut rng);
        let cfg = EvsetConfig::default();
        let out = PrimeScope::baseline().prune(
            &mut m,
            cands.addresses()[0],
            &cands.addresses()[1..],
            TargetCache::Llc,
            &cfg,
            u64::MAX / 4,
        );
        assert!(matches!(out, Err(EvsetError::InsufficientCandidates { .. })));
    }
}
