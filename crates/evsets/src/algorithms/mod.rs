//! Address-pruning algorithms: reduce a candidate set to a minimal eviction
//! set (Section 2.2.1 step 2, Sections 4–5).
//!
//! | Implementation | Paper name | Core idea |
//! |---|---|---|
//! | [`GroupTesting::baseline`] | `Gt` | withhold groups, keep the reduced set when it still evicts (with early termination) |
//! | [`GroupTesting::optimized`] | `GtOp` | same, but scans *all* groups each round (Appendix A) |
//! | [`PrimeScope::baseline`] | `Ps` | per-candidate scope check with sequential `TestEviction` |
//! | [`PrimeScope::optimized`] | `PsOp` | `Ps` plus front "recharging" (Appendix A) |
//! | [`BinarySearch`] | `BinS` | binary search for the tipping point, parallel `TestEviction` (Section 5.2) |

mod bins;
mod gt;
mod ps;

pub use bins::BinarySearch;
pub use gt::GroupTesting;
pub use ps::PrimeScope;

use crate::config::{EvsetConfig, TargetCache};
use crate::error::EvsetError;
use crate::evset::EvictionSet;
use crate::test_eviction::{test_eviction_plan, TraversalOrder};
use llc_machine::{Machine, TraversalPlan};
use llc_cache_model::VirtAddr;

/// Statistics and result of one pruning run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PruneOutcome {
    /// The minimal eviction set that was constructed.
    pub eviction_set: EvictionSet,
    /// Number of `TestEviction` invocations performed.
    pub test_evictions: u32,
    /// Number of backtracks taken to recover from erroneous test results.
    pub backtracks: u32,
    /// Simulated cycles spent inside the pruning algorithm.
    pub elapsed_cycles: u64,
}

/// An address-pruning algorithm.
///
/// Implementations reduce `candidates` (all sharing the page offset of `ta`)
/// to a minimal eviction set for the cache set that `ta` maps to, using only
/// the timed-access interface of the [`Machine`].
pub trait PruningAlgorithm: std::fmt::Debug {
    /// Short name used in tables and reports (`"Gt"`, `"BinS"`, ...).
    fn name(&self) -> &'static str;

    /// Runs the algorithm once.
    ///
    /// `deadline` is an absolute cycle count after which the algorithm must
    /// give up with [`EvsetError::Timeout`].
    ///
    /// # Errors
    ///
    /// Returns an error when the candidate set is exhausted, the backtrack
    /// budget is spent, the deadline passes, or the result fails verification.
    fn prune(
        &self,
        machine: &mut Machine,
        ta: VirtAddr,
        candidates: &[VirtAddr],
        target: TargetCache,
        config: &EvsetConfig,
        deadline: u64,
    ) -> Result<PruneOutcome, EvsetError>;
}

/// Returns every implemented pruning algorithm, in the order used by the
/// paper's tables (`Gt`, `GtOp`, `Ps`, `PsOp`, `BinS`).
pub fn all_algorithms() -> Vec<Box<dyn PruningAlgorithm>> {
    vec![
        Box::new(GroupTesting::baseline()),
        Box::new(GroupTesting::optimized()),
        Box::new(PrimeScope::baseline()),
        Box::new(PrimeScope::optimized()),
        Box::new(BinarySearch::new()),
    ]
}

/// Checks the deadline, mapping an overrun to [`EvsetError::Timeout`].
pub(crate) fn check_deadline(machine: &Machine, start: u64, deadline: u64) -> Result<(), EvsetError> {
    if machine.now() > deadline {
        Err(EvsetError::Timeout { spent_cycles: machine.now() - start })
    } else {
        Ok(())
    }
}

/// Final verification shared by all algorithms: the constructed set must
/// evict the target in `config.verify_rounds` consecutive tests. The set is
/// fixed across the rounds, so it is compiled once and every round traverses
/// the plan.
pub(crate) fn verify_set(
    machine: &mut Machine,
    ta: VirtAddr,
    set: &[VirtAddr],
    target: TargetCache,
    config: &EvsetConfig,
) -> bool {
    let plan = machine.compile_plan(set);
    (0..config.verify_rounds).all(|_| {
        test_eviction_plan(machine, ta, &plan, target, TraversalOrder::Parallel).0
    })
}

/// One counted parallel `TestEviction` over a candidate subset compiled
/// into `plan` — the pruning loops' hot path. `plan` is the caller's
/// reusable arena: it is recompiled in place for `subset`, so steady-state
/// tests allocate nothing.
pub(crate) fn counted_test_planned(
    machine: &mut Machine,
    ta: VirtAddr,
    subset: &[VirtAddr],
    plan: &mut TraversalPlan,
    target: TargetCache,
    counter: &mut u32,
) -> bool {
    *counter += 1;
    machine.compile_plan_into(subset, plan);
    test_eviction_plan(machine, ta, plan, target, TraversalOrder::Parallel).0
}
