//! Group-testing address pruning (`Gt` and `GtOp`).
//!
//! Group testing [Vila et al. 2019, Qureshi 2019] repeatedly withholds one
//! group of candidates and keeps the reduced set whenever it still evicts the
//! target, shrinking the candidate set towards a minimal eviction set in
//! `O(W²N)` accesses. The paper's `GtOp` variant (Appendix A) differs from
//! the textbook algorithm by *not* terminating the group scan early after the
//! first removable group: scanning all groups per round prunes larger volumes
//! per round and turns out to be both faster and more noise-resilient on
//! Skylake-SP.

use super::{check_deadline, counted_test_planned, verify_set, PruneOutcome, PruningAlgorithm};
use crate::config::{EvsetConfig, TargetCache};
use crate::error::EvsetError;
use crate::evset::EvictionSet;
use llc_machine::{Machine, TraversalPlan};
use llc_cache_model::VirtAddr;

/// The group-testing pruning algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupTesting {
    early_termination: bool,
}

impl GroupTesting {
    /// The baseline `Gt`: re-partition after the first removable group.
    pub fn baseline() -> Self {
        Self { early_termination: true }
    }

    /// The optimised `GtOp`: scan every group before re-partitioning.
    pub fn optimized() -> Self {
        Self { early_termination: false }
    }

    /// Whether this instance terminates the group scan early.
    pub fn early_termination(&self) -> bool {
        self.early_termination
    }
}

impl PruningAlgorithm for GroupTesting {
    fn name(&self) -> &'static str {
        if self.early_termination {
            "Gt"
        } else {
            "GtOp"
        }
    }

    fn prune(
        &self,
        machine: &mut Machine,
        ta: VirtAddr,
        candidates: &[VirtAddr],
        target: TargetCache,
        config: &EvsetConfig,
        deadline: u64,
    ) -> Result<PruneOutcome, EvsetError> {
        let start = machine.now();
        let ways = target.ways(machine.spec());
        if candidates.len() < ways {
            return Err(EvsetError::InsufficientCandidates {
                found: candidates.len(),
                required: ways,
            });
        }

        let mut working: Vec<VirtAddr> = candidates.to_vec();
        let mut removed_stack: Vec<Vec<VirtAddr>> = Vec::new();
        let mut backtracks = 0u32;
        let mut tests = 0u32;
        let groups = ways + 1;
        // Reused across every group test of every round: the withheld-group
        // remainder and its compiled traversal (the "plan arena" — steady
        // state performs no per-test allocation for either).
        let mut remainder: Vec<VirtAddr> = Vec::with_capacity(candidates.len());
        let mut plan = TraversalPlan::default();

        while working.len() > ways {
            check_deadline(machine, start, deadline)?;
            // Split into exactly W+1 groups (sizes differing by at most one).
            // The pigeonhole argument of group testing requires W+1 groups:
            // the W congruent addresses occupy at most W of them, so at least
            // one group is removable in the absence of noise.
            let len = working.len();
            let bounds: Vec<usize> = (0..=groups).map(|g| g * len / groups).collect();
            let group_vec: Vec<Vec<VirtAddr>> =
                (0..groups).map(|g| working[bounds[g]..bounds[g + 1]].to_vec()).collect();
            let mut keep = vec![true; groups];
            let mut reduced_any = false;

            for g in 0..groups {
                if group_vec[g].is_empty() {
                    continue;
                }
                check_deadline(machine, start, deadline)?;
                remainder.clear();
                remainder.extend(
                    group_vec
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| keep[i] && i != g)
                        .flat_map(|(_, v)| v.iter().copied()),
                );
                if remainder.len() < ways {
                    continue;
                }
                if counted_test_planned(machine, ta, &remainder, &mut plan, target, &mut tests) {
                    keep[g] = false;
                    removed_stack.push(group_vec[g].clone());
                    reduced_any = true;
                    if self.early_termination {
                        break;
                    }
                }
            }
            if reduced_any {
                working = group_vec
                    .into_iter()
                    .enumerate()
                    .filter(|&(i, _)| keep[i])
                    .flat_map(|(_, v)| v)
                    .collect();
            }

            if !reduced_any {
                // No group could be withheld. Either a previous removal was a
                // noise-induced false positive (backtrack) or we are stuck.
                match removed_stack.pop() {
                    Some(group) => {
                        working.extend(group);
                        backtracks += 1;
                        if backtracks > config.max_backtracks {
                            return Err(EvsetError::BacktrackLimit { backtracks });
                        }
                        // Re-partition differently on the next round, otherwise
                        // the same withheld-group decisions repeat and the
                        // round cycles without making progress.
                        if !working.is_empty() {
                            let shift = (1 + backtracks as usize * 7) % working.len();
                            working.rotate_left(shift);
                        }
                    }
                    None => return Err(EvsetError::VerificationFailed),
                }
            }
        }

        if working.len() < ways {
            return Err(EvsetError::InsufficientCandidates { found: working.len(), required: ways });
        }
        if !verify_set(machine, ta, &working, target, config) {
            return Err(EvsetError::VerificationFailed);
        }
        Ok(PruneOutcome {
            eviction_set: EvictionSet::new(working, target),
            test_evictions: tests,
            backtracks,
            elapsed_cycles: machine.now() - start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateSet;
    use crate::test_eviction::oracle;
    use llc_cache_model::CacheSpec;
    use llc_machine::NoiseModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn quiet_machine(seed: u64) -> Machine {
        Machine::builder(CacheSpec::tiny_test()).noise(NoiseModel::silent()).seed(seed).build()
    }

    fn run(gt: GroupTesting, seed: u64) -> (Machine, VirtAddr, Result<PruneOutcome, EvsetError>) {
        let mut m = quiet_machine(seed);
        let mut rng = SmallRng::seed_from_u64(seed);
        let cands = CandidateSet::allocate(&mut m, 0x40, 256, &mut rng);
        let ta = cands.addresses()[0];
        let rest: Vec<VirtAddr> = cands.addresses()[1..].to_vec();
        let cfg = EvsetConfig::default();
        let deadline = m.now() + cfg.time_budget_cycles;
        let out = gt.prune(&mut m, ta, &rest, TargetCache::Llc, &cfg, deadline);
        (m, ta, out)
    }

    #[test]
    fn gt_builds_minimal_true_eviction_set() {
        let (m, ta, out) = run(GroupTesting::baseline(), 21);
        let out = out.expect("Gt should succeed in a quiet environment");
        let w = m.spec().llc.ways();
        assert_eq!(out.eviction_set.len(), w);
        assert!(oracle::is_true_eviction_set(&m, ta, out.eviction_set.addresses(), w));
        assert!(out.test_evictions > 0);
    }

    #[test]
    fn gtop_builds_minimal_true_eviction_set() {
        let (m, ta, out) = run(GroupTesting::optimized(), 22);
        let out = out.expect("GtOp should succeed in a quiet environment");
        let w = m.spec().llc.ways();
        assert_eq!(out.eviction_set.len(), w);
        assert!(oracle::is_true_eviction_set(&m, ta, out.eviction_set.addresses(), w));
    }

    #[test]
    fn insufficient_candidates_is_reported() {
        let mut m = quiet_machine(23);
        let mut rng = SmallRng::seed_from_u64(23);
        let cands = CandidateSet::allocate(&mut m, 0x0, 4, &mut rng);
        let ta = cands.addresses()[0];
        let cfg = EvsetConfig::default();
        let out = GroupTesting::baseline().prune(
            &mut m,
            ta,
            &cands.addresses()[1..3],
            TargetCache::Llc,
            &cfg,
            u64::MAX / 4,
        );
        assert!(matches!(out, Err(EvsetError::InsufficientCandidates { .. })));
    }

    #[test]
    fn deadline_is_enforced() {
        let mut m = quiet_machine(24);
        let mut rng = SmallRng::seed_from_u64(24);
        let cands = CandidateSet::allocate(&mut m, 0x40, 256, &mut rng);
        let ta = cands.addresses()[0];
        let cfg = EvsetConfig::default();
        // Deadline in the past: the first check must trip.
        let out = GroupTesting::optimized().prune(
            &mut m,
            ta,
            &cands.addresses()[1..],
            TargetCache::Llc,
            &cfg,
            0,
        );
        assert!(matches!(out, Err(EvsetError::Timeout { .. })));
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(GroupTesting::baseline().name(), "Gt");
        assert_eq!(GroupTesting::optimized().name(), "GtOp");
    }
}
