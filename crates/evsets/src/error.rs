//! Error types for eviction-set construction.

use std::fmt;

/// Why an eviction-set construction attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvsetError {
    /// The per-attempt or per-set time budget was exhausted.
    Timeout {
        /// Simulated cycles spent before giving up.
        spent_cycles: u64,
    },
    /// All allowed attempts failed to produce a verified eviction set.
    AttemptsExhausted {
        /// Number of attempts made.
        attempts: u32,
    },
    /// The candidate set ran out of addresses before a full eviction set was
    /// found (not enough congruent addresses).
    InsufficientCandidates {
        /// Number of congruent addresses found before running out.
        found: usize,
        /// Number of congruent addresses required.
        required: usize,
    },
    /// The backtracking budget was exhausted (too many erroneous
    /// `TestEviction` results, typically caused by noise).
    BacktrackLimit {
        /// Number of backtracks performed.
        backtracks: u32,
    },
    /// The constructed set failed final verification.
    VerificationFailed,
}

impl fmt::Display for EvsetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvsetError::Timeout { spent_cycles } => {
                write!(f, "construction timed out after {spent_cycles} cycles")
            }
            EvsetError::AttemptsExhausted { attempts } => {
                write!(f, "all {attempts} construction attempts failed")
            }
            EvsetError::InsufficientCandidates { found, required } => {
                write!(f, "candidate set exhausted: found {found} of {required} congruent addresses")
            }
            EvsetError::BacktrackLimit { backtracks } => {
                write!(f, "backtrack limit reached after {backtracks} backtracks")
            }
            EvsetError::VerificationFailed => write!(f, "constructed set failed verification"),
        }
    }
}

impl std::error::Error for EvsetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors = [
            EvsetError::Timeout { spent_cycles: 10 },
            EvsetError::AttemptsExhausted { attempts: 3 },
            EvsetError::InsufficientCandidates { found: 2, required: 12 },
            EvsetError::BacktrackLimit { backtracks: 20 },
            EvsetError::VerificationFailed,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_object_usable() {
        let e: Box<dyn std::error::Error> = Box::new(EvsetError::VerificationFailed);
        assert!(e.to_string().contains("verification"));
    }
}
