//! L2-driven candidate address filtering (Section 5.1).
//!
//! The L2 set-index bits are a subset of the LLC/SF set-index bits, so two
//! addresses that are *not* congruent in the L2 cannot be congruent in the
//! LLC/SF. The attacker therefore first builds an L2 eviction set (cheap:
//! the L2 is private and has uncertainty 16), then keeps only the candidates
//! that this L2 eviction set can evict. The filtered candidate set is ~16×
//! smaller, which makes every downstream pruning algorithm both faster and
//! more noise-resilient.
//!
//! For bulk construction the same 16 filtered groups (one per L2 set at a
//! page offset) are reused for every LLC/SF set, and the page-offset-δ trick
//! (Section 5.3.1) extends them to all 64 page offsets without re-filtering.

use crate::algorithms::{BinarySearch, PruningAlgorithm};
use crate::candidates::CandidateSet;
use crate::config::{EvsetConfig, TargetCache};
use crate::error::EvsetError;
use crate::evset::EvictionSet;
use crate::test_eviction::parallel_test_eviction;
use llc_machine::Machine;
use llc_cache_model::VirtAddr;

/// A group of candidates that share one L2 set, together with the L2
/// eviction set that defines the group.
#[derive(Debug, Clone)]
pub struct FilterGroup {
    /// The L2 eviction set used to recognise members of this group.
    pub l2_eviction_set: EvictionSet,
    /// The address the L2 eviction set was built for.
    pub representative: VirtAddr,
    /// Candidates congruent with the representative in the L2.
    pub candidates: Vec<VirtAddr>,
}

/// The result of partitioning a candidate set by L2 congruence.
#[derive(Debug, Clone)]
pub struct FilteredCandidates {
    /// One group per discovered L2 set (up to `U_L2` groups).
    pub groups: Vec<FilterGroup>,
    /// Cycles spent building L2 eviction sets and filtering.
    pub elapsed_cycles: u64,
}

impl FilteredCandidates {
    /// Total number of candidates across all groups.
    pub fn total_candidates(&self) -> usize {
        self.groups.iter().map(|g| g.candidates.len()).sum()
    }

    /// Returns a shifted copy of every group, moving all candidate addresses
    /// by `delta` bytes within their pages (Section 5.3.1). The L2 eviction
    /// sets are shifted as well, preserving their congruence.
    pub fn shifted(&self, delta: i64) -> FilteredCandidates {
        let shift = |va: VirtAddr| VirtAddr::new((va.raw() as i64 + delta) as u64);
        let groups = self
            .groups
            .iter()
            .map(|g| FilterGroup {
                l2_eviction_set: EvictionSet::new(
                    g.l2_eviction_set.addresses().iter().copied().map(shift).collect(),
                    TargetCache::L2,
                ),
                representative: shift(g.representative),
                candidates: g.candidates.iter().copied().map(shift).collect(),
            })
            .collect();
        FilteredCandidates { groups, elapsed_cycles: 0 }
    }
}

/// Builds an L2 eviction set for `ta` from candidates at the same page offset.
///
/// Uses the binary-search pruning algorithm, which is the fastest available;
/// the choice does not affect the downstream LLC/SF construction.
///
/// # Errors
///
/// Propagates the pruning algorithm's errors (timeout, insufficient
/// candidates, ...).
pub fn build_l2_eviction_set(
    machine: &mut Machine,
    ta: VirtAddr,
    candidates: &[VirtAddr],
    config: &EvsetConfig,
    deadline: u64,
) -> Result<EvictionSet, EvsetError> {
    let algorithm = BinarySearch::new();
    let needed = config.candidate_count(machine.spec(), TargetCache::L2);
    let pool: Vec<VirtAddr> = candidates.iter().copied().take(needed.max(candidates.len().min(needed))).collect();
    // The L2's Tree-PLRU replacement makes individual attempts less reliable
    // than on the LRU-managed LLC/SF, so allow a few retries.
    let mut last_err = EvsetError::VerificationFailed;
    for _ in 0..3 {
        match algorithm.prune(machine, ta, &pool, TargetCache::L2, config, deadline) {
            Ok(outcome) => return Ok(outcome.eviction_set),
            Err(e @ EvsetError::Timeout { .. }) => return Err(e),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

/// Filters `candidates`, keeping only those the `l2_eviction_set` can evict
/// (i.e. those congruent with its target in the L2).
///
/// Returns the kept candidates and the cycles spent filtering.
pub fn filter_candidates(
    machine: &mut Machine,
    l2_eviction_set: &EvictionSet,
    candidates: &[VirtAddr],
) -> (Vec<VirtAddr>, u64) {
    let start = machine.now();
    let kept = candidates
        .iter()
        .copied()
        .filter(|&c| {
            !l2_eviction_set.contains(c)
                && parallel_test_eviction(machine, c, l2_eviction_set.addresses(), TargetCache::L2)
        })
        .collect();
    (kept, machine.now() - start)
}

/// Partitions a candidate set into per-L2-set groups (at most `U_L2` groups),
/// building one L2 eviction set per group.
///
/// # Errors
///
/// Returns an error if even the first L2 eviction set cannot be built.
/// Groups after the first are best-effort: the function stops early if the
/// remaining pool becomes too small.
pub fn partition_by_l2(
    machine: &mut Machine,
    candidates: &CandidateSet,
    config: &EvsetConfig,
    deadline: u64,
) -> Result<FilteredCandidates, EvsetError> {
    let start = machine.now();
    let u_l2 = TargetCache::L2.uncertainty(machine.spec());
    let l2_ways = TargetCache::L2.ways(machine.spec());
    let mut remaining: Vec<VirtAddr> = candidates.addresses().to_vec();
    let mut groups: Vec<FilterGroup> = Vec::with_capacity(u_l2);

    while groups.len() < u_l2 && remaining.len() > 2 * l2_ways {
        let representative = remaining[0];
        let pool: Vec<VirtAddr> = remaining[1..].to_vec();
        let l2_set = match build_l2_eviction_set(machine, representative, &pool, config, deadline) {
            Ok(set) => set,
            Err(e) if groups.is_empty() => return Err(e),
            Err(_) => break,
        };
        let (mut members, _) = filter_candidates(machine, &l2_set, &pool);
        members.insert(0, representative);
        remaining.retain(|a| !members.contains(a) && !l2_set.contains(*a));
        groups.push(FilterGroup { l2_eviction_set: l2_set, representative, candidates: members });
    }

    Ok(FilteredCandidates { groups, elapsed_cycles: machine.now() - start })
}

/// Filters candidates for a *single* target address: builds an L2 eviction
/// set for `ta` and returns the candidates congruent with it in the L2.
///
/// This is the per-set filtering cost measured in the paper's `SingleSet`
/// scenario (~22.3 ms on Cloud Run).
///
/// # Errors
///
/// Propagates L2 eviction-set construction failures.
pub fn filter_for_target(
    machine: &mut Machine,
    ta: VirtAddr,
    candidates: &[VirtAddr],
    config: &EvsetConfig,
    deadline: u64,
) -> Result<(Vec<VirtAddr>, u64), EvsetError> {
    let start = machine.now();
    let l2_set = build_l2_eviction_set(machine, ta, candidates, config, deadline)?;
    let (kept, _) = filter_candidates(machine, &l2_set, candidates);
    Ok((kept, machine.now() - start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_cache_model::CacheSpec;
    use llc_machine::NoiseModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn quiet_machine(seed: u64) -> Machine {
        Machine::builder(CacheSpec::tiny_test()).noise(NoiseModel::silent()).seed(seed).build()
    }

    #[test]
    fn filtered_candidates_are_l2_congruent_with_target() {
        let mut m = quiet_machine(51);
        let mut rng = SmallRng::seed_from_u64(51);
        let cands = CandidateSet::allocate(&mut m, 0x40, 256, &mut rng);
        let ta = cands.addresses()[0];
        let cfg = EvsetConfig::default();
        let deadline = m.now() + cfg.time_budget_cycles;
        let (kept, _cycles) =
            filter_for_target(&mut m, ta, &cands.addresses()[1..], &cfg, deadline).expect("filtering works");
        assert!(!kept.is_empty());
        let ta_l2 = m.oracle_attacker_l2_set(ta);
        for &c in &kept {
            assert_eq!(m.oracle_attacker_l2_set(c), ta_l2, "kept candidate in wrong L2 set");
        }
    }

    #[test]
    fn filtering_keeps_llc_congruent_candidates() {
        // The point of the filter: it must never discard addresses congruent
        // with the target in the LLC/SF.
        let mut m = quiet_machine(52);
        let mut rng = SmallRng::seed_from_u64(52);
        let cands = CandidateSet::allocate(&mut m, 0x80, 256, &mut rng);
        let ta = cands.addresses()[0];
        let cfg = EvsetConfig::default();
        let deadline = m.now() + cfg.time_budget_cycles;
        let (kept, _) =
            filter_for_target(&mut m, ta, &cands.addresses()[1..], &cfg, deadline).expect("filtering works");
        let loc = m.oracle_attacker_location(ta);
        let truly_congruent: Vec<_> = cands.addresses()[1..]
            .iter()
            .filter(|&&c| m.oracle_attacker_location(c) == loc)
            .collect();
        let lost = truly_congruent.iter().filter(|&&&c| !kept.contains(&c)).count();
        // A small number may be lost to unlucky jitter; the bulk must survive.
        assert!(
            lost * 10 <= truly_congruent.len(),
            "filter lost {lost} of {} congruent candidates",
            truly_congruent.len()
        );
    }

    #[test]
    fn partition_covers_every_l2_set() {
        let mut m = quiet_machine(53);
        let mut rng = SmallRng::seed_from_u64(53);
        let cands = CandidateSet::allocate(&mut m, 0x0, 384, &mut rng);
        let cfg = EvsetConfig::default();
        let deadline = m.now() + 10 * cfg.time_budget_cycles;
        let filtered = partition_by_l2(&mut m, &cands, &cfg, deadline).expect("partition works");
        // The tiny machine has U_L2 = 1, so everything lands in one group.
        assert_eq!(filtered.groups.len(), m.spec().l2.uncertainty());
        assert!(filtered.total_candidates() > 0);
        // Each group's members must share the representative's L2 set.
        for g in &filtered.groups {
            let set = m.oracle_attacker_l2_set(g.representative);
            for &c in &g.candidates {
                assert_eq!(m.oracle_attacker_l2_set(c), set);
            }
        }
    }

    #[test]
    fn shifted_groups_preserve_l2_congruence() {
        let mut m = quiet_machine(54);
        let mut rng = SmallRng::seed_from_u64(54);
        let cands = CandidateSet::allocate(&mut m, 0x0, 256, &mut rng);
        let cfg = EvsetConfig::default();
        let deadline = m.now() + 10 * cfg.time_budget_cycles;
        let filtered = partition_by_l2(&mut m, &cands, &cfg, deadline).expect("partition works");
        let shifted = filtered.shifted(128);
        for (g, s) in filtered.groups.iter().zip(&shifted.groups) {
            assert_eq!(g.candidates.len(), s.candidates.len());
            for (&a, &b) in g.candidates.iter().zip(&s.candidates) {
                assert_eq!(b.raw() - a.raw(), 128);
                // Shifting within the page preserves L2 congruence classes.
                assert_eq!(
                    m.oracle_attacker_l2_set(a) == m.oracle_attacker_l2_set(g.representative),
                    m.oracle_attacker_l2_set(b) == m.oracle_attacker_l2_set(s.representative)
                );
            }
        }
    }
}
