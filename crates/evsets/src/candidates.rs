//! Candidate-set construction (Section 2.2.1, step 1).
//!
//! Because the attacker only controls the page offset of each physical
//! address, a candidate set for a target cache set at page offset `o` is
//! simply a large collection of attacker addresses whose page offset is `o`,
//! drawn from freshly allocated 4 kB pages. The set must be large enough to
//! contain at least `W` addresses congruent with *any* set reachable at that
//! page offset; the paper finds `3·U·W` to be sufficient.

use llc_machine::Machine;
use llc_cache_model::{VirtAddr, LINE_SIZE, PAGE_SIZE};
use rand::seq::SliceRandom;
use rand::Rng;

/// A pool of candidate addresses sharing one page offset.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    page_offset: u64,
    addresses: Vec<VirtAddr>,
}

impl CandidateSet {
    /// Allocates `count` candidate addresses at `page_offset` on `machine`,
    /// one per fresh 4 kB page, shuffled with `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `page_offset` is not cache-line aligned or not within a page.
    pub fn allocate(
        machine: &mut Machine,
        page_offset: u64,
        count: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(page_offset < PAGE_SIZE, "page offset must be below 4096");
        assert_eq!(page_offset % LINE_SIZE, 0, "page offset must be line-aligned");
        let base = machine.alloc_attacker_pages(count);
        let mut addresses: Vec<VirtAddr> = (0..count as u64)
            .map(|i| base.offset(i * PAGE_SIZE + page_offset))
            .collect();
        addresses.shuffle(rng);
        Self { page_offset, addresses }
    }

    /// Builds a candidate set from pre-existing addresses.
    ///
    /// All addresses must share the same page offset.
    ///
    /// # Panics
    ///
    /// Panics if the addresses do not share a page offset or the list is empty.
    pub fn from_addresses(addresses: Vec<VirtAddr>) -> Self {
        assert!(!addresses.is_empty(), "candidate set cannot be empty");
        let page_offset = addresses[0].page_offset();
        assert!(
            addresses.iter().all(|a| a.page_offset() == page_offset),
            "all candidates must share one page offset"
        );
        Self { page_offset, addresses }
    }

    /// The common page offset of every candidate.
    pub fn page_offset(&self) -> u64 {
        self.page_offset
    }

    /// The candidate addresses.
    pub fn addresses(&self) -> &[VirtAddr] {
        &self.addresses
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.addresses.len()
    }

    /// True if no candidates remain.
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }

    /// Removes and returns the first candidate (used to pick target addresses
    /// during bulk construction).
    pub fn pop(&mut self) -> Option<VirtAddr> {
        if self.addresses.is_empty() {
            None
        } else {
            Some(self.addresses.remove(0))
        }
    }

    /// Removes the given addresses from the pool (e.g. after they have been
    /// consumed by a constructed eviction set).
    pub fn remove_all(&mut self, used: &[VirtAddr]) {
        self.addresses.retain(|a| !used.contains(a));
    }

    /// Returns a new candidate set whose addresses are shifted by `delta`
    /// bytes within their page.
    ///
    /// This implements the page-offset-δ trick of Section 5.3.1: if two
    /// addresses are congruent in the L2, adding the same small δ (staying
    /// within the page) keeps them congruent, so one filtered candidate set
    /// per L2 set suffices for all 64 page offsets.
    ///
    /// # Panics
    ///
    /// Panics if the shifted offset leaves the page or breaks line alignment.
    pub fn shifted(&self, delta: i64) -> CandidateSet {
        let new_offset = self.page_offset as i64 + delta;
        assert!(
            (0..PAGE_SIZE as i64).contains(&new_offset),
            "shifted page offset must stay within the page"
        );
        assert_eq!(new_offset % LINE_SIZE as i64, 0, "shift must preserve line alignment");
        let addresses = self
            .addresses
            .iter()
            .map(|a| VirtAddr::new((a.raw() as i64 + delta) as u64))
            .collect();
        CandidateSet { page_offset: new_offset as u64, addresses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_cache_model::CacheSpec;
    use llc_machine::NoiseModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn machine() -> Machine {
        Machine::builder(CacheSpec::tiny_test()).noise(NoiseModel::silent()).seed(1).build()
    }

    #[test]
    fn allocate_produces_unique_candidates_at_offset() {
        let mut m = machine();
        let mut rng = SmallRng::seed_from_u64(2);
        let c = CandidateSet::allocate(&mut m, 0x240, 128, &mut rng);
        assert_eq!(c.len(), 128);
        assert_eq!(c.page_offset(), 0x240);
        let mut seen = std::collections::HashSet::new();
        for a in c.addresses() {
            assert_eq!(a.page_offset(), 0x240);
            assert!(seen.insert(*a), "duplicate candidate address");
        }
    }

    #[test]
    fn shifted_changes_offset_only() {
        let mut m = machine();
        let mut rng = SmallRng::seed_from_u64(3);
        let c = CandidateSet::allocate(&mut m, 0x0, 16, &mut rng);
        let s = c.shifted(128);
        assert_eq!(s.page_offset(), 128);
        assert_eq!(s.len(), c.len());
        for (a, b) in c.addresses().iter().zip(s.addresses()) {
            assert_eq!(b.raw() - a.raw(), 128);
            assert_eq!(a.page_number(), b.page_number(), "shift must stay within the page");
        }
    }

    #[test]
    fn pop_and_remove_all_shrink_pool() {
        let addrs: Vec<_> = (0..4).map(|i| VirtAddr::new(0x1000 * (i + 1) + 0x40)).collect();
        let mut c = CandidateSet::from_addresses(addrs.clone());
        let first = c.pop().expect("non-empty");
        assert_eq!(first, addrs[0]);
        c.remove_all(&[addrs[2]]);
        assert_eq!(c.len(), 2);
        assert!(!c.addresses().contains(&addrs[2]));
    }

    #[test]
    #[should_panic]
    fn mismatched_offsets_panic() {
        let _ = CandidateSet::from_addresses(vec![VirtAddr::new(0x1040), VirtAddr::new(0x2080)]);
    }

    #[test]
    #[should_panic]
    fn unaligned_offset_panics() {
        let mut m = machine();
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = CandidateSet::allocate(&mut m, 0x43, 4, &mut rng);
    }
}
