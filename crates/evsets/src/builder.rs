//! Single eviction-set construction pipeline: (optional) L2-driven candidate
//! filtering, address pruning into an LLC eviction set, and extension to an
//! SF eviction set — with retry and time-budget handling matching the paper's
//! experimental setup (Section 4.2: at most 10 attempts, per-set time budget).

use crate::algorithms::PruningAlgorithm;
use crate::candidates::CandidateSet;
use crate::config::{EvsetConfig, TargetCache};
use crate::error::EvsetError;
use crate::evset::EvictionSet;
use crate::filter::filter_for_target;
use crate::test_eviction::parallel_test_eviction;
use llc_machine::Machine;
use llc_cache_model::VirtAddr;
use rand::Rng;

/// Outcome of a single eviction-set construction (one target address).
#[derive(Debug, Clone)]
pub struct ConstructionResult {
    /// The constructed eviction set, if any attempt succeeded.
    pub eviction_set: Option<EvictionSet>,
    /// Number of attempts made (1..=max_attempts).
    pub attempts: u32,
    /// Total cycles spent, including filtering and all attempts.
    pub total_cycles: u64,
    /// Cycles spent in candidate filtering (0 when filtering is disabled).
    pub filter_cycles: u64,
    /// Cycles spent pruning (and extending to the SF).
    pub prune_cycles: u64,
    /// Backtracks across all attempts.
    pub backtracks: u32,
    /// `TestEviction` invocations across all attempts.
    pub test_evictions: u32,
    /// The error of the last attempt when construction failed.
    pub last_error: Option<EvsetError>,
}

impl ConstructionResult {
    /// True if an eviction set was produced.
    pub fn is_success(&self) -> bool {
        self.eviction_set.is_some()
    }
}

/// Builder that configures how eviction sets are constructed.
#[derive(Debug)]
pub struct EvsetBuilder<'a> {
    algorithm: &'a dyn PruningAlgorithm,
    config: EvsetConfig,
    target: TargetCache,
    filtering: bool,
}

impl<'a> EvsetBuilder<'a> {
    /// Creates a builder using `algorithm` to construct SF eviction sets with
    /// candidate filtering enabled (the paper's recommended configuration).
    pub fn new(algorithm: &'a dyn PruningAlgorithm) -> Self {
        Self { algorithm, config: EvsetConfig::filtered(), target: TargetCache::Sf, filtering: true }
    }

    /// Overrides the construction configuration.
    pub fn config(mut self, config: EvsetConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the target structure (default: the snoop filter).
    pub fn target(mut self, target: TargetCache) -> Self {
        self.target = target;
        self
    }

    /// Enables or disables L2-driven candidate filtering.
    pub fn filtering(mut self, enabled: bool) -> Self {
        self.filtering = enabled;
        self
    }

    /// The active configuration.
    pub fn config_ref(&self) -> &EvsetConfig {
        &self.config
    }

    /// The pruning algorithm's name.
    pub fn algorithm_name(&self) -> &'static str {
        self.algorithm.name()
    }

    /// Constructs one eviction set for the cache set that `ta` maps to, using
    /// `candidates` (all at `ta`'s page offset).
    pub fn build_for_target(
        &self,
        machine: &mut Machine,
        ta: VirtAddr,
        candidates: &[VirtAddr],
    ) -> ConstructionResult {
        let start = machine.now();
        let deadline = start + self.config.time_budget_cycles;
        let mut result = ConstructionResult {
            eviction_set: None,
            attempts: 0,
            total_cycles: 0,
            filter_cycles: 0,
            prune_cycles: 0,
            backtracks: 0,
            test_evictions: 0,
            last_error: None,
        };

        // Optional candidate filtering (done once; reused by every attempt).
        let pool: Vec<VirtAddr> = if self.filtering {
            match filter_for_target(machine, ta, candidates, &self.config, deadline) {
                Ok((kept, cycles)) => {
                    result.filter_cycles = cycles;
                    kept
                }
                Err(e) => {
                    result.last_error = Some(e);
                    result.total_cycles = machine.now() - start;
                    result.attempts = 1;
                    return result;
                }
            }
        } else {
            candidates.to_vec()
        };

        let prune_start = machine.now();
        while result.attempts < self.config.max_attempts && machine.now() <= deadline {
            result.attempts += 1;
            match self.build_once(machine, ta, &pool, deadline) {
                Ok((set, backtracks, tests)) => {
                    result.backtracks += backtracks;
                    result.test_evictions += tests;
                    result.eviction_set = Some(set);
                    break;
                }
                Err(e) => {
                    let fatal = matches!(e, EvsetError::Timeout { .. });
                    result.last_error = Some(e);
                    if fatal {
                        break;
                    }
                }
            }
        }
        result.prune_cycles = machine.now() - prune_start;
        result.total_cycles = machine.now() - start;
        result
    }

    /// One construction attempt: prune to the LLC level and, when the target
    /// is the SF, extend the LLC set with one extra congruent address.
    fn build_once(
        &self,
        machine: &mut Machine,
        ta: VirtAddr,
        pool: &[VirtAddr],
        deadline: u64,
    ) -> Result<(EvictionSet, u32, u32), EvsetError> {
        match self.target {
            TargetCache::L2 | TargetCache::Llc => {
                let out = self.algorithm.prune(machine, ta, pool, self.target, &self.config, deadline)?;
                Ok((out.eviction_set, out.backtracks, out.test_evictions))
            }
            TargetCache::Sf => {
                let out =
                    self.algorithm.prune(machine, ta, pool, TargetCache::Llc, &self.config, deadline)?;
                let mut tests = out.test_evictions;
                let sf_set =
                    extend_to_sf(machine, ta, &out.eviction_set, pool, deadline, &mut tests)?;
                Ok((sf_set, out.backtracks, tests))
            }
        }
    }

    /// Convenience entry point for the `SingleSet` scenario: allocates a fresh
    /// candidate set at a random page offset, picks a random target address
    /// from it and constructs an eviction set for that address.
    pub fn build_random_set(&self, machine: &mut Machine, rng: &mut impl Rng) -> ConstructionResult {
        let page_offset = (rng.gen_range(0..llc_cache_model::LINES_PER_PAGE)) * llc_cache_model::LINE_SIZE;
        let count = self.config.candidate_count(machine.spec(), self.target);
        let candidates = CandidateSet::allocate(machine, page_offset, count, rng);
        let ta = candidates.addresses()[0];
        self.build_for_target(machine, ta, &candidates.addresses()[1..])
    }
}

/// Extends a minimal LLC eviction set into an SF eviction set by locating one
/// additional congruent address among `pool` (Section 4.2).
pub fn extend_to_sf(
    machine: &mut Machine,
    ta: VirtAddr,
    llc_set: &EvictionSet,
    pool: &[VirtAddr],
    deadline: u64,
    tests: &mut u32,
) -> Result<EvictionSet, EvsetError> {
    let sf_ways = machine.spec().sf.ways();
    let llc_ways = machine.spec().llc.ways();
    debug_assert!(sf_ways >= llc_ways);
    if llc_set.len() >= sf_ways {
        return Ok(EvictionSet::new(llc_set.addresses()[..sf_ways].to_vec(), TargetCache::Sf));
    }
    let mut trial: Vec<VirtAddr> = llc_set.addresses().to_vec();
    for &c in pool.iter().filter(|&&c| !llc_set.contains(c) && c != ta) {
        if machine.now() > deadline {
            return Err(EvsetError::Timeout { spent_cycles: machine.now() - deadline });
        }
        trial.push(c);
        *tests += 2;
        let hit = parallel_test_eviction(machine, ta, &trial, TargetCache::Sf)
            && parallel_test_eviction(machine, ta, &trial, TargetCache::Sf);
        if hit && trial.len() == sf_ways {
            return Ok(EvictionSet::new(trial, TargetCache::Sf));
        }
        if hit {
            // Keep the congruent address and continue until we reach SF ways.
            continue;
        }
        trial.pop();
    }
    Err(EvsetError::InsufficientCandidates { found: trial.len(), required: sf_ways })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{BinarySearch, GroupTesting};
    use crate::test_eviction::oracle;
    use llc_cache_model::CacheSpec;
    use llc_machine::NoiseModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn quiet_machine(seed: u64) -> Machine {
        Machine::builder(CacheSpec::tiny_test()).noise(NoiseModel::silent()).seed(seed).build()
    }

    #[test]
    fn builds_sf_eviction_set_with_filtering() {
        let mut m = quiet_machine(61);
        let mut rng = SmallRng::seed_from_u64(61);
        let algo = BinarySearch::new();
        let builder = EvsetBuilder::new(&algo);
        let result = builder.build_random_set(&mut m, &mut rng);
        assert!(result.is_success(), "construction failed: {:?}", result.last_error);
        let set = result.eviction_set.expect("checked");
        assert_eq!(set.len(), m.spec().sf.ways());
        assert_eq!(set.target(), TargetCache::Sf);
        assert!(result.filter_cycles > 0);
        assert!(result.total_cycles >= result.filter_cycles);
    }

    #[test]
    fn builds_llc_eviction_set_without_filtering() {
        let mut m = quiet_machine(62);
        let mut rng = SmallRng::seed_from_u64(62);
        let algo = GroupTesting::optimized();
        let builder = EvsetBuilder::new(&algo)
            .target(TargetCache::Llc)
            .filtering(false)
            .config(EvsetConfig::unfiltered());
        let result = builder.build_random_set(&mut m, &mut rng);
        assert!(result.is_success(), "construction failed: {:?}", result.last_error);
        let set = result.eviction_set.expect("checked");
        assert_eq!(set.len(), m.spec().llc.ways());
        assert_eq!(result.filter_cycles, 0);
    }

    #[test]
    fn constructed_sf_set_is_truly_congruent() {
        let mut m = quiet_machine(63);
        let mut rng = SmallRng::seed_from_u64(63);
        let count = EvsetConfig::filtered().candidate_count(m.spec(), TargetCache::Sf);
        let cands = CandidateSet::allocate(&mut m, 0x40, count, &mut rng);
        let ta = cands.addresses()[0];
        let algo = BinarySearch::new();
        let builder = EvsetBuilder::new(&algo);
        let result = builder.build_for_target(&mut m, ta, &cands.addresses()[1..]);
        let set = result.eviction_set.expect("construction should succeed");
        assert!(oracle::is_true_eviction_set(&m, ta, set.addresses(), m.spec().sf.ways()));
    }

    #[test]
    fn failure_reports_attempts_and_error() {
        let mut m = quiet_machine(64);
        let mut rng = SmallRng::seed_from_u64(64);
        // Fewer candidates than the SF's associativity: construction cannot
        // possibly find W congruent addresses, for any page coloring.
        let cands = CandidateSet::allocate(&mut m, 0x40, 5, &mut rng);
        let ta = cands.addresses()[0];
        let algo = BinarySearch::new();
        let builder = EvsetBuilder::new(&algo).filtering(false);
        let result = builder.build_for_target(&mut m, ta, &cands.addresses()[1..]);
        assert!(!result.is_success());
        assert!(result.attempts >= 1);
        assert!(result.last_error.is_some());
    }
}
