//! Bulk eviction-set construction (Sections 2.2.3 and 5.3): build eviction
//! sets for *all* SF sets at one page offset (`PageOffset`) or in the whole
//! system (`WholeSys`), reusing filtered candidates across sets and across
//! page offsets.

use crate::algorithms::PruningAlgorithm;
use crate::builder::extend_to_sf;
use crate::candidates::CandidateSet;
use crate::config::{EvsetConfig, TargetCache};
use crate::error::EvsetError;
use crate::evset::EvictionSet;
use crate::filter::{partition_by_l2, FilteredCandidates};
use crate::test_eviction::parallel_test_eviction;
use llc_machine::Machine;
use llc_cache_model::{VirtAddr, LINES_PER_PAGE, LINE_SIZE};
use rand::Rng;

/// Which of the paper's attack scenarios is being run (Section 2.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// A single eviction set for one randomly chosen SF set.
    SingleSet,
    /// Eviction sets for every SF set reachable at one page offset.
    PageOffset,
    /// Eviction sets for every SF set in the system.
    WholeSys,
}

impl Scope {
    /// Number of eviction sets this scope requires on `spec`.
    pub fn required_sets(self, spec: &llc_cache_model::CacheSpec) -> usize {
        match self {
            Scope::SingleSet => 1,
            Scope::PageOffset => spec.sf.sets_per_page_offset(),
            Scope::WholeSys => spec.sf.whole_system_sets(),
        }
    }
}

impl std::fmt::Display for Scope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scope::SingleSet => write!(f, "SingleSet"),
            Scope::PageOffset => write!(f, "PageOffset"),
            Scope::WholeSys => write!(f, "WholeSys"),
        }
    }
}

/// Configuration of a bulk construction run.
#[derive(Debug, Clone)]
pub struct BulkConfig {
    /// Per-set construction configuration.
    pub evset: EvsetConfig,
    /// Whether L2-driven candidate filtering is used.
    pub filtering: bool,
    /// Page offset used for `PageOffset` (and as the base offset of
    /// `WholeSys`); must be line-aligned.
    pub page_offset: u64,
    /// Optional cap on the number of eviction sets to construct. Experiment
    /// harnesses use this to sample a subset and extrapolate, exactly like
    /// the paper's `n_sets * t_avg / SR` estimate.
    pub max_sets: Option<usize>,
}

impl Default for BulkConfig {
    fn default() -> Self {
        Self { evset: EvsetConfig::filtered(), filtering: true, page_offset: 0, max_sets: None }
    }
}

/// Result of a bulk construction run.
#[derive(Debug, Clone)]
pub struct BulkOutcome {
    /// The eviction sets that were constructed, keyed by their target address.
    pub eviction_sets: Vec<(VirtAddr, EvictionSet)>,
    /// Number of target addresses for which construction was attempted.
    pub attempted: usize,
    /// Number of successful constructions.
    pub successes: usize,
    /// Total cycles, including candidate allocation and filtering.
    pub total_cycles: u64,
    /// Cycles spent on candidate filtering.
    pub filter_cycles: u64,
    /// Cycles of each per-set construction (successful or not).
    pub per_set_cycles: Vec<u64>,
}

impl BulkOutcome {
    /// Success rate over attempted sets (0.0 when nothing was attempted).
    pub fn success_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.successes as f64 / self.attempted as f64
        }
    }

    /// Mean per-set construction time in cycles.
    pub fn mean_set_cycles(&self) -> f64 {
        if self.per_set_cycles.is_empty() {
            0.0
        } else {
            self.per_set_cycles.iter().sum::<u64>() as f64 / self.per_set_cycles.len() as f64
        }
    }
}

/// Builds eviction sets in bulk.
#[derive(Debug)]
pub struct BulkBuilder<'a> {
    algorithm: &'a dyn PruningAlgorithm,
    config: BulkConfig,
}

impl<'a> BulkBuilder<'a> {
    /// Creates a bulk builder for `algorithm` with the given configuration.
    pub fn new(algorithm: &'a dyn PruningAlgorithm, config: BulkConfig) -> Self {
        Self { algorithm, config }
    }

    /// The bulk configuration.
    pub fn config(&self) -> &BulkConfig {
        &self.config
    }

    /// Runs the bulk construction for `scope` on `machine`.
    ///
    /// # Errors
    ///
    /// Returns an error only if the initial candidate filtering cannot build
    /// a single L2 eviction set; per-set failures are recorded in the
    /// [`BulkOutcome`] instead.
    pub fn run(
        &self,
        machine: &mut Machine,
        scope: Scope,
        rng: &mut impl Rng,
    ) -> Result<BulkOutcome, EvsetError> {
        let start = machine.now();
        let spec = machine.spec().clone();
        let count = self.config.evset.candidate_count(&spec, TargetCache::Sf);
        let base_candidates =
            CandidateSet::allocate(machine, self.config.page_offset, count, rng);

        let mut outcome = BulkOutcome {
            eviction_sets: Vec::new(),
            attempted: 0,
            successes: 0,
            total_cycles: 0,
            filter_cycles: 0,
            per_set_cycles: Vec::new(),
        };

        let budget = self.config.max_sets.unwrap_or(scope.required_sets(&spec));

        // Candidate filtering is done once and reused for every set (and, via
        // the δ shift, for every page offset in WholeSys).
        let filtered: Option<FilteredCandidates> = if self.config.filtering {
            let deadline = machine.now() + self.config.evset.time_budget_cycles * 16;
            let f = partition_by_l2(machine, &base_candidates, &self.config.evset, deadline)?;
            outcome.filter_cycles = f.elapsed_cycles;
            Some(f)
        } else {
            None
        };

        match scope {
            Scope::SingleSet | Scope::PageOffset => {
                self.run_offset(machine, &base_candidates, filtered.as_ref(), budget, &mut outcome);
            }
            Scope::WholeSys => {
                let mut remaining = budget;
                for line_idx in 0..LINES_PER_PAGE {
                    if remaining == 0 {
                        break;
                    }
                    let offset = line_idx * LINE_SIZE;
                    let delta = offset as i64 - self.config.page_offset as i64;
                    let shifted_candidates;
                    let shifted_filtered;
                    let (cands, filt): (&CandidateSet, Option<&FilteredCandidates>) = if delta == 0 {
                        (&base_candidates, filtered.as_ref())
                    } else {
                        shifted_candidates = base_candidates.shifted(delta);
                        shifted_filtered = filtered.as_ref().map(|f| f.shifted(delta));
                        (&shifted_candidates, shifted_filtered.as_ref())
                    };
                    let before = outcome.attempted;
                    self.run_offset(machine, cands, filt, remaining, &mut outcome);
                    remaining = remaining.saturating_sub(outcome.attempted - before);
                }
            }
        }

        outcome.total_cycles = machine.now() - start;
        Ok(outcome)
    }

    /// Constructs eviction sets for the SF sets reachable at one page offset.
    fn run_offset(
        &self,
        machine: &mut Machine,
        candidates: &CandidateSet,
        filtered: Option<&FilteredCandidates>,
        budget: usize,
        outcome: &mut BulkOutcome,
    ) {
        let spec = machine.spec().clone();
        let sf_ways = spec.sf.ways();
        // Expected number of distinct SF sets reachable per L2 group.
        let sets_per_group = (spec.sf.uncertainty() / spec.l2.uncertainty()).max(1);

        let groups: Vec<Vec<VirtAddr>> = match filtered {
            Some(f) => f.groups.iter().map(|g| g.candidates.clone()).collect(),
            None => vec![candidates.addresses().to_vec()],
        };

        let mut built_this_offset = 0usize;
        for group in groups {
            if built_this_offset >= budget {
                break;
            }
            let mut pool = group;
            let mut built_sets: Vec<EvictionSet> = Vec::new();
            let group_target = if filtered.is_some() { sets_per_group } else { budget };

            while built_sets.len() < group_target
                && built_this_offset < budget
                && pool.len() > sf_ways
            {
                // Pick the next target address that is not already covered by
                // a constructed eviction set (Section 2.2.3, step 4).
                let ta = pool.remove(0);
                let covered = built_sets
                    .iter()
                    .any(|s| parallel_test_eviction(machine, ta, s.addresses(), TargetCache::Sf));
                if covered {
                    continue;
                }

                outcome.attempted += 1;
                built_this_offset += 1;
                let set_start = machine.now();
                let deadline = set_start + self.config.evset.time_budget_cycles;
                let result = self.build_one(machine, ta, &pool, deadline);
                outcome.per_set_cycles.push(machine.now() - set_start);
                match result {
                    Ok(set) => {
                        pool.retain(|a| !set.contains(*a));
                        built_sets.push(set.clone());
                        outcome.successes += 1;
                        outcome.eviction_sets.push((ta, set));
                    }
                    Err(_) => {
                        // Per-set failure: move on to the next target address.
                    }
                }
            }
        }
    }

    fn build_one(
        &self,
        machine: &mut Machine,
        ta: VirtAddr,
        pool: &[VirtAddr],
        deadline: u64,
    ) -> Result<EvictionSet, EvsetError> {
        let mut attempts = 0;
        loop {
            attempts += 1;
            let llc = self.algorithm.prune(
                machine,
                ta,
                pool,
                TargetCache::Llc,
                &self.config.evset,
                deadline,
            );
            let result = llc.and_then(|out| {
                let mut tests = out.test_evictions;
                extend_to_sf(machine, ta, &out.eviction_set, pool, deadline, &mut tests)
            });
            match result {
                Ok(set) => return Ok(set),
                Err(e) => {
                    let fatal = matches!(e, EvsetError::Timeout { .. });
                    if fatal || attempts >= self.config.evset.max_attempts {
                        return Err(e);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::BinarySearch;
    use crate::test_eviction::oracle;
    use llc_cache_model::CacheSpec;
    use llc_machine::{Machine, NoiseModel};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn quiet_machine(seed: u64) -> Machine {
        Machine::builder(CacheSpec::tiny_test()).noise(NoiseModel::silent()).seed(seed).build()
    }

    #[test]
    fn page_offset_scope_covers_multiple_sets() {
        let mut m = quiet_machine(71);
        let mut rng = SmallRng::seed_from_u64(71);
        let algo = BinarySearch::new();
        // Use a generous candidate pool so that every reachable set has
        // enough congruent addresses on the tiny machine.
        let mut cfg = BulkConfig::default();
        cfg.evset.candidate_scale = 6;
        let builder = BulkBuilder::new(&algo, cfg);
        let out = builder.run(&mut m, Scope::PageOffset, &mut rng).expect("bulk run succeeds");
        assert!(out.successes >= 1, "at least one set should be built");
        // Every constructed set must be a true eviction set for its target.
        let mut locations = HashSet::new();
        for (ta, set) in &out.eviction_sets {
            assert!(oracle::is_true_eviction_set(&m, *ta, set.addresses(), m.spec().sf.ways()));
            locations.insert(m.oracle_attacker_location(*ta));
        }
        assert_eq!(locations.len(), out.eviction_sets.len(), "sets must cover distinct SF sets");
        assert!(out.success_rate() > 0.5);
    }

    #[test]
    fn single_set_scope_builds_exactly_one() {
        let mut m = quiet_machine(72);
        let mut rng = SmallRng::seed_from_u64(72);
        let algo = BinarySearch::new();
        let builder = BulkBuilder::new(&algo, BulkConfig::default());
        let out = builder.run(&mut m, Scope::SingleSet, &mut rng).expect("bulk run succeeds");
        assert_eq!(out.attempted.min(1), 1);
        assert!(out.successes <= out.attempted);
    }

    #[test]
    fn max_sets_caps_the_run() {
        let mut m = quiet_machine(73);
        let mut rng = SmallRng::seed_from_u64(73);
        let algo = BinarySearch::new();
        let cfg = BulkConfig { max_sets: Some(1), ..BulkConfig::default() };
        let builder = BulkBuilder::new(&algo, cfg);
        let out = builder.run(&mut m, Scope::WholeSys, &mut rng).expect("bulk run succeeds");
        assert!(out.attempted <= 1);
    }

    #[test]
    fn scope_required_sets_match_paper() {
        let spec = CacheSpec::skylake_sp_cloud();
        assert_eq!(Scope::SingleSet.required_sets(&spec), 1);
        assert_eq!(Scope::PageOffset.required_sets(&spec), 896);
        assert_eq!(Scope::WholeSys.required_sets(&spec), 57_344);
        assert_eq!(Scope::PageOffset.to_string(), "PageOffset");
    }
}
