//! The [`EvictionSet`] type: the product of address pruning.

use crate::config::TargetCache;
use llc_cache_model::VirtAddr;

/// A minimal eviction set: `W` attacker virtual addresses that are congruent
/// with a target cache set and therefore, once accessed, evict any line
/// mapped to that set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictionSet {
    addresses: Vec<VirtAddr>,
    target: TargetCache,
}

impl EvictionSet {
    /// Creates an eviction set for `target` from its member addresses.
    ///
    /// # Panics
    ///
    /// Panics if `addresses` is empty.
    pub fn new(addresses: Vec<VirtAddr>, target: TargetCache) -> Self {
        assert!(!addresses.is_empty(), "an eviction set cannot be empty");
        Self { addresses, target }
    }

    /// The member addresses.
    pub fn addresses(&self) -> &[VirtAddr] {
        &self.addresses
    }

    /// Which structure this set targets.
    pub fn target(&self) -> TargetCache {
        self.target
    }

    /// Number of member addresses.
    pub fn len(&self) -> usize {
        self.addresses.len()
    }

    /// True if the set has no members (never true for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }

    /// Returns true if `va` is a member of this set.
    pub fn contains(&self, va: VirtAddr) -> bool {
        self.addresses.contains(&va)
    }

    /// Extends an LLC eviction set with one more congruent address, turning
    /// it into an SF eviction set (Section 4.2: an SF eviction set is an LLC
    /// eviction set plus one additional congruent address, because the SF has
    /// one more way than an LLC slice).
    pub fn extended_to_sf(&self, extra: VirtAddr) -> EvictionSet {
        let mut addresses = self.addresses.clone();
        addresses.push(extra);
        EvictionSet { addresses, target: TargetCache::Sf }
    }

    /// Iterates over the member addresses.
    pub fn iter(&self) -> impl Iterator<Item = &VirtAddr> {
        self.addresses.iter()
    }
}

impl<'a> IntoIterator for &'a EvictionSet {
    type Item = &'a VirtAddr;
    type IntoIter = std::slice::Iter<'a, VirtAddr>;

    fn into_iter(self) -> Self::IntoIter {
        self.addresses.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let addrs = vec![VirtAddr::new(0x1000), VirtAddr::new(0x2000)];
        let s = EvictionSet::new(addrs.clone(), TargetCache::Llc);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(s.contains(VirtAddr::new(0x1000)));
        assert!(!s.contains(VirtAddr::new(0x3000)));
        assert_eq!(s.addresses(), addrs.as_slice());
        assert_eq!(s.target(), TargetCache::Llc);
    }

    #[test]
    fn extend_to_sf_appends_and_retargets() {
        let s = EvictionSet::new(vec![VirtAddr::new(0x1000)], TargetCache::Llc);
        let sf = s.extended_to_sf(VirtAddr::new(0x9000));
        assert_eq!(sf.len(), 2);
        assert_eq!(sf.target(), TargetCache::Sf);
        assert!(sf.contains(VirtAddr::new(0x9000)));
    }

    #[test]
    fn iteration_yields_all_members() {
        let addrs: Vec<_> = (0..5).map(|i| VirtAddr::new(i * 0x1000)).collect();
        let s = EvictionSet::new(addrs.clone(), TargetCache::Sf);
        let collected: Vec<_> = s.iter().copied().collect();
        assert_eq!(collected, addrs);
        let by_ref: Vec<_> = (&s).into_iter().copied().collect();
        assert_eq!(by_ref, addrs);
    }

    #[test]
    #[should_panic]
    fn empty_set_panics() {
        let _ = EvictionSet::new(vec![], TargetCache::Llc);
    }
}
