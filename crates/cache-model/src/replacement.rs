//! Cache replacement policies, enum-dispatched over flat metadata words.
//!
//! The paper's Parallel Probing technique is motivated precisely by the fact
//! that the target cache's replacement policy "can be unknown or quite
//! complex" (Section 6.1). The model therefore supports several policies so
//! that the attack algorithms can be evaluated for replacement-policy
//! sensitivity (see the ablation benches in DESIGN.md): true LRU, Tree-PLRU
//! (as used by Intel L1/L2), QLRU (the quad-age family Intel LLCs use),
//! 2-bit SRRIP (a common LLC policy) and a seeded pseudo-random policy.
//!
//! ## Data layout
//!
//! Policies are **not** trait objects. [`ReplacementKind`] is a `Copy` enum
//! whose methods operate on a per-set `&mut [u64]` metadata slice of length
//! `ways`, carved out of one contiguous arena owned by the cache structure
//! (see `set.rs`). This removes one heap allocation and one virtual call per
//! set from the access path, and turns snapshot restores into a single
//! `copy_from_slice` of the arena:
//!
//! | Policy | Per-way word `meta[w]` | Extra state |
//! |---|---|---|
//! | `Lru` | recency age: 0 = MRU, `ways-1` = LRU (a permutation) | — |
//! | `TreePlru` | tree bits packed into `meta[0]`, bit *i* = node *i* | — |
//! | `Qlru` | 2-bit age: 0 = just reused … 3 = replace next | — |
//! | `Srrip` | 2-bit RRPV: 0 = near re-reference … 3 = victim | — |
//! | `Random` | unused | one `SmallRng` per set (arena-owned) |
//!
//! All semantics are bit-identical to the former boxed `ReplacementState`
//! implementations (the golden experiment outputs depend on this); the
//! equivalence proptest suite in `tests/replacement_equivalence.rs` drives
//! random operation streams against naive oracle models to prove it.

use rand::rngs::SmallRng;
use rand::Rng;

/// Which replacement policy a cache structure uses.
///
/// The enum itself is the policy engine: its methods implement `touch`,
/// `victim`, `demote` and `reset_way` directly over a per-set metadata slice,
/// dispatching with a `match` that the compiler can inline and hoist, instead
/// of a virtual call through a per-set `Box<dyn ...>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementKind {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Binary-tree pseudo-LRU.
    TreePlru,
    /// Quad-age LRU (the QLRU family used by Intel LLCs): hits promote to
    /// age 0, fills insert at age 1, the victim is the lowest way at age 3
    /// after a one-shot renormalisation that ages every line just enough for
    /// one to reach 3.
    Qlru,
    /// Static re-reference interval prediction with 2-bit counters.
    Srrip,
    /// Uniformly random victim selection (seeded, reproducible).
    Random,
}

/// Maximum age / RRPV value of the 2-bit policies (`Qlru`, `Srrip`).
const MAX_AGE: u64 = 3;

/// Associativity up to which LRU packs its age permutation into `meta[0]`
/// (4 bits per way). Every modelled structure is at most 16-way; wider sets
/// fall back to the one-age-per-word representation.
const LRU_PACKED_MAX_WAYS: usize = 16;

/// Bitmask covering the low `ways` nibbles of a packed LRU word.
#[inline]
fn packed_lane_bits(ways: usize) -> u64 {
    if ways >= 16 {
        u64::MAX
    } else {
        (1u64 << (4 * ways)) - 1
    }
}

/// Reads way `way`'s age nibble from a packed LRU word.
#[inline]
fn packed_age(word: u64, way: usize) -> u64 {
    (word >> (4 * way)) & 0xF
}

/// SWAR nibble comparison: returns a mask with bit `4w` set for every
/// nibble lane `w` of `x` that is strictly less than `val` (`val` ≤ 16).
///
/// Nibble lanes have no headroom for borrow-free subtraction, so the lanes
/// are split into even/odd halves spread over 8-bit fields (the usual
/// widening trick): `(field | 0x80) - val` then cannot borrow across fields,
/// and bit 7 of the result reads "field ≥ val".
#[inline]
fn nibble_lt_mask(x: u64, val: u64) -> u64 {
    const BYTE_LO: u64 = 0x0F0F_0F0F_0F0F_0F0F;
    const BYTE_MSB: u64 = 0x8080_8080_8080_8080;
    const BYTE_LSB: u64 = 0x0101_0101_0101_0101;
    debug_assert!(val <= 16);
    let sub = val.wrapping_mul(BYTE_LSB);
    let even = x & BYTE_LO;
    let odd = (x >> 4) & BYTE_LO;
    let lt_even = !((even | BYTE_MSB).wrapping_sub(sub)) & BYTE_MSB;
    let lt_odd = !((odd | BYTE_MSB).wrapping_sub(sub)) & BYTE_MSB;
    // Byte MSBs (bit 8k+7) back to nibble-lane LSB positions (bit 4w).
    (lt_even >> 7) | ((lt_odd >> 7) << 4)
}

impl ReplacementKind {
    /// Parses a CLI/env spelling (`lru`, `tree-plru`, `qlru`, `srrip`,
    /// `random`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "lru" => Some(Self::Lru),
            "tree-plru" | "treeplru" | "plru" => Some(Self::TreePlru),
            "qlru" => Some(Self::Qlru),
            "srrip" => Some(Self::Srrip),
            "random" | "rand" => Some(Self::Random),
            _ => None,
        }
    }

    /// Canonical spelling, accepted by [`Self::parse`].
    pub fn label(self) -> &'static str {
        match self {
            Self::Lru => "lru",
            Self::TreePlru => "tree-plru",
            Self::Qlru => "qlru",
            Self::Srrip => "srrip",
            Self::Random => "random",
        }
    }

    /// Whether this policy draws from a per-set RNG stream ([`Self::Random`]).
    ///
    /// Cache structures only allocate their per-set `SmallRng` arena when
    /// this returns true.
    pub fn uses_rng(self) -> bool {
        matches!(self, ReplacementKind::Random)
    }

    /// Initialises the metadata words of an empty set.
    ///
    /// `meta.len()` is the associativity. Panics if a policy cannot represent
    /// that many ways in its packed encoding (Tree-PLRU packs its tree into
    /// `meta[0]` and therefore supports up to 64 ways, far beyond any real
    /// associativity).
    pub fn init_meta(self, meta: &mut [u64]) {
        let ways = meta.len();
        assert!(ways <= 64, "replacement metadata encodings support at most 64 ways");
        match self {
            ReplacementKind::Lru => {
                if ways <= LRU_PACKED_MAX_WAYS {
                    // Nibble-packed: lane w = age of way w; unused lanes are
                    // pinned at 0xF, which is ≥ any reachable age, so the
                    // SWAR compare-increment never drifts them.
                    let mut word = 0u64;
                    for w in 0..16 {
                        let v = if w < ways { w as u64 } else { 0xF };
                        word |= v << (4 * w);
                    }
                    meta.fill(0);
                    meta[0] = word;
                } else {
                    for (w, m) in meta.iter_mut().enumerate() {
                        *m = w as u64;
                    }
                }
            }
            ReplacementKind::TreePlru => meta.fill(0),
            ReplacementKind::Qlru | ReplacementKind::Srrip => meta.fill(MAX_AGE),
            ReplacementKind::Random => meta.fill(0),
        }
    }

    /// Records an access to `way`. `is_fill` is true when a new line was just
    /// installed in that way (QLRU and SRRIP assign different re-reference
    /// predictions to fills and hits).
    #[inline]
    pub fn touch(self, meta: &mut [u64], way: usize, is_fill: bool) {
        match self {
            ReplacementKind::Lru => {
                // Move `way` to MRU: every way that was more recent slides
                // one step older. Equivalent to the classic remove/push-front
                // on an explicit recency list.
                let ways = meta.len();
                if ways <= LRU_PACKED_MAX_WAYS {
                    let x = meta[0];
                    let old = packed_age(x, way);
                    if old == 0 {
                        return;
                    }
                    // Per-lane `if age < old { age += 1 }`: incremented
                    // lanes are < old ≤ 15, so the add cannot carry across
                    // lanes; the touched way itself (== old) is untouched by
                    // the increment and then cleared to MRU.
                    let inc = nibble_lt_mask(x, old) & packed_lane_bits(ways);
                    meta[0] = (x + inc) & !(0xF << (4 * way));
                } else {
                    let old = meta[way];
                    for m in meta.iter_mut() {
                        if *m < old {
                            *m += 1;
                        }
                    }
                    meta[way] = 0;
                }
            }
            ReplacementKind::TreePlru => {
                let ways = meta.len();
                if way < ways {
                    meta[0] = tree_walk(meta[0], ways, way, TreeAim::AwayFrom);
                }
            }
            ReplacementKind::Qlru => {
                meta[way] = if is_fill { 1 } else { 0 };
            }
            ReplacementKind::Srrip => {
                meta[way] = if is_fill { MAX_AGE - 1 } else { 0 };
            }
            ReplacementKind::Random => {}
        }
    }

    /// Chooses a victim way (all ways are occupied when this is called).
    /// May mutate the metadata (QLRU/SRRIP ageing) or advance the per-set
    /// RNG ([`Self::Random`], which is the only policy reading `rng`).
    #[inline]
    pub fn victim(self, meta: &mut [u64], rng: Option<&mut SmallRng>) -> usize {
        let ways = meta.len();
        match self {
            ReplacementKind::Lru => {
                // The ages form a permutation, so the maximum is unique.
                if ways <= LRU_PACKED_MAX_WAYS {
                    let x = meta[0];
                    let target = (ways - 1) as u64;
                    (0..ways)
                        .find(|&w| packed_age(x, w) == target)
                        .expect("LRU ages form a permutation")
                } else {
                    let mut victim = 0;
                    let mut oldest = meta[0];
                    for (w, &m) in meta.iter().enumerate().skip(1) {
                        if m > oldest {
                            oldest = m;
                            victim = w;
                        }
                    }
                    victim
                }
            }
            ReplacementKind::TreePlru => {
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = ways.next_power_of_two();
                let bits = meta[0];
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let go_left = bits & (1 << node) != 0;
                    node = 2 * node + if go_left { 1 } else { 2 };
                    if go_left {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                // Non-power-of-two associativities build the tree over the
                // next power of two; victims on non-existent ways fall back
                // to way 0.
                if lo >= ways {
                    0
                } else {
                    lo
                }
            }
            ReplacementKind::Qlru => {
                // One-shot renormalisation: age every line by the amount that
                // brings the oldest to MAX_AGE, then take the lowest such way.
                let oldest = meta.iter().copied().max().expect("sets are never 0-way");
                let boost = MAX_AGE - oldest;
                if boost > 0 {
                    for m in meta.iter_mut() {
                        *m += boost;
                    }
                }
                meta.iter().position(|&m| m == MAX_AGE).expect("renormalised to MAX_AGE")
            }
            ReplacementKind::Srrip => loop {
                if let Some(way) = meta.iter().position(|&m| m == MAX_AGE) {
                    return way;
                }
                for m in meta.iter_mut() {
                    *m += 1;
                }
            },
            ReplacementKind::Random => {
                rng.expect("Random replacement requires a per-set RNG").gen_range(0..ways)
            }
        }
    }

    /// Marks `way` as the *next* victim of this set, regardless of how
    /// recently it was accessed.
    ///
    /// This models replacement-state priming as performed by Prime+Scope
    /// [Purnal et al. 2021]: a carefully crafted access pattern that leaves a
    /// chosen line as the eviction candidate (EVC) even though the attacker
    /// keeps touching it.
    #[inline]
    pub fn demote(self, meta: &mut [u64], way: usize) {
        match self {
            ReplacementKind::Lru => {
                // Move `way` to LRU: every way that was older slides one step
                // more recent.
                let ways = meta.len();
                if ways <= LRU_PACKED_MAX_WAYS {
                    let x = meta[0];
                    let old = packed_age(x, way);
                    if old == ways as u64 - 1 {
                        return;
                    }
                    // Per-lane `if age > old { age -= 1 }`, i.e. NOT(< old+1)
                    // within the valid lanes; decremented lanes are ≥ 1 so no
                    // borrow crosses lanes. Unused lanes (pinned at 0xF) are
                    // excluded by the lane mask.
                    let lanes = packed_lane_bits(ways);
                    let dec = !nibble_lt_mask(x, old + 1) & 0x1111_1111_1111_1111 & lanes;
                    let cleared = (x - dec) & !(0xF << (4 * way));
                    meta[0] = cleared | ((ways as u64 - 1) << (4 * way));
                } else {
                    let old = meta[way];
                    for m in meta.iter_mut() {
                        if *m > old {
                            *m -= 1;
                        }
                    }
                    meta[way] = ways as u64 - 1;
                }
            }
            ReplacementKind::TreePlru => {
                let ways = meta.len();
                if way < ways {
                    meta[0] = tree_walk(meta[0], ways, way, TreeAim::Toward);
                }
            }
            ReplacementKind::Qlru | ReplacementKind::Srrip => {
                meta[way] = MAX_AGE;
            }
            ReplacementKind::Random => {}
        }
    }

    /// Resets `way`'s metadata after its line was invalidated, so the next
    /// occupant cannot inherit the departed line's recency/RRPV state.
    ///
    /// The boxed predecessor of this module had a latent bug here: it removed
    /// the entry and left the way's replacement metadata untouched. The way
    /// is instead marked as the preferred next victim (matching hardware,
    /// where invalid ways are refilled first): for LRU this is provably
    /// unobservable (every insertion re-normalises the recency permutation,
    /// and victims are only drawn from full sets), but for Tree-PLRU the
    /// shared tree bits persist across the refill and the stale path used to
    /// leak into later victim choices — `set.rs` pins both behaviours with
    /// regression tests.
    #[inline]
    pub fn reset_way(self, meta: &mut [u64], way: usize) {
        self.demote(meta, way);
    }

    /// Applies `count` consecutive *fill* transitions to a fully-occupied
    /// set's metadata: for each fill, a victim way is chosen, reported
    /// through `on_victim`, and then touched as a fresh fill — exactly the
    /// metadata effect of `count` back-to-back conflict insertions.
    ///
    /// This is the survival-probability engine of the aggregate noise mode:
    /// a resident line survives a `count`-insertion noise burst iff its way
    /// is never selected by this sequence. Given the metadata, the victim
    /// sequence is deterministic for every policy except
    /// [`ReplacementKind::Random`] (which draws from `rng` as usual), so
    /// per-way survival is resolved exactly rather than approximated.
    ///
    /// True LRU admits a closed form: victims are the `count` oldest ways in
    /// descending age order, and every age advances by `count` modulo the
    /// associativity (survivors age by `count`; the `j`-th fill ends at age
    /// `count - j`). The nibble-packed representation uses that closed form
    /// directly — one pass over the ways instead of `count` victim scans —
    /// and `tests` pin its equivalence to the generic loop.
    pub fn bulk_fill(
        self,
        meta: &mut [u64],
        count: u64,
        mut rng: Option<&mut SmallRng>,
        mut on_victim: impl FnMut(usize),
    ) {
        let ways = meta.len();
        if count == 0 || ways == 0 {
            return;
        }
        if self == ReplacementKind::Lru && ways <= LRU_PACKED_MAX_WAYS && count < ways as u64 {
            let x = meta[0];
            let count = count as usize;
            // Victims in descending age order: age ways-1, ways-2, ...
            // (the ages form a permutation, so the table is total).
            let mut way_of_age = [0usize; LRU_PACKED_MAX_WAYS];
            for w in 0..ways {
                way_of_age[packed_age(x, w) as usize] = w;
            }
            for j in 0..count {
                on_victim(way_of_age[ways - 1 - j]);
            }
            let mut word = x;
            for w in 0..ways {
                let age = (packed_age(x, w) as usize + count) % ways;
                word = (word & !(0xF << (4 * w))) | ((age as u64) << (4 * w));
            }
            meta[0] = word;
            return;
        }
        for _ in 0..count {
            let way = self.victim(meta, rng.as_deref_mut());
            on_victim(way);
            self.touch(meta, way, true);
        }
    }
}

/// Whether a root-to-leaf walk points the Tree-PLRU bits away from a way
/// (on touch) or toward it (on demote).
#[derive(Clone, Copy, PartialEq, Eq)]
enum TreeAim {
    AwayFrom,
    Toward,
}

/// Walks the packed Tree-PLRU bits from the root to `way`, returning the
/// updated bit word. Bit semantics: a set bit means "the victim search goes
/// left at this node".
#[inline]
fn tree_walk(mut bits: u64, ways: usize, way: usize, aim: TreeAim) -> u64 {
    let mut node = 0usize;
    let mut lo = 0usize;
    let mut hi = ways.next_power_of_two();
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let go_right = way >= mid;
        // AwayFrom: point the victim search at the other subtree.
        // Toward: steer the victim search into `way`'s subtree.
        let bit_value = match aim {
            TreeAim::AwayFrom => go_right,
            TreeAim::Toward => !go_right,
        };
        if bit_value {
            bits |= 1 << node;
        } else {
            bits &= !(1 << node);
        }
        node = 2 * node + if go_right { 2 } else { 1 };
        if go_right {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Fresh metadata for `ways` ways of `kind`.
    fn meta(kind: ReplacementKind, ways: usize) -> Vec<u64> {
        let mut m = vec![0; ways];
        kind.init_meta(&mut m);
        m
    }

    fn fill_and_reference(kind: ReplacementKind, meta: &mut [u64]) {
        for w in 0..meta.len() {
            kind.touch(meta, w, true);
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let k = ReplacementKind::Lru;
        let mut m = meta(k, 4);
        fill_and_reference(k, &mut m);
        // Touch 0, 1, 2 again -> 3 is LRU.
        k.touch(&mut m, 0, false);
        k.touch(&mut m, 1, false);
        k.touch(&mut m, 2, false);
        assert_eq!(k.victim(&mut m, None), 3);
        k.touch(&mut m, 3, false);
        assert_eq!(k.victim(&mut m, None), 0);
    }

    /// Decodes the LRU age of each way regardless of representation
    /// (nibble-packed for ≤ 16 ways, one word per way above).
    fn lru_ages(meta: &[u64]) -> Vec<u64> {
        if meta.len() <= 16 {
            (0..meta.len()).map(|w| (meta[0] >> (4 * w)) & 0xF).collect()
        } else {
            meta.to_vec()
        }
    }

    #[test]
    fn lru_ages_stay_a_permutation() {
        let k = ReplacementKind::Lru;
        for ways in [8usize, 16, 20] {
            let mut m = meta(k, ways);
            for i in 0..100 {
                k.touch(&mut m, (i * 5) % ways, i % 3 == 0);
                if i % 7 == 0 {
                    k.demote(&mut m, i % ways);
                }
                let mut sorted = lru_ages(&m);
                sorted.sort_unstable();
                let expect: Vec<u64> = (0..ways as u64).collect();
                assert_eq!(sorted, expect, "ages must stay a permutation ({ways} ways)");
            }
        }
    }

    // Equivalence of the nibble-packed (≤ 16 ways) and per-way (> 16 ways)
    // LRU representations against a naive recency-list oracle is proven by
    // the proptest suite in `tests/replacement_equivalence.rs`.

    #[test]
    fn lru_demote_makes_way_the_next_victim() {
        let k = ReplacementKind::Lru;
        let mut m = meta(k, 4);
        fill_and_reference(k, &mut m);
        k.demote(&mut m, 2);
        assert_eq!(k.victim(&mut m, None), 2);
    }

    #[test]
    fn tree_plru_victim_is_untouched_way() {
        let k = ReplacementKind::TreePlru;
        let mut m = meta(k, 8);
        fill_and_reference(k, &mut m);
        let v = k.victim(&mut m, None);
        assert!(v < 8);
        // Touch the victim; the next victim must differ.
        k.touch(&mut m, v, false);
        assert_ne!(k.victim(&mut m, None), v);
    }

    #[test]
    fn tree_plru_handles_non_power_of_two_ways() {
        let k = ReplacementKind::TreePlru;
        let mut m = meta(k, 11);
        fill_and_reference(k, &mut m);
        for _ in 0..64 {
            let v = k.victim(&mut m, None);
            assert!(v < 11);
            k.touch(&mut m, v, true);
        }
    }

    #[test]
    fn tree_plru_demote_steers_victim_to_way() {
        let k = ReplacementKind::TreePlru;
        let mut m = meta(k, 8);
        fill_and_reference(k, &mut m);
        for way in 0..8 {
            k.demote(&mut m, way);
            assert_eq!(k.victim(&mut m, None), way);
        }
    }

    #[test]
    fn srrip_prefers_new_lines_over_reused_lines() {
        let k = ReplacementKind::Srrip;
        let mut m = meta(k, 4);
        fill_and_reference(k, &mut m);
        // Re-reference ways 0 and 1 so they become RRPV 0.
        k.touch(&mut m, 0, false);
        k.touch(&mut m, 1, false);
        let v = k.victim(&mut m, None);
        assert!(v == 2 || v == 3, "victim should be a non-reused way, got {v}");
    }

    #[test]
    fn qlru_fills_age_faster_than_hits() {
        let k = ReplacementKind::Qlru;
        let mut m = meta(k, 4);
        fill_and_reference(k, &mut m);
        // Way 0 is re-referenced (age 0); the rest stay at fill age 1.
        k.touch(&mut m, 0, false);
        let v = k.victim(&mut m, None);
        assert_ne!(v, 0, "the reused way must outlive fill-aged ways");
        // After the renormalising victim call, way 0 is strictly younger.
        assert!(m[0] < m[v]);
    }

    #[test]
    fn qlru_renormalises_in_one_shot() {
        let k = ReplacementKind::Qlru;
        let mut m = meta(k, 4);
        fill_and_reference(k, &mut m);
        // All ways at age 1: the victim call must boost everyone by 2 and
        // pick the lowest way.
        assert_eq!(k.victim(&mut m, None), 0);
        assert!(m.iter().all(|&a| a == MAX_AGE));
    }

    #[test]
    fn random_victims_in_range_and_reproducible() {
        let k = ReplacementKind::Random;
        let mut m = meta(k, 6);
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            let va = k.victim(&mut m, Some(&mut a));
            assert!(va < 6);
            assert_eq!(va, k.victim(&mut m, Some(&mut b)));
        }
    }

    #[test]
    fn every_kind_initialises_touches_and_evicts() {
        let mut rng = SmallRng::seed_from_u64(1);
        for kind in [
            ReplacementKind::Lru,
            ReplacementKind::TreePlru,
            ReplacementKind::Qlru,
            ReplacementKind::Srrip,
            ReplacementKind::Random,
        ] {
            let mut m = meta(kind, 8);
            kind.touch(&mut m, 0, true);
            let rng = kind.uses_rng().then_some(&mut rng);
            assert!(kind.victim(&mut m, rng) < 8);
        }
    }

    /// The packed-LRU closed form in `bulk_fill` must be indistinguishable
    /// from literally running `count` victim/touch-fill rounds: same victim
    /// ways in the same order, same final metadata word.
    #[test]
    fn lru_bulk_fill_closed_form_matches_generic_loop() {
        let k = ReplacementKind::Lru;
        for ways in [4usize, 7, 16] {
            for scramble in 0..8u64 {
                for count in 1..ways as u64 {
                    let mut base = meta(k, ways);
                    fill_and_reference(k, &mut base);
                    // Scramble recency with a deterministic touch pattern.
                    for i in 0..scramble {
                        k.touch(&mut base, (i as usize * 3 + 1) % ways, false);
                    }
                    let mut fast = base.clone();
                    let mut slow = base.clone();
                    let mut fast_victims = Vec::new();
                    k.bulk_fill(&mut fast, count, None, |w| fast_victims.push(w));
                    let mut slow_victims = Vec::new();
                    for _ in 0..count {
                        let w = k.victim(&mut slow, None);
                        slow_victims.push(w);
                        k.touch(&mut slow, w, true);
                    }
                    assert_eq!(fast_victims, slow_victims, "{ways} ways, count {count}");
                    assert_eq!(fast, slow, "{ways} ways, count {count}: metadata diverged");
                }
            }
        }
    }

    /// `bulk_fill` on the non-closed-form policies is definitionally the
    /// victim/touch loop; sanity-check victim validity and determinism.
    #[test]
    fn bulk_fill_generic_policies_yield_valid_deterministic_victims() {
        for kind in [
            ReplacementKind::TreePlru,
            ReplacementKind::Qlru,
            ReplacementKind::Srrip,
            ReplacementKind::Random,
        ] {
            let ways = 8;
            let run = |seed: u64| {
                let mut m = meta(kind, ways);
                fill_and_reference(kind, &mut m);
                let mut rng = SmallRng::seed_from_u64(seed);
                let mut victims = Vec::new();
                let rng_arg = kind.uses_rng().then_some(&mut rng);
                kind.bulk_fill(&mut m, 20, rng_arg, |w| victims.push(w));
                (victims, m)
            };
            let (va, ma) = run(5);
            let (vb, mb) = run(5);
            assert_eq!(va.len(), 20);
            assert!(va.iter().all(|&w| w < ways), "{kind:?}: victim out of range");
            assert_eq!(va, vb, "{kind:?}: bulk_fill must be deterministic per seed");
            assert_eq!(ma, mb);
        }
    }

    #[test]
    fn lru_full_access_sequence_cycles() {
        // Accessing W+1 distinct lines round-robin in an LRU W-way set evicts
        // every time (the classic thrashing pattern eviction sets rely on).
        let k = ReplacementKind::Lru;
        let ways = 4;
        let mut m = meta(k, ways);
        fill_and_reference(k, &mut m);
        let mut victims = Vec::new();
        for _ in 0..8 {
            let v = k.victim(&mut m, None);
            victims.push(v);
            k.touch(&mut m, v, true);
        }
        // All ways get recycled.
        let unique: std::collections::HashSet<_> = victims.iter().collect();
        assert_eq!(unique.len(), ways);
    }
}
