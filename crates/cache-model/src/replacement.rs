//! Cache replacement policies.
//!
//! The paper's Parallel Probing technique is motivated precisely by the fact
//! that the target cache's replacement policy "can be unknown or quite
//! complex" (Section 6.1). The model therefore supports several policies so
//! that the attack algorithms can be evaluated for replacement-policy
//! sensitivity (see the ablation benches in DESIGN.md): true LRU, Tree-PLRU
//! (as used by Intel L1/L2), 2-bit SRRIP (a common LLC policy) and a seeded
//! pseudo-random policy.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Which replacement policy a cache structure uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementKind {
    /// True least-recently-used.
    Lru,
    /// Binary-tree pseudo-LRU.
    TreePlru,
    /// Static re-reference interval prediction with 2-bit counters.
    Srrip,
    /// Uniformly random victim selection (seeded, reproducible).
    Random,
}

impl Default for ReplacementKind {
    fn default() -> Self {
        ReplacementKind::Lru
    }
}

impl ReplacementKind {
    /// Instantiates the per-set replacement state for a set with `ways` ways.
    pub fn build(self, ways: usize, seed: u64) -> Box<dyn ReplacementState> {
        match self {
            ReplacementKind::Lru => Box::new(LruState::new(ways)),
            ReplacementKind::TreePlru => Box::new(TreePlruState::new(ways)),
            ReplacementKind::Srrip => Box::new(SrripState::new(ways)),
            ReplacementKind::Random => Box::new(RandomState::new(ways, seed)),
        }
    }
}

/// Per-set replacement metadata.
///
/// The cache set calls [`ReplacementState::touch`] on every hit or fill and
/// [`ReplacementState::victim`] when it needs to evict. `touch` receives
/// whether the access was a fill (new line) or a hit, which SRRIP uses to
/// assign different re-reference predictions.
pub trait ReplacementState: std::fmt::Debug + Send + Sync {
    /// Records an access to `way`. `is_fill` is true when a new line was just
    /// installed in that way.
    fn touch(&mut self, way: usize, is_fill: bool);

    /// Chooses a victim way among `occupied` ways (all ways are occupied when
    /// this is called). May mutate internal state (e.g. SRRIP aging).
    fn victim(&mut self) -> usize;

    /// Marks `way` as the *next* victim of this set, regardless of how
    /// recently it was accessed.
    ///
    /// This models replacement-state priming as performed by Prime+Scope
    /// [Purnal et al. 2021]: a carefully crafted access pattern that leaves a
    /// chosen line as the eviction candidate (EVC) even though the attacker
    /// keeps touching it.
    fn demote(&mut self, way: usize);

    /// Clones this state behind a fresh box, preserving the exact replacement
    /// metadata (including any internal RNG stream position). This is what
    /// makes whole cache hierarchies — and therefore machines — snapshottable.
    fn boxed_clone(&self) -> Box<dyn ReplacementState>;

    /// `self` as [`Any`](std::any::Any), for [`ReplacementState::restore_from`].
    fn as_any(&self) -> &dyn std::any::Any;

    /// Copies `source`'s metadata into `self` **in place**, reusing `self`'s
    /// allocations. Both sides must be the same concrete policy (guaranteed
    /// when restoring a structure from a snapshot of itself); panics
    /// otherwise. This is the hot path of `Machine::reset_to` — a trial
    /// rewind touches every cache set, and re-boxing ~10^5 replacement
    /// states per trial would dominate the executor's profile.
    fn restore_from(&mut self, source: &dyn ReplacementState);
}

impl Clone for Box<dyn ReplacementState> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// True LRU: maintains an exact recency ordering of the ways.
#[derive(Debug, Clone)]
pub struct LruState {
    /// `order[i]` is the way id; index 0 is most recently used.
    order: Vec<usize>,
}

impl LruState {
    /// Creates LRU state for a set with `ways` ways.
    pub fn new(ways: usize) -> Self {
        Self { order: (0..ways).collect() }
    }
}

impl ReplacementState for LruState {
    fn boxed_clone(&self) -> Box<dyn ReplacementState> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn restore_from(&mut self, source: &dyn ReplacementState) {
        let source = source
            .as_any()
            .downcast_ref::<LruState>()
            .expect("restore_from requires matching replacement policies");
        self.order.clone_from(&source.order);
    }

    fn touch(&mut self, way: usize, _is_fill: bool) {
        if let Some(pos) = self.order.iter().position(|&w| w == way) {
            self.order.remove(pos);
            self.order.insert(0, way);
        }
    }

    fn victim(&mut self) -> usize {
        *self.order.last().expect("LRU state is never empty")
    }

    fn demote(&mut self, way: usize) {
        if let Some(pos) = self.order.iter().position(|&w| w == way) {
            self.order.remove(pos);
            self.order.push(way);
        }
    }
}

/// Binary-tree pseudo-LRU, as used by Intel's L1 and L2 caches.
///
/// For non-power-of-two associativities the tree is built over the next power
/// of two and victims that fall on non-existent ways are redirected to way 0.
#[derive(Debug, Clone)]
pub struct TreePlruState {
    ways: usize,
    /// Tree bits; `bits[i] == false` means "left subtree is older".
    bits: Vec<bool>,
    leaves: usize,
}

impl TreePlruState {
    /// Creates Tree-PLRU state for a set with `ways` ways.
    pub fn new(ways: usize) -> Self {
        let leaves = ways.next_power_of_two();
        Self { ways, bits: vec![false; leaves.max(2) - 1], leaves }
    }

    fn set_path_away_from(&mut self, way: usize) {
        // Walk from the root to `way`, setting each bit to point away from it.
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = way >= mid;
            // Bit semantics: true = next victim search goes left, so point
            // the victim search away from the way just touched.
            self.bits[node] = go_right;
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
}

impl ReplacementState for TreePlruState {
    fn boxed_clone(&self) -> Box<dyn ReplacementState> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn restore_from(&mut self, source: &dyn ReplacementState) {
        let source = source
            .as_any()
            .downcast_ref::<TreePlruState>()
            .expect("restore_from requires matching replacement policies");
        self.ways = source.ways;
        self.bits.clone_from(&source.bits);
        self.leaves = source.leaves;
    }

    fn touch(&mut self, way: usize, _is_fill: bool) {
        if way < self.ways {
            self.set_path_away_from(way);
        }
    }

    fn demote(&mut self, way: usize) {
        if way >= self.ways {
            return;
        }
        // Point every bit on the root-to-leaf path toward `way`.
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = way >= mid;
            // true = victim search goes left, so to steer it toward `way`
            // set the bit to !go_right.
            self.bits[node] = !go_right;
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right { lo = mid; } else { hi = mid; }
        }
    }

    fn victim(&mut self) -> usize {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_left = self.bits[node];
            node = 2 * node + if go_left { 1 } else { 2 };
            if go_left {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        if lo >= self.ways {
            0
        } else {
            lo
        }
    }
}

/// Static RRIP with 2-bit re-reference prediction values (RRPV).
///
/// New lines are inserted with RRPV 2 ("long re-reference"), hits promote to
/// RRPV 0, and the victim is any way with RRPV 3 (ageing all ways until one
/// reaches 3).
#[derive(Debug, Clone)]
pub struct SrripState {
    rrpv: Vec<u8>,
}

impl SrripState {
    const MAX_RRPV: u8 = 3;

    /// Creates SRRIP state for a set with `ways` ways.
    pub fn new(ways: usize) -> Self {
        Self { rrpv: vec![Self::MAX_RRPV; ways] }
    }
}

impl ReplacementState for SrripState {
    fn boxed_clone(&self) -> Box<dyn ReplacementState> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn restore_from(&mut self, source: &dyn ReplacementState) {
        let source = source
            .as_any()
            .downcast_ref::<SrripState>()
            .expect("restore_from requires matching replacement policies");
        self.rrpv.clone_from(&source.rrpv);
    }

    fn touch(&mut self, way: usize, is_fill: bool) {
        self.rrpv[way] = if is_fill { Self::MAX_RRPV - 1 } else { 0 };
    }

    fn demote(&mut self, way: usize) {
        self.rrpv[way] = Self::MAX_RRPV;
    }

    fn victim(&mut self) -> usize {
        loop {
            if let Some(way) = self.rrpv.iter().position(|&v| v == Self::MAX_RRPV) {
                return way;
            }
            for v in &mut self.rrpv {
                *v += 1;
            }
        }
    }
}

/// Seeded pseudo-random victim selection.
#[derive(Debug, Clone)]
pub struct RandomState {
    ways: usize,
    rng: SmallRng,
}

impl RandomState {
    /// Creates random-replacement state for a set with `ways` ways.
    pub fn new(ways: usize, seed: u64) -> Self {
        Self { ways, rng: SmallRng::seed_from_u64(seed) }
    }
}

impl ReplacementState for RandomState {
    fn boxed_clone(&self) -> Box<dyn ReplacementState> {
        Box::new(self.clone())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn restore_from(&mut self, source: &dyn ReplacementState) {
        let source = source
            .as_any()
            .downcast_ref::<RandomState>()
            .expect("restore_from requires matching replacement policies");
        self.ways = source.ways;
        self.rng = source.rng.clone();
    }

    fn touch(&mut self, _way: usize, _is_fill: bool) {}

    fn demote(&mut self, _way: usize) {}

    fn victim(&mut self) -> usize {
        self.rng.gen_range(0..self.ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_and_reference(state: &mut dyn ReplacementState, ways: usize) {
        for w in 0..ways {
            state.touch(w, true);
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = LruState::new(4);
        fill_and_reference(&mut s, 4);
        // Touch 0, 1, 2 again -> 3 is LRU.
        s.touch(0, false);
        s.touch(1, false);
        s.touch(2, false);
        assert_eq!(s.victim(), 3);
        s.touch(3, false);
        assert_eq!(s.victim(), 0);
    }

    #[test]
    fn tree_plru_victim_is_untouched_way() {
        let mut s = TreePlruState::new(8);
        fill_and_reference(&mut s, 8);
        // After touching 0..7 in order, PLRU points near way 0's side.
        let v = s.victim();
        assert!(v < 8);
        // Touch the victim; the next victim must differ.
        s.touch(v, false);
        assert_ne!(s.victim(), v);
    }

    #[test]
    fn tree_plru_handles_non_power_of_two_ways() {
        let mut s = TreePlruState::new(11);
        fill_and_reference(&mut s, 11);
        for _ in 0..64 {
            let v = s.victim();
            assert!(v < 11);
            s.touch(v, true);
        }
    }

    #[test]
    fn srrip_prefers_new_lines_over_reused_lines() {
        let mut s = SrripState::new(4);
        fill_and_reference(&mut s, 4);
        // Re-reference ways 0 and 1 so they become RRPV 0.
        s.touch(0, false);
        s.touch(1, false);
        let v = s.victim();
        assert!(v == 2 || v == 3, "victim should be a non-reused way, got {v}");
    }

    #[test]
    fn random_victims_in_range_and_reproducible() {
        let mut a = RandomState::new(6, 42);
        let mut b = RandomState::new(6, 42);
        for _ in 0..100 {
            let va = a.victim();
            assert!(va < 6);
            assert_eq!(va, b.victim());
        }
    }

    #[test]
    fn kind_builds_each_policy() {
        for kind in [
            ReplacementKind::Lru,
            ReplacementKind::TreePlru,
            ReplacementKind::Srrip,
            ReplacementKind::Random,
        ] {
            let mut s = kind.build(8, 1);
            s.touch(0, true);
            assert!(s.victim() < 8);
        }
    }

    #[test]
    fn lru_full_access_sequence_cycles() {
        // Accessing W+1 distinct lines round-robin in an LRU W-way set evicts
        // every time (the classic thrashing pattern eviction sets rely on).
        let ways = 4;
        let mut s = LruState::new(ways);
        fill_and_reference(&mut s, ways);
        let mut victims = Vec::new();
        for i in 0..8 {
            let v = s.victim();
            victims.push(v);
            s.touch(v, true);
            let _ = i;
        }
        // All ways get recycled.
        let unique: std::collections::HashSet<_> = victims.iter().collect();
        assert_eq!(unique.len(), ways);
    }
}
