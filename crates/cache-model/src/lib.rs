//! # llc-cache-model
//!
//! A model of the Intel Skylake-SP / Ice Lake-SP cache hierarchies targeted by
//! *"Last-Level Cache Side-Channel Attacks Are Feasible in the Modern Public
//! Cloud"* (ASPLOS 2024): per-core L1/L2 caches, a sliced non-inclusive
//! last-level cache (LLC) and a sliced snoop filter (SF), together with the
//! address-mapping machinery (4 kB paging, set indexing, slice hashing) that
//! determines the attacker's *cache uncertainty*.
//!
//! The crate is purely structural: it models *where* lines live and what gets
//! evicted, but knows nothing about time. Timing, background noise and
//! concurrent agents are layered on top by the `llc-machine` crate.
//!
//! ## Quick example
//!
//! ```
//! use llc_cache_model::{AccessKind, CacheSpec, Hierarchy, LineAddr};
//!
//! // `tiny_test()` keeps the doctest feature-independent; the protocol below
//! // is identical on the feature-gated `skylake_sp_cloud()` preset.
//! let mut h = Hierarchy::new(CacheSpec::tiny_test(), 42);
//! let line = LineAddr::from_line_number(0x1234);
//!
//! // Core 0 faults the line in: it becomes Exclusive and is tracked by the SF.
//! h.access(0, line, AccessKind::Read);
//! assert!(h.in_sf(line) && !h.in_llc(line));
//!
//! // Core 1 (e.g. the attacker's helper thread) touches it: it becomes
//! // Shared and moves into the non-inclusive LLC.
//! h.access(1, line, AccessKind::Read);
//! assert!(h.in_llc(line) && !h.in_sf(line));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod cache;
mod config;
mod geometry;
mod hierarchy;
mod paging;
mod presets;
mod replacement;
mod set;
mod slice;

pub use addr::{
    LineAddr, PhysAddr, VirtAddr, LINES_PER_PAGE, LINE_BITS, LINE_SIZE, PAGE_BITS, PAGE_SIZE,
};
pub use cache::{Cache, SetLocation, SharedGeometry, SlicedCache};
pub use config::{HierarchyConfig, InclusionPolicy, LevelReplacement, SliceHashSelect};
pub use geometry::{CacheGeometry, SlicedGeometry};
pub use hierarchy::{
    AccessKind, AccessOutcome, CoherenceState, CoreId, Hierarchy, HierarchyOptions, HitLevel,
    LlcLine, PrivLine, SfEntry,
};
pub use paging::{AddressSpace, TranslateError};
pub use presets::CacheSpec;
pub use replacement::ReplacementKind;
pub use set::{Entry, SetArena, SetView, SetViewMut};
pub use slice::{ModuloSliceHash, SliceHash, XorFoldSliceHash};
