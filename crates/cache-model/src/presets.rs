//! Machine presets matching the CPUs evaluated in the paper.
//!
//! | Preset | Paper machine | LLC/SF slices | SF ways | L2 ways |
//! |---|---|---|---|---|
//! | `CacheSpec::skylake_sp_cloud` | Intel Xeon Platinum 8173M (Cloud Run) | 28 | 12 | 16 |
//! | `CacheSpec::skylake_sp_local` | Intel Xeon Gold 6152 (local) | 22 | 12 | 16 |
//! | `CacheSpec::ice_lake_sp` | Intel Xeon Gold 5320 | 26 | 16 | 20 |
//!
//! The named presets (and `CacheSpec::skylake_sp(slices, cores)`) are gated
//! by the `skylake` / `icelake` cargo features, both on by default;
//! `CacheSpec::tiny_test` and the geometry types stay available regardless.
//! The table uses plain code spans rather than intra-doc links so
//! `--no-default-features` docs stay warning-free.

use crate::config::HierarchyConfig;
use crate::geometry::{CacheGeometry, SlicedGeometry};
use crate::replacement::ReplacementKind;

/// Full description of a simulated CPU's cache hierarchy (Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheSpec {
    /// Human-readable name, e.g. `"Skylake-SP (28 slices)"`.
    pub name: String,
    /// Number of cores (each with private L1 and L2).
    pub cores: usize,
    /// Per-core L1 data/instruction cache geometry.
    pub l1: CacheGeometry,
    /// Per-core L2 geometry.
    pub l2: CacheGeometry,
    /// Sliced last-level cache geometry.
    pub llc: SlicedGeometry,
    /// Sliced snoop-filter geometry (same sets/slices as the LLC, more ways).
    pub sf: SlicedGeometry,
    /// Replacement policy used by L1 and L2.
    pub private_replacement: ReplacementKind,
    /// Replacement policy used by the LLC and SF.
    pub shared_replacement: ReplacementKind,
    /// Nominal core frequency in GHz, used to convert cycles to seconds.
    pub freq_ghz: f64,
    /// Hierarchy composition: inclusion policy, slice hash, per-level
    /// replacement overrides and directory geometry. The default reproduces
    /// the paper's non-inclusive protocol bit-identically; see the
    /// [`HierarchyConfig`] builder methods.
    pub hierarchy: HierarchyConfig,
}

impl CacheSpec {
    /// Skylake-SP with a configurable number of LLC/SF slices.
    ///
    /// Parameters follow Table 2: L1 32 kB/8-way, L2 1 MB/16-way/1,024 sets,
    /// LLC slice 1.375 MB/11-way/2,048 sets, SF slice 12-way/2,048 sets.
    #[cfg(feature = "skylake")]
    pub fn skylake_sp(num_slices: usize, cores: usize) -> Self {
        let llc_slice = CacheGeometry::new(2048, 11);
        let sf_slice = CacheGeometry::new(2048, 12);
        Self {
            name: format!("Skylake-SP ({num_slices} slices)"),
            cores,
            l1: CacheGeometry::new(64, 8),
            l2: CacheGeometry::new(1024, 16),
            llc: SlicedGeometry::new(llc_slice, num_slices),
            sf: SlicedGeometry::new(sf_slice, num_slices),
            // True LRU keeps TestEviction's "W distinct congruent lines evict
            // the target" property exact; the Tree-PLRU and SRRIP policies
            // remain available through `ReplacementKind` for the
            // replacement-sensitivity ablation described in DESIGN.md.
            private_replacement: ReplacementKind::Lru,
            shared_replacement: ReplacementKind::Lru,
            freq_ghz: 2.0,
            hierarchy: HierarchyConfig::default(),
        }
    }

    /// The 28-slice Skylake-SP (Xeon Platinum 8173M) that dominates Cloud Run
    /// datacenters in the paper's measurements.
    #[cfg(feature = "skylake")]
    pub fn skylake_sp_cloud() -> Self {
        Self::skylake_sp(28, 4)
    }

    /// The 22-slice Skylake-SP (Xeon Gold 6152) used as the quiescent local
    /// machine in the paper.
    #[cfg(feature = "skylake")]
    pub fn skylake_sp_local() -> Self {
        Self::skylake_sp(22, 4)
    }

    /// Ice Lake-SP with a configurable number of LLC/SF slices and cores.
    ///
    /// Parameters follow Table 2: L1 48 kB/12-way, L2 1.25 MB/20-way/1,024
    /// sets, LLC slice 1.5 MB/12-way/2,048 sets, SF slice 16-way/2,048 sets.
    #[cfg(feature = "icelake")]
    pub fn ice_lake_sp_with(num_slices: usize, cores: usize) -> Self {
        let llc_slice = CacheGeometry::new(2048, 12);
        let sf_slice = CacheGeometry::new(2048, 16);
        Self {
            name: format!("Ice Lake-SP ({num_slices} slices)"),
            cores,
            l1: CacheGeometry::new(64, 12),
            l2: CacheGeometry::new(1024, 20),
            llc: SlicedGeometry::new(llc_slice, num_slices),
            sf: SlicedGeometry::new(sf_slice, num_slices),
            private_replacement: ReplacementKind::Lru,
            shared_replacement: ReplacementKind::Lru,
            freq_ghz: 2.2,
            hierarchy: HierarchyConfig::default(),
        }
    }

    /// Ice Lake-SP (Xeon Gold 5320, 26 slices): 16-way SF and 20-way L2,
    /// used in Section 5.3.2 to study associativity sensitivity.
    #[cfg(feature = "icelake")]
    pub fn ice_lake_sp() -> Self {
        Self::ice_lake_sp_with(26, 4)
    }

    /// A deliberately small hierarchy for fast unit tests: 2 slices, 16-set
    /// LLC/SF slices, 4-way everything.
    pub fn tiny_test() -> Self {
        Self {
            name: "Tiny test machine".to_string(),
            cores: 3,
            l1: CacheGeometry::new(8, 4),
            l2: CacheGeometry::new(16, 8),
            llc: SlicedGeometry::new(CacheGeometry::new(32, 4), 2),
            sf: SlicedGeometry::new(CacheGeometry::new(32, 5), 2),
            private_replacement: ReplacementKind::Lru,
            shared_replacement: ReplacementKind::Lru,
            freq_ghz: 2.0,
            hierarchy: HierarchyConfig::default(),
        }
    }

    /// Converts a cycle count to seconds at this machine's frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_ghz * 1e9)
    }

    /// Converts seconds to cycles at this machine's frequency.
    pub fn seconds_to_cycles(&self, seconds: f64) -> u64 {
        (seconds * self.freq_ghz * 1e9).round() as u64
    }

    /// Number of SF eviction sets required in the `PageOffset` scenario.
    pub fn page_offset_sets(&self) -> usize {
        self.sf.sets_per_page_offset()
    }

    /// Number of SF eviction sets required in the `WholeSys` scenario.
    pub fn whole_system_sets(&self) -> usize {
        self.sf.whole_system_sets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(feature = "skylake")]
    fn skylake_cloud_matches_paper_counts() {
        let spec = CacheSpec::skylake_sp_cloud();
        assert_eq!(spec.page_offset_sets(), 896);
        assert_eq!(spec.whole_system_sets(), 57_344);
        assert_eq!(spec.l2.uncertainty(), 16);
        assert_eq!(spec.sf.ways(), 12);
        assert_eq!(spec.llc.ways(), 11);
    }

    #[test]
    #[cfg(feature = "skylake")]
    fn skylake_local_matches_paper_counts() {
        let spec = CacheSpec::skylake_sp_local();
        assert_eq!(spec.page_offset_sets(), 704);
        assert_eq!(spec.whole_system_sets(), 45_056);
    }

    #[test]
    #[cfg(feature = "icelake")]
    fn ice_lake_matches_paper_counts() {
        let spec = CacheSpec::ice_lake_sp();
        assert_eq!(spec.cores, 4);
        assert_eq!(spec.llc.num_slices(), 26);
        // 2^5 uncontrolled index bits per 2,048-set slice x 26 slices.
        assert_eq!(spec.page_offset_sets(), 832);
        assert_eq!(spec.whole_system_sets(), 53_248);
        assert_eq!(spec.l2.uncertainty(), 16);
        assert_eq!(spec.sf.ways(), 16);
        assert_eq!(spec.llc.ways(), 12);
        assert_eq!(spec.l2.ways(), 20);
    }

    #[test]
    #[cfg(feature = "icelake")]
    fn ice_lake_parameterised_constructor_scales() {
        let spec = CacheSpec::ice_lake_sp_with(13, 8);
        assert_eq!(spec.cores, 8);
        assert_eq!(spec.llc.num_slices(), 13);
        assert_eq!(spec.sf.num_slices(), 13);
        assert_eq!(spec.page_offset_sets(), 416);
        assert_eq!(spec.name, "Ice Lake-SP (13 slices)");
        // The named preset is exactly the (26, 4) instantiation.
        assert_eq!(
            CacheSpec::ice_lake_sp_with(26, 4).name,
            CacheSpec::ice_lake_sp().name
        );
    }

    #[test]
    #[cfg(all(feature = "skylake", feature = "icelake"))]
    fn ice_lake_has_higher_associativity() {
        let skx = CacheSpec::skylake_sp_cloud();
        let icx = CacheSpec::ice_lake_sp();
        assert!(icx.sf.ways() > skx.sf.ways());
        assert!(icx.l2.ways() > skx.l2.ways());
    }

    #[test]
    #[cfg(feature = "skylake")]
    fn cycle_second_round_trip() {
        let spec = CacheSpec::skylake_sp_cloud();
        let cycles = 2_000_000_000;
        let s = spec.cycles_to_seconds(cycles);
        assert!((s - 1.0).abs() < 1e-9);
        assert_eq!(spec.seconds_to_cycles(s), cycles);
    }

    #[test]
    #[cfg(feature = "skylake")]
    fn llc_slice_capacity_is_1_375_mb() {
        let spec = CacheSpec::skylake_sp_cloud();
        assert_eq!(spec.llc.slice_geometry().size_bytes(), 1_441_792);
    }
}
