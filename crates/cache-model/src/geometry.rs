//! Cache geometry: sets, ways, indexing and the attacker's *cache uncertainty*.
//!
//! Section 2.2.1 of the paper defines the cache uncertainty `U` as the number
//! of distinct cache sets a fixed attacker-controlled virtual address might map
//! to, given that the attacker only controls the 12 page-offset bits of the
//! physical address. For a non-sliced cache it is `2^n_uc` where `n_uc` is the
//! number of set-index bits above bit 11; for the sliced LLC/SF it is
//! additionally multiplied by the number of slices because the slice hash is
//! unpredictable.

use crate::addr::{LineAddr, LINE_BITS, PAGE_BITS};

/// Geometry of a single cache structure (one slice, for sliced caches).
///
/// # Examples
///
/// ```
/// use llc_cache_model::CacheGeometry;
/// // Skylake-SP L2: 1 MB, 16 ways, 64 B lines -> 1024 sets
/// let l2 = CacheGeometry::new(1024, 16);
/// assert_eq!(l2.size_bytes(), 1 << 20);
/// assert_eq!(l2.uncertainty(), 16); // PA bits 15:12 are uncontrollable
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    sets: usize,
    ways: usize,
}

impl CacheGeometry {
    /// Creates a geometry with the given number of sets and ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either argument is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "ways must be non-zero");
        Self { sets, ways }
    }

    /// Number of sets.
    pub const fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity (number of ways per set).
    pub const fn ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in bytes (`sets * ways * 64`).
    pub const fn size_bytes(&self) -> usize {
        self.sets * self.ways * (1 << LINE_BITS)
    }

    /// Number of set-index bits (`log2(sets)`).
    pub fn index_bits(&self) -> u32 {
        self.sets.trailing_zeros()
    }

    /// Returns the set index for a physical cache line.
    ///
    /// The set index is taken from the physical address bits directly above
    /// the 6 line-offset bits, exactly as on Intel's L1/L2/LLC (Figure 1 of
    /// the paper).
    pub fn set_index(&self, line: LineAddr) -> usize {
        (line.line_number() as usize) & (self.sets - 1)
    }

    /// Number of set-index bits the attacker controls through the page offset.
    ///
    /// The attacker controls PA bits 11:6, i.e. at most 6 index bits.
    pub fn controlled_index_bits(&self) -> u32 {
        (PAGE_BITS - LINE_BITS).min(self.index_bits())
    }

    /// Number of set-index bits the attacker cannot control (above bit 11).
    pub fn uncontrolled_index_bits(&self) -> u32 {
        self.index_bits() - self.controlled_index_bits()
    }

    /// The cache uncertainty `U` of this (non-sliced) structure: the number of
    /// distinct sets an address with a fixed page offset may map to.
    pub fn uncertainty(&self) -> usize {
        1usize << self.uncontrolled_index_bits()
    }

    /// Number of distinct sets that correspond to a single page offset, i.e.
    /// sets whose low `controlled_index_bits` match the page-offset bits.
    pub fn sets_per_page_offset(&self) -> usize {
        self.uncertainty()
    }

    /// Returns true if two lines map to the same set of this structure.
    pub fn same_set(&self, a: LineAddr, b: LineAddr) -> bool {
        self.set_index(a) == self.set_index(b)
    }
}

/// Geometry of a sliced, shared structure (LLC or snoop filter).
///
/// Each slice has [`CacheGeometry`] `slice_geometry`; a physical line is first
/// hashed to a slice, then indexed within the slice. The overall uncertainty
/// is `U = 2^n_uc * n_slices` (Section 2.2.1).
///
/// # Examples
///
/// ```
/// use llc_cache_model::{CacheGeometry, SlicedGeometry};
/// // 28-slice Skylake-SP snoop filter: 2048 sets x 12 ways per slice.
/// let sf = SlicedGeometry::new(CacheGeometry::new(2048, 12), 28);
/// assert_eq!(sf.uncertainty(), 32 * 28); // 896
/// assert_eq!(sf.total_sets(), 2048 * 28);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlicedGeometry {
    slice: CacheGeometry,
    num_slices: usize,
}

impl SlicedGeometry {
    /// Creates a sliced geometry from the per-slice geometry and slice count.
    ///
    /// # Panics
    ///
    /// Panics if `num_slices` is zero.
    pub fn new(slice: CacheGeometry, num_slices: usize) -> Self {
        assert!(num_slices > 0, "num_slices must be non-zero");
        Self { slice, num_slices }
    }

    /// Geometry of one slice.
    pub const fn slice_geometry(&self) -> CacheGeometry {
        self.slice
    }

    /// Number of slices.
    pub const fn num_slices(&self) -> usize {
        self.num_slices
    }

    /// Total number of (slice, set) pairs in the structure.
    pub const fn total_sets(&self) -> usize {
        self.slice.sets() * self.num_slices
    }

    /// Associativity of each slice.
    pub const fn ways(&self) -> usize {
        self.slice.ways()
    }

    /// Set index within a slice for a physical line.
    pub fn set_index(&self, line: LineAddr) -> usize {
        self.slice.set_index(line)
    }

    /// The attacker-facing cache uncertainty `U = 2^n_uc * n_slices`.
    pub fn uncertainty(&self) -> usize {
        self.slice.uncertainty() * self.num_slices
    }

    /// Number of eviction sets needed for the `PageOffset` scenario, i.e. the
    /// number of distinct (slice, set) pairs reachable at one page offset.
    pub fn sets_per_page_offset(&self) -> usize {
        self.uncertainty()
    }

    /// Number of eviction sets needed for the `WholeSys` scenario (all sets).
    pub fn whole_system_sets(&self) -> usize {
        self.total_sets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;

    #[test]
    fn l2_uncertainty_matches_paper() {
        // Skylake-SP L2: 1024 sets -> 10 index bits, 6 controlled -> U = 16.
        let l2 = CacheGeometry::new(1024, 16);
        assert_eq!(l2.index_bits(), 10);
        assert_eq!(l2.controlled_index_bits(), 6);
        assert_eq!(l2.uncontrolled_index_bits(), 4);
        assert_eq!(l2.uncertainty(), 16);
    }

    #[test]
    fn llc_uncertainty_matches_paper() {
        // Skylake-SP LLC slice: 2048 sets -> 11 index bits, 5 uncontrolled.
        // With 28 slices U = 2^5 * 28 = 896 (Section 2.2.1).
        let llc = SlicedGeometry::new(CacheGeometry::new(2048, 11), 28);
        assert_eq!(llc.uncertainty(), 896);
        assert_eq!(llc.whole_system_sets(), 57_344);
    }

    #[test]
    fn set_index_uses_low_bits_above_line_offset() {
        let g = CacheGeometry::new(1024, 16);
        let a = PhysAddr::new(0x3 << 6).line();
        assert_eq!(g.set_index(a), 3);
        let b = PhysAddr::new((1024u64 + 3) << 6).line();
        assert_eq!(g.set_index(b), 3);
        assert!(g.same_set(a, b));
    }

    #[test]
    fn same_page_offset_same_l1_set() {
        // L1: 64 sets -> all index bits controlled, uncertainty 1.
        let l1 = CacheGeometry::new(64, 8);
        assert_eq!(l1.uncertainty(), 1);
        let a = PhysAddr::new(0x1000 + 5 * 64).line();
        let b = PhysAddr::new(0x9000 + 5 * 64).line();
        assert!(l1.same_set(a, b));
    }

    #[test]
    fn size_bytes() {
        let llc_slice = CacheGeometry::new(2048, 11);
        assert_eq!(llc_slice.size_bytes(), 2048 * 11 * 64); // 1.375 MB
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_sets_panics() {
        let _ = CacheGeometry::new(3, 4);
    }
}
