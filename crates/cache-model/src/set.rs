//! Flat structure-of-arrays set storage and per-set views.
//!
//! The former representation — one heap-allocated `CacheSet` per set, each
//! holding a `Vec<Option<Entry<T>>>` and a `Box<dyn ReplacementState>` —
//! scattered a simulated cache across tens of thousands of small allocations
//! and paid a virtual call per access. [`SetArena`] replaces it with four
//! contiguous arrays owned by the whole structure:
//!
//! ```text
//! way index inside set s:        w = 0 .. ways-1
//! flat index of (s, w):          s * ways + w
//!
//! lines:   [LineAddr; sets*ways]   tag array (full line addresses)
//! payload: [T;        sets*ways]   caller payload (coherence state, owners)
//! meta:    [u64;      sets*ways]   replacement metadata words (see
//!                                  `replacement.rs` for per-policy layout)
//! valid:   [u64;      sets]        one bitmask word per set, bit w = way w
//! rngs:    [SmallRng; sets]        only for ReplacementKind::Random
//! ```
//!
//! A set is manipulated through [`SetView`] (shared, for tests and
//! instrumentation) and [`SetViewMut`] (the access path), which borrow the
//! per-set slices of those arrays. Snapshot restores degrade to four
//! `copy_from_slice` calls over the arenas — no per-set recursion, no
//! allocation, no `dyn` dispatch.

use crate::addr::LineAddr;
use crate::replacement::ReplacementKind;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One entry (way) of a cache set, pairing the line tag with caller-defined
/// payload (coherence state, owner bitmap, ...). Returned by eviction paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry<T> {
    /// Physical line stored in this way.
    pub line: LineAddr,
    /// Structure-specific payload.
    pub payload: T,
}

/// Contiguous storage for `sets` cache sets of `ways` ways each.
///
/// The arena stores full line addresses rather than tags; this wastes a few
/// bits of simulator memory but keeps lookups by `LineAddr` trivial and
/// avoids tag aliasing bugs.
#[derive(Debug, Clone)]
pub struct SetArena<T> {
    ways: usize,
    policy: ReplacementKind,
    lines: Vec<LineAddr>,
    valid: Vec<u64>,
    payload: Vec<T>,
    meta: Vec<u64>,
    rngs: Vec<SmallRng>,
}

impl<T: Copy + Default> SetArena<T> {
    /// Creates an empty arena of `sets` sets with `ways` ways each.
    ///
    /// `seed_of` derives the per-set RNG seed (only consulted when the policy
    /// is [`ReplacementKind::Random`]); it receives the set index and must
    /// match the historical per-set seed derivation of the owning structure
    /// so that random-replacement streams stay reproducible.
    pub fn new(
        sets: usize,
        ways: usize,
        policy: ReplacementKind,
        seed_of: impl Fn(usize) -> u64,
    ) -> Self {
        assert!((1..=64).contains(&ways), "associativity must be 1..=64, got {ways}");
        let mut meta = vec![0u64; sets * ways];
        for set_meta in meta.chunks_exact_mut(ways) {
            policy.init_meta(set_meta);
        }
        let rngs = if policy.uses_rng() {
            (0..sets).map(|s| SmallRng::seed_from_u64(seed_of(s))).collect()
        } else {
            Vec::new()
        };
        Self {
            ways,
            policy,
            lines: vec![LineAddr::from_line_number(0); sets * ways],
            valid: vec![0; sets],
            payload: vec![T::default(); sets * ways],
            meta,
            rngs,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.valid.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Shared view of set `index` (instrumentation, tests).
    pub fn view(&self, index: usize) -> SetView<'_, T> {
        let r = index * self.ways..(index + 1) * self.ways;
        SetView {
            lines: &self.lines[r.clone()],
            valid: self.valid[index],
            payload: &self.payload[r.clone()],
            meta: &self.meta[r],
        }
    }

    /// Mutable view of set `index` (the access path).
    pub fn view_mut(&mut self, index: usize) -> SetViewMut<'_, T> {
        let r = index * self.ways..(index + 1) * self.ways;
        SetViewMut {
            lines: &mut self.lines[r.clone()],
            valid: &mut self.valid[index],
            payload: &mut self.payload[r.clone()],
            meta: &mut self.meta[r],
            policy: self.policy,
            rng: self.rngs.get_mut(index),
        }
    }

    /// Copies `source`'s contents into `self` in place: four flat-buffer
    /// memcpys (plus the RNG arena for random replacement), reusing every
    /// allocation. This is the hot path of `Machine::reset_to` — a trial
    /// rewind touches every cache set, and re-boxing ~10^5 replacement
    /// states per trial would dominate the executor's profile.
    pub fn restore_from(&mut self, source: &SetArena<T>) {
        debug_assert_eq!(self.ways, source.ways, "snapshot arena geometry mismatch");
        debug_assert_eq!(self.policy, source.policy, "snapshot arena policy mismatch");
        self.lines.copy_from_slice(&source.lines);
        self.valid.copy_from_slice(&source.valid);
        self.payload.copy_from_slice(&source.payload);
        self.meta.copy_from_slice(&source.meta);
        self.rngs.clone_from(&source.rngs);
    }

    /// Removes every entry and re-initialises all replacement metadata.
    pub fn clear(&mut self) {
        self.valid.fill(0);
        for set_meta in self.meta.chunks_exact_mut(self.ways) {
            self.policy.init_meta(set_meta);
        }
    }
}

/// Immutable view of one cache set inside a [`SetArena`].
///
/// This replaces the former `&CacheSet<T>` instrumentation handle: it borrows
/// the set's slices of the flat arenas and exposes read-only queries.
#[derive(Debug, Clone, Copy)]
pub struct SetView<'a, T> {
    lines: &'a [LineAddr],
    valid: u64,
    payload: &'a [T],
    meta: &'a [u64],
}

impl<'a, T> SetView<'a, T> {
    /// Number of ways.
    pub fn num_ways(&self) -> usize {
        self.lines.len()
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.valid.count_ones() as usize
    }

    /// Returns true if way `way` holds a valid line.
    pub fn is_valid(&self, way: usize) -> bool {
        assert!(way < self.lines.len());
        self.valid & (1 << way) != 0
    }

    /// The line stored in way `way`, if valid.
    pub fn line(&self, way: usize) -> Option<LineAddr> {
        self.is_valid(way).then(|| self.lines[way])
    }

    /// The payload stored in way `way`, if valid.
    pub fn payload(&self, way: usize) -> Option<&'a T> {
        self.is_valid(way).then(|| &self.payload[way])
    }

    /// The raw replacement-metadata word of way `way` (policy-specific; see
    /// the layout table in `replacement.rs`).
    pub fn meta_word(&self, way: usize) -> u64 {
        self.meta[way]
    }

    /// Returns true if `line` is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find_way(line).is_some()
    }

    /// The way holding `line`, if present.
    pub fn way_of(&self, line: LineAddr) -> Option<usize> {
        self.find_way(line)
    }

    /// The payload stored for `line`, if present (no recency update).
    pub fn peek(&self, line: LineAddr) -> Option<&'a T> {
        self.payload(self.find_way(line)?)
    }

    /// Iterates over the valid `(way, line, payload)` triples of the set in
    /// way order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, LineAddr, &'a T)> + '_ {
        let valid = self.valid;
        self.lines
            .iter()
            .zip(self.payload)
            .enumerate()
            .filter(move |(w, _)| valid & (1 << w) != 0)
            .map(|(w, (&line, payload))| (w, line, payload))
    }

    fn find_way(&self, line: LineAddr) -> Option<usize> {
        find_way(self.lines, self.valid, line)
    }
}

/// Scans the valid ways of a set for `line`, in ascending way order (the
/// same order the boxed implementation scanned its `Vec<Option<Entry>>`).
#[inline]
fn find_way(lines: &[LineAddr], valid: u64, line: LineAddr) -> Option<usize> {
    let mut mask = valid;
    while mask != 0 {
        let w = mask.trailing_zeros() as usize;
        if lines[w] == line {
            return Some(w);
        }
        mask &= mask - 1;
    }
    None
}

/// Mutable view of one cache set: the complete per-set access path
/// (lookup, insert, demote, invalidate) over the flat arenas.
#[derive(Debug)]
pub struct SetViewMut<'a, T> {
    lines: &'a mut [LineAddr],
    valid: &'a mut u64,
    payload: &'a mut [T],
    meta: &'a mut [u64],
    policy: ReplacementKind,
    rng: Option<&'a mut SmallRng>,
}

impl<'a, T: Copy> SetViewMut<'a, T> {
    /// Number of ways.
    pub fn num_ways(&self) -> usize {
        self.lines.len()
    }

    /// Bitmask of ways that exist in this set.
    #[inline]
    fn way_mask(&self) -> u64 {
        way_mask(self.lines.len())
    }

    #[inline]
    fn find_way(&self, line: LineAddr) -> Option<usize> {
        find_way(self.lines, *self.valid, line)
    }

    /// Returns true if `line` is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find_way(line).is_some()
    }

    /// Looks up `line`; on a hit updates replacement state and returns a
    /// reference to the payload (consuming the view so the borrow can escape).
    pub fn lookup(self, line: LineAddr) -> Option<&'a mut T> {
        let way = self.find_way(line)?;
        self.policy.touch(self.meta, way, false);
        Some(&mut self.payload[way])
    }

    /// Looks up `line` mutably without updating replacement state.
    pub fn peek_mut(self, line: LineAddr) -> Option<&'a mut T> {
        let way = self.find_way(line)?;
        Some(&mut self.payload[way])
    }

    /// Inserts `line` with `payload`, evicting a victim if the set is full.
    ///
    /// Returns the evicted entry, if any. If `line` was already present its
    /// payload is replaced and no eviction occurs.
    pub fn insert(&mut self, line: LineAddr, payload: T) -> Option<Entry<T>> {
        if let Some(way) = self.find_way(line) {
            self.policy.touch(self.meta, way, false);
            self.payload[way] = payload;
            return None;
        }
        // Prefer an invalid way (lowest index first, matching the boxed
        // implementation's scan order).
        let free = !*self.valid & self.way_mask();
        if free != 0 {
            let way = free.trailing_zeros() as usize;
            self.install(way, line, payload);
            return None;
        }
        let way = self.policy.victim(self.meta, self.rng.as_deref_mut());
        let evicted = Entry { line: self.lines[way], payload: self.payload[way] };
        self.install(way, line, payload);
        Some(evicted)
    }

    #[inline]
    fn install(&mut self, way: usize, line: LineAddr, payload: T) {
        self.lines[way] = line;
        self.payload[way] = payload;
        *self.valid |= 1 << way;
        self.policy.touch(self.meta, way, true);
    }

    /// Marks `line`'s way as the next replacement victim of this set, if the
    /// line is present (models Prime+Scope's eviction-candidate priming).
    pub fn demote(&mut self, line: LineAddr) -> bool {
        match self.find_way(line) {
            Some(way) => {
                self.policy.demote(self.meta, way);
                true
            }
            None => false,
        }
    }

    /// Applies `count` background fills in one pass: each fill installs a
    /// line minted by `mint` (with `T::default()` payload), evicting a
    /// victim when no way is free and reporting every displaced entry
    /// through `on_evict`, in eviction order.
    ///
    /// This is the aggregate noise mode's per-set state transition. Three
    /// regimes:
    ///
    /// * `count >= ways` — the burst saturates the set: every resident is
    ///   displaced and the set ends holding the newest `ways` fills with
    ///   canonical freshly-filled metadata (`init_meta` + fill touches in
    ///   way order). `mint` is still called `count` times so line minting
    ///   stays injective; the overwritten fills are never materialised.
    ///   O(ways) regardless of `count`.
    /// * free ways — filled lowest-index-first, matching
    ///   [`SetViewMut::insert`]'s preference.
    /// * full set — the remaining fills run through
    ///   [`ReplacementKind::bulk_fill`] (closed form for LRU, the exact
    ///   victim/touch loop otherwise).
    pub fn advance_fills(
        &mut self,
        count: u64,
        mut mint: impl FnMut() -> LineAddr,
        mut on_evict: impl FnMut(Entry<T>),
    ) where
        T: Default,
    {
        if count == 0 {
            return;
        }
        let ways = self.lines.len();
        if count >= ways as u64 {
            for _ in 0..count - ways as u64 {
                mint();
            }
            let valid = *self.valid;
            for w in 0..ways {
                if valid & (1 << w) != 0 {
                    on_evict(Entry { line: self.lines[w], payload: self.payload[w] });
                }
            }
            *self.valid = 0;
            self.policy.init_meta(self.meta);
            for w in 0..ways {
                let line = mint();
                self.install(w, line, T::default());
            }
            return;
        }
        let mut remaining = count;
        loop {
            let free = !*self.valid & self.way_mask();
            if free == 0 {
                break;
            }
            let way = free.trailing_zeros() as usize;
            let line = mint();
            self.install(way, line, T::default());
            remaining -= 1;
            if remaining == 0 {
                return;
            }
        }
        let lines = &mut *self.lines;
        let payload = &mut *self.payload;
        self.policy.bulk_fill(self.meta, remaining, self.rng.as_deref_mut(), |way| {
            on_evict(Entry { line: lines[way], payload: payload[way] });
            lines[way] = mint();
            payload[way] = T::default();
        });
    }

    /// Removes `line` from the set, returning its payload if it was present.
    ///
    /// The way's replacement metadata is reset (see
    /// [`ReplacementKind::reset_way`]) so the next occupant cannot inherit
    /// the departed line's recency/RRPV state — the boxed predecessor left
    /// it stale.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<T> {
        let way = self.find_way(line)?;
        *self.valid &= !(1 << way);
        self.policy.reset_way(self.meta, way);
        Some(self.payload[way])
    }
}

/// Bitmask covering the `ways` low bits.
#[inline]
fn way_mask(ways: usize) -> u64 {
    if ways >= 64 {
        u64::MAX
    } else {
        (1u64 << ways) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    fn arena<T: Copy + Default>(ways: usize, kind: ReplacementKind) -> SetArena<T> {
        SetArena::new(1, ways, kind, |s| s as u64)
    }

    #[test]
    fn insert_until_full_then_evict() {
        let mut a: SetArena<u32> = arena(4, ReplacementKind::Lru);
        let mut set = a.view_mut(0);
        for i in 0..4 {
            assert!(set.insert(line(i), i as u32).is_none());
        }
        assert_eq!(a.view(0).occupancy(), 4);
        let evicted = a.view_mut(0).insert(line(100), 100).expect("must evict");
        assert_eq!(evicted.line, line(0), "LRU victim is the oldest line");
        assert!(a.view(0).contains(line(100)));
        assert!(!a.view(0).contains(line(0)));
    }

    #[test]
    fn lookup_updates_recency() {
        let mut a: SetArena<()> = arena(2, ReplacementKind::Lru);
        a.view_mut(0).insert(line(1), ());
        a.view_mut(0).insert(line(2), ());
        // Touch line 1 so line 2 becomes LRU.
        assert!(a.view_mut(0).lookup(line(1)).is_some());
        let evicted = a.view_mut(0).insert(line(3), ()).expect("evicts");
        assert_eq!(evicted.line, line(2));
    }

    #[test]
    fn reinserting_existing_line_does_not_evict() {
        let mut a: SetArena<u8> = arena(2, ReplacementKind::Lru);
        a.view_mut(0).insert(line(1), 1);
        a.view_mut(0).insert(line(2), 2);
        assert!(a.view_mut(0).insert(line(1), 9).is_none());
        assert_eq!(a.view(0).payload(0).copied(), Some(9), "payload replaced in place");
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut a: SetArena<()> = arena(2, ReplacementKind::Lru);
        a.view_mut(0).insert(line(7), ());
        assert!(a.view_mut(0).invalidate(line(7)).is_some());
        assert!(!a.view(0).contains(line(7)));
        assert!(a.view_mut(0).invalidate(line(7)).is_none());
    }

    #[test]
    fn peek_does_not_change_victim() {
        let mut a: SetArena<()> = arena(2, ReplacementKind::Lru);
        a.view_mut(0).insert(line(1), ());
        a.view_mut(0).insert(line(2), ());
        // A shared view (no recency update) -> 1 is still LRU.
        assert!(a.view(0).contains(line(1)));
        let evicted = a.view_mut(0).insert(line(3), ()).expect("evicts");
        assert_eq!(evicted.line, line(1));
    }

    #[test]
    fn clear_empties_arena_and_resets_metadata() {
        let mut a: SetArena<()> = arena(4, ReplacementKind::TreePlru);
        for i in 0..4 {
            a.view_mut(0).insert(line(i), ());
        }
        a.clear();
        assert_eq!(a.view(0).occupancy(), 0);
        assert_eq!(a.view(0).meta_word(0), 0, "clear must re-initialise Tree-PLRU bits");
    }

    #[test]
    fn w_plus_one_congruent_lines_thrash() {
        // The fundamental eviction-set property: cycling through W+1 lines in
        // a W-way LRU set misses every time after warm-up.
        let ways = 8;
        let mut a: SetArena<()> = arena(ways, ReplacementKind::Lru);
        let lines: Vec<_> = (0..=ways as u64).map(line).collect();
        for l in &lines {
            a.view_mut(0).insert(*l, ());
        }
        for round in 0..3 {
            for l in &lines {
                let view = a.view(0);
                assert!(!view.contains(*l) || view.occupancy() == ways, "round {round}");
                a.view_mut(0).insert(*l, ());
            }
        }
    }

    #[test]
    fn view_iter_reports_way_order() {
        let mut a: SetArena<u8> = arena(4, ReplacementKind::Lru);
        a.view_mut(0).insert(line(10), 1);
        a.view_mut(0).insert(line(20), 2);
        a.view_mut(0).invalidate(line(10));
        let entries: Vec<_> = a.view(0).iter().map(|(w, l, &p)| (w, l, p)).collect();
        assert_eq!(entries, vec![(1, line(20), 2)]);
    }

    #[test]
    fn restore_from_is_exact_and_alloc_free() {
        let mut a: SetArena<u8> = arena(4, ReplacementKind::Lru);
        for i in 0..4 {
            a.view_mut(0).insert(line(i), i as u8);
        }
        let snapshot = a.clone();
        a.view_mut(0).insert(line(99), 99);
        a.view_mut(0).demote(line(2));
        a.restore_from(&snapshot);
        assert!(a.view(0).contains(line(0)) && !a.view(0).contains(line(99)));
        let evicted = a.view_mut(0).insert(line(100), 0).expect("full set evicts");
        assert_eq!(evicted.line, line(0), "restored recency must match the snapshot");
    }

    /// `advance_fills` below the saturation threshold must be
    /// indistinguishable from the same number of `insert` calls (the
    /// aggregate noise transition is exactly "k conflict insertions").
    #[test]
    fn advance_fills_matches_repeated_inserts_below_saturation() {
        for kind in [ReplacementKind::Lru, ReplacementKind::TreePlru, ReplacementKind::Srrip] {
            let mut a: SetArena<u8> = arena(8, kind);
            let mut b: SetArena<u8> = arena(8, kind);
            // Partially warm both sets identically (6 of 8 ways valid).
            for h in [&mut a, &mut b] {
                for i in 0..6 {
                    h.view_mut(0).insert(line(i), i as u8);
                }
            }
            let mut next = 100u64;
            let mut evicted_a = Vec::new();
            for _ in 0..5 {
                next += 1;
                if let Some(e) = a.view_mut(0).insert(line(next), 0) {
                    evicted_a.push(e.line);
                }
            }
            let mut next_b = 100u64;
            let mut evicted_b = Vec::new();
            b.view_mut(0).advance_fills(
                5,
                || {
                    next_b += 1;
                    line(next_b)
                },
                |e| evicted_b.push(e.line),
            );
            assert_eq!(evicted_a, evicted_b, "{kind:?}: eviction stream diverged");
            let (va, vb) = (a.view(0), b.view(0));
            assert_eq!(va.occupancy(), vb.occupancy());
            for w in 0..8 {
                assert_eq!(va.line(w), vb.line(w), "{kind:?} way {w}");
                assert_eq!(va.meta_word(w), vb.meta_word(w), "{kind:?} meta {w}");
            }
        }
    }

    /// A saturating burst (`count >= ways`) displaces every resident, leaves
    /// exactly the newest `ways` minted lines behind, and keeps minting
    /// injective (all `count` mints are consumed).
    #[test]
    fn advance_fills_saturating_burst_resets_to_newest_fills() {
        let mut a: SetArena<()> = arena(4, ReplacementKind::Lru);
        for i in 0..4 {
            a.view_mut(0).insert(line(i), ());
        }
        let mut next = 0u64;
        let mut evicted = Vec::new();
        a.view_mut(0).advance_fills(
            11,
            || {
                next += 1;
                line(1000 + next)
            },
            |e| evicted.push(e.line),
        );
        assert_eq!(next, 11, "every fill must be minted");
        evicted.sort_unstable();
        assert_eq!(evicted, (0..4).map(line).collect::<Vec<_>>());
        let v = a.view(0);
        assert_eq!(v.occupancy(), 4);
        // The survivors are the last 4 minted lines, in way order.
        for w in 0..4 {
            assert_eq!(v.line(w), Some(line(1000 + 8 + w as u64)));
        }
        // Metadata is the canonical full-fill state: way 3 was filled last,
        // so the LRU victim is way 0.
        let e = a.view_mut(0).insert(line(5000), ()).expect("full set evicts");
        assert_eq!(e.line, line(1000 + 8));
    }

    /// Zero fills are a strict no-op.
    #[test]
    fn advance_fills_zero_is_noop() {
        let mut a: SetArena<u8> = arena(4, ReplacementKind::Qlru);
        a.view_mut(0).insert(line(1), 7);
        let before: Vec<_> = (0..4).map(|w| (a.view(0).line(w), a.view(0).meta_word(w))).collect();
        a.view_mut(0).advance_fills(0, || unreachable!("no mints"), |_| panic!("no evictions"));
        let after: Vec<_> = (0..4).map(|w| (a.view(0).line(w), a.view(0).meta_word(w))).collect();
        assert_eq!(before, after);
    }

    /// The invalidate metadata-reset regression pin (LRU): refilling an
    /// invalidated way renormalises recency, so the victim sequence is
    /// exactly what a fresh fill would produce.
    #[test]
    fn lru_victim_after_invalidate_and_refill_is_pinned() {
        let mut a: SetArena<()> = arena(4, ReplacementKind::Lru);
        for i in 0..4 {
            a.view_mut(0).insert(line(i), ());
        }
        // Recency (MRU..LRU): 3 2 1 0. Invalidate line 2 (way 2).
        a.view_mut(0).invalidate(line(2));
        // Refill: the new line takes way 2 and becomes MRU.
        assert!(a.view_mut(0).insert(line(9), ()).is_none());
        // Recency now: 9 3 1 0 -> victim is line 0.
        let evicted = a.view_mut(0).insert(line(10), ()).expect("evicts");
        assert_eq!(evicted.line, line(0));
        // And the way that held line 0 was reset + refilled, so the next
        // victim is line 1, not a way with stale pre-invalidate state.
        let evicted = a.view_mut(0).insert(line(11), ()).expect("evicts");
        assert_eq!(evicted.line, line(1));
    }

    /// The invalidate metadata-reset regression pin (Tree-PLRU): after
    /// invalidating line 1, the tree immediately steers the victim search at
    /// the freed way, and the post-refill victim sequence is pinned so a
    /// future storage rewrite cannot silently change either.
    #[test]
    fn tree_plru_victim_after_invalidate_is_pinned() {
        let mut a: SetArena<()> = arena(4, ReplacementKind::TreePlru);
        for i in 0..4 {
            a.view_mut(0).insert(line(i), ());
        }
        // Fills 0..3 leave the tree pointing the victim search at way 0.
        a.view_mut(0).invalidate(line(1));
        // The freed way is the steered victim path (bits 0b101: root left,
        // node 1 right — i.e. way 1), not wherever line 1's history left it.
        assert_eq!(a.view(0).meta_word(0), 0b101);
        // Refill takes way 1 and re-points the tree away from it; under
        // pressure the victim search then walks right to way 2.
        assert!(a.view_mut(0).insert(line(9), ()).is_none());
        let evicted = a.view_mut(0).insert(line(10), ()).expect("evicts");
        assert_eq!(evicted.line, line(2));
    }
}
