//! A single cache set: tag array plus replacement metadata.

use crate::addr::LineAddr;
use crate::replacement::{ReplacementKind, ReplacementState};

/// One entry (way) of a cache set, pairing the line tag with caller-defined
/// payload (coherence state, owner bitmap, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry<T> {
    /// Physical line stored in this way.
    pub line: LineAddr,
    /// Structure-specific payload.
    pub payload: T,
}

/// A set-associative cache set with pluggable replacement policy.
///
/// The set stores full line addresses rather than tags; this wastes a few bits
/// of simulator memory but keeps lookups by `LineAddr` trivial and avoids tag
/// aliasing bugs.
#[derive(Debug, Clone)]
pub struct CacheSet<T> {
    ways: Vec<Option<Entry<T>>>,
    repl: Box<dyn ReplacementState>,
}

impl<T: Clone> CacheSet<T> {
    /// Copies `source`'s entries and replacement metadata into `self` in
    /// place, reusing `self`'s allocations (the hot path of machine
    /// snapshot restores). Both sets must have the same associativity and
    /// replacement policy.
    pub fn restore_from(&mut self, source: &CacheSet<T>) {
        self.ways.clone_from(&source.ways);
        self.repl.restore_from(source.repl.as_ref());
    }
}

impl<T> CacheSet<T> {
    /// Creates an empty set with `ways` ways and the given replacement policy.
    pub fn new(ways: usize, kind: ReplacementKind, seed: u64) -> Self {
        let mut v = Vec::with_capacity(ways);
        v.resize_with(ways, || None);
        Self { ways: v, repl: kind.build(ways, seed) }
    }

    /// Number of ways.
    pub fn num_ways(&self) -> usize {
        self.ways.len()
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.is_some()).count()
    }

    /// Returns true if `line` is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find_way(line).is_some()
    }

    fn find_way(&self, line: LineAddr) -> Option<usize> {
        self.ways
            .iter()
            .position(|w| matches!(w, Some(e) if e.line == line))
    }

    /// Looks up `line`; on a hit updates replacement state and returns a
    /// reference to the payload.
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut T> {
        let way = self.find_way(line)?;
        self.repl.touch(way, false);
        Some(&mut self.ways[way].as_mut().expect("way just found").payload)
    }

    /// Looks up `line` without updating replacement state.
    pub fn peek(&self, line: LineAddr) -> Option<&T> {
        let way = self.find_way(line)?;
        Some(&self.ways[way].as_ref().expect("way just found").payload)
    }

    /// Looks up `line` mutably without updating replacement state.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        let way = self.find_way(line)?;
        Some(&mut self.ways[way].as_mut().expect("way just found").payload)
    }

    /// Inserts `line` with `payload`, evicting a victim if the set is full.
    ///
    /// Returns the evicted entry, if any. If `line` was already present its
    /// payload is replaced and no eviction occurs.
    pub fn insert(&mut self, line: LineAddr, payload: T) -> Option<Entry<T>> {
        if let Some(way) = self.find_way(line) {
            self.repl.touch(way, false);
            let slot = self.ways[way].as_mut().expect("way just found");
            slot.payload = payload;
            return None;
        }
        // Prefer an invalid way.
        if let Some(way) = self.ways.iter().position(|w| w.is_none()) {
            self.ways[way] = Some(Entry { line, payload });
            self.repl.touch(way, true);
            return None;
        }
        let way = self.repl.victim();
        let evicted = self.ways[way].take();
        self.ways[way] = Some(Entry { line, payload });
        self.repl.touch(way, true);
        evicted
    }

    /// Marks `line`'s way as the next replacement victim of this set, if the
    /// line is present (models Prime+Scope's eviction-candidate priming).
    pub fn demote(&mut self, line: LineAddr) -> bool {
        match self.find_way(line) {
            Some(way) => {
                self.repl.demote(way);
                true
            }
            None => false,
        }
    }

    /// Removes `line` from the set, returning its payload if it was present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<T> {
        let way = self.find_way(line)?;
        self.ways[way].take().map(|e| e.payload)
    }

    /// Iterates over the valid entries of the set.
    pub fn iter(&self) -> impl Iterator<Item = &Entry<T>> {
        self.ways.iter().filter_map(|w| w.as_ref())
    }

    /// Removes every entry from the set.
    pub fn clear(&mut self) {
        for w in &mut self.ways {
            *w = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn insert_until_full_then_evict() {
        let mut set: CacheSet<u32> = CacheSet::new(4, ReplacementKind::Lru, 0);
        for i in 0..4 {
            assert!(set.insert(line(i), i as u32).is_none());
        }
        assert_eq!(set.occupancy(), 4);
        let evicted = set.insert(line(100), 100).expect("must evict");
        assert_eq!(evicted.line, line(0), "LRU victim is the oldest line");
        assert!(set.contains(line(100)));
        assert!(!set.contains(line(0)));
    }

    #[test]
    fn lookup_updates_recency() {
        let mut set: CacheSet<()> = CacheSet::new(2, ReplacementKind::Lru, 0);
        set.insert(line(1), ());
        set.insert(line(2), ());
        // Touch line 1 so line 2 becomes LRU.
        assert!(set.lookup(line(1)).is_some());
        let evicted = set.insert(line(3), ()).expect("evicts");
        assert_eq!(evicted.line, line(2));
    }

    #[test]
    fn reinserting_existing_line_does_not_evict() {
        let mut set: CacheSet<u8> = CacheSet::new(2, ReplacementKind::Lru, 0);
        set.insert(line(1), 1);
        set.insert(line(2), 2);
        assert!(set.insert(line(1), 9).is_none());
        assert_eq!(*set.peek(line(1)).expect("present"), 9);
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut set: CacheSet<()> = CacheSet::new(2, ReplacementKind::Lru, 0);
        set.insert(line(7), ());
        assert!(set.invalidate(line(7)).is_some());
        assert!(!set.contains(line(7)));
        assert!(set.invalidate(line(7)).is_none());
    }

    #[test]
    fn peek_does_not_change_victim() {
        let mut set: CacheSet<()> = CacheSet::new(2, ReplacementKind::Lru, 0);
        set.insert(line(1), ());
        set.insert(line(2), ());
        // Peek at 1 (no recency update) -> 1 is still LRU.
        let _ = set.peek(line(1));
        let evicted = set.insert(line(3), ()).expect("evicts");
        assert_eq!(evicted.line, line(1));
    }

    #[test]
    fn clear_empties_set() {
        let mut set: CacheSet<()> = CacheSet::new(4, ReplacementKind::TreePlru, 0);
        for i in 0..4 {
            set.insert(line(i), ());
        }
        set.clear();
        assert_eq!(set.occupancy(), 0);
    }

    #[test]
    fn w_plus_one_congruent_lines_thrash() {
        // The fundamental eviction-set property: cycling through W+1 lines in
        // a W-way LRU set misses every time after warm-up.
        let ways = 8;
        let mut set: CacheSet<()> = CacheSet::new(ways, ReplacementKind::Lru, 0);
        let lines: Vec<_> = (0..=ways as u64).map(line).collect();
        for l in &lines {
            set.insert(*l, ());
        }
        for round in 0..3 {
            for l in &lines {
                assert!(!set.contains(*l) || set.occupancy() == ways, "round {round}");
                set.insert(*l, ());
            }
        }
    }
}
