//! Virtual memory: 4 kB paging with randomised VA→PA mappings.
//!
//! Cloud Run containers cannot allocate huge pages (Section 3), so the
//! attacker only controls the 12 page-offset bits of each physical address.
//! [`AddressSpace`] models exactly that: virtual pages are handed out
//! contiguously, but each is backed by a physical frame chosen uniformly at
//! random from a large physical memory, without reuse.

use crate::addr::{PhysAddr, VirtAddr, PAGE_BITS, PAGE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::fmt;

/// Error returned when translating an unmapped virtual address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslateError {
    va: VirtAddr,
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "virtual address {} is not mapped", self.va)
    }
}

impl std::error::Error for TranslateError {}

/// Virtual page number of the first user mapping (a typical mmap-ish VA).
const VA_BASE_PAGE: u64 = 0x7f00_0000_0000 >> PAGE_BITS;

/// Frame-table sentinel marking a virtual page as unmapped.
const UNMAPPED: u64 = u64::MAX;

/// A per-process virtual address space backed by randomly chosen frames.
///
/// Virtual pages are handed out contiguously from a fixed base, so the page
/// table is a flat `Vec<u64>` indexed by `page_number - base` rather than a
/// hash map: translation — which runs once per simulated memory access, the
/// hottest lookup in the whole simulator — is a bounds check plus an array
/// load instead of a SipHash round.
///
/// # Examples
///
/// ```
/// use llc_cache_model::AddressSpace;
/// let mut aspace = AddressSpace::new(0x100_0000, 42);
/// let base = aspace.allocate_pages(4);
/// let pa = aspace.translate(base)?;
/// assert_eq!(pa.page_offset(), base.page_offset());
/// # Ok::<(), llc_cache_model::TranslateError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    /// Physical frame backing each virtual page, indexed by
    /// `page_number - VA_BASE_PAGE`; [`UNMAPPED`] marks a hole (never
    /// produced today, but kept as a guard against stale handles).
    frames: Vec<u64>,
    used_frames: HashSet<u64>,
    total_frames: u64,
    next_va_page: u64,
    rng: StdRng,
}

impl AddressSpace {
    /// Default number of physical frames (16 GiB of simulated DRAM).
    pub const DEFAULT_FRAMES: u64 = (16u64 << 30) / PAGE_SIZE;

    /// Creates an address space drawing frames from `total_frames` physical
    /// frames, using `seed` for the frame lottery.
    ///
    /// # Panics
    ///
    /// Panics if `total_frames` is zero.
    pub fn new(total_frames: u64, seed: u64) -> Self {
        assert!(total_frames > 0, "total_frames must be non-zero");
        Self {
            frames: Vec::new(),
            used_frames: HashSet::new(),
            total_frames,
            next_va_page: VA_BASE_PAGE,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates an address space with the default 16 GiB of physical memory.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(Self::DEFAULT_FRAMES, seed)
    }

    /// Reseeds the frame-lottery RNG. Existing mappings keep their frames;
    /// only future allocations draw from the new stream. Machine snapshot
    /// restores use this so that each rewound trial samples a fresh
    /// physical layout instead of replaying the snapshot's.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Copies `source`'s mappings and RNG position into `self` in place,
    /// reusing the page-table and frame-set allocations (hot path of
    /// machine restores; the page table restores as one `clone_from`
    /// truncation over the flat frame vector).
    pub fn restore_from(&mut self, source: &AddressSpace) {
        self.frames.clone_from(&source.frames);
        self.used_frames.clone_from(&source.used_frames);
        self.total_frames = source.total_frames;
        self.next_va_page = source.next_va_page;
        self.rng = source.rng.clone();
    }

    /// Number of virtual pages currently mapped.
    pub fn mapped_pages(&self) -> usize {
        self.frames.len()
    }

    /// Allocates `count` virtually-contiguous pages and returns the base
    /// virtual address. Each page is backed by a distinct random frame.
    ///
    /// # Panics
    ///
    /// Panics if physical memory is exhausted.
    pub fn allocate_pages(&mut self, count: usize) -> VirtAddr {
        let base_page = self.next_va_page;
        self.next_va_page += count as u64;
        self.frames.reserve(count);
        for _ in 0..count {
            let frame = self.pick_frame();
            self.frames.push(frame);
        }
        VirtAddr::new(base_page << PAGE_BITS)
    }

    /// Allocates enough pages to cover `bytes` bytes and returns the base.
    pub fn allocate_bytes(&mut self, bytes: usize) -> VirtAddr {
        let pages = bytes.div_ceil(PAGE_SIZE as usize).max(1);
        self.allocate_pages(pages)
    }

    fn pick_frame(&mut self) -> u64 {
        assert!(
            (self.used_frames.len() as u64) < self.total_frames,
            "out of simulated physical memory"
        );
        loop {
            let frame = self.rng.gen_range(0..self.total_frames);
            if self.used_frames.insert(frame) {
                return frame;
            }
        }
    }

    /// Translates a virtual address to its physical address.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateError`] if the page containing `va` was never
    /// allocated through this address space.
    #[inline]
    pub fn translate(&self, va: VirtAddr) -> Result<PhysAddr, TranslateError> {
        let idx = va.page_number().wrapping_sub(VA_BASE_PAGE);
        let frame = match self.frames.get(idx as usize) {
            Some(&f) if f != UNMAPPED => f,
            _ => return Err(TranslateError { va }),
        };
        Ok(PhysAddr::new((frame << PAGE_BITS) | va.page_offset()))
    }

    /// Translates, panicking on unmapped addresses. Intended for internal use
    /// where the address is known to be mapped.
    pub fn translate_unchecked(&self, va: VirtAddr) -> PhysAddr {
        self.translate(va).expect("address must be mapped")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::LINE_SIZE;

    #[test]
    fn page_offset_preserved_by_translation() {
        let mut a = AddressSpace::with_seed(1);
        let base = a.allocate_pages(8);
        for i in 0..8u64 {
            for off in [0u64, 64, 640, 4032] {
                let va = base.offset(i * PAGE_SIZE + off);
                let pa = a.translate(va).expect("mapped");
                assert_eq!(pa.page_offset(), off);
            }
        }
    }

    #[test]
    fn frames_are_distinct() {
        let mut a = AddressSpace::with_seed(7);
        let base = a.allocate_pages(512);
        let mut frames = HashSet::new();
        for i in 0..512u64 {
            let pa = a.translate(base.offset(i * PAGE_SIZE)).expect("mapped");
            assert!(frames.insert(pa.frame_number()), "frame reused");
        }
    }

    #[test]
    fn unmapped_address_errors() {
        let a = AddressSpace::with_seed(3);
        assert!(a.translate(VirtAddr::new(0x1234_5000)).is_err());
    }

    #[test]
    fn allocations_are_virtually_contiguous() {
        let mut a = AddressSpace::with_seed(5);
        let b1 = a.allocate_pages(2);
        let b2 = a.allocate_pages(1);
        assert_eq!(b2.raw(), b1.raw() + 2 * PAGE_SIZE);
    }

    #[test]
    fn reproducible_for_same_seed() {
        let mut a = AddressSpace::with_seed(11);
        let mut b = AddressSpace::with_seed(11);
        let va_a = a.allocate_pages(16);
        let va_b = b.allocate_pages(16);
        for i in 0..16u64 {
            let pa_a = a.translate(va_a.offset(i * PAGE_SIZE)).expect("mapped");
            let pa_b = b.translate(va_b.offset(i * PAGE_SIZE)).expect("mapped");
            assert_eq!(pa_a, pa_b);
        }
    }

    #[test]
    fn allocate_bytes_rounds_up() {
        let mut a = AddressSpace::with_seed(2);
        let before = a.mapped_pages();
        a.allocate_bytes(LINE_SIZE as usize);
        assert_eq!(a.mapped_pages(), before + 1);
        a.allocate_bytes(PAGE_SIZE as usize + 1);
        assert_eq!(a.mapped_pages(), before + 3);
    }
}
