//! Address newtypes and constants shared by the whole workspace.
//!
//! The attack operates on 64-byte cache lines inside 4 kB pages. An
//! unprivileged attacker controls a virtual address; the hardware maps it to a
//! physical address whose low 12 bits (the page offset) equal the virtual page
//! offset, while the upper bits are chosen by the OS and are unknown to the
//! attacker. All cache indexing is performed on physical addresses.

use std::fmt;

/// Number of bytes in a cache line (64 B on every CPU modelled here).
pub const LINE_SIZE: u64 = 64;
/// log2 of [`LINE_SIZE`]; the number of line-offset bits.
pub const LINE_BITS: u32 = 6;
/// Number of bytes in a standard small page (4 kB).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`]; the number of page-offset bits.
pub const PAGE_BITS: u32 = 12;
/// Number of cache lines in one 4 kB page (64).
pub const LINES_PER_PAGE: u64 = PAGE_SIZE / LINE_SIZE;

/// A virtual (attacker- or victim-visible) byte address.
///
/// # Examples
///
/// ```
/// use llc_cache_model::VirtAddr;
/// let va = VirtAddr::new(0x7f00_1234_5678);
/// assert_eq!(va.page_offset(), 0x678);
/// assert_eq!(va.line_offset(), 0x38);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

/// A physical byte address, as produced by the (simulated) page tables.
///
/// # Examples
///
/// ```
/// use llc_cache_model::PhysAddr;
/// let pa = PhysAddr::new(0x1_0000_0040);
/// assert_eq!(pa.line().offset_in_page(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

/// A physical cache-line address: a [`PhysAddr`] with the low 6 bits dropped.
///
/// Cache lookups, snoop-filter entries and eviction sets all operate at line
/// granularity, so most of the model uses this type instead of raw byte
/// addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl VirtAddr {
    /// Creates a virtual address from a raw byte address.
    pub const fn new(addr: u64) -> Self {
        Self(addr)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the offset of this address within its 4 kB page (bits 11:0).
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Returns the offset of this address within its cache line (bits 5:0).
    pub const fn line_offset(self) -> u64 {
        self.0 & (LINE_SIZE - 1)
    }

    /// Returns the virtual page number (address divided by the page size).
    pub const fn page_number(self) -> u64 {
        self.0 >> PAGE_BITS
    }

    /// Returns the address of the start of the containing page.
    pub const fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// Returns a new address offset by `delta` bytes.
    pub const fn offset(self, delta: u64) -> VirtAddr {
        VirtAddr(self.0 + delta)
    }
}

impl PhysAddr {
    /// Creates a physical address from a raw byte address.
    pub const fn new(addr: u64) -> Self {
        Self(addr)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the offset of this address within its 4 kB page (bits 11:0).
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// Returns the physical frame number (address divided by the page size).
    pub const fn frame_number(self) -> u64 {
        self.0 >> PAGE_BITS
    }

    /// Returns the containing physical cache line.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_BITS)
    }
}

impl LineAddr {
    /// Creates a line address from a *line number* (physical address >> 6).
    pub const fn from_line_number(n: u64) -> Self {
        Self(n)
    }

    /// Returns the line number (physical address >> 6).
    pub const fn line_number(self) -> u64 {
        self.0
    }

    /// Returns the physical byte address of the first byte of the line.
    pub const fn base_addr(self) -> PhysAddr {
        PhysAddr(self.0 << LINE_BITS)
    }

    /// Returns the index of this line within its 4 kB page (0..=63).
    pub const fn offset_in_page(self) -> u64 {
        self.0 & (LINES_PER_PAGE - 1)
    }

    /// Returns the page-offset (byte) of the first byte of this line.
    pub const fn page_offset_bytes(self) -> u64 {
        self.offset_in_page() << LINE_BITS
    }
}

impl From<PhysAddr> for LineAddr {
    fn from(pa: PhysAddr) -> Self {
        pa.line()
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VA:{:#x}", self.0)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PA:{:#x}", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Line:{:#x}", self.0 << LINE_BITS)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_and_line_offsets() {
        let va = VirtAddr::new(0x1234_5678);
        assert_eq!(va.page_offset(), 0x678);
        assert_eq!(va.line_offset(), 0x38);
        assert_eq!(va.page_number(), 0x12345);
        assert_eq!(va.page_base().raw(), 0x1234_5000);
    }

    #[test]
    fn phys_line_round_trip() {
        let pa = PhysAddr::new(0xdead_beef);
        let line = pa.line();
        assert_eq!(line.base_addr().raw(), 0xdead_beef & !0x3f);
        assert_eq!(line.offset_in_page(), (0xeef >> 6) & 0x3f);
    }

    #[test]
    fn virt_offset_stays_in_page() {
        let va = VirtAddr::new(0x1000);
        assert_eq!(va.offset(0x40).page_offset(), 0x40);
        assert_eq!(va.offset(0x40).page_number(), va.page_number());
    }

    #[test]
    fn line_page_offset_bytes() {
        let pa = PhysAddr::new(0x7000 + 3 * 64);
        assert_eq!(pa.line().page_offset_bytes(), 3 * 64);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", VirtAddr::new(0)).is_empty());
        assert!(!format!("{}", PhysAddr::new(0)).is_empty());
        assert!(!format!("{}", LineAddr::from_line_number(0)).is_empty());
    }

    #[test]
    fn phys_from_into_line() {
        let pa = PhysAddr::new(0x40);
        let line: LineAddr = pa.into();
        assert_eq!(line.line_number(), 1);
    }
}
