//! Config-driven hierarchy composition.
//!
//! The paper demonstrates its attack on one microarchitectural point — a
//! sliced *non-inclusive* LLC with a snoop-filter directory — but the
//! feasibility question is parametric in the hierarchy. [`HierarchyConfig`]
//! makes that composition data instead of code: the inclusion policy, the
//! slice hash, the per-level replacement policy and the SF/directory
//! geometry are all fields of the [`CacheSpec`], so a "new scenario" is a
//! config struct, not a fork of the simulator (see DESIGN.md, "Hierarchy
//! composition").
//!
//! The default configuration reproduces the paper's Skylake-SP protocol
//! bit-identically — every golden experiment output pins this.

use std::sync::Arc;

use crate::geometry::SlicedGeometry;
use crate::presets::CacheSpec;
use crate::replacement::ReplacementKind;
use crate::slice::{ModuloSliceHash, SliceHash, XorFoldSliceHash};

/// Which inclusion property the shared LLC maintains with respect to the
/// private L1/L2 caches.
///
/// The policy decides where a line's *backing store* lives and which
/// structure's evictions reach into the private caches — exactly the
/// properties the paper's Step 1–3 algorithms depend on (Section 2.3):
///
/// * [`NonInclusive`](Self::NonInclusive) — private lines live only in
///   L1/L2 and are tracked by a snoop-filter entry; Shared lines move into
///   the LLC. SF evictions back-invalidate; this directory contention is
///   the paper's attack surface.
/// * [`Inclusive`](Self::Inclusive) — the LLC is a superset of every
///   private cache. An LLC eviction back-invalidates L1/L2 everywhere (the
///   classic Prime+Probe surface) and no snoop filter is needed.
/// * [`Exclusive`](Self::Exclusive) — the LLC is a victim cache: it only
///   receives a clean fill when a private cache evicts a line, and an LLC
///   hit migrates the line back out. The SF acts as the directory for all
///   private copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InclusionPolicy {
    /// Skylake-SP-style non-inclusive LLC plus snoop filter (the paper's
    /// target and this crate's default; bit-identical to the pre-config
    /// behaviour).
    #[default]
    NonInclusive,
    /// LLC holds a superset of all private caches; evictions
    /// back-invalidate.
    Inclusive,
    /// LLC as victim cache: filled only by private-cache evictions.
    Exclusive,
}

impl InclusionPolicy {
    /// Parses a CLI/env spelling (`non-inclusive`, `inclusive`,
    /// `exclusive`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "non-inclusive" | "noninclusive" | "ni" => Some(Self::NonInclusive),
            "inclusive" | "i" => Some(Self::Inclusive),
            "exclusive" | "x" => Some(Self::Exclusive),
            _ => None,
        }
    }

    /// Canonical spelling, accepted by [`Self::parse`].
    pub fn label(self) -> &'static str {
        match self {
            Self::NonInclusive => "non-inclusive",
            Self::Inclusive => "inclusive",
            Self::Exclusive => "exclusive",
        }
    }
}

/// Which slice-hash function routes physical lines to LLC/SF slices.
///
/// The two named variants cover the realistic case (an opaque
/// complex-addressing hash, [`XorFoldSliceHash`]) and the fully predictable
/// case used to study what an attacker gains from knowing the hash
/// ([`ModuloSliceHash`]); `Custom` accepts any user-provided
/// [`SliceHash`] implementation.
#[derive(Debug, Clone, Default)]
pub enum SliceHashSelect {
    /// The default XOR-fold + multiply-shift hash ([`XorFoldSliceHash`]).
    #[default]
    XorFold,
    /// Low-bits modulo hash ([`ModuloSliceHash`]): trivially predictable.
    Modulo,
    /// A caller-supplied hash; its `num_slices()` must match the spec's
    /// LLC slice count.
    Custom(Arc<dyn SliceHash>),
}

impl PartialEq for SliceHashSelect {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Self::XorFold, Self::XorFold) | (Self::Modulo, Self::Modulo) => true,
            (Self::Custom(a), Self::Custom(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl SliceHashSelect {
    /// Parses a CLI/env spelling (`xor-fold`, `modulo`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "xor-fold" | "xorfold" => Some(Self::XorFold),
            "modulo" | "mod" => Some(Self::Modulo),
            _ => None,
        }
    }

    /// Canonical spelling of the selection (custom hashes report their
    /// `Debug` type on the machine spec instead).
    pub fn label(&self) -> &'static str {
        match self {
            Self::XorFold => "xor-fold",
            Self::Modulo => "modulo",
            Self::Custom(_) => "custom",
        }
    }

    /// Instantiates the selected hash for `num_slices` slices.
    ///
    /// # Panics
    ///
    /// Panics if a `Custom` hash disagrees with `num_slices` — a mismatch
    /// would silently route lines to out-of-range slices.
    pub fn build(&self, num_slices: usize) -> Arc<dyn SliceHash> {
        match self {
            Self::XorFold => Arc::new(XorFoldSliceHash::new(num_slices)),
            Self::Modulo => Arc::new(ModuloSliceHash::new(num_slices)),
            Self::Custom(hash) => {
                assert_eq!(
                    hash.num_slices(),
                    num_slices,
                    "custom slice hash must cover the spec's slice count"
                );
                Arc::clone(hash)
            }
        }
    }
}

/// Per-level replacement-policy overrides.
///
/// `None` inherits the spec-wide default ([`CacheSpec::private_replacement`]
/// for L1/L2, [`CacheSpec::shared_replacement`] for LLC/SF), so a default
/// `LevelReplacement` changes nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LevelReplacement {
    /// Replacement policy of every core's L1.
    pub l1: Option<ReplacementKind>,
    /// Replacement policy of every core's L2.
    pub l2: Option<ReplacementKind>,
    /// Replacement policy of the LLC slices.
    pub llc: Option<ReplacementKind>,
    /// Replacement policy of the SF slices.
    pub sf: Option<ReplacementKind>,
}

/// Composition of the simulated hierarchy: inclusion policy, slice hash,
/// per-level replacement and directory geometry.
///
/// Carried by [`CacheSpec::hierarchy`]; the default value reproduces the
/// paper's machine bit-identically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HierarchyConfig {
    /// LLC inclusion policy.
    pub inclusion: InclusionPolicy,
    /// Slice-hash selection for the LLC and SF.
    pub slice_hash: SliceHashSelect,
    /// Per-level replacement overrides.
    pub replacement: LevelReplacement,
    /// Overrides the spec's SF/directory geometry (e.g. to study directory
    /// size). Must keep the LLC's slice and per-slice set counts — the
    /// shared-location fast path depends on the two structures being
    /// parallel arrays.
    pub sf_geometry: Option<SlicedGeometry>,
}

impl CacheSpec {
    /// Returns the spec with the given inclusion policy.
    pub fn with_inclusion(mut self, policy: InclusionPolicy) -> Self {
        self.hierarchy.inclusion = policy;
        self
    }

    /// Returns the spec with the given slice-hash selection.
    pub fn with_slice_hash_select(mut self, select: SliceHashSelect) -> Self {
        self.hierarchy.slice_hash = select;
        self
    }

    /// Returns the spec with every level using `kind` for replacement.
    pub fn with_replacement(mut self, kind: ReplacementKind) -> Self {
        self.private_replacement = kind;
        self.shared_replacement = kind;
        self.hierarchy.replacement = LevelReplacement::default();
        self
    }

    /// Returns the spec with per-level replacement overrides.
    pub fn with_level_replacement(mut self, levels: LevelReplacement) -> Self {
        self.hierarchy.replacement = levels;
        self
    }

    /// Returns the spec with an overridden SF/directory geometry.
    pub fn with_sf_geometry(mut self, geometry: SlicedGeometry) -> Self {
        self.sf = geometry;
        self.hierarchy.sf_geometry = Some(geometry);
        self
    }

    /// Returns the spec with a complete hierarchy composition.
    pub fn with_hierarchy(mut self, config: HierarchyConfig) -> Self {
        if let Some(geometry) = config.sf_geometry {
            self.sf = geometry;
        }
        self.hierarchy = config;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CacheGeometry;

    #[test]
    fn default_config_is_non_inclusive_xor_fold() {
        let config = HierarchyConfig::default();
        assert_eq!(config.inclusion, InclusionPolicy::NonInclusive);
        assert_eq!(config.slice_hash, SliceHashSelect::XorFold);
        assert_eq!(config.replacement, LevelReplacement::default());
        assert!(config.sf_geometry.is_none());
    }

    #[test]
    fn inclusion_parse_round_trips() {
        for policy in
            [InclusionPolicy::NonInclusive, InclusionPolicy::Inclusive, InclusionPolicy::Exclusive]
        {
            assert_eq!(InclusionPolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(InclusionPolicy::parse("bogus"), None);
    }

    #[test]
    fn slice_hash_parse_round_trips() {
        for select in [SliceHashSelect::XorFold, SliceHashSelect::Modulo] {
            assert_eq!(SliceHashSelect::parse(select.label()), Some(select.clone()));
        }
        assert_eq!(SliceHashSelect::parse("custom"), None);
    }

    #[test]
    fn custom_slice_hash_compares_by_identity() {
        let a: Arc<dyn SliceHash> = Arc::new(ModuloSliceHash::new(4));
        let same = SliceHashSelect::Custom(Arc::clone(&a));
        let other = SliceHashSelect::Custom(Arc::new(ModuloSliceHash::new(4)));
        assert_eq!(SliceHashSelect::Custom(a.clone()), same);
        assert_ne!(SliceHashSelect::Custom(a), other);
    }

    #[test]
    fn build_respects_selection() {
        assert_eq!(SliceHashSelect::XorFold.build(28).num_slices(), 28);
        assert_eq!(SliceHashSelect::Modulo.build(26).num_slices(), 26);
        let custom: Arc<dyn SliceHash> = Arc::new(ModuloSliceHash::new(8));
        assert_eq!(SliceHashSelect::Custom(custom).build(8).num_slices(), 8);
    }

    #[test]
    #[should_panic(expected = "custom slice hash")]
    fn build_rejects_mismatched_custom_hash() {
        let custom: Arc<dyn SliceHash> = Arc::new(ModuloSliceHash::new(8));
        let _ = SliceHashSelect::Custom(custom).build(9);
    }

    #[test]
    fn spec_builders_compose() {
        let sf = SlicedGeometry::new(CacheGeometry::new(32, 7), 2);
        let spec = CacheSpec::tiny_test()
            .with_inclusion(InclusionPolicy::Inclusive)
            .with_slice_hash_select(SliceHashSelect::Modulo)
            .with_level_replacement(LevelReplacement {
                llc: Some(ReplacementKind::Qlru),
                ..LevelReplacement::default()
            })
            .with_sf_geometry(sf);
        assert_eq!(spec.hierarchy.inclusion, InclusionPolicy::Inclusive);
        assert_eq!(spec.hierarchy.slice_hash, SliceHashSelect::Modulo);
        assert_eq!(spec.hierarchy.replacement.llc, Some(ReplacementKind::Qlru));
        assert_eq!(spec.sf, sf);
        assert_eq!(spec.hierarchy.sf_geometry, Some(sf));
    }

    #[test]
    fn with_replacement_sets_every_level() {
        let spec = CacheSpec::tiny_test().with_replacement(ReplacementKind::TreePlru);
        assert_eq!(spec.private_replacement, ReplacementKind::TreePlru);
        assert_eq!(spec.shared_replacement, ReplacementKind::TreePlru);
    }
}
