//! LLC/SF slice hash functions.
//!
//! On Intel server CPUs every physical address above the line offset is fed
//! through an undocumented, non-linear hash that selects one of the LLC/SF
//! slices (Section 2.1 and 2.2.1, [McCalpin 2021]). The exact function is not
//! public; what matters for the attack is that
//!
//! 1. the hash depends on physical-address bits the attacker cannot control,
//!    so partial control of the address does not shrink the slice uncertainty;
//! 2. it distributes lines uniformly across slices;
//! 3. it is a pure function of the physical line address, so two accesses to
//!    the same line always reach the same slice; and
//! 4. the L2 set index bits remain a subset of the LLC set index bits
//!    (the hash does not change the within-slice set index), which is the
//!    property L2-driven candidate filtering (Section 5.1) relies on.
//!
//! [`XorFoldSliceHash`] reproduces these properties with an XOR bit-matrix
//! fold followed by a multiply-shift reduction to the (possibly non-power-of-
//! two) slice count, mirroring the structure of the reverse-engineered Intel
//! hashes without claiming to be bit-exact.

use crate::addr::LineAddr;

/// A function mapping physical cache lines to LLC/SF slice numbers.
///
/// Implementations must be pure: the same line always maps to the same slice.
pub trait SliceHash: std::fmt::Debug + Send + Sync {
    /// Number of slices this hash selects between.
    fn num_slices(&self) -> usize;

    /// Returns the slice index (`0..num_slices()`) for a physical line.
    fn slice_of(&self, line: LineAddr) -> usize;
}

/// Default slice hash used by the simulated machines.
///
/// The hash XOR-folds the physical line number with a fixed bank of odd
/// multipliers (a "complex addressing"-style bit mixture) and reduces the
/// result to `0..num_slices` with a multiply-shift, which keeps the
/// distribution uniform even for non-power-of-two slice counts such as 28.
///
/// # Examples
///
/// ```
/// use llc_cache_model::{SliceHash, XorFoldSliceHash, PhysAddr};
/// let hash = XorFoldSliceHash::new(28);
/// let s = hash.slice_of(PhysAddr::new(0x1234_5000).line());
/// assert!(s < 28);
/// ```
#[derive(Debug, Clone)]
pub struct XorFoldSliceHash {
    num_slices: usize,
    /// Odd 64-bit mixing constants, one per XOR-fold round.
    multipliers: [u64; 3],
}

impl XorFoldSliceHash {
    /// Creates the default hash for `num_slices` slices.
    ///
    /// # Panics
    ///
    /// Panics if `num_slices` is zero.
    pub fn new(num_slices: usize) -> Self {
        assert!(num_slices > 0, "num_slices must be non-zero");
        Self {
            num_slices,
            // Fixed odd constants (splitmix64-style) so the mapping is stable
            // across runs and therefore reproducible in tests and benches.
            multipliers: [0x9e37_79b9_7f4a_7c15, 0xbf58_476d_1ce4_e5b9, 0x94d0_49bb_1331_11eb],
        }
    }

    fn mix(&self, mut x: u64) -> u64 {
        for &m in &self.multipliers {
            x ^= x >> 27;
            x = x.wrapping_mul(m);
            x ^= x >> 31;
        }
        x
    }
}

impl SliceHash for XorFoldSliceHash {
    fn num_slices(&self) -> usize {
        self.num_slices
    }

    fn slice_of(&self, line: LineAddr) -> usize {
        let mixed = self.mix(line.line_number());
        // Multiply-shift reduction: unbiased enough for uniformity tests and
        // cheap; works for non-power-of-two slice counts (e.g. 22, 26, 28).
        (((mixed as u128) * (self.num_slices as u128)) >> 64) as usize
    }
}

/// A trivially predictable slice "hash" that uses low physical-address bits.
///
/// Useful in unit tests where full control over the slice of a synthetic
/// address is needed. Not used by the realistic machine presets.
#[derive(Debug, Clone, Copy)]
pub struct ModuloSliceHash {
    num_slices: usize,
}

impl ModuloSliceHash {
    /// Creates a modulo hash over `num_slices` slices.
    ///
    /// # Panics
    ///
    /// Panics if `num_slices` is zero.
    pub fn new(num_slices: usize) -> Self {
        assert!(num_slices > 0, "num_slices must be non-zero");
        Self { num_slices }
    }
}

impl SliceHash for ModuloSliceHash {
    fn num_slices(&self) -> usize {
        self.num_slices
    }

    fn slice_of(&self, line: LineAddr) -> usize {
        (line.line_number() % self.num_slices as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysAddr;

    #[test]
    fn deterministic() {
        let h = XorFoldSliceHash::new(28);
        let line = PhysAddr::new(0xabc0_1240).line();
        assert_eq!(h.slice_of(line), h.slice_of(line));
    }

    #[test]
    fn in_range() {
        for slices in [1usize, 2, 22, 26, 28] {
            let h = XorFoldSliceHash::new(slices);
            for i in 0..10_000u64 {
                let s = h.slice_of(LineAddr::from_line_number(i * 977));
                assert!(s < slices);
            }
        }
    }

    #[test]
    fn roughly_uniform_over_slices() {
        let slices = 28;
        let h = XorFoldSliceHash::new(slices);
        let n = 280_000u64;
        let mut counts = vec![0usize; slices];
        for i in 0..n {
            counts[h.slice_of(LineAddr::from_line_number(i))] += 1;
        }
        let expected = n as f64 / slices as f64;
        for &c in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "slice count {c} deviates {dev} from {expected}");
        }
    }

    #[test]
    fn page_offset_does_not_determine_slice() {
        // Lines with identical page offsets must still spread over many
        // slices, otherwise the attacker could shrink the slice uncertainty.
        let slices = 28;
        let h = XorFoldSliceHash::new(slices);
        let mut seen = std::collections::HashSet::new();
        for frame in 0..2_000u64 {
            let pa = PhysAddr::new(frame * 4096 + 0x240);
            seen.insert(h.slice_of(pa.line()));
        }
        assert_eq!(seen.len(), slices);
    }

    #[test]
    fn modulo_hash_is_predictable() {
        let h = ModuloSliceHash::new(4);
        assert_eq!(h.slice_of(LineAddr::from_line_number(7)), 3);
        assert_eq!(h.num_slices(), 4);
    }
}
