//! The shared cache hierarchy: per-core L1/L2, a sliced shared LLC, and a
//! sliced snoop filter (SF), composed according to
//! [`InclusionPolicy`](crate::InclusionPolicy).
//!
//! The default (non-inclusive) protocol follows Section 2.3 of the paper:
//!
//! * Lines held in Exclusive/Modified state by one core live only in that
//!   core's private caches and are tracked by an SF entry.
//! * Lines in Shared state are inserted into the LLC and their SF entry is
//!   freed; the LLC serves later read requests.
//! * Evicting an SF entry back-invalidates the corresponding line from the
//!   owning cores' private caches (optionally re-inserting it into the LLC,
//!   mimicking the reuse predictor).
//! * A request that hits another core's private line (an SF hit) transitions
//!   the line to Shared and moves it into the LLC.
//!
//! The `Inclusive` and `Exclusive` policies replace only the *shared stage*
//! of the access path (which structure backs a line and whose evictions
//! back-invalidate); the private L1/L2 stage is common to all three. See
//! DESIGN.md, "Hierarchy composition", for the per-policy state machines.
//!
//! The hierarchy is purely functional state: it knows nothing about time.
//! Latencies, noise and agents are layered on top by the `llc-machine` crate.

use crate::addr::LineAddr;
use crate::cache::{Cache, SetLocation, SharedGeometry, SlicedCache};
use crate::config::InclusionPolicy;
use crate::presets::CacheSpec;
use crate::slice::SliceHash;
use std::sync::Arc;

/// Coherence state of a line in a private cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherenceState {
    /// Present in exactly one private cache, clean.
    Exclusive,
    /// Present in exactly one private cache, dirty.
    Modified,
    /// Potentially present in several private caches; backed by the LLC.
    Shared,
}

/// Payload stored in L1/L2 ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrivLine {
    /// Coherence state of this private copy.
    pub state: CoherenceState,
}

impl Default for PrivLine {
    /// Placeholder payload for invalid ways of the flat set arenas; never
    /// read while a way's valid bit is clear.
    fn default() -> Self {
        Self { state: CoherenceState::Shared }
    }
}

/// Payload stored in LLC ways. LLC-resident lines are Shared by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LlcLine;

/// Payload stored in snoop-filter ways: which cores own a private copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SfEntry {
    /// Bitmask of cores holding a private copy. Under the non-inclusive
    /// policy this tracks E/M owners only (Shared lines are LLC-backed);
    /// under the exclusive policy the SF is the directory for *all* private
    /// copies, including Shared ones. Zero for synthetic background-noise
    /// lines that belong to other tenants.
    pub owners: u64,
}

impl SfEntry {
    fn owner(core: usize) -> Self {
        Self { owners: 1 << core }
    }

    fn iter_owners(self) -> impl Iterator<Item = usize> {
        (0..64).filter(move |c| self.owners & (1 << c) != 0)
    }
}

/// Identifies a core of the simulated machine.
pub type CoreId = usize;

/// The kind of memory access being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Data or instruction read (code fetches behave like reads here).
    Read,
    /// Store; installs the line in Modified state.
    Write,
}

/// Which structure ultimately served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// Served by the requesting core's L1.
    L1,
    /// Served by the requesting core's L2.
    L2,
    /// Served by the shared LLC (line was Shared).
    Llc,
    /// Served by a cross-core snoop (the line was private to another core).
    SfSnoop,
    /// Served by DRAM.
    Memory,
}

/// Result of a single access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Which level served the access.
    pub level: HitLevel,
    /// Whether the access allocated a new SF entry and thereby evicted
    /// another tenant/core's SF entry.
    pub displaced_sf_entry: bool,
}

/// Configuration knobs for hierarchy behaviour that the paper identifies as
/// microarchitecture-dependent.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyOptions {
    /// Probability that a line evicted due to an SF-entry or L2 eviction is
    /// re-inserted into the LLC (the "reuse predictor" of Section 2.3).
    /// The default is 0.0, i.e. clean evicted private lines are dropped;
    /// the attack does not depend on this behaviour.
    pub reuse_insert_probability: f64,
}

impl Default for HierarchyOptions {
    fn default() -> Self {
        Self { reuse_insert_probability: 0.0 }
    }
}

/// The complete cache hierarchy of one simulated host.
///
/// Cloning a hierarchy produces an exact, independent copy of every tag
/// array and all replacement metadata; `llc-machine`'s snapshot/reset
/// machinery relies on this to reuse one warmed hierarchy across many
/// parallel trials instead of reconstructing it.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    spec: CacheSpec,
    options: HierarchyOptions,
    policy: InclusionPolicy,
    slice_hash: Arc<dyn SliceHash>,
    l1: Vec<Cache<PrivLine>>,
    l2: Vec<Cache<PrivLine>>,
    llc: SlicedCache<LlcLine>,
    sf: SlicedCache<SfEntry>,
    /// Counter used to mint synthetic noise line addresses.
    noise_counter: u64,
    /// Deterministic counter used in place of an RNG for the reuse predictor.
    reuse_counter: u64,
    /// Reusable back-invalidation queue for [`Hierarchy::noise_access_bulk`]:
    /// `(evicted line, core mask)` pairs collected while the set views are
    /// borrowed, applied once the burst completes. Contents are dead between
    /// calls; the buffer exists only so noise bursts allocate nothing.
    noise_evictions: Vec<(LineAddr, u64)>,
}

/// Synthetic noise lines live far above any address the paging module hands
/// out (frame numbers are bounded by physical memory size).
const NOISE_LINE_BASE: u64 = 1 << 56;

/// Bitmask with one bit set per core id in `0..cores`.
fn core_mask(cores: usize) -> u64 {
    if cores >= 64 {
        u64::MAX
    } else {
        (1u64 << cores) - 1
    }
}

impl Hierarchy {
    /// Creates an empty hierarchy for `spec`, composed according to
    /// `spec.hierarchy` (inclusion policy, slice-hash selection, per-level
    /// replacement overrides and SF geometry).
    pub fn new(spec: CacheSpec, seed: u64) -> Self {
        let hash = spec.hierarchy.slice_hash.build(spec.llc.num_slices());
        Self::with_slice_hash(spec, hash, seed)
    }

    /// Creates an empty hierarchy with a caller-supplied slice hash
    /// (overriding `spec.hierarchy.slice_hash`).
    pub fn with_slice_hash(mut spec: CacheSpec, hash: Arc<dyn SliceHash>, seed: u64) -> Self {
        if let Some(geometry) = spec.hierarchy.sf_geometry {
            spec.sf = geometry;
        }
        // The access path computes one shared (slice, set) location and uses
        // it for both the LLC and the SF, which is only sound while the two
        // structures share slice count and per-slice set count (true of
        // every modelled CPU; Section 2.3 describes them as parallel arrays).
        assert_eq!(
            spec.llc.num_slices(),
            spec.sf.num_slices(),
            "LLC and SF must have the same slice count"
        );
        assert_eq!(
            spec.llc.slice_geometry().sets(),
            spec.sf.slice_geometry().sets(),
            "LLC and SF must have the same per-slice set count"
        );
        let levels = spec.hierarchy.replacement;
        let l1_repl = levels.l1.unwrap_or(spec.private_replacement);
        let l2_repl = levels.l2.unwrap_or(spec.private_replacement);
        let llc_repl = levels.llc.unwrap_or(spec.shared_replacement);
        let sf_repl = levels.sf.unwrap_or(spec.shared_replacement);
        let l1 = (0..spec.cores)
            .map(|c| Cache::new(spec.l1, l1_repl, seed ^ (c as u64) << 8))
            .collect();
        let l2 = (0..spec.cores)
            .map(|c| Cache::new(spec.l2, l2_repl, seed ^ (c as u64) << 16))
            .collect();
        let llc = SlicedCache::new(spec.llc, Arc::clone(&hash), llc_repl, seed ^ 0xaa);
        let sf = SlicedCache::new(spec.sf, Arc::clone(&hash), sf_repl, seed ^ 0x55);
        let policy = spec.hierarchy.inclusion;
        Self {
            spec,
            options: HierarchyOptions::default(),
            policy,
            slice_hash: hash,
            l1,
            l2,
            llc,
            sf,
            noise_counter: 0,
            reuse_counter: 0,
            noise_evictions: Vec::new(),
        }
    }

    /// Sets hierarchy behaviour options.
    pub fn set_options(&mut self, options: HierarchyOptions) {
        self.options = options;
    }

    /// Copies `source`'s complete state — every tag array and all
    /// replacement metadata — into `self` **in place**, reusing `self`'s
    /// allocations. Both hierarchies must come from the same specification
    /// (true when rewinding a machine to a snapshot of itself); restoring a
    /// warmed 8-slice Skylake-SP this way performs zero heap allocations —
    /// each level's flat set arena restores with a handful of
    /// `copy_from_slice` memcpys, with no per-set recursion.
    pub fn restore_from(&mut self, source: &Hierarchy) {
        debug_assert_eq!(self.spec, source.spec, "snapshot specification mismatch");
        self.options = source.options;
        self.policy = source.policy;
        for (dst, src) in self.l1.iter_mut().zip(&source.l1) {
            dst.restore_from(src);
        }
        for (dst, src) in self.l2.iter_mut().zip(&source.l2) {
            dst.restore_from(src);
        }
        self.llc.restore_from(&source.llc);
        self.sf.restore_from(&source.sf);
        self.noise_counter = source.noise_counter;
        self.reuse_counter = source.reuse_counter;
    }

    /// The machine specification used to build this hierarchy.
    pub fn spec(&self) -> &CacheSpec {
        &self.spec
    }

    /// The slice hash shared by the LLC and SF.
    pub fn slice_hash(&self) -> &Arc<dyn SliceHash> {
        &self.slice_hash
    }

    /// The inclusion policy this hierarchy was composed with.
    pub fn inclusion(&self) -> InclusionPolicy {
        self.policy
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.spec.cores
    }

    /// The (slice, set) location of `line` in the LLC (identical to the SF
    /// location because the two structures share sets and slice hash).
    pub fn shared_location(&self, line: LineAddr) -> SetLocation {
        self.llc.location(line)
    }

    /// The shared-structure set geometry (slices × sets per slice), which
    /// the tenant actor layer uses to draw background working-set
    /// footprints. The LLC and SF share this geometry by construction.
    pub fn shared_geometry(&self) -> SharedGeometry {
        SharedGeometry {
            slices: self.spec.llc.num_slices(),
            sets_per_slice: self.spec.llc.slice_geometry().sets(),
        }
    }

    /// The L2 set index of `line`.
    pub fn l2_set(&self, line: LineAddr) -> usize {
        self.spec.l2.set_index(line)
    }

    /// The L1 set index of `line`.
    pub fn l1_set(&self, line: LineAddr) -> usize {
        self.spec.l1.set_index(line)
    }

    /// Performs one memory access from `core` to `line`.
    pub fn access(&mut self, core: CoreId, line: LineAddr, kind: AccessKind) -> AccessOutcome {
        // The LLC and SF share sets and slice hash (asserted at
        // construction), so the shared location is computed once for the
        // whole access instead of per structure-level probe.
        let loc = self.llc.location(line);
        self.access_at(core, line, loc, kind)
    }

    /// [`Hierarchy::access`] with a pre-computed shared location.
    ///
    /// The machine layer already derives `line`'s LLC/SF location to apply
    /// pending background noise before the access; passing it through skips
    /// a redundant slice-hash evaluation on the hottest path in the
    /// simulator. `loc` must equal `shared_location(line)`.
    pub fn access_at(
        &mut self,
        core: CoreId,
        line: LineAddr,
        loc: SetLocation,
        kind: AccessKind,
    ) -> AccessOutcome {
        assert!(core < self.spec.cores, "core {core} out of range");
        debug_assert_eq!(loc, self.llc.location(line), "location does not match the line");

        // 1. Private L1. The private stage is common to every inclusion
        //    policy; only the backing-recency refresh and the Shared→Modified
        //    write upgrade dispatch on it.
        if let Some(entry) = self.l1[core].lookup(line) {
            let state = entry.state;
            if kind == AccessKind::Write && state == CoherenceState::Shared {
                return self.write_upgrade_private(core, line, loc, HitLevel::L1);
            }
            if kind == AccessKind::Write {
                entry.state = CoherenceState::Modified;
                if let Some(l2) = self.l2[core].lookup(line) {
                    l2.state = CoherenceState::Modified;
                }
                self.refresh_backing_recency_at(loc, line, state);
                return AccessOutcome { level: HitLevel::L1, displaced_sf_entry: false };
            }
            self.refresh_backing_recency_at(loc, line, state);
            let _ = self.l2[core].lookup(line); // keep the L2 copy warm as well
            return AccessOutcome { level: HitLevel::L1, displaced_sf_entry: false };
        }

        // 2. Private L2.
        if let Some(entry) = self.l2[core].lookup(line) {
            let state = entry.state;
            if kind == AccessKind::Write && state == CoherenceState::Shared {
                return self.write_upgrade_private(core, line, loc, HitLevel::L2);
            }
            if kind == AccessKind::Write {
                self.l2[core].lookup(line).expect("just hit").state = CoherenceState::Modified;
                self.fill_l1(core, line, CoherenceState::Modified);
                self.refresh_backing_recency_at(loc, line, state);
                return AccessOutcome { level: HitLevel::L2, displaced_sf_entry: false };
            }
            self.fill_l1(core, line, state);
            self.refresh_backing_recency_at(loc, line, state);
            return AccessOutcome { level: HitLevel::L2, displaced_sf_entry: false };
        }

        // Shared stage: which structure backs the line, and how it moves
        // into the private caches, is the inclusion policy.
        match self.policy {
            InclusionPolicy::NonInclusive => self.shared_stage_non_inclusive(core, line, loc, kind),
            InclusionPolicy::Inclusive => self.shared_stage_inclusive(core, line, loc, kind),
            InclusionPolicy::Exclusive => self.shared_stage_exclusive(core, line, loc, kind),
        }
    }

    /// Steps 3–5 of the paper's non-inclusive protocol (Section 2.3).
    fn shared_stage_non_inclusive(
        &mut self,
        core: CoreId,
        line: LineAddr,
        loc: SetLocation,
        kind: AccessKind,
    ) -> AccessOutcome {
        let state_on_fill = match kind {
            AccessKind::Read => CoherenceState::Exclusive,
            AccessKind::Write => CoherenceState::Modified,
        };

        // 3. Shared LLC: the line is Shared somewhere in the package.
        if self.llc.lookup_at(loc, line).is_some() {
            if kind == AccessKind::Write {
                // Read-for-ownership: every other copy is invalidated and
                // the writer takes the line private in Modified state.
                self.invalidate_other_private(core, line);
                self.llc.invalidate_at(loc, line);
                self.fill_private(core, line, CoherenceState::Modified);
                let displaced = self.allocate_sf_entry_at(loc, line, SfEntry::owner(core));
                return AccessOutcome { level: HitLevel::Llc, displaced_sf_entry: displaced };
            }
            // Section 2.3: when an LLC-resident line needs to transition to a
            // private state (no other core still holds a copy), it is removed
            // from the LLC and an SF entry is allocated to track it. This is
            // what lets an attacker re-prime a snoop-filter set with lines
            // that previously lived in the LLC.
            if self.other_core_has_private_copy(core, line) {
                self.fill_private(core, line, CoherenceState::Shared);
                return AccessOutcome { level: HitLevel::Llc, displaced_sf_entry: false };
            }
            self.llc.invalidate_at(loc, line);
            self.fill_private(core, line, state_on_fill);
            let displaced = self.allocate_sf_entry_at(loc, line, SfEntry::owner(core));
            return AccessOutcome { level: HitLevel::Llc, displaced_sf_entry: displaced };
        }

        // 4. Snoop filter: the line is private to another core (or the same
        //    core's copy was silently dropped). Reads transition it to
        //    Shared; writes snoop-invalidate the owners and take ownership.
        if let Some(entry) = self.sf.peek_at(loc, line).copied() {
            self.sf.invalidate_at(loc, line);
            if kind == AccessKind::Write {
                for owner in entry.iter_owners() {
                    if owner < self.spec.cores {
                        self.l1[owner].invalidate(line);
                        self.l2[owner].invalidate(line);
                    }
                }
                self.fill_private(core, line, CoherenceState::Modified);
                let displaced = self.allocate_sf_entry_at(loc, line, SfEntry::owner(core));
                return AccessOutcome { level: HitLevel::SfSnoop, displaced_sf_entry: displaced };
            }
            for owner in entry.iter_owners() {
                if owner < self.spec.cores {
                    self.downgrade_to_shared(owner, line);
                }
            }
            self.insert_llc_at(loc, line);
            self.fill_private(core, line, CoherenceState::Shared);
            return AccessOutcome { level: HitLevel::SfSnoop, displaced_sf_entry: false };
        }

        // 5. Miss everywhere: fetch from memory, install privately, allocate
        //    an SF entry to track the new private line.
        self.fill_private(core, line, state_on_fill);
        let displaced = self.allocate_sf_entry_at(loc, line, SfEntry::owner(core));
        AccessOutcome { level: HitLevel::Memory, displaced_sf_entry: displaced }
    }

    /// Shared stage of the inclusive policy: the LLC is a superset of every
    /// private cache, so a hit never removes the LLC entry and a miss fills
    /// the LLC *first* (its eviction back-invalidates the displaced line
    /// everywhere, which is what enforces inclusion). The SF is never used.
    fn shared_stage_inclusive(
        &mut self,
        core: CoreId,
        line: LineAddr,
        loc: SetLocation,
        kind: AccessKind,
    ) -> AccessOutcome {
        let state_on_fill = match kind {
            AccessKind::Read => CoherenceState::Exclusive,
            AccessKind::Write => CoherenceState::Modified,
        };
        if self.llc.lookup_at(loc, line).is_some() {
            let state = if kind == AccessKind::Write {
                self.invalidate_other_private(core, line);
                CoherenceState::Modified
            } else if self.other_core_has_private_copy(core, line) {
                CoherenceState::Shared
            } else {
                state_on_fill
            };
            self.fill_private(core, line, state);
            return AccessOutcome { level: HitLevel::Llc, displaced_sf_entry: false };
        }
        self.insert_llc_at(loc, line);
        self.fill_private(core, line, state_on_fill);
        AccessOutcome { level: HitLevel::Memory, displaced_sf_entry: false }
    }

    /// Shared stage of the exclusive policy: the LLC is a victim cache (an
    /// LLC hit migrates the line back into the requester's private caches)
    /// and the SF is the directory for *all* private copies.
    fn shared_stage_exclusive(
        &mut self,
        core: CoreId,
        line: LineAddr,
        loc: SetLocation,
        kind: AccessKind,
    ) -> AccessOutcome {
        let state_on_fill = match kind {
            AccessKind::Read => CoherenceState::Exclusive,
            AccessKind::Write => CoherenceState::Modified,
        };
        if self.llc.lookup_at(loc, line).is_some() {
            // Victim-cache hit: the line leaves the LLC and becomes private
            // again, tracked by a fresh directory entry.
            self.llc.invalidate_at(loc, line);
            self.fill_private(core, line, state_on_fill);
            let displaced = self.allocate_sf_entry_at(loc, line, SfEntry::owner(core));
            return AccessOutcome { level: HitLevel::Llc, displaced_sf_entry: displaced };
        }
        if let Some(entry) = self.sf.peek_at(loc, line).copied() {
            if kind == AccessKind::Write {
                for owner in entry.iter_owners() {
                    if owner < self.spec.cores {
                        self.l1[owner].invalidate(line);
                        self.l2[owner].invalidate(line);
                    }
                }
                if let Some(e) = self.sf.lookup_at(loc, line) {
                    e.owners = 1 << core;
                }
                self.fill_private(core, line, CoherenceState::Modified);
            } else {
                for owner in entry.iter_owners() {
                    if owner < self.spec.cores {
                        self.downgrade_to_shared(owner, line);
                    }
                }
                // The line stays out of the LLC (exclusivity); the directory
                // entry simply gains the new sharer.
                if let Some(e) = self.sf.lookup_at(loc, line) {
                    e.owners |= 1 << core;
                }
                self.fill_private(core, line, CoherenceState::Shared);
            }
            return AccessOutcome { level: HitLevel::SfSnoop, displaced_sf_entry: false };
        }
        self.fill_private(core, line, state_on_fill);
        let displaced = self.allocate_sf_entry_at(loc, line, SfEntry::owner(core));
        AccessOutcome { level: HitLevel::Memory, displaced_sf_entry: displaced }
    }

    /// Upgrades a Shared private hit to Modified (read-for-ownership): every
    /// other copy is invalidated and the backing structure is updated
    /// according to the inclusion policy. Fixes the latent bug where a write
    /// to a Shared line flipped the L1 state word without any coherence
    /// action, leaving a Modified line that the LLC still served to other
    /// cores and that no SF entry tracked.
    fn write_upgrade_private(
        &mut self,
        core: CoreId,
        line: LineAddr,
        loc: SetLocation,
        level: HitLevel,
    ) -> AccessOutcome {
        let mut displaced = false;
        match self.policy {
            InclusionPolicy::NonInclusive => {
                // The Shared line leaves the LLC and becomes a tracked
                // private Modified line.
                self.invalidate_other_private(core, line);
                self.llc.invalidate_at(loc, line);
                displaced = self.allocate_sf_entry_at(loc, line, SfEntry::owner(core));
            }
            InclusionPolicy::Inclusive => {
                // The LLC copy stays (inclusion); only the other private
                // copies are invalidated.
                self.invalidate_other_private(core, line);
                let _ = self.llc.lookup_at(loc, line);
            }
            InclusionPolicy::Exclusive => {
                // Invalidate the other sharers and collapse the directory
                // entry to a single owner.
                let owners = self.sf.peek_at(loc, line).map(|e| e.owners).unwrap_or(0);
                for owner in (SfEntry { owners }).iter_owners() {
                    if owner != core && owner < self.spec.cores {
                        self.l1[owner].invalidate(line);
                        self.l2[owner].invalidate(line);
                    }
                }
                if let Some(e) = self.sf.lookup_at(loc, line) {
                    e.owners = 1 << core;
                } else {
                    displaced = self.allocate_sf_entry_at(loc, line, SfEntry::owner(core));
                }
            }
        }
        if let Some(p) = self.l1[core].lookup(line) {
            p.state = CoherenceState::Modified;
        } else {
            self.fill_l1(core, line, CoherenceState::Modified);
        }
        if let Some(p) = self.l2[core].lookup(line) {
            p.state = CoherenceState::Modified;
        }
        AccessOutcome { level, displaced_sf_entry: displaced }
    }

    /// Flushes `line` from the entire hierarchy (like `clflush` issued by a
    /// core that owns the backing memory).
    pub fn clflush(&mut self, line: LineAddr) {
        for c in 0..self.spec.cores {
            self.l1[c].invalidate(line);
            self.l2[c].invalidate(line);
        }
        self.llc.invalidate(line);
        self.sf.invalidate(line);
    }

    /// Injects a background-tenant access targeted at an explicit LLC/SF set.
    ///
    /// `shared` selects whether the synthetic line behaves like a shared line
    /// (allocates in the LLC) or a private line of another tenant (allocates
    /// in the SF). Either way the insertion can evict a real line, producing
    /// exactly the interference the attacker observes on Cloud Run.
    pub fn noise_access(&mut self, loc: SetLocation, shared: bool) {
        self.noise_counter += 1;
        let synthetic = LineAddr::from_line_number(NOISE_LINE_BASE + self.noise_counter);
        match self.policy {
            InclusionPolicy::NonInclusive => {
                if shared {
                    if let Some(evicted) = self.llc.insert_at(loc, synthetic, LlcLine) {
                        self.invalidate_private_everywhere(evicted.line);
                    }
                } else if let Some(evicted) = self.sf.insert_at(loc, synthetic, SfEntry::default())
                {
                    self.handle_sf_eviction(evicted.line, evicted.payload);
                }
            }
            InclusionPolicy::Inclusive => {
                // There is no SF: all background traffic, shared or private,
                // contends in the (inclusive) LLC, and its evictions
                // back-invalidate — the classic cross-core Prime+Probe
                // interference.
                if let Some(evicted) = self.llc.insert_at(loc, synthetic, LlcLine) {
                    self.invalidate_private_everywhere(evicted.line);
                }
            }
            InclusionPolicy::Exclusive => {
                if shared {
                    // Victim-cache fill by another tenant; the displaced line
                    // has no private copies (exclusivity), so it just drops.
                    let _ = self.llc.insert_at(loc, synthetic, LlcLine);
                } else if let Some(evicted) = self.sf.insert_at(loc, synthetic, SfEntry::default())
                {
                    self.handle_sf_eviction(evicted.line, evicted.payload);
                }
            }
        }
    }

    /// Applies a whole burst of background-tenant accesses to one LLC/SF set.
    ///
    /// `shared` yields one flag per event, in event order, with the same
    /// meaning as [`Hierarchy::noise_access`]. The burst is applied through
    /// set views borrowed **once** for the whole call instead of re-routing
    /// `(slice, set)` → arena row per event, which is what the machine's
    /// noise catch-up previously paid on every touched set of every
    /// traversal. Back-invalidations of evicted lines are queued into a
    /// reusable buffer and applied after the burst; within a burst nothing
    /// reads the private caches and synthetic noise lines never repeat, so
    /// the resulting state (and every replacement-metadata word) is
    /// bit-identical to per-event dispatch.
    ///
    /// The one behaviour that genuinely interleaves structures mid-burst is
    /// the reuse predictor (an SF eviction may re-insert the evicted line
    /// into the *same* LLC set, reordering against later shared insertions),
    /// so a hierarchy with `reuse_insert_probability > 0` falls back to the
    /// exact per-event path.
    pub fn noise_access_bulk<I>(&mut self, loc: SetLocation, shared: I)
    where
        I: IntoIterator<Item = bool>,
    {
        let mut events = shared.into_iter();
        // Empty bursts are the common case on a quiescent machine; skip the
        // view setup entirely.
        let Some(first) = events.next() else { return };
        // Per-event dispatch for the non-default inclusion policies (their
        // noise paths are not hot in any golden workload) and for the reuse
        // predictor, whose SF→LLC re-insertions genuinely interleave the
        // structures mid-burst.
        if self.policy != InclusionPolicy::NonInclusive
            || self.options.reuse_insert_probability > 0.0
        {
            self.noise_access(loc, first);
            for s in events {
                self.noise_access(loc, s);
            }
            return;
        }

        let mut pending = std::mem::take(&mut self.noise_evictions);
        pending.clear();
        let all_cores = core_mask(self.spec.cores);
        {
            let mut llc_view = self.llc.set_view_mut(loc);
            let mut sf_view = self.sf.set_view_mut(loc);
            let mut next = Some(first);
            while let Some(is_shared) = next {
                self.noise_counter += 1;
                let synthetic = LineAddr::from_line_number(NOISE_LINE_BASE + self.noise_counter);
                // Back-invalidation is only queued when it can have an
                // effect. In a long burst most victims are older synthetic
                // noise lines, which never enter a private cache (noise
                // inserts straight into the LLC/SF), and ownerless SF
                // entries back-invalidate nobody — the per-event path's
                // invalidations for both are guaranteed no-ops, so skipping
                // them is state-identical and saves ~6 tag scans per
                // evicted way.
                if is_shared {
                    if let Some(evicted) = llc_view.insert(synthetic, LlcLine) {
                        if evicted.line.line_number() < NOISE_LINE_BASE {
                            pending.push((evicted.line, all_cores));
                        }
                    }
                } else if let Some(evicted) = sf_view.insert(synthetic, SfEntry::default()) {
                    if evicted.payload.owners != 0 {
                        pending.push((evicted.line, evicted.payload.owners));
                    }
                }
                next = events.next();
            }
        }
        for &(line, owners) in &pending {
            for core in 0..self.spec.cores {
                if owners & (1 << core) != 0 {
                    self.l1[core].invalidate(line);
                    self.l2[core].invalidate(line);
                }
            }
        }
        self.noise_evictions = pending;
    }

    /// Applies an *aggregate* noise advance to one LLC/SF set: `llc_fills`
    /// shared-line insertions and `sf_fills` other-tenant private-line
    /// insertions, as one bulk evict-and-fill transition per structure
    /// (`SetViewMut::advance_fills`) instead of per-event dispatch.
    ///
    /// Back-invalidations of displaced real lines are deferred and applied
    /// after both structures advance, exactly as
    /// [`Hierarchy::noise_access_bulk`] does; displaced synthetic noise
    /// lines and ownerless SF entries are skipped for the same reason (their
    /// back-invalidations are guaranteed no-ops). Processing all LLC fills
    /// and then all SF fills is state-equivalent to any timestamp
    /// interleaving of the same counts: the two structures share no ways and
    /// nothing reads the private caches mid-burst. The exception is again
    /// the reuse predictor, whose SF→LLC re-insertions genuinely interleave
    /// the structures — with `reuse_insert_probability > 0` this falls back
    /// to per-event [`Hierarchy::noise_access`] dispatch (LLC events first),
    /// trading the speedup for exact ordering.
    ///
    /// Work is `O(min(fills, ways))` per structure, which is what makes
    /// long-gap catch-ups cheap in the aggregate noise mode regardless of
    /// the Poisson draw.
    pub fn noise_advance_bulk(&mut self, loc: SetLocation, llc_fills: u64, sf_fills: u64) {
        if llc_fills == 0 && sf_fills == 0 {
            return;
        }
        if self.options.reuse_insert_probability > 0.0 {
            for _ in 0..llc_fills {
                self.noise_access(loc, true);
            }
            for _ in 0..sf_fills {
                self.noise_access(loc, false);
            }
            return;
        }

        let mut pending = std::mem::take(&mut self.noise_evictions);
        pending.clear();
        let all_cores = core_mask(self.spec.cores);
        // How many fills reach each structure is the inclusion policy's
        // noise model (mirroring `noise_access`): inclusive hierarchies have
        // no SF so every event contends in the LLC; exclusive hierarchies
        // drop LLC victims without back-invalidation (an LLC-resident line
        // has no private copies).
        let (llc_fills, sf_fills) = match self.policy {
            InclusionPolicy::NonInclusive | InclusionPolicy::Exclusive => (llc_fills, sf_fills),
            InclusionPolicy::Inclusive => (llc_fills + sf_fills, 0),
        };
        let llc_backinvalidates = self.policy != InclusionPolicy::Exclusive;
        {
            let counter = &mut self.noise_counter;
            let mut llc_view = self.llc.set_view_mut(loc);
            llc_view.advance_fills(
                llc_fills,
                || {
                    *counter += 1;
                    LineAddr::from_line_number(NOISE_LINE_BASE + *counter)
                },
                |evicted| {
                    if llc_backinvalidates && evicted.line.line_number() < NOISE_LINE_BASE {
                        pending.push((evicted.line, all_cores));
                    }
                },
            );
        }
        {
            let counter = &mut self.noise_counter;
            let mut sf_view = self.sf.set_view_mut(loc);
            sf_view.advance_fills(
                sf_fills,
                || {
                    *counter += 1;
                    LineAddr::from_line_number(NOISE_LINE_BASE + *counter)
                },
                |evicted| {
                    if evicted.payload.owners != 0 {
                        pending.push((evicted.line, evicted.payload.owners));
                    }
                },
            );
        }
        for &(line, owners) in &pending {
            for core in 0..self.spec.cores {
                if owners & (1 << core) != 0 {
                    self.l1[core].invalidate(line);
                    self.l2[core].invalidate(line);
                }
            }
        }
        self.noise_evictions = pending;
    }

    /// Marks `line` as the next replacement victim of its LLC or SF set.
    ///
    /// This is the abstract effect of Prime+Scope's replacement-state priming
    /// (Section 6.1): after the priming pattern, the chosen line is the
    /// eviction candidate of its set, so a single conflicting insertion by
    /// the victim (or by another tenant) displaces it even though the
    /// attacker keeps re-touching it during the scope checks.
    pub fn prime_as_victim(&mut self, line: LineAddr) {
        let loc = self.llc.location(line);
        if !self.llc.demote_at(loc, line) {
            self.sf.demote_at(loc, line);
        }
    }

    /// True if `core`'s L1 holds `line`.
    pub fn in_l1(&self, core: CoreId, line: LineAddr) -> bool {
        self.l1[core].contains(line)
    }

    /// True if `core`'s L2 holds `line`.
    pub fn in_l2(&self, core: CoreId, line: LineAddr) -> bool {
        self.l2[core].contains(line)
    }

    /// Coherence state of `core`'s L1 copy of `line`, if present (oracle /
    /// property-test use; does not touch replacement state).
    pub fn l1_state(&self, core: CoreId, line: LineAddr) -> Option<CoherenceState> {
        self.l1[core].peek(line).map(|p| p.state)
    }

    /// Coherence state of `core`'s L2 copy of `line`, if present (oracle /
    /// property-test use; does not touch replacement state).
    pub fn l2_state(&self, core: CoreId, line: LineAddr) -> Option<CoherenceState> {
        self.l2[core].peek(line).map(|p| p.state)
    }

    /// True if the LLC holds `line`.
    pub fn in_llc(&self, line: LineAddr) -> bool {
        self.llc.contains(line)
    }

    /// True if the snoop filter tracks `line`.
    pub fn in_sf(&self, line: LineAddr) -> bool {
        self.sf.contains(line)
    }

    /// Occupancy of an LLC set (used by instrumentation and tests).
    pub fn llc_occupancy(&self, loc: SetLocation) -> usize {
        self.llc.occupancy(loc)
    }

    /// Occupancy of an SF set (used by instrumentation and tests).
    pub fn sf_occupancy(&self, loc: SetLocation) -> usize {
        self.sf.occupancy(loc)
    }

    /// Read-only view of an LLC set's tag array and replacement metadata
    /// (instrumentation/oracle use; the attack algorithms never see this).
    pub fn llc_set_view(&self, loc: SetLocation) -> crate::SetView<'_, LlcLine> {
        self.llc.set_view(loc)
    }

    /// Read-only view of an SF set's tag array and replacement metadata
    /// (instrumentation/oracle use; the attack algorithms never see this).
    pub fn sf_set_view(&self, loc: SetLocation) -> crate::SetView<'_, SfEntry> {
        self.sf.set_view(loc)
    }

    /// Drops every cached line (used between independent experiment trials).
    pub fn flush_all(&mut self) {
        for c in 0..self.spec.cores {
            self.l1[c].clear();
            self.l2[c].clear();
        }
        self.llc.clear();
        self.sf.clear();
    }

    // ----- internal helpers -------------------------------------------------

    fn fill_l1(&mut self, core: CoreId, line: LineAddr, state: CoherenceState) {
        // L1 evictions silently drop the line; it normally remains in L2 or
        // the LLC, and losing a stale private copy only causes an extra miss.
        let _ = self.l1[core].insert(line, PrivLine { state });
    }

    fn fill_private(&mut self, core: CoreId, line: LineAddr, state: CoherenceState) {
        if let Some(evicted) = self.l2[core].insert(line, PrivLine { state }) {
            self.handle_l2_eviction(core, evicted.line, evicted.payload);
        }
        self.fill_l1(core, line, state);
    }

    fn handle_l2_eviction(&mut self, core: CoreId, line: LineAddr, payload: PrivLine) {
        match self.policy {
            InclusionPolicy::NonInclusive => match payload.state {
                CoherenceState::Shared => {
                    // The LLC still holds the line; nothing to do. A stale
                    // copy may remain in L1, which is harmless (non-inclusive
                    // L1): the LLC entry outlives it, and every way the LLC
                    // entry can die back-invalidates the L1 copy too. The
                    // `stale_l1_copies_stay_backed` proptest in
                    // `tests/coherence_props.rs` pins this invariant.
                    // See also `refresh_backing_recency_at`.
                }
                CoherenceState::Exclusive | CoherenceState::Modified => {
                    // The line leaves the private caches: drop the L1 copy,
                    // free the SF entry and optionally write back into the
                    // LLC.
                    self.l1[core].invalidate(line);
                    self.sf.invalidate(line);
                    if self.reuse_predictor_fires() {
                        self.insert_llc(line);
                    }
                }
            },
            InclusionPolicy::Inclusive => {
                // The LLC holds the line by the inclusion property; a stale
                // L1 copy is likewise covered by the LLC entry's eventual
                // back-invalidation, so the eviction needs no action.
            }
            InclusionPolicy::Exclusive => {
                // Drop the stale L1 copy, then update the directory. When the
                // last private copy leaves, the line makes the exclusive
                // LLC's *only* kind of fill: a clean victim-cache insertion.
                self.l1[core].invalidate(line);
                let loc = self.llc.location(line);
                let owners = self.sf.peek_at(loc, line).map(|e| e.owners).unwrap_or(0);
                let remaining = owners & !(1u64 << core);
                if remaining == 0 {
                    self.sf.invalidate_at(loc, line);
                    // Evictions displaced by this fill are dropped without
                    // back-invalidation: exclusivity guarantees an
                    // LLC-resident victim has no private copies (pinned by
                    // the inclusion proptest suite).
                    let _ = self.llc.insert_at(loc, line, LlcLine);
                } else if let Some(e) = self.sf.lookup_at(loc, line) {
                    e.owners = remaining;
                }
            }
        }
    }

    /// Allocates an SF entry for `line` at its pre-computed shared location,
    /// returning whether an existing entry (belonging to another core or
    /// tenant) had to be displaced.
    fn allocate_sf_entry_at(&mut self, loc: SetLocation, line: LineAddr, entry: SfEntry) -> bool {
        match self.sf.insert_at(loc, line, entry) {
            Some(evicted) => {
                self.handle_sf_eviction(evicted.line, evicted.payload);
                true
            }
            None => false,
        }
    }

    fn handle_sf_eviction(&mut self, line: LineAddr, entry: SfEntry) {
        for owner in entry.iter_owners() {
            if owner < self.spec.cores {
                self.l1[owner].invalidate(line);
                self.l2[owner].invalidate(line);
            }
        }
        // Exclusive: a directory eviction forces the line out of the package
        // entirely (write back to memory), never into the LLC — an exclusive
        // LLC only fills on private-cache evictions. The reuse predictor is a
        // non-inclusive-specific behaviour (Section 2.3).
        if self.policy == InclusionPolicy::NonInclusive && self.reuse_predictor_fires() {
            self.insert_llc(line);
        }
    }

    fn reuse_predictor_fires(&mut self) -> bool {
        let p = self.options.reuse_insert_probability;
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // Deterministic low-discrepancy decision so simulations replay
        // identically: fire on the fraction p of consecutive decisions.
        self.reuse_counter = self.reuse_counter.wrapping_add(1);
        let phase = (self.reuse_counter.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) as f64
            / (1u64 << 24) as f64;
        phase < p
    }

    fn insert_llc(&mut self, line: LineAddr) {
        let loc = self.llc.location(line);
        self.insert_llc_at(loc, line);
    }

    fn insert_llc_at(&mut self, loc: SetLocation, line: LineAddr) {
        if let Some(evicted) = self.llc.insert_at(loc, line, LlcLine) {
            // A Shared line evicted from the LLC loses its backing store;
            // invalidate any private copies so that the next access misses.
            self.invalidate_private_everywhere(evicted.line);
        }
    }

    /// Keeps the shared structures' replacement state consistent with actual
    /// line usage: a hit on a private copy also counts as a use of the line's
    /// LLC entry (Shared lines) or SF entry (Exclusive/Modified lines).
    ///
    /// Without this, a line that is hot in a core's L1 silently ages to LRU
    /// in the LLC/SF and gets evicted by a single conflicting insertion,
    /// which no real non-inclusive hierarchy exhibits for actively-used lines
    /// and which would make every `TestEviction`-based algorithm misbehave.
    fn refresh_backing_recency_at(&mut self, loc: SetLocation, line: LineAddr, state: CoherenceState) {
        match self.policy {
            InclusionPolicy::NonInclusive => match state {
                CoherenceState::Shared => {
                    let _ = self.llc.lookup_at(loc, line);
                }
                CoherenceState::Exclusive | CoherenceState::Modified => {
                    let _ = self.sf.lookup_at(loc, line);
                }
            },
            // Inclusive: every private-resident line is backed by its LLC
            // entry regardless of coherence state.
            InclusionPolicy::Inclusive => {
                let _ = self.llc.lookup_at(loc, line);
            }
            // Exclusive: every private-resident line is tracked by the
            // directory regardless of coherence state.
            InclusionPolicy::Exclusive => {
                let _ = self.sf.lookup_at(loc, line);
            }
        }
    }

    fn other_core_has_private_copy(&self, core: CoreId, line: LineAddr) -> bool {
        (0..self.spec.cores)
            .filter(|&c| c != core)
            .any(|c| self.l1[c].contains(line) || self.l2[c].contains(line))
    }

    fn invalidate_private_everywhere(&mut self, line: LineAddr) {
        for c in 0..self.spec.cores {
            self.l1[c].invalidate(line);
            self.l2[c].invalidate(line);
        }
    }

    /// Invalidates every private copy of `line` except `core`'s own (the
    /// snoop-invalidate half of a read-for-ownership).
    fn invalidate_other_private(&mut self, core: CoreId, line: LineAddr) {
        for c in 0..self.spec.cores {
            if c != core {
                self.l1[c].invalidate(line);
                self.l2[c].invalidate(line);
            }
        }
    }

    fn downgrade_to_shared(&mut self, core: CoreId, line: LineAddr) {
        if let Some(p) = self.l1[core].lookup(line) {
            p.state = CoherenceState::Shared;
        }
        if let Some(p) = self.l2[core].lookup(line) {
            p.state = CoherenceState::Shared;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::CacheSpec;

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(CacheSpec::tiny_test(), 1)
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    /// Finds `count` lines that map to the same LLC/SF set as `target`.
    fn congruent_lines(h: &Hierarchy, target: LineAddr, count: usize) -> Vec<LineAddr> {
        let loc = h.shared_location(target);
        let mut found = Vec::new();
        let mut n = target.line_number() + 1;
        while found.len() < count {
            let cand = line(n);
            if h.shared_location(cand) == loc {
                found.push(cand);
            }
            n += 1;
        }
        found
    }

    #[test]
    fn first_access_misses_then_hits_in_l1() {
        let mut h = hierarchy();
        let l = line(0x42);
        assert_eq!(h.access(0, l, AccessKind::Read).level, HitLevel::Memory);
        assert_eq!(h.access(0, l, AccessKind::Read).level, HitLevel::L1);
        assert!(h.in_l1(0, l) && h.in_l2(0, l));
        assert!(h.in_sf(l), "private line must be tracked by the SF");
        assert!(!h.in_llc(l), "private line must not be in the non-inclusive LLC");
    }

    #[test]
    fn cross_core_access_transitions_to_shared_and_fills_llc() {
        let mut h = hierarchy();
        let l = line(0x99);
        h.access(0, l, AccessKind::Read);
        let out = h.access(1, l, AccessKind::Read);
        assert_eq!(out.level, HitLevel::SfSnoop);
        assert!(h.in_llc(l), "shared line must be inserted into the LLC");
        assert!(!h.in_sf(l), "SF entry must be freed after the transition");
        // Both cores now hit locally.
        assert_eq!(h.access(0, l, AccessKind::Read).level, HitLevel::L1);
        assert_eq!(h.access(1, l, AccessKind::Read).level, HitLevel::L1);
    }

    #[test]
    fn llc_hit_after_private_copies_are_gone() {
        let mut h = hierarchy();
        let l = line(0x123);
        h.access(0, l, AccessKind::Read);
        h.access(1, l, AccessKind::Read); // now shared + in LLC
        // Drop both cores' private copies without touching the LLC.
        for c in 0..h.cores() {
            h.l1[c].invalidate(l);
            h.l2[c].invalidate(l);
        }
        assert_eq!(h.access(2, l, AccessKind::Read).level, HitLevel::Llc);
    }

    #[test]
    fn sf_conflict_back_invalidates_private_copy() {
        let mut h = hierarchy();
        let target = line(0x1000);
        h.access(0, target, AccessKind::Read);
        assert!(h.in_l2(0, target));

        // Fill the target's SF set with other private lines from core 1 until
        // the target's entry is displaced.
        let ways = h.spec().sf.ways();
        let fillers = congruent_lines(&h, target, ways);
        for f in &fillers {
            h.access(1, *f, AccessKind::Read);
        }
        assert!(!h.in_sf(target), "target SF entry should have been evicted");
        assert!(
            !h.in_l1(0, target) && !h.in_l2(0, target),
            "back-invalidation must remove the private copy"
        );
        // The next access misses all the way to memory: this is exactly the
        // signal a Prime+Probe attacker observes.
        assert_eq!(h.access(0, target, AccessKind::Read).level, HitLevel::Memory);
    }

    #[test]
    fn shared_lines_conflict_in_llc() {
        let mut h = hierarchy();
        let target = line(0x2000);
        // Make the target shared (attacker + helper behaviour).
        h.access(0, target, AccessKind::Read);
        h.access(1, target, AccessKind::Read);
        assert!(h.in_llc(target));

        // Make W more congruent lines shared; the LLC set overflows and the
        // target is eventually evicted.
        let ways = h.spec().llc.ways();
        let fillers = congruent_lines(&h, target, ways);
        for f in &fillers {
            h.access(0, *f, AccessKind::Read);
            h.access(1, *f, AccessKind::Read);
        }
        assert!(!h.in_llc(target), "LLC eviction set must evict the target");
        // Private copies were invalidated too, so the reload misses.
        assert_eq!(h.access(0, target, AccessKind::Read).level, HitLevel::Memory);
    }

    #[test]
    fn clflush_removes_line_everywhere() {
        let mut h = hierarchy();
        let l = line(0x3000);
        h.access(0, l, AccessKind::Read);
        h.access(1, l, AccessKind::Read);
        h.clflush(l);
        assert!(!h.in_llc(l) && !h.in_sf(l));
        assert!(!h.in_l1(0, l) && !h.in_l2(0, l));
        assert_eq!(h.access(0, l, AccessKind::Read).level, HitLevel::Memory);
    }

    #[test]
    fn write_installs_modified_state() {
        let mut h = hierarchy();
        let l = line(0x77);
        h.access(0, l, AccessKind::Write);
        assert_eq!(h.l2[0].peek(l).map(|p| p.state), Some(CoherenceState::Modified));
    }

    #[test]
    fn noise_access_sf_displaces_victim_entries() {
        let mut h = hierarchy();
        let target = line(0x5000);
        h.access(0, target, AccessKind::Read);
        let loc = h.shared_location(target);
        for _ in 0..h.spec().sf.ways() + 2 {
            h.noise_access(loc, false);
        }
        assert!(!h.in_sf(target));
        assert!(!h.in_l2(0, target), "noise-driven SF eviction back-invalidates");
    }

    #[test]
    fn noise_access_llc_evicts_shared_lines() {
        let mut h = hierarchy();
        let target = line(0x6000);
        h.access(0, target, AccessKind::Read);
        h.access(1, target, AccessKind::Read);
        let loc = h.shared_location(target);
        for _ in 0..h.spec().llc.ways() + 2 {
            h.noise_access(loc, true);
        }
        assert!(!h.in_llc(target));
    }

    /// The bulk noise path must be state-identical to per-event dispatch:
    /// same tags, same replacement metadata words, same back-invalidations.
    #[test]
    fn bulk_noise_access_matches_per_event_dispatch() {
        let mut a = hierarchy();
        let mut b = hierarchy();
        let target = line(0x4242);
        // Seed a private line (SF-tracked) and a shared line (LLC-resident)
        // in the same set so evictions have real victims to back-invalidate.
        let shared_victim = congruent_lines(&a, target, 1)[0];
        for h in [&mut a, &mut b] {
            h.access(0, target, AccessKind::Read);
            h.access(0, shared_victim, AccessKind::Read);
            h.access(1, shared_victim, AccessKind::Read);
        }
        let loc = a.shared_location(target);
        // A mixed burst long enough to overflow both structures.
        let burst: Vec<bool> = (0..3 * a.spec().sf.ways()).map(|i| i % 2 == 0).collect();
        for &s in &burst {
            a.noise_access(loc, s);
        }
        b.noise_access_bulk(loc, burst.iter().copied());

        for (va, vb) in [
            (a.llc_set_view(loc), b.llc_set_view(loc)),
        ] {
            assert_eq!(va.occupancy(), vb.occupancy());
            for w in 0..va.num_ways() {
                assert_eq!(va.line(w), vb.line(w), "LLC way {w} diverged");
                assert_eq!(va.meta_word(w), vb.meta_word(w), "LLC meta {w} diverged");
            }
        }
        let (sa, sb) = (a.sf_set_view(loc), b.sf_set_view(loc));
        assert_eq!(sa.occupancy(), sb.occupancy());
        for w in 0..sa.num_ways() {
            assert_eq!(sa.line(w), sb.line(w), "SF way {w} diverged");
            assert_eq!(sa.meta_word(w), sb.meta_word(w), "SF meta {w} diverged");
        }
        for l in [target, shared_victim] {
            for c in 0..a.cores() {
                assert_eq!(a.in_l1(c, l), b.in_l1(c, l));
                assert_eq!(a.in_l2(c, l), b.in_l2(c, l));
            }
            assert_eq!(a.in_llc(l), b.in_llc(l));
            assert_eq!(a.in_sf(l), b.in_sf(l));
        }
        // The burst must actually have evicted the seeded lines, otherwise
        // the back-invalidation queue was never exercised.
        assert!(!b.in_sf(target) && !b.in_llc(shared_victim));
    }

    /// With the reuse predictor enabled the bulk path must fall back to the
    /// exact per-event ordering (SF evictions re-insert into the same set).
    #[test]
    fn bulk_noise_access_matches_with_reuse_predictor() {
        let mut a = hierarchy();
        let mut b = hierarchy();
        for h in [&mut a, &mut b] {
            h.set_options(HierarchyOptions { reuse_insert_probability: 1.0 });
            h.access(0, line(0x4242), AccessKind::Read);
        }
        let loc = a.shared_location(line(0x4242));
        let burst: Vec<bool> = (0..2 * a.spec().sf.ways()).map(|i| i % 3 == 0).collect();
        for &s in &burst {
            a.noise_access(loc, s);
        }
        b.noise_access_bulk(loc, burst.iter().copied());
        let (va, vb) = (a.llc_set_view(loc), b.llc_set_view(loc));
        for w in 0..va.num_ways() {
            assert_eq!(va.line(w), vb.line(w));
            assert_eq!(va.meta_word(w), vb.meta_word(w));
        }
        let (sa, sb) = (a.sf_set_view(loc), b.sf_set_view(loc));
        for w in 0..sa.num_ways() {
            assert_eq!(sa.line(w), sb.line(w));
        }
    }

    /// Below saturation, `noise_advance_bulk(kl, ks)` must be
    /// state-identical to `kl` shared then `ks` private per-event noise
    /// accesses: same tags, same metadata, same back-invalidations.
    #[test]
    fn noise_advance_bulk_matches_per_event_below_saturation() {
        let mut a = hierarchy();
        let mut b = hierarchy();
        let target = line(0x4242);
        let shared_victim = congruent_lines(&a, target, 1)[0];
        for h in [&mut a, &mut b] {
            h.access(0, target, AccessKind::Read);
            h.access(0, shared_victim, AccessKind::Read);
            h.access(1, shared_victim, AccessKind::Read);
        }
        let loc = a.shared_location(target);
        let (kl, ks) = (a.spec().llc.ways() as u64 - 1, a.spec().sf.ways() as u64 - 1);
        for _ in 0..kl {
            a.noise_access(loc, true);
        }
        for _ in 0..ks {
            a.noise_access(loc, false);
        }
        b.noise_advance_bulk(loc, kl, ks);

        let (va, vb) = (a.llc_set_view(loc), b.llc_set_view(loc));
        assert_eq!(va.occupancy(), vb.occupancy());
        for w in 0..va.num_ways() {
            assert_eq!(va.line(w), vb.line(w), "LLC way {w} diverged");
            assert_eq!(va.meta_word(w), vb.meta_word(w), "LLC meta {w} diverged");
        }
        let (sa, sb) = (a.sf_set_view(loc), b.sf_set_view(loc));
        assert_eq!(sa.occupancy(), sb.occupancy());
        for w in 0..sa.num_ways() {
            assert_eq!(sa.line(w), sb.line(w), "SF way {w} diverged");
            assert_eq!(sa.meta_word(w), sb.meta_word(w), "SF meta {w} diverged");
        }
        for l in [target, shared_victim] {
            for c in 0..a.cores() {
                assert_eq!(a.in_l1(c, l), b.in_l1(c, l));
                assert_eq!(a.in_l2(c, l), b.in_l2(c, l));
            }
            assert_eq!(a.in_llc(l), b.in_llc(l));
            assert_eq!(a.in_sf(l), b.in_sf(l));
        }
    }

    /// A saturating advance displaces every resident of both structures,
    /// back-invalidates the private copies, and fills each set to capacity
    /// with synthetic lines — in O(ways), so an absurdly large count must
    /// terminate instantly.
    #[test]
    fn noise_advance_bulk_saturating_burst_displaces_everything() {
        let mut h = hierarchy();
        let target = line(0x5000);
        let shared_victim = congruent_lines(&h, target, 1)[0];
        h.access(0, target, AccessKind::Read); // SF-tracked private line
        h.access(0, shared_victim, AccessKind::Read);
        h.access(1, shared_victim, AccessKind::Read); // LLC-resident shared line
        let loc = h.shared_location(target);
        h.noise_advance_bulk(loc, 1_000_000_000, 1_000_000_000);
        assert!(!h.in_sf(target));
        assert!(!h.in_llc(shared_victim));
        assert!(!h.in_l2(0, target), "SF displacement must back-invalidate");
        assert!(!h.in_l2(0, shared_victim) && !h.in_l2(1, shared_victim));
        assert_eq!(h.llc_occupancy(loc), h.spec().llc.ways());
        assert_eq!(h.sf_occupancy(loc), h.spec().sf.ways());
    }

    /// With the reuse predictor enabled the aggregate path must fall back to
    /// per-event dispatch (LLC fills first, then SF fills) so SF→LLC
    /// re-insertions interleave exactly.
    #[test]
    fn noise_advance_bulk_matches_with_reuse_predictor() {
        let mut a = hierarchy();
        let mut b = hierarchy();
        for h in [&mut a, &mut b] {
            h.set_options(HierarchyOptions { reuse_insert_probability: 1.0 });
            h.access(0, line(0x4242), AccessKind::Read);
        }
        let loc = a.shared_location(line(0x4242));
        let (kl, ks) = (3u64, 2 * a.spec().sf.ways() as u64);
        for _ in 0..kl {
            a.noise_access(loc, true);
        }
        for _ in 0..ks {
            a.noise_access(loc, false);
        }
        b.noise_advance_bulk(loc, kl, ks);
        let (va, vb) = (a.llc_set_view(loc), b.llc_set_view(loc));
        for w in 0..va.num_ways() {
            assert_eq!(va.line(w), vb.line(w));
            assert_eq!(va.meta_word(w), vb.meta_word(w));
        }
        let (sa, sb) = (a.sf_set_view(loc), b.sf_set_view(loc));
        for w in 0..sa.num_ways() {
            assert_eq!(sa.line(w), sb.line(w));
        }
    }

    #[test]
    fn l2_capacity_eviction_frees_sf_entry() {
        let mut h = hierarchy();
        let spec = h.spec().clone();
        let target = line(0x8000);
        h.access(0, target, AccessKind::Read);
        assert!(h.in_sf(target));
        // Fill the target's L2 set with other exclusive lines from core 0.
        let l2_sets = spec.l2.sets() as u64;
        let mut filled = 0;
        let mut n = target.line_number() + l2_sets;
        while filled < spec.l2.ways() + 1 {
            let cand = line(n);
            if spec.l2.set_index(cand) == spec.l2.set_index(target) {
                h.access(0, cand, AccessKind::Read);
                filled += 1;
            }
            n += l2_sets;
        }
        assert!(!h.in_l2(0, target), "target should fall out of the L2");
        assert!(!h.in_sf(target), "dropping the private copy frees the SF entry");
    }

    #[test]
    fn flush_all_empties_hierarchy() {
        let mut h = hierarchy();
        h.access(0, line(1), AccessKind::Read);
        h.access(1, line(1), AccessKind::Read);
        h.flush_all();
        assert!(!h.in_llc(line(1)));
        assert_eq!(h.access(0, line(1), AccessKind::Read).level, HitLevel::Memory);
    }

    #[test]
    fn reuse_predictor_probability_one_inserts_into_llc() {
        let mut h = hierarchy();
        h.set_options(HierarchyOptions { reuse_insert_probability: 1.0 });
        let target = line(0x9000);
        h.access(0, target, AccessKind::Read);
        let ways = h.spec().sf.ways();
        let fillers = congruent_lines(&h, target, ways);
        for f in &fillers {
            h.access(1, *f, AccessKind::Read);
        }
        // Displaced private line was written back into the LLC.
        assert!(h.in_llc(target));
    }
}
