//! Whole cache structures: a private cache and a sliced shared structure.
//!
//! Both are thin indexing layers over one flat [`SetArena`]: a [`Cache`]
//! maps the physical-address set-index bits to an arena row, a
//! [`SlicedCache`] first routes through a [`SliceHash`] and flattens
//! `(slice, set)` to `slice * sets_per_slice + set`. All tag/payload/
//! replacement state lives in the arena's contiguous arrays, so cloning or
//! restoring a whole structure is a handful of flat-buffer copies.

use crate::addr::LineAddr;
use crate::geometry::{CacheGeometry, SlicedGeometry};
use crate::replacement::ReplacementKind;
use crate::set::{Entry, SetArena, SetView, SetViewMut};
use crate::slice::SliceHash;
use std::sync::Arc;

/// A non-sliced cache (L1 or L2): a [`SetArena`] indexed by the
/// physical-address set-index bits.
#[derive(Debug, Clone)]
pub struct Cache<T> {
    geometry: CacheGeometry,
    arena: SetArena<T>,
}

impl<T: Copy + Default> Cache<T> {
    /// Creates an empty cache with the given geometry and replacement policy.
    pub fn new(geometry: CacheGeometry, repl: ReplacementKind, seed: u64) -> Self {
        // Per-set RNG seed derivation unchanged from the per-set era, so
        // random-replacement streams replay identically.
        let arena = SetArena::new(geometry.sets(), geometry.ways(), repl, |i| {
            seed.wrapping_add(i as u64)
        });
        Self { geometry, arena }
    }

    /// This cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Set index of a line in this cache.
    pub fn set_index(&self, line: LineAddr) -> usize {
        self.geometry.set_index(line)
    }

    /// Returns true if `line` is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.arena.view(self.set_index(line)).contains(line)
    }

    /// Looks up `line`, updating replacement state on a hit.
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut T> {
        let idx = self.set_index(line);
        self.arena.view_mut(idx).lookup(line)
    }

    /// Looks up `line` without updating replacement state.
    pub fn peek(&self, line: LineAddr) -> Option<&T> {
        self.arena.view(self.set_index(line)).peek(line)
    }

    /// Inserts `line`, returning any evicted entry.
    pub fn insert(&mut self, line: LineAddr, payload: T) -> Option<Entry<T>> {
        let idx = self.set_index(line);
        self.arena.view_mut(idx).insert(line, payload)
    }

    /// Removes `line`, returning its payload if present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<T> {
        let idx = self.set_index(line);
        self.arena.view_mut(idx).invalidate(line)
    }

    /// Marks `line` as the next victim of its set, if present.
    pub fn demote(&mut self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        self.arena.view_mut(idx).demote(line)
    }

    /// Read-only view of a set by index (for tests and instrumentation).
    pub fn set_view(&self, index: usize) -> SetView<'_, T> {
        self.arena.view(index)
    }

    /// Mutable view of a set by index (the tightened hot-path handle).
    pub fn set_view_mut(&mut self, index: usize) -> SetViewMut<'_, T> {
        self.arena.view_mut(index)
    }

    /// Removes every line from the cache.
    pub fn clear(&mut self) {
        self.arena.clear();
    }

    /// Copies `source`'s contents into `self` in place, reusing every
    /// allocation. Both caches must share a geometry (true when restoring
    /// from a snapshot of the same specification).
    pub fn restore_from(&mut self, source: &Cache<T>) {
        debug_assert_eq!(self.geometry, source.geometry, "snapshot geometry mismatch");
        self.arena.restore_from(&source.arena);
    }
}

/// A sliced shared structure (LLC or snoop filter): `num_slices` independent
/// set ranges of one flat [`SetArena`], selected by a [`SliceHash`] over the
/// physical line address.
#[derive(Debug, Clone)]
pub struct SlicedCache<T> {
    geometry: SlicedGeometry,
    hash: Arc<dyn SliceHash>,
    arena: SetArena<T>,
}

impl<T: Copy + Default> SlicedCache<T> {
    /// Creates an empty sliced cache.
    ///
    /// # Panics
    ///
    /// Panics if the slice hash's slice count differs from the geometry's.
    pub fn new(
        geometry: SlicedGeometry,
        hash: Arc<dyn SliceHash>,
        repl: ReplacementKind,
        seed: u64,
    ) -> Self {
        assert_eq!(
            geometry.num_slices(),
            hash.num_slices(),
            "slice hash and geometry disagree on the number of slices"
        );
        let sets_per_slice = geometry.slice_geometry().sets();
        // Per-set RNG seed derivation unchanged from the per-set era
        // (slice * 100_003 + set), so random-replacement streams replay
        // identically.
        let arena =
            SetArena::new(geometry.num_slices() * sets_per_slice, geometry.ways(), repl, |flat| {
                let (s, i) = (flat / sets_per_slice, flat % sets_per_slice);
                seed.wrapping_add((s * 100_003 + i) as u64)
            });
        Self { geometry, hash, arena }
    }

    /// This structure's sliced geometry.
    pub fn geometry(&self) -> SlicedGeometry {
        self.geometry
    }

    /// The (slice, set) location of a physical line.
    pub fn location(&self, line: LineAddr) -> SetLocation {
        SetLocation { slice: self.hash.slice_of(line), set: self.geometry.set_index(line) }
    }

    /// Flattens a location into the arena's set index.
    #[inline]
    fn flat(&self, loc: SetLocation) -> usize {
        loc.flat_index(self.geometry.slice_geometry().sets())
    }

    /// Returns true if `line` is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        let idx = self.flat(self.location(line));
        self.arena.view(idx).contains(line)
    }

    /// Looks up `line`, updating replacement state on a hit.
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut T> {
        let loc = self.location(line);
        self.lookup_at(loc, line)
    }

    /// [`SlicedCache::lookup`] with a pre-computed location, so a caller that
    /// touches several structures sharing one slice hash (the hierarchy's
    /// LLC + SF access path) pays the hash once.
    pub fn lookup_at(&mut self, loc: SetLocation, line: LineAddr) -> Option<&mut T> {
        let idx = self.flat(loc);
        self.arena.view_mut(idx).lookup(line)
    }

    /// [`SlicedCache::peek`] with a pre-computed location.
    pub fn peek_at(&self, loc: SetLocation, line: LineAddr) -> Option<&T> {
        self.arena.view(self.flat(loc)).peek(line)
    }

    /// [`SlicedCache::invalidate`] with a pre-computed location.
    pub fn invalidate_at(&mut self, loc: SetLocation, line: LineAddr) -> Option<T> {
        let idx = self.flat(loc);
        self.arena.view_mut(idx).invalidate(line)
    }

    /// Looks up `line` without updating replacement state.
    pub fn peek(&self, line: LineAddr) -> Option<&T> {
        let loc = self.location(line);
        self.peek_at(loc, line)
    }

    /// Looks up `line` mutably without updating replacement state.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        let idx = self.flat(self.location(line));
        self.arena.view_mut(idx).peek_mut(line)
    }

    /// Inserts `line`, returning any evicted entry.
    pub fn insert(&mut self, line: LineAddr, payload: T) -> Option<Entry<T>> {
        let idx = self.flat(self.location(line));
        self.arena.view_mut(idx).insert(line, payload)
    }

    /// Inserts directly into an explicit (slice, set) location.
    ///
    /// This is used by the machine's background-noise model, which generates
    /// synthetic lines targeted at a specific set without inverting the slice
    /// hash. `line` should be a synthetic line number that does not collide
    /// with real allocations.
    pub fn insert_at(&mut self, loc: SetLocation, line: LineAddr, payload: T) -> Option<Entry<T>> {
        let idx = self.flat(loc);
        self.arena.view_mut(idx).insert(line, payload)
    }

    /// Removes `line`, returning its payload if present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<T> {
        let loc = self.location(line);
        self.invalidate_at(loc, line)
    }

    /// Marks `line` as the next victim of its set, if present.
    pub fn demote(&mut self, line: LineAddr) -> bool {
        let loc = self.location(line);
        self.demote_at(loc, line)
    }

    /// [`SlicedCache::demote`] with a pre-computed location.
    pub fn demote_at(&mut self, loc: SetLocation, line: LineAddr) -> bool {
        let idx = self.flat(loc);
        self.arena.view_mut(idx).demote(line)
    }

    /// Read-only view of a set (for tests and instrumentation).
    pub fn set_view(&self, loc: SetLocation) -> SetView<'_, T> {
        self.arena.view(self.flat(loc))
    }

    /// Mutable view of a set (the tightened hot-path handle).
    pub fn set_view_mut(&mut self, loc: SetLocation) -> SetViewMut<'_, T> {
        let idx = self.flat(loc);
        self.arena.view_mut(idx)
    }

    /// Occupancy of a specific set.
    pub fn occupancy(&self, loc: SetLocation) -> usize {
        self.arena.view(self.flat(loc)).occupancy()
    }

    /// Removes every line from the structure.
    pub fn clear(&mut self) {
        self.arena.clear();
    }

    /// Copies `source`'s contents into `self` in place, reusing every
    /// allocation (see [`Cache::restore_from`]).
    pub fn restore_from(&mut self, source: &SlicedCache<T>) {
        debug_assert_eq!(self.geometry, source.geometry, "snapshot geometry mismatch");
        self.arena.restore_from(&source.arena);
    }
}

/// Identifies one set of a sliced structure: (slice index, set index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetLocation {
    /// Slice index, `0..num_slices`.
    pub slice: usize,
    /// Set index within the slice.
    pub set: usize,
}

impl SetLocation {
    /// Creates a location from slice and set indices.
    pub const fn new(slice: usize, set: usize) -> Self {
        Self { slice, set }
    }

    /// Flattens the location into a single index in `0..total_sets`.
    pub fn flat_index(&self, sets_per_slice: usize) -> usize {
        self.slice * sets_per_slice + self.set
    }
}

impl std::fmt::Display for SetLocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "slice {} set {}", self.slice, self.set)
    }
}

/// The shared-structure set geometry visible to co-resident tenants: how
/// many LLC/SF slices the host has and how many sets each slice holds.
///
/// Background tenants (the `llc-machine` actor layer) draw their working-set
/// footprints over this space and post accesses per [`SetLocation`]; exposing
/// the geometry here keeps them off the spec internals and guarantees the
/// flat-index convention matches the one the sliced arenas use
/// ([`SetLocation::flat_index`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedGeometry {
    /// Number of LLC/SF slices.
    pub slices: usize,
    /// Sets per slice (identical for LLC and SF by construction).
    pub sets_per_slice: usize,
}

impl SharedGeometry {
    /// Total number of shared sets across all slices.
    pub fn total_sets(&self) -> usize {
        self.slices * self.sets_per_slice
    }

    /// Maps a flat index in `0..total_sets()` back to a `(slice, set)`
    /// location, inverse of [`SetLocation::flat_index`].
    pub fn location(&self, flat: usize) -> SetLocation {
        debug_assert!(flat < self.total_sets(), "flat set index outside the shared geometry");
        SetLocation::new(flat / self.sets_per_slice, flat % self.sets_per_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::{ModuloSliceHash, XorFoldSliceHash};

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn cache_indexing_and_eviction() {
        let mut c: Cache<()> = Cache::new(CacheGeometry::new(4, 2), ReplacementKind::Lru, 0);
        // Lines 0, 4, 8 all map to set 0 of a 4-set cache.
        c.insert(line(0), ());
        c.insert(line(4), ());
        assert!(c.contains(line(0)));
        let evicted = c.insert(line(8), ()).expect("2-way set overflows");
        assert_eq!(evicted.line, line(0));
    }

    #[test]
    fn sliced_cache_routes_by_hash() {
        let hash = Arc::new(ModuloSliceHash::new(4));
        let geom = SlicedGeometry::new(CacheGeometry::new(8, 2), 4);
        let mut c: SlicedCache<u8> = SlicedCache::new(geom, hash, ReplacementKind::Lru, 0);
        // line 5 -> slice 1 (5 % 4), set 5.
        c.insert(line(5), 42);
        assert_eq!(c.location(line(5)), SetLocation::new(1, 5));
        assert!(c.contains(line(5)));
        assert_eq!(c.peek(line(5)), Some(&42));
        assert!(!c.contains(line(9))); // slice 1, set 1 - absent
    }

    #[test]
    fn insert_at_targets_explicit_location() {
        let hash = Arc::new(XorFoldSliceHash::new(4));
        let geom = SlicedGeometry::new(CacheGeometry::new(8, 2), 4);
        let mut c: SlicedCache<()> = SlicedCache::new(geom, hash, ReplacementKind::Lru, 7);
        let loc = SetLocation::new(3, 5);
        c.insert_at(loc, line(1 << 40), ());
        assert_eq!(c.occupancy(loc), 1);
    }

    #[test]
    fn flat_index_round_trip() {
        let loc = SetLocation::new(3, 17);
        assert_eq!(loc.flat_index(2048), 3 * 2048 + 17);
    }

    #[test]
    fn set_views_expose_arena_state() {
        let mut c: Cache<u8> = Cache::new(CacheGeometry::new(2, 2), ReplacementKind::Lru, 0);
        c.insert(line(0), 7);
        let view = c.set_view(0);
        assert_eq!(view.occupancy(), 1);
        assert_eq!(view.line(0), Some(line(0)));
        assert_eq!(view.payload(0), Some(&7));
        assert!(c.set_view_mut(0).contains(line(0)));
    }

    #[test]
    fn random_replacement_streams_are_per_set_and_reproducible() {
        let geom = CacheGeometry::new(2, 2);
        let mut a: Cache<()> = Cache::new(geom, ReplacementKind::Random, 9);
        let mut b: Cache<()> = Cache::new(geom, ReplacementKind::Random, 9);
        // Overflow set 0 of both caches with the same lines: the eviction
        // sequence must replay identically.
        let evictions = |c: &mut Cache<()>| {
            (0..16).filter_map(|i| c.insert(line(i * 2), ()).map(|e| e.line)).collect::<Vec<_>>()
        };
        assert_eq!(evictions(&mut a), evictions(&mut b));
    }

    #[test]
    #[should_panic]
    fn mismatched_slice_count_panics() {
        let hash = Arc::new(ModuloSliceHash::new(2));
        let geom = SlicedGeometry::new(CacheGeometry::new(8, 2), 4);
        let _c: SlicedCache<()> = SlicedCache::new(geom, hash, ReplacementKind::Lru, 0);
    }
}
