//! Whole cache structures: a private cache and a sliced shared structure.

use crate::addr::LineAddr;
use crate::geometry::{CacheGeometry, SlicedGeometry};
use crate::replacement::ReplacementKind;
use crate::set::{CacheSet, Entry};
use crate::slice::SliceHash;
use std::sync::Arc;

/// A non-sliced cache (L1 or L2): an array of [`CacheSet`]s indexed by the
/// physical-address set-index bits.
#[derive(Debug, Clone)]
pub struct Cache<T> {
    geometry: CacheGeometry,
    sets: Vec<CacheSet<T>>,
}

impl<T> Cache<T> {
    /// Creates an empty cache with the given geometry and replacement policy.
    pub fn new(geometry: CacheGeometry, repl: ReplacementKind, seed: u64) -> Self {
        let sets = (0..geometry.sets())
            .map(|i| CacheSet::new(geometry.ways(), repl, seed.wrapping_add(i as u64)))
            .collect();
        Self { geometry, sets }
    }

    /// This cache's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Set index of a line in this cache.
    pub fn set_index(&self, line: LineAddr) -> usize {
        self.geometry.set_index(line)
    }

    /// Returns true if `line` is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.sets[self.set_index(line)].contains(line)
    }

    /// Looks up `line`, updating replacement state on a hit.
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut T> {
        let idx = self.set_index(line);
        self.sets[idx].lookup(line)
    }

    /// Looks up `line` without updating replacement state.
    pub fn peek(&self, line: LineAddr) -> Option<&T> {
        self.sets[self.set_index(line)].peek(line)
    }

    /// Inserts `line`, returning any evicted entry.
    pub fn insert(&mut self, line: LineAddr, payload: T) -> Option<Entry<T>> {
        let idx = self.set_index(line);
        self.sets[idx].insert(line, payload)
    }

    /// Removes `line`, returning its payload if present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<T> {
        let idx = self.set_index(line);
        self.sets[idx].invalidate(line)
    }

    /// Marks `line` as the next victim of its set, if present.
    pub fn demote(&mut self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        self.sets[idx].demote(line)
    }

    /// Direct access to a set by index (for tests and instrumentation).
    pub fn set(&self, index: usize) -> &CacheSet<T> {
        &self.sets[index]
    }

    /// Removes every line from the cache.
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

impl<T: Clone> Cache<T> {
    /// Copies `source`'s contents into `self` in place, reusing every
    /// allocation. Both caches must share a geometry (true when restoring
    /// from a snapshot of the same specification).
    pub fn restore_from(&mut self, source: &Cache<T>) {
        debug_assert_eq!(self.geometry, source.geometry, "snapshot geometry mismatch");
        for (dst, src) in self.sets.iter_mut().zip(&source.sets) {
            dst.restore_from(src);
        }
    }
}

/// A sliced shared structure (LLC or snoop filter): `num_slices` independent
/// set arrays, selected by a [`SliceHash`] over the physical line address.
#[derive(Debug, Clone)]
pub struct SlicedCache<T> {
    geometry: SlicedGeometry,
    hash: Arc<dyn SliceHash>,
    slices: Vec<Vec<CacheSet<T>>>,
}

impl<T> SlicedCache<T> {
    /// Creates an empty sliced cache.
    ///
    /// # Panics
    ///
    /// Panics if the slice hash's slice count differs from the geometry's.
    pub fn new(
        geometry: SlicedGeometry,
        hash: Arc<dyn SliceHash>,
        repl: ReplacementKind,
        seed: u64,
    ) -> Self {
        assert_eq!(
            geometry.num_slices(),
            hash.num_slices(),
            "slice hash and geometry disagree on the number of slices"
        );
        let slices = (0..geometry.num_slices())
            .map(|s| {
                (0..geometry.slice_geometry().sets())
                    .map(|i| {
                        CacheSet::new(
                            geometry.ways(),
                            repl,
                            seed.wrapping_add((s * 100_003 + i) as u64),
                        )
                    })
                    .collect()
            })
            .collect();
        Self { geometry, hash, slices }
    }

    /// This structure's sliced geometry.
    pub fn geometry(&self) -> SlicedGeometry {
        self.geometry
    }

    /// The (slice, set) location of a physical line.
    pub fn location(&self, line: LineAddr) -> SetLocation {
        SetLocation { slice: self.hash.slice_of(line), set: self.geometry.set_index(line) }
    }

    /// Returns true if `line` is present.
    pub fn contains(&self, line: LineAddr) -> bool {
        let loc = self.location(line);
        self.slices[loc.slice][loc.set].contains(line)
    }

    /// Looks up `line`, updating replacement state on a hit.
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut T> {
        let loc = self.location(line);
        self.slices[loc.slice][loc.set].lookup(line)
    }

    /// Looks up `line` without updating replacement state.
    pub fn peek(&self, line: LineAddr) -> Option<&T> {
        let loc = self.location(line);
        self.slices[loc.slice][loc.set].peek(line)
    }

    /// Looks up `line` mutably without updating replacement state.
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        let loc = self.location(line);
        self.slices[loc.slice][loc.set].peek_mut(line)
    }

    /// Inserts `line`, returning any evicted entry.
    pub fn insert(&mut self, line: LineAddr, payload: T) -> Option<Entry<T>> {
        let loc = self.location(line);
        self.slices[loc.slice][loc.set].insert(line, payload)
    }

    /// Inserts directly into an explicit (slice, set) location.
    ///
    /// This is used by the machine's background-noise model, which generates
    /// synthetic lines targeted at a specific set without inverting the slice
    /// hash. `line` should be a synthetic line number that does not collide
    /// with real allocations.
    pub fn insert_at(&mut self, loc: SetLocation, line: LineAddr, payload: T) -> Option<Entry<T>> {
        self.slices[loc.slice][loc.set].insert(line, payload)
    }

    /// Removes `line`, returning its payload if present.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<T> {
        let loc = self.location(line);
        self.slices[loc.slice][loc.set].invalidate(line)
    }

    /// Marks `line` as the next victim of its set, if present.
    pub fn demote(&mut self, line: LineAddr) -> bool {
        let loc = self.location(line);
        self.slices[loc.slice][loc.set].demote(line)
    }

    /// Direct access to a set (for tests and instrumentation).
    pub fn set(&self, loc: SetLocation) -> &CacheSet<T> {
        &self.slices[loc.slice][loc.set]
    }

    /// Occupancy of a specific set.
    pub fn occupancy(&self, loc: SetLocation) -> usize {
        self.slices[loc.slice][loc.set].occupancy()
    }

    /// Removes every line from the structure.
    pub fn clear(&mut self) {
        for slice in &mut self.slices {
            for set in slice {
                set.clear();
            }
        }
    }
}

impl<T: Clone> SlicedCache<T> {
    /// Copies `source`'s contents into `self` in place, reusing every
    /// allocation (see [`Cache::restore_from`]).
    pub fn restore_from(&mut self, source: &SlicedCache<T>) {
        debug_assert_eq!(self.geometry, source.geometry, "snapshot geometry mismatch");
        for (dst_slice, src_slice) in self.slices.iter_mut().zip(&source.slices) {
            for (dst, src) in dst_slice.iter_mut().zip(src_slice) {
                dst.restore_from(src);
            }
        }
    }
}

/// Identifies one set of a sliced structure: (slice index, set index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetLocation {
    /// Slice index, `0..num_slices`.
    pub slice: usize,
    /// Set index within the slice.
    pub set: usize,
}

impl SetLocation {
    /// Creates a location from slice and set indices.
    pub const fn new(slice: usize, set: usize) -> Self {
        Self { slice, set }
    }

    /// Flattens the location into a single index in `0..total_sets`.
    pub fn flat_index(&self, sets_per_slice: usize) -> usize {
        self.slice * sets_per_slice + self.set
    }
}

impl std::fmt::Display for SetLocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "slice {} set {}", self.slice, self.set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::{ModuloSliceHash, XorFoldSliceHash};

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn cache_indexing_and_eviction() {
        let mut c: Cache<()> = Cache::new(CacheGeometry::new(4, 2), ReplacementKind::Lru, 0);
        // Lines 0, 4, 8 all map to set 0 of a 4-set cache.
        c.insert(line(0), ());
        c.insert(line(4), ());
        assert!(c.contains(line(0)));
        let evicted = c.insert(line(8), ()).expect("2-way set overflows");
        assert_eq!(evicted.line, line(0));
    }

    #[test]
    fn sliced_cache_routes_by_hash() {
        let hash = Arc::new(ModuloSliceHash::new(4));
        let geom = SlicedGeometry::new(CacheGeometry::new(8, 2), 4);
        let mut c: SlicedCache<u8> = SlicedCache::new(geom, hash, ReplacementKind::Lru, 0);
        // line 5 -> slice 1 (5 % 4), set 5.
        c.insert(line(5), 42);
        assert_eq!(c.location(line(5)), SetLocation::new(1, 5));
        assert!(c.contains(line(5)));
        assert_eq!(c.peek(line(5)), Some(&42));
        assert!(!c.contains(line(9))); // slice 1, set 1 - absent
    }

    #[test]
    fn insert_at_targets_explicit_location() {
        let hash = Arc::new(XorFoldSliceHash::new(4));
        let geom = SlicedGeometry::new(CacheGeometry::new(8, 2), 4);
        let mut c: SlicedCache<()> = SlicedCache::new(geom, hash, ReplacementKind::Lru, 7);
        let loc = SetLocation::new(3, 5);
        c.insert_at(loc, line(1 << 40), ());
        assert_eq!(c.occupancy(loc), 1);
    }

    #[test]
    fn flat_index_round_trip() {
        let loc = SetLocation::new(3, 17);
        assert_eq!(loc.flat_index(2048), 3 * 2048 + 17);
    }

    #[test]
    #[should_panic]
    fn mismatched_slice_count_panics() {
        let hash = Arc::new(ModuloSliceHash::new(2));
        let geom = SlicedGeometry::new(CacheGeometry::new(8, 2), 4);
        let _c: SlicedCache<()> = SlicedCache::new(geom, hash, ReplacementKind::Lru, 0);
    }
}
