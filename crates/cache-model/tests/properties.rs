//! Property-based tests for the cache model invariants.

use llc_cache_model::{
    AccessKind, AddressSpace, CacheGeometry, CacheSpec, Hierarchy, LineAddr, ReplacementKind,
    SliceHash, VirtAddr, XorFoldSliceHash, PAGE_SIZE,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Translation never changes the page offset and is stable.
    #[test]
    fn translation_preserves_page_offset(seed in any::<u64>(), pages in 1usize..32, offsets in prop::collection::vec(0u64..PAGE_SIZE, 1..16)) {
        let mut aspace = AddressSpace::with_seed(seed);
        let base = aspace.allocate_pages(pages);
        for off in offsets {
            let va = VirtAddr::new(base.raw() + off);
            let pa = aspace.translate(va).unwrap();
            prop_assert_eq!(pa.page_offset(), off);
            prop_assert_eq!(aspace.translate(va).unwrap(), pa);
        }
    }

    /// The slice hash is a pure function and always lands in range.
    #[test]
    fn slice_hash_pure_and_in_range(lines in prop::collection::vec(any::<u64>(), 1..128), slices in 1usize..33) {
        let h = XorFoldSliceHash::new(slices);
        for n in lines {
            let line = LineAddr::from_line_number(n);
            let s = h.slice_of(line);
            prop_assert!(s < slices);
            prop_assert_eq!(s, h.slice_of(line));
        }
    }

    /// Set indexing only depends on the low index bits, so adding a multiple
    /// of `sets` lines moves an address to the same set.
    #[test]
    fn set_index_periodic(sets_log2 in 4u32..12, ways in 1usize..20, line in any::<u32>(), k in 0u64..16) {
        let sets = 1usize << sets_log2;
        let g = CacheGeometry::new(sets, ways);
        let a = LineAddr::from_line_number(line as u64);
        let b = LineAddr::from_line_number(line as u64 + k * sets as u64);
        prop_assert_eq!(g.set_index(a), g.set_index(b));
    }

    /// After any access sequence, a line that was just accessed by a core is
    /// cached somewhere the next access can find without going to memory.
    #[test]
    fn recently_accessed_line_does_not_miss(ops in prop::collection::vec((0usize..3, 0u64..512), 1..200)) {
        let mut h = Hierarchy::new(CacheSpec::tiny_test(), 7);
        for (core, n) in ops {
            let line = LineAddr::from_line_number(n);
            h.access(core, line, AccessKind::Read);
            let again = h.access(core, line, AccessKind::Read);
            prop_assert!(again.level <= llc_cache_model::HitLevel::L2,
                "immediate re-access of {line:?} from core {core} reached {:?}", again.level);
        }
    }

    /// A line is never simultaneously tracked by the SF and resident in the
    /// LLC (the paper's description of the non-inclusive protocol).
    #[test]
    fn sf_and_llc_are_mutually_exclusive(ops in prop::collection::vec((0usize..3, 0u64..256), 1..200)) {
        let mut h = Hierarchy::new(CacheSpec::tiny_test(), 9);
        let mut touched = std::collections::HashSet::new();
        for (core, n) in ops {
            let line = LineAddr::from_line_number(n);
            touched.insert(line);
            h.access(core, line, AccessKind::Read);
            for &l in &touched {
                prop_assert!(!(h.in_sf(l) && h.in_llc(l)),
                    "{l:?} is tracked by both the SF and the LLC");
            }
        }
    }

    /// Replacement policies always return an in-range victim.
    #[test]
    fn replacement_victims_in_range(ways in 1usize..24, touches in prop::collection::vec(any::<u16>(), 1..64)) {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let mut rng = SmallRng::seed_from_u64(3);
        for kind in [ReplacementKind::Lru, ReplacementKind::TreePlru, ReplacementKind::Qlru, ReplacementKind::Srrip, ReplacementKind::Random] {
            let mut meta = vec![0u64; ways];
            kind.init_meta(&mut meta);
            for (i, t) in touches.iter().enumerate() {
                kind.touch(&mut meta, *t as usize % ways, i % 3 == 0);
                let rng = kind.uses_rng().then_some(&mut rng);
                prop_assert!(kind.victim(&mut meta, rng) < ways);
            }
        }
    }
}
