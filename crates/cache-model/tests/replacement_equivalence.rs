//! Property-based equivalence of the flat, enum-dispatched replacement
//! policies against naive reference oracles.
//!
//! The SoA rewrite replaced per-set `Box<dyn ReplacementState>` objects with
//! `ReplacementKind` methods over packed `&mut [u64]` metadata (including a
//! SWAR nibble-packed LRU for ≤ 16 ways). These tests drive random
//! access/insert/demote/invalidate streams through a one-set cache arena and
//! through small, obviously-correct oracle models — an explicit `VecDeque`
//! recency list for LRU, a `Vec<bool>` node tree for Tree-PLRU, and a
//! `Vec<u8>` age array for QLRU — asserting the same victims, evictions and
//! residency at every step. Any packing or dispatch bug that changes
//! semantics (and would silently invalidate the golden experiment outputs)
//! surfaces here as a divergence.

use llc_cache_model::{LineAddr, ReplacementKind, SetArena};
use proptest::prelude::*;
use std::collections::VecDeque;

/// One operation of a random stream. Lines are small integers; the set is a
/// single cache set, so every line is congruent with every other.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Insert (or re-touch) line `n`.
    Insert(u64),
    /// Look up line `n` (recency update on hit, no fill on miss).
    Lookup(u64),
    /// Mark line `n` as the next victim, if present.
    Demote(u64),
    /// Remove line `n`, if present.
    Invalidate(u64),
}

/// Decodes a raw `(selector, line)` pair — the offline proptest shim has no
/// `prop_map`, so op streams are generated as tuples and decoded here.
fn decode_op((kind, n): (u8, u64)) -> Op {
    match kind {
        0 => Op::Insert(n),
        1 => Op::Lookup(n),
        2 => Op::Demote(n),
        _ => Op::Invalidate(n),
    }
}

/// A reference cache set: explicit `(line)` per way plus an oracle policy.
struct OracleSet {
    ways: Vec<Option<u64>>,
    policy: Box<dyn OraclePolicy>,
}

/// Minimal reference policy interface mirroring the semantics the arena's
/// set views guarantee.
trait OraclePolicy {
    fn touch(&mut self, way: usize, is_fill: bool);
    fn victim(&mut self) -> usize;
    fn demote(&mut self, way: usize);
    /// Way metadata reset on invalidate (the arena marks the way as the
    /// preferred next victim).
    fn reset_way(&mut self, way: usize) {
        self.demote(way);
    }
}

/// True LRU as an explicit recency list (index 0 = MRU) — a transliteration
/// of the pre-SoA boxed implementation.
struct OracleLru {
    order: VecDeque<usize>,
}

impl OracleLru {
    fn new(ways: usize) -> Self {
        Self { order: (0..ways).collect() }
    }
}

impl OraclePolicy for OracleLru {
    fn touch(&mut self, way: usize, _is_fill: bool) {
        let pos = self.order.iter().position(|&w| w == way).expect("way tracked");
        self.order.remove(pos);
        self.order.push_front(way);
    }

    fn victim(&mut self) -> usize {
        *self.order.back().expect("never empty")
    }

    fn demote(&mut self, way: usize) {
        let pos = self.order.iter().position(|&w| w == way).expect("way tracked");
        self.order.remove(pos);
        self.order.push_back(way);
    }
}

/// Tree-PLRU over an explicit `Vec<bool>` node array — a transliteration of
/// the pre-SoA boxed implementation (bit true = victim search goes left).
struct OracleTreePlru {
    ways: usize,
    bits: Vec<bool>,
    leaves: usize,
}

impl OracleTreePlru {
    fn new(ways: usize) -> Self {
        let leaves = ways.next_power_of_two();
        Self { ways, bits: vec![false; leaves.max(2) - 1], leaves }
    }

    fn walk(&mut self, way: usize, toward: bool) {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = way >= mid;
            self.bits[node] = if toward { !go_right } else { go_right };
            node = 2 * node + if go_right { 2 } else { 1 };
            if go_right {
                lo = mid;
            } else {
                hi = mid;
            }
        }
    }
}

impl OraclePolicy for OracleTreePlru {
    fn touch(&mut self, way: usize, _is_fill: bool) {
        if way < self.ways {
            self.walk(way, false);
        }
    }

    fn victim(&mut self) -> usize {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_left = self.bits[node];
            node = 2 * node + if go_left { 1 } else { 2 };
            if go_left {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        if lo >= self.ways {
            0
        } else {
            lo
        }
    }

    fn demote(&mut self, way: usize) {
        if way < self.ways {
            self.walk(way, true);
        }
    }
}

/// QLRU as a naive byte-per-way age array: hit → 0, fill → 1, demote → 3,
/// victim = lowest way at age 3 after ageing everyone just enough for one
/// line to reach 3.
struct OracleQlru {
    age: Vec<u8>,
}

impl OracleQlru {
    fn new(ways: usize) -> Self {
        Self { age: vec![3; ways] }
    }
}

impl OraclePolicy for OracleQlru {
    fn touch(&mut self, way: usize, is_fill: bool) {
        self.age[way] = if is_fill { 1 } else { 0 };
    }

    fn victim(&mut self) -> usize {
        let oldest = *self.age.iter().max().expect("never empty");
        for a in &mut self.age {
            *a += 3 - oldest;
        }
        self.age.iter().position(|&a| a == 3).expect("one line aged to 3")
    }

    fn demote(&mut self, way: usize) {
        self.age[way] = 3;
    }
}

impl OracleSet {
    fn new(ways: usize, policy: Box<dyn OraclePolicy>) -> Self {
        Self { ways: vec![None; ways], policy }
    }

    fn find(&self, line: u64) -> Option<usize> {
        self.ways.iter().position(|w| *w == Some(line))
    }

    /// Mirrors `SetViewMut::insert`: hit → touch, else lowest free way,
    /// else policy victim. Returns the evicted line, if any.
    fn insert(&mut self, line: u64) -> Option<u64> {
        if let Some(way) = self.find(line) {
            self.policy.touch(way, false);
            return None;
        }
        if let Some(way) = self.ways.iter().position(|w| w.is_none()) {
            self.ways[way] = Some(line);
            self.policy.touch(way, true);
            return None;
        }
        let way = self.policy.victim();
        let evicted = self.ways[way].take();
        self.ways[way] = Some(line);
        self.policy.touch(way, true);
        evicted
    }

    fn lookup(&mut self, line: u64) -> bool {
        match self.find(line) {
            Some(way) => {
                self.policy.touch(way, false);
                true
            }
            None => false,
        }
    }

    fn demote(&mut self, line: u64) -> bool {
        match self.find(line) {
            Some(way) => {
                self.policy.demote(way);
                true
            }
            None => false,
        }
    }

    fn invalidate(&mut self, line: u64) -> bool {
        match self.find(line) {
            Some(way) => {
                self.ways[way] = None;
                self.policy.reset_way(way);
                true
            }
            None => false,
        }
    }
}

fn oracle_for(kind: ReplacementKind, ways: usize) -> Box<dyn OraclePolicy> {
    match kind {
        ReplacementKind::Lru => Box::new(OracleLru::new(ways)),
        ReplacementKind::TreePlru => Box::new(OracleTreePlru::new(ways)),
        ReplacementKind::Qlru => Box::new(OracleQlru::new(ways)),
        _ => panic!("no oracle for {kind:?}"),
    }
}

/// Drives the same op stream through a one-set arena and the oracle,
/// asserting identical evictions and residency after every operation.
fn check_equivalence(
    kind: ReplacementKind,
    ways: usize,
    raw_ops: &[(u8, u64)],
) -> Result<(), String> {
    let mut arena: SetArena<()> = SetArena::new(1, ways, kind, |_| 0);
    let mut oracle = OracleSet::new(ways, oracle_for(kind, ways));
    let line = LineAddr::from_line_number;
    for (step, op) in raw_ops.iter().map(|&raw| decode_op(raw)).enumerate() {
        match op {
            Op::Insert(n) => {
                let got = arena.view_mut(0).insert(line(n), ()).map(|e| e.line);
                let want = oracle.insert(n).map(line);
                prop_assert_eq!(got, want, "insert eviction diverged at step {} ({:?})", step, op);
            }
            Op::Lookup(n) => {
                let got = arena.view_mut(0).lookup(line(n)).is_some();
                let want = oracle.lookup(n);
                prop_assert_eq!(got, want, "lookup hit diverged at step {} ({:?})", step, op);
            }
            Op::Demote(n) => {
                let got = arena.view_mut(0).demote(line(n));
                let want = oracle.demote(n);
                prop_assert_eq!(got, want, "demote presence diverged at step {} ({:?})", step, op);
            }
            Op::Invalidate(n) => {
                let got = arena.view_mut(0).invalidate(line(n)).is_some();
                let want = oracle.invalidate(n);
                prop_assert_eq!(got, want, "invalidate diverged at step {} ({:?})", step, op);
            }
        }
        for n in 0..64 {
            prop_assert_eq!(
                arena.view(0).contains(line(n)),
                oracle.find(n).is_some(),
                "residency of line {} diverged after step {} ({:?})",
                n,
                step,
                op
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LRU: both the nibble-packed (≤ 16 ways) and per-word (> 16 ways)
    /// representations replay the explicit recency list exactly. The way
    /// counts cover the modelled hardware (8/11/12/16) and the fallback.
    #[test]
    fn lru_matches_recency_list_oracle(
        ways_idx in 0usize..7,
        ops in prop::collection::vec((0u8..4, 0u64..24), 1..400),
    ) {
        let ways = [2usize, 5, 8, 11, 12, 16, 20][ways_idx];
        check_equivalence(ReplacementKind::Lru, ways, &ops)?;
    }

    /// Tree-PLRU matches the explicit node-array tree, including the
    /// non-power-of-two way counts that redirect out-of-range victims.
    #[test]
    fn tree_plru_matches_tree_oracle(
        ways_idx in 0usize..6,
        ops in prop::collection::vec((0u8..4, 0u64..24), 1..400),
    ) {
        let ways = [2usize, 3, 8, 11, 12, 16][ways_idx];
        check_equivalence(ReplacementKind::TreePlru, ways, &ops)?;
    }

    /// QLRU matches the naive byte-age model.
    #[test]
    fn qlru_matches_age_oracle(
        ways_idx in 0usize..5,
        ops in prop::collection::vec((0u8..4, 0u64..24), 1..400),
    ) {
        let ways = [2usize, 4, 8, 12, 16][ways_idx];
        check_equivalence(ReplacementKind::Qlru, ways, &ops)?;
    }
}
