//! Inclusion-property suites for the configurable hierarchy: the inclusive
//! policy's superset invariant and the exclusive policy's disjointness
//! invariant, fuzzed over the same adversarial op streams as the
//! non-inclusive coherence suite (reads, writes, flushes, background noise,
//! replacement-state priming).
//!
//! The non-inclusive default needs no suite here: its behaviour is pinned
//! bit-exactly by the golden smoke reports in `llc-bench` plus
//! `tests/coherence_props.rs`.

use llc_cache_model::{
    AccessKind, CacheSpec, Hierarchy, InclusionPolicy, LineAddr,
};
use proptest::prelude::*;

/// Same congruence-heavy pool as the coherence suite: 64 shared sets and 8
/// L1 sets under 256 lines.
const LINES: u64 = 256;

fn hierarchy(policy: InclusionPolicy, seed: u64) -> Hierarchy {
    Hierarchy::new(CacheSpec::tiny_test().with_inclusion(policy), seed)
}

fn apply(h: &mut Hierarchy, op: usize, core: usize, n: u64) {
    let line = LineAddr::from_line_number(n);
    match op {
        0..=2 => {
            h.access(core, line, AccessKind::Read);
        }
        3..=5 => {
            h.access(core, line, AccessKind::Write);
        }
        6 => h.clflush(line),
        7 => {
            let loc = h.shared_location(line);
            h.noise_access(loc, true);
        }
        8 => {
            let loc = h.shared_location(line);
            h.noise_access(loc, false);
        }
        _ => h.prime_as_victim(line),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Inclusive: the LLC is a superset of every private cache — any line
    /// resident in some L1 or L2 must also be LLC-resident — and the snoop
    /// filter is never used (the LLC's own back-invalidation is the
    /// directory).
    #[test]
    fn inclusive_llc_is_a_superset(
        seed in any::<u64>(),
        ops in prop::collection::vec((0usize..10, 0usize..3, 0u64..LINES), 0..160),
    ) {
        let mut h = hierarchy(InclusionPolicy::Inclusive, seed);
        for &(op, core, n) in &ops {
            apply(&mut h, op, core, n);
        }
        for n in 0..LINES {
            let line = LineAddr::from_line_number(n);
            prop_assert!(!h.in_sf(line), "inclusive hierarchy allocated an SF entry for line {}", n);
            for core in 0..h.cores() {
                if h.in_l1(core, line) || h.in_l2(core, line) {
                    prop_assert!(
                        h.in_llc(line),
                        "line {} is private on core {} but not LLC-resident (inclusion violated)",
                        n, core
                    );
                }
            }
        }
    }

    /// Exclusive: the LLC is a victim cache — no line is ever in a private
    /// cache and the LLC at the same time — every private copy is tracked
    /// by the directory (SF), and the shared structures stay disjoint.
    #[test]
    fn exclusive_llc_and_private_are_disjoint(
        seed in any::<u64>(),
        ops in prop::collection::vec((0usize..10, 0usize..3, 0u64..LINES), 0..160),
    ) {
        let mut h = hierarchy(InclusionPolicy::Exclusive, seed);
        for &(op, core, n) in &ops {
            apply(&mut h, op, core, n);
        }
        for n in 0..LINES {
            let line = LineAddr::from_line_number(n);
            prop_assert!(
                !(h.in_llc(line) && h.in_sf(line)),
                "line {} is in both the LLC and the directory", n
            );
            for core in 0..h.cores() {
                let private = h.in_l1(core, line) || h.in_l2(core, line);
                if private {
                    prop_assert!(
                        !h.in_llc(line),
                        "line {} is private on core {} and LLC-resident (exclusivity violated)",
                        n, core
                    );
                }
                if h.in_l2(core, line) {
                    prop_assert!(
                        h.in_sf(line),
                        "L2-resident line {} on core {} is not directory-tracked", n, core
                    );
                }
            }
        }
    }
}
