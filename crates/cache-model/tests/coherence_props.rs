//! Coherence invariants of the **non-inclusive** hierarchy under adversarial
//! interleavings of demotions and back-invalidations.
//!
//! The non-inclusive protocol deliberately lets a Shared line's L1 copy
//! outlive its L2 copy (an L2 eviction of a Shared line is a no-op — see the
//! comment in `Hierarchy::handle_l2_eviction`). That is only *harmless* if
//! every path that kills the line's LLC backing also back-invalidates the
//! stale L1 copy; otherwise a core could keep hitting a line the package has
//! already given up, which no real machine exhibits and which would skew
//! every latency-threshold measurement built on top. This suite pins that
//! quirk (`stale_l1_copies_stay_backed`) and the surrounding backing
//! invariants over random read+write streams mixed with `clflush`,
//! background noise and replacement-state priming.

use llc_cache_model::{
    AccessKind, CacheSpec, CoherenceState, Hierarchy, HierarchyOptions, LineAddr,
};
use proptest::prelude::*;

/// Lines 0..LINES on `tiny_test` fold onto 64 shared sets (2 slices × 32
/// sets) and 8 L1 sets, so random draws are heavily congruent and demotions
/// and evictions happen constantly.
const LINES: u64 = 256;

fn hierarchy(seed: u64, reuse: u8) -> Hierarchy {
    let mut h = Hierarchy::new(CacheSpec::tiny_test(), seed);
    // Sweep the reuse predictor too: it adds SF-eviction → LLC re-insertion
    // interleavings that the default configuration never exercises.
    let p = [0.0, 0.37, 1.0][reuse as usize % 3];
    h.set_options(HierarchyOptions { reuse_insert_probability: p });
    h
}

/// Applies one encoded operation: weighted towards reads and writes, with
/// flushes, background noise (shared and private flavours) and
/// `prime_as_victim` demotions mixed in.
fn apply(h: &mut Hierarchy, op: usize, core: usize, n: u64) {
    let line = LineAddr::from_line_number(n);
    match op {
        0..=2 => {
            h.access(core, line, AccessKind::Read);
        }
        3..=5 => {
            h.access(core, line, AccessKind::Write);
        }
        6 => h.clflush(line),
        7 => {
            let loc = h.shared_location(line);
            h.noise_access(loc, true);
        }
        8 => {
            let loc = h.shared_location(line);
            h.noise_access(loc, false);
        }
        _ => h.prime_as_victim(line),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The stale-L1 quirk, pinned: whenever a line's L1 copy has outlived
    /// its L2 copy, that copy is Shared and the LLC still backs it. (An
    /// Exclusive/Modified L2 eviction and every LLC/SF eviction explicitly
    /// back-invalidate L1, so the only way to orphan an L1 copy would be a
    /// path that kills the backing without the invalidation.)
    #[test]
    fn stale_l1_copies_stay_backed(
        seed in any::<u64>(),
        reuse in 0u8..3,
        ops in prop::collection::vec((0usize..10, 0usize..3, 0u64..LINES), 0..160),
    ) {
        let mut h = hierarchy(seed, reuse);
        for &(op, core, n) in &ops {
            apply(&mut h, op, core, n);
        }
        for n in 0..LINES {
            let line = LineAddr::from_line_number(n);
            for core in 0..h.cores() {
                if h.in_l1(core, line) && !h.in_l2(core, line) {
                    prop_assert_eq!(
                        h.l1_state(core, line),
                        Some(CoherenceState::Shared),
                        "stale L1 copy of line {} on core {} is not Shared", n, core
                    );
                    prop_assert!(
                        h.in_llc(line),
                        "stale L1 copy of line {} on core {} lost its LLC backing", n, core
                    );
                }
            }
        }
    }

    /// Every private copy is backed by the matching shared structure:
    /// Shared copies by an LLC entry, Exclusive/Modified copies by an SF
    /// entry — and no line is ever in both shared structures at once.
    #[test]
    fn private_lines_stay_backed(
        seed in any::<u64>(),
        reuse in 0u8..3,
        ops in prop::collection::vec((0usize..10, 0usize..3, 0u64..LINES), 0..160),
    ) {
        let mut h = hierarchy(seed, reuse);
        for &(op, core, n) in &ops {
            apply(&mut h, op, core, n);
        }
        for n in 0..LINES {
            let line = LineAddr::from_line_number(n);
            prop_assert!(
                !(h.in_llc(line) && h.in_sf(line)),
                "line {} is in both the LLC and the SF", n
            );
            for core in 0..h.cores() {
                for state in [h.l1_state(core, line), h.l2_state(core, line)] {
                    match state {
                        Some(CoherenceState::Shared) => prop_assert!(
                            h.in_llc(line),
                            "Shared copy of line {} on core {} has no LLC backing", n, core
                        ),
                        Some(_) => prop_assert!(
                            h.in_sf(line),
                            "private copy of line {} on core {} is not SF-tracked", n, core
                        ),
                        None => {}
                    }
                }
            }
        }
    }
}
