//! Property-based invariants of the aggregate noise path
//! (`Hierarchy::noise_advance_bulk`).
//!
//! The per-property equivalence against the per-event reference is pinned by
//! unit tests next to the implementation; this suite fuzzes the surrounding
//! structural invariants that every caller relies on, over arbitrary warm-up
//! traffic and arbitrary (including saturating) fill counts.

use llc_cache_model::{AccessKind, CacheSpec, Hierarchy, LineAddr, SetLocation};
use proptest::prelude::*;

fn tiny(seed: u64) -> Hierarchy {
    Hierarchy::new(CacheSpec::tiny_test(), seed)
}

/// (way, line number, meta word) of every valid way — one structure's half
/// of a set fingerprint.
type WayFingerprint = Vec<(usize, u64, u64)>;

/// Fingerprints the set's LLC and SF views — a full structural snapshot.
fn fingerprint(h: &Hierarchy, loc: SetLocation) -> (WayFingerprint, WayFingerprint) {
    let llc: WayFingerprint = {
        let v = h.llc_set_view(loc);
        (0..v.num_ways())
            .filter(|&w| v.is_valid(w))
            .map(|w| (w, v.line(w).unwrap().line_number(), v.meta_word(w)))
            .collect()
    };
    let sf: WayFingerprint = {
        let v = h.sf_set_view(loc);
        (0..v.num_ways())
            .filter(|&w| v.is_valid(w))
            .map(|w| (w, v.line(w).unwrap().line_number(), v.meta_word(w)))
            .collect()
    };
    (llc, sf)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After arbitrary warm traffic and an arbitrary bulk advance (including
    /// saturating counts far above the associativity), both shared
    /// structures stay self-consistent: occupancy never exceeds the ways,
    /// every valid way holds a findable line, and lines within a set are
    /// unique.
    #[test]
    fn advance_preserves_structural_invariants(
        seed in any::<u64>(),
        warm in prop::collection::vec((0usize..2, 0u64..256), 0..80),
        llc_fills in 0u64..64,
        sf_fills in 0u64..64,
        slice in 0usize..2,
        set in 0usize..4,
    ) {
        let mut h = tiny(seed);
        for (core, n) in warm {
            h.access(core, LineAddr::from_line_number(n), AccessKind::Read);
        }
        let spec = h.spec().clone();
        let loc = SetLocation::new(
            slice % spec.sf.num_slices(),
            set % spec.sf.slice_geometry().sets(),
        );
        h.noise_advance_bulk(loc, llc_fills, sf_fills);

        let llc = h.llc_set_view(loc);
        prop_assert!(llc.occupancy() <= spec.llc.ways());
        let mut seen = std::collections::HashSet::new();
        for w in 0..llc.num_ways() {
            if llc.is_valid(w) {
                let line = llc.line(w).expect("valid way must hold a line");
                prop_assert!(seen.insert(line), "duplicate line in LLC set");
                prop_assert_eq!(llc.way_of(line), Some(w));
            } else {
                prop_assert!(llc.line(w).is_none());
            }
        }
        let sf = h.sf_set_view(loc);
        prop_assert!(sf.occupancy() <= spec.sf.ways());
        let mut seen = std::collections::HashSet::new();
        for w in 0..sf.num_ways() {
            if sf.is_valid(w) {
                let line = sf.line(w).expect("valid way must hold a line");
                prop_assert!(seen.insert(line), "duplicate line in SF set");
                prop_assert_eq!(sf.way_of(line), Some(w));
            } else {
                prop_assert!(sf.line(w).is_none());
            }
        }
        // A saturating burst must leave both structures exactly full.
        if llc_fills >= spec.llc.ways() as u64 {
            prop_assert_eq!(h.llc_occupancy(loc), spec.llc.ways());
        }
        if sf_fills >= spec.sf.ways() as u64 {
            prop_assert_eq!(h.sf_occupancy(loc), spec.sf.ways());
        }
    }

    /// A zero-count advance is a strict no-op: lines, valid bits and
    /// replacement metadata of the targeted set are untouched.
    #[test]
    fn zero_advance_is_a_noop(
        seed in any::<u64>(),
        warm in prop::collection::vec((0usize..2, 0u64..256), 0..60),
        slice in 0usize..2,
        set in 0usize..4,
    ) {
        let mut h = tiny(seed);
        for (core, n) in warm {
            h.access(core, LineAddr::from_line_number(n), AccessKind::Read);
        }
        let spec = h.spec().clone();
        let loc = SetLocation::new(
            slice % spec.sf.num_slices(),
            set % spec.sf.slice_geometry().sets(),
        );
        let before = fingerprint(&h, loc);
        h.noise_advance_bulk(loc, 0, 0);
        prop_assert_eq!(before, fingerprint(&h, loc));
    }

    /// Same seed, same traffic, same advance — bit-identical set contents
    /// (the aggregate path must be as deterministic as the exact one).
    #[test]
    fn advance_is_deterministic(
        seed in any::<u64>(),
        warm in prop::collection::vec((0usize..2, 0u64..256), 0..60),
        llc_fills in 0u64..40,
        sf_fills in 0u64..40,
    ) {
        let run = || {
            let mut h = tiny(seed);
            for (core, n) in &warm {
                h.access(*core, LineAddr::from_line_number(*n), AccessKind::Read);
            }
            let loc = SetLocation::new(0, 0);
            h.noise_advance_bulk(loc, llc_fills, sf_fills);
            fingerprint(&h, loc)
        };
        prop_assert_eq!(run(), run());
    }
}
