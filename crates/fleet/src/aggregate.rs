//! Order-independent reduction of per-trial results.
//!
//! Floating-point addition is not associative, so a naive "sum as results
//! arrive" reduction produces different bits depending on the thread
//! schedule. The [`Aggregate`] contract sidesteps this: implementations key
//! every recorded item by its trial index and **canonicalise before
//! summarising** (sort by trial index, then fold in index order). Merging
//! partial aggregates in any order therefore yields summaries bit-identical
//! to a serial fold — the property the determinism and proptest suites pin.

/// A reducer of per-trial results whose merged outcome is independent of how
/// trials were sharded across workers.
///
/// Laws (verified by `tests/aggregate_props.rs`):
///
/// * **identity** — `a.merge(empty())` leaves `a`'s summary unchanged;
/// * **commutativity** — `a.merge(b)` and `b.merge(a)` summarise identically;
/// * **associativity** — any parenthesisation of a merge sequence summarises
///   identically;
/// * **serial equivalence** — recording items `0..n` into one aggregate and
///   recording arbitrary disjoint shards into separate aggregates then
///   merging produce bit-identical summaries.
pub trait Aggregate {
    /// One trial's result.
    type Item;

    /// The empty aggregate (reduction identity).
    fn empty() -> Self;

    /// Records the result of trial `trial`.
    fn record(&mut self, trial: u64, item: Self::Item);

    /// Absorbs another partial aggregate (built from disjoint trials).
    fn merge(&mut self, other: Self);
}

/// Counting aggregate: how many trials succeeded out of how many ran.
/// Integer addition is exactly commutative, so no canonicalisation is needed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Trials recorded with `true`.
    pub hits: u64,
    /// Trials recorded in total.
    pub total: u64,
}

impl Counts {
    /// `hits / total` (0 when empty).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

impl Aggregate for Counts {
    type Item = bool;

    fn empty() -> Self {
        Self::default()
    }

    fn record(&mut self, _trial: u64, hit: bool) {
        self.hits += u64::from(hit);
        self.total += 1;
    }

    fn merge(&mut self, other: Self) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

/// Sample aggregate: collects `(trial, value)` pairs and summarises them in
/// canonical trial order, making every statistic bit-stable under resharding.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Samples {
    entries: Vec<(u64, f64)>,
}

impl Samples {
    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded values in canonical (trial-index) order.
    pub fn values_in_trial_order(&self) -> Vec<f64> {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|(t, _)| *t);
        entries.into_iter().map(|(_, v)| v).collect()
    }

    /// The `q`-quantile (`0.0..=1.0`) by the nearest-rank method over the
    /// value-sorted samples; 0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let mut values: Vec<f64> = self.entries.iter().map(|(_, v)| *v).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let rank = ((q.clamp(0.0, 1.0) * values.len() as f64).ceil() as usize)
            .clamp(1, values.len());
        values[rank - 1]
    }

    /// Summarises the samples (count, mean, σ, min, max, median), folding in
    /// canonical trial order so the result is independent of sharding.
    pub fn summary(&self) -> Summary {
        let values = self.values_in_trial_order();
        if values.is_empty() {
            return Summary::default();
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Summary {
            count: values.len(),
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            median: sorted[sorted.len() / 2],
        }
    }
}

impl Aggregate for Samples {
    type Item = f64;

    fn empty() -> Self {
        Self::default()
    }

    fn record(&mut self, trial: u64, value: f64) {
        self.entries.push((trial, value));
    }

    fn merge(&mut self, mut other: Self) {
        self.entries.append(&mut other.entries);
    }
}

/// Summary statistics of a [`Samples`] aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (folded in trial order).
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (upper median for even counts).
    pub median: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_rate() {
        let mut c = Counts::empty();
        c.record(0, true);
        c.record(1, false);
        c.record(2, true);
        assert_eq!(c.hits, 2);
        assert!((c.rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(Counts::empty().rate(), 0.0);
    }

    #[test]
    fn samples_summary_matches_hand_computation() {
        let mut s = Samples::empty();
        for (t, v) in [(0u64, 1.0), (1, 2.0), (2, 3.0), (3, 4.0), (4, 100.0)] {
            s.record(t, v);
        }
        let sum = s.summary();
        assert_eq!(sum.count, 5);
        assert_eq!(sum.median, 3.0);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 100.0);
        assert!((sum.mean - 22.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_reshard_invariant_bitwise() {
        // One aggregate built serially...
        let mut serial = Samples::empty();
        for t in 0..100u64 {
            serial.record(t, (t as f64).sin() * 1e3);
        }
        // ...and the same items split into odd/even shards merged backwards.
        let mut even = Samples::empty();
        let mut odd = Samples::empty();
        for t in 0..100u64 {
            let v = (t as f64).sin() * 1e3;
            if t % 2 == 0 {
                even.record(t, v);
            } else {
                odd.record(t, v);
            }
        }
        let mut merged = Samples::empty();
        merged.merge(odd);
        merged.merge(even);
        // Bit-identical summaries (f64 == is exact equality here by design).
        assert_eq!(serial.summary(), merged.summary());
        assert_eq!(serial.percentile(0.9), merged.percentile(0.9));
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(Samples::empty().summary(), Summary::default());
        assert_eq!(Samples::empty().percentile(0.5), 0.0);
        let mut one = Samples::empty();
        one.record(7, 42.0);
        let s = one.summary();
        assert_eq!((s.count, s.mean, s.std_dev, s.min, s.max, s.median), (1, 42.0, 0.0, 42.0, 42.0, 42.0));
    }

    #[test]
    fn percentile_bounds() {
        let mut s = Samples::empty();
        for t in 0..10u64 {
            s.record(t, t as f64);
        }
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(1.0), 9.0);
        assert_eq!(s.percentile(0.5), 4.0);
    }
}
