//! Deterministic seed derivation for independent trial streams.
//!
//! The previous harnesses derived per-trial RNGs with ad-hoc XOR recipes
//! (`seed ^ trial << 8`, `seed ^ 0xbead ^ trial`, ...). XOR derivation is a
//! footgun: two streams derived from related constants can collide or, worse,
//! be shifted copies of one another, silently correlating "independent"
//! trials. This module replaces those recipes with SplitMix64's finaliser, a
//! bijective mixer with full avalanche, composed so that
//!
//! * for a fixed master seed, `trial_seed` is **injective in the trial
//!   index** (no two trials of a sweep can ever share a seed), and
//! * for a fixed base seed, `stream_seed` is **injective in the stream tag**
//!   (an experiment's machine / candidate-allocation / scan streams are
//!   always distinct).

/// SplitMix64's 64-bit finaliser: a bijective mixing function with full
/// avalanche (every input bit affects every output bit with probability ~1/2).
pub const fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derives the seed of trial `trial` of a sweep keyed by `master`.
///
/// `mix64` is a bijection, so `trial -> mix64(trial + phi)` is injective and
/// the outer mix keeps the composition injective for any fixed `master`:
/// seeds of distinct trials in one sweep are distinct *by construction*
/// (the determinism test suite additionally verifies a 10k-trial sweep).
pub const fn trial_seed(master: u64, trial: u64) -> u64 {
    mix64(master ^ mix64(trial.wrapping_add(0x9e37_79b9_7f4a_7c15)))
}

/// Derives the seed of a named sub-stream (machine construction, candidate
/// allocation, scan order, ...) from a base seed and a stream tag.
///
/// Use distinct tags for distinct purposes; the composition is injective in
/// `tag` for a fixed `seed`. Tags are ordinary `u64` constants — spelling a
/// short ASCII name (`u64::from_le_bytes(*b"step1\0\0\0")`) keeps them
/// greppable.
pub const fn stream_seed(seed: u64, tag: u64) -> u64 {
    mix64(seed.rotate_left(32) ^ mix64(tag))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_is_a_bijection_on_samples() {
        // Spot-check injectivity and avalanche on structured inputs.
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
        assert_ne!(mix64(0), 0, "finaliser must not fix zero");
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn trial_seeds_are_unique_and_master_sensitive() {
        let mut seen = HashSet::new();
        for t in 0..4096u64 {
            assert!(seen.insert(trial_seed(7, t)));
        }
        assert_ne!(trial_seed(7, 0), trial_seed(8, 0));
        // Master 0 is not a degenerate case.
        assert_ne!(trial_seed(0, 0), 0);
    }

    #[test]
    fn stream_seeds_separate_tags() {
        let base = 0xa77ac4;
        let tags = [1u64, 2, 3, u64::from_le_bytes(*b"machine\0")];
        let seeds: HashSet<u64> = tags.iter().map(|&t| stream_seed(base, t)).collect();
        assert_eq!(seeds.len(), tags.len());
        // Different bases give different streams for the same tag.
        assert_ne!(stream_seed(1, 9), stream_seed(2, 9));
    }
}
