//! Two-sample statistical comparisons for equivalence testing.
//!
//! The aggregate noise mode (and, ahead, scenario/defense variations) is
//! validated by *distributional* equivalence against an exact oracle, not by
//! bit-identity: the question is always "do these two samples plausibly come
//! from the same distribution?". This module packages the three comparisons
//! every such harness needs — CI-bounded mean comparison, CI-bounded
//! success-rate comparison, and a Kolmogorov–Smirnov-style ECDF distance —
//! so test suites pin explicit thresholds instead of hand-rolling ad-hoc
//! tolerances.
//!
//! All functions are pure and deterministic; used with a fixed seed (the
//! equivalence suites honour `LLC_EQUIV_SEED`), the resulting assertions are
//! reproducible rather than flaky.

/// Result of a Welch-style two-sample mean comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanComparison {
    /// Sample mean of the first sample.
    pub mean_a: f64,
    /// Sample mean of the second sample.
    pub mean_b: f64,
    /// Standard error of the mean difference, `sqrt(s²_a/n_a + s²_b/n_b)`.
    pub std_err: f64,
    /// The standardised difference `|mean_a − mean_b| / std_err`
    /// (Welch z statistic). Zero when both samples are constant and equal;
    /// infinite when they are constant and different.
    pub z: f64,
}

impl MeanComparison {
    /// True if the means agree within `z_bound` standard errors (e.g. 3.0
    /// for a ~99.7% two-sided bound on large samples).
    pub fn within(&self, z_bound: f64) -> bool {
        self.z <= z_bound
    }
}

/// Welch two-sample comparison of the means of `a` and `b`.
///
/// # Panics
///
/// Panics if either sample has fewer than 2 observations (the variance
/// estimate needs at least 2).
pub fn compare_means(a: &[f64], b: &[f64]) -> MeanComparison {
    assert!(a.len() >= 2 && b.len() >= 2, "compare_means needs ≥ 2 observations per sample");
    let (mean_a, var_a) = mean_and_variance(a);
    let (mean_b, var_b) = mean_and_variance(b);
    let std_err = (var_a / a.len() as f64 + var_b / b.len() as f64).sqrt();
    let diff = (mean_a - mean_b).abs();
    let z = if std_err > 0.0 {
        diff / std_err
    } else if diff == 0.0 {
        0.0
    } else {
        f64::INFINITY
    };
    MeanComparison { mean_a, mean_b, std_err, z }
}

/// Sample mean and (unbiased) sample variance.
fn mean_and_variance(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

/// Result of a two-proportion success-rate comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateComparison {
    /// Success rate of the first sample.
    pub rate_a: f64,
    /// Success rate of the second sample.
    pub rate_b: f64,
    /// The pooled two-proportion z statistic
    /// `|p_a − p_b| / sqrt(p(1−p)(1/n_a + 1/n_b))`. Zero when both rates
    /// are equal (including the degenerate all-success / all-failure pools);
    /// infinite when the pooled variance is zero but the rates differ.
    pub z: f64,
}

impl RateComparison {
    /// True if the rates agree within `z_bound` pooled standard errors.
    pub fn within(&self, z_bound: f64) -> bool {
        self.z <= z_bound
    }
}

/// Pooled two-proportion comparison: `hits_a` successes out of `n_a` trials
/// versus `hits_b` out of `n_b`.
///
/// # Panics
///
/// Panics if either trial count is zero or a hit count exceeds its trials.
pub fn compare_rates(hits_a: u64, n_a: u64, hits_b: u64, n_b: u64) -> RateComparison {
    assert!(n_a > 0 && n_b > 0, "compare_rates needs non-empty samples");
    assert!(hits_a <= n_a && hits_b <= n_b, "hits cannot exceed trials");
    let rate_a = hits_a as f64 / n_a as f64;
    let rate_b = hits_b as f64 / n_b as f64;
    let pooled = (hits_a + hits_b) as f64 / (n_a + n_b) as f64;
    let std_err = (pooled * (1.0 - pooled) * (1.0 / n_a as f64 + 1.0 / n_b as f64)).sqrt();
    let diff = (rate_a - rate_b).abs();
    let z = if std_err > 0.0 {
        diff / std_err
    } else if diff == 0.0 {
        0.0
    } else {
        f64::INFINITY
    };
    RateComparison { rate_a, rate_b, z }
}

/// The two-sample Kolmogorov–Smirnov statistic: the supremum distance
/// between the empirical CDFs of `a` and `b`, in `[0, 1]`.
///
/// `0` for identical samples, `1` for samples with disjoint supports.
/// Compare against [`ks_threshold`] for an asymptotic same-distribution
/// test.
///
/// # Panics
///
/// Panics if either sample is empty or contains NaN.
pub fn ecdf_distance(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "ecdf_distance needs non-empty samples");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    let by_value = |x: &f64, y: &f64| x.partial_cmp(y).expect("NaN in ECDF sample");
    sa.sort_unstable_by(by_value);
    sb.sort_unstable_by(by_value);
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut sup = 0.0f64;
    while i < sa.len() && j < sb.len() {
        // Advance past ties in whichever sample holds the smaller value so
        // both ECDFs are evaluated *after* every jump at that value.
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let d = (i as f64 / na - j as f64 / nb).abs();
        if d > sup {
            sup = d;
        }
    }
    sup
}

/// KS critical coefficient `c(α)` for α = 0.05 (two-sided).
pub const KS_ALPHA_05: f64 = 1.358;

/// KS critical coefficient `c(α)` for α = 0.001 (two-sided) — the
/// conservative default for pinned CI thresholds, where a false alarm costs
/// a spurious red build.
pub const KS_ALPHA_001: f64 = 1.95;

/// Asymptotic two-sample KS rejection threshold
/// `c_alpha · sqrt((n_a + n_b) / (n_a · n_b))`: samples from the same
/// distribution have [`ecdf_distance`] below this with probability ≈ 1 − α.
///
/// # Panics
///
/// Panics if either sample size is zero.
pub fn ks_threshold(n_a: usize, n_b: usize, c_alpha: f64) -> f64 {
    assert!(n_a > 0 && n_b > 0, "ks_threshold needs non-empty samples");
    c_alpha * ((n_a + n_b) as f64 / (n_a as f64 * n_b as f64)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Deterministic uniform sample in `[lo, hi)`.
    fn uniform(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(lo..hi)).collect()
    }

    #[test]
    fn same_distribution_means_agree() {
        let a = uniform(1, 2000, 0.0, 1.0);
        let b = uniform(2, 2000, 0.0, 1.0);
        let cmp = compare_means(&a, &b);
        assert!(cmp.within(4.0), "z = {} for same-distribution samples", cmp.z);
    }

    #[test]
    fn shifted_means_are_detected() {
        let a = uniform(3, 2000, 0.0, 1.0);
        let b = uniform(4, 2000, 0.1, 1.1);
        let cmp = compare_means(&a, &b);
        assert!(cmp.z > 6.0, "z = {} should flag a 0.1 shift at n=2000", cmp.z);
    }

    #[test]
    fn constant_samples_compare_exactly() {
        let cmp = compare_means(&[2.0, 2.0, 2.0], &[2.0, 2.0]);
        assert_eq!(cmp.z, 0.0);
        let cmp = compare_means(&[2.0, 2.0], &[3.0, 3.0]);
        assert!(cmp.z.is_infinite());
    }

    #[test]
    fn equal_rates_pass_and_distant_rates_fail() {
        let cmp = compare_rates(450, 500, 455, 500);
        assert!(cmp.within(3.0), "z = {}", cmp.z);
        let cmp = compare_rates(450, 500, 300, 500);
        assert!(cmp.z > 6.0, "z = {}", cmp.z);
    }

    #[test]
    fn degenerate_rates_are_handled() {
        assert_eq!(compare_rates(0, 100, 0, 50).z, 0.0);
        assert_eq!(compare_rates(100, 100, 50, 50).z, 0.0);
        // Pool not degenerate: a 0-vs-all split has finite, huge z.
        assert!(compare_rates(0, 100, 50, 50).z > 6.0);
    }

    #[test]
    fn ecdf_distance_bounds() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(ecdf_distance(&a, &a), 0.0, "identical samples");
        let b = [10.0, 11.0];
        assert_eq!(ecdf_distance(&a, &b), 1.0, "disjoint supports");
    }

    #[test]
    fn ecdf_distance_is_symmetric_and_exact_on_a_known_case() {
        // a = {0,1}, b = {0.5}: ECDFs differ by at most 1/2 (at x in
        // [0,0.5) F_a=1/2 F_b=0; at [0.5,1) F_a=1/2 F_b=1).
        let a = [0.0, 1.0];
        let b = [0.5];
        assert!((ecdf_distance(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(ecdf_distance(&a, &b), ecdf_distance(&b, &a));
    }

    #[test]
    fn ecdf_handles_ties_across_samples() {
        // Equal multisets with repeated values must be distance 0.
        let a = [1.0, 1.0, 2.0, 2.0];
        let b = [2.0, 1.0, 2.0, 1.0];
        assert_eq!(ecdf_distance(&a, &b), 0.0);
    }

    #[test]
    fn same_distribution_passes_ks_threshold_and_shift_fails() {
        let a = uniform(5, 1500, 0.0, 1.0);
        let b = uniform(6, 1500, 0.0, 1.0);
        let d = ecdf_distance(&a, &b);
        assert!(d < ks_threshold(a.len(), b.len(), KS_ALPHA_001), "d = {d}");
        let c = uniform(7, 1500, 0.15, 1.15);
        let d = ecdf_distance(&a, &c);
        assert!(d > ks_threshold(a.len(), c.len(), KS_ALPHA_001), "d = {d} should flag the shift");
    }

    #[test]
    fn ks_threshold_formula() {
        let t = ks_threshold(100, 400, KS_ALPHA_05);
        assert!((t - 1.358 * (500.0f64 / 40_000.0).sqrt()).abs() < 1e-12);
    }
}
