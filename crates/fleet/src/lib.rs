//! # llc-fleet
//!
//! A sharded, multi-threaded trial executor for the workspace's experiment
//! harnesses. The paper's tables 3–6 and figures 2/3/6/7/9 are averages over
//! hundreds of *independent* attack trials; `llc-fleet` runs those trials
//! across worker threads while guaranteeing that the results — down to the
//! last floating-point bit — do not depend on the thread count or on which
//! worker happened to execute which trial.
//!
//! Three pieces make that guarantee hold:
//!
//! * **[`seed`]** — every trial gets a seed derived from
//!   `(master_seed, trial_index)` through SplitMix64's finaliser. The
//!   derivation is injective per master seed, so per-trial streams never
//!   collide, and it is independent of execution order by construction.
//! * **[`executor`]** — a hand-rolled scoped-thread pool (`std::thread::scope`
//!   plus a chunked atomic work queue; the build container has no crates.io
//!   access, so no rayon). Workers steal chunks of trial indices; results are
//!   returned *in trial order* regardless of completion order.
//! * **[`aggregate`]** — an order-independent [`Aggregate`] reducer. Workers
//!   fold their trials into thread-local partial aggregates which are merged
//!   at the end; aggregates canonicalise by trial index, so the merged result
//!   is bit-identical to a serial fold.
//!
//! ## Quick example
//!
//! ```
//! use llc_fleet::{Fleet, Samples};
//!
//! let fleet = Fleet::new(4);
//! // 100 independent trials; each gets its own derived seed.
//! let agg: Samples = fleet.run_fold(100, 0xfee1, |ctx| {
//!     use rand::Rng;
//!     let mut rng = ctx.rng();
//!     rng.gen_range(0.0..1.0f64)
//! });
//! let summary = agg.summary();
//! assert_eq!(summary.count, 100);
//! // The same call on 1 thread produces the bit-identical summary.
//! let serial: Samples = Fleet::single().run_fold(100, 0xfee1, |ctx| {
//!     use rand::Rng;
//!     ctx.rng().gen_range(0.0..1.0f64)
//! });
//! assert_eq!(summary, serial.summary());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregate;
pub mod executor;
pub mod seed;
pub mod stats;

pub use aggregate::{Aggregate, Counts, Samples, Summary};
pub use executor::{default_threads, panic_message, Fleet, FleetError, TrialCtx, TrialSource};
pub use seed::{mix64, stream_seed, trial_seed};
pub use stats::{
    compare_means, compare_rates, ecdf_distance, ks_threshold, MeanComparison, RateComparison,
    KS_ALPHA_001, KS_ALPHA_05,
};
