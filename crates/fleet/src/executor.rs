//! The scoped-thread trial executor.
//!
//! No crates.io access means no rayon; the pool is a `std::thread::scope`
//! with a single chunked atomic cursor as the work queue. Workers grab
//! contiguous chunks of trial indices (`fetch_add`), so there is no lock, no
//! channel, and idle workers naturally steal the remaining trials from slow
//! ones. Determinism does not depend on the schedule: each trial's behaviour
//! is a pure function of its [`TrialCtx`] (derived seed), and results are
//! re-assembled in trial order before they are returned.

use crate::aggregate::Aggregate;
use crate::seed::{stream_seed, trial_seed};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A typed executor failure: which worker died and what was lost.
///
/// The fleet's workers are panic-free by contract (trial jobs are supposed
/// to catch their own failures — see the campaign driver's retry/quarantine
/// layer), so a worker panic reaching the join is a harness bug. The fallible
/// entry points ([`Fleet::try_run_tasks_with`], [`Fleet::try_run_fold_with`])
/// surface it as this error instead of re-panicking on the joining thread,
/// which previously turned one dead worker into a context-free double-panic
/// abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// A worker thread panicked; every result it had buffered is gone.
    WorkerPanic {
        /// Index of the worker thread that died (`0..workers`).
        worker: usize,
        /// How many task results were lost fleet-wide: `tasks` minus the
        /// results recovered from workers that finished cleanly.
        results_lost: usize,
        /// The panic payload, when it was a string (the common case); a
        /// placeholder otherwise.
        payload: String,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::WorkerPanic { worker, results_lost, payload } => write!(
                f,
                "fleet worker {worker} panicked ({results_lost} task result(s) lost): {payload}"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

/// Renders a panic payload (from `JoinHandle::join` or
/// `std::panic::catch_unwind`) as a human-readable string: the payload
/// itself when it was a `String`/`&str` (the overwhelmingly common case), a
/// placeholder otherwise. Used for [`FleetError`] and by the campaign
/// layer's quarantine records, whose reasons must be *stable* across
/// retries — panic messages carry no attempt numbers or addresses.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Worker-thread count to use when the caller does not specify one: the
/// `LLC_THREADS` environment variable if set, otherwise the machine's
/// available parallelism.
pub fn default_threads() -> usize {
    std::env::var("LLC_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v: &usize| v > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Everything a trial may depend on: its index and its derived seed.
///
/// A trial that uses only `TrialCtx` (plus immutable captured state and
/// worker-local state rewound per trial, e.g. a machine reset from a
/// snapshot) is deterministic regardless of which worker runs it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialCtx {
    /// This trial's index, `0..trials`.
    pub trial: usize,
    /// Total number of trials in the sweep.
    pub trials: usize,
    /// This trial's seed, derived as [`trial_seed`]`(master_seed, trial)`.
    pub seed: u64,
}

impl TrialCtx {
    /// Derives the canonical context of trial `trial` in a `trials`-trial
    /// sweep under `master_seed` — the one definition of the per-trial seed
    /// derivation, used by the executor itself and by callers that bypass
    /// it (e.g. single-trial bench fast paths that must still measure the
    /// exact trial the executor would have run).
    pub fn derive(master_seed: u64, trial: usize, trials: usize) -> Self {
        Self { trial, trials, seed: trial_seed(master_seed, trial as u64) }
    }

    /// A fresh RNG seeded with this trial's seed.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// The seed of a named sub-stream of this trial (see [`stream_seed`]).
    pub fn stream(&self, tag: u64) -> u64 {
        stream_seed(self.seed, tag)
    }

    /// A fresh RNG for a named sub-stream of this trial.
    pub fn stream_rng(&self, tag: u64) -> StdRng {
        StdRng::seed_from_u64(self.stream(tag))
    }
}

/// A cell-indexed trial stream: the generalisation of the one-closure job
/// the executor originally ran.
///
/// A sweep is a grid of *cells* (parameter combinations); a trial source
/// knows how to run one trial of any cell. The executor (and the campaign
/// driver built on it) can then interleave trials from different cells in a
/// single global stream — one long-lived worker fleet, no per-cell barrier —
/// while determinism still holds because each trial's behaviour is a pure
/// function of `(cell, ctx)` plus worker state rewound per trial.
pub trait TrialSource: Sync {
    /// Per-worker scratch state (e.g. a pooled machine checkout), created
    /// once per worker thread via [`TrialSource::init`].
    type Worker: Send;
    /// The per-trial result.
    type Item: Send;

    /// Creates worker-local state for worker thread `worker`.
    fn init(&self, worker: usize) -> Self::Worker;

    /// Runs one trial of cell `cell` under the derived context `ctx`.
    ///
    /// Must be deterministic in `(cell, ctx)`: worker state may only carry
    /// information that is rewound before use (snapshot resets, scratch
    /// buffers), never trial-to-trial history that changes results.
    fn run_trial(&self, worker: &mut Self::Worker, cell: usize, ctx: TrialCtx) -> Self::Item;

    /// Called after a trial panicked inside a `catch_unwind` harness (the
    /// campaign driver's retry/quarantine path), *before* the trial is
    /// retried or quarantined. Implementations must drop or rebuild any
    /// worker state the aborted trial may have left mid-flight — e.g.
    /// discard a pooled machine checkout rather than return it dirty. The
    /// default does nothing, which is correct for stateless workers.
    fn on_trial_panic(&self, worker: &mut Self::Worker) {
        let _ = worker;
    }
}

/// The trial executor: a thread count plus a work-queue chunk size.
#[derive(Debug, Clone)]
pub struct Fleet {
    threads: usize,
    chunk: Option<usize>,
}

impl Fleet {
    /// An executor with `threads` worker threads (0 is clamped to 1).
    pub fn new(threads: usize) -> Self {
        Self { threads: threads.max(1), chunk: None }
    }

    /// A serial executor (one worker; runs on the calling thread).
    pub fn single() -> Self {
        Self::new(1)
    }

    /// An executor sized by `LLC_THREADS` / available parallelism.
    pub fn from_env() -> Self {
        Self::new(default_threads())
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Overrides the work-queue chunk size (default: `trials / (threads * 4)`,
    /// at least 1). Smaller chunks steal better; larger chunks touch the
    /// shared cursor less.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = Some(chunk.max(1));
        self
    }

    fn chunk_for(&self, trials: usize) -> usize {
        self.chunk.unwrap_or_else(|| (trials / (self.threads * 4)).max(1))
    }

    /// Runs `trials` independent trials of `job` and returns their results
    /// **in trial order**, regardless of which worker finished which trial
    /// when.
    pub fn run<T, F>(&self, trials: usize, master_seed: u64, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(TrialCtx) -> T + Sync,
    {
        self.run_with(trials, master_seed, |_| (), move |_, ctx| job(ctx))
    }

    /// Like [`Fleet::run`], with per-worker state: `init(worker_id)` runs
    /// once on each worker thread (e.g. materialising a machine from a shared
    /// [`MachineSnapshot`](../../llc_machine/struct.MachineSnapshot.html)),
    /// and `job` receives the worker's state mutably for every trial.
    ///
    /// Worker state must not leak information between trials — rewind it at
    /// the start of each trial (snapshot reset) or treat it as a scratch
    /// allocation. The determinism suite enforces this for the workspace's
    /// own jobs by comparing 1/2/8-thread runs bit-for-bit.
    pub fn run_with<S, T, I, F>(&self, trials: usize, master_seed: u64, init: I, job: F) -> Vec<T>
    where
        S: Send,
        T: Send,
        I: Fn(usize) -> S + Sync,
        F: Fn(&mut S, TrialCtx) -> T + Sync,
    {
        self.run_tasks_with(trials, init, move |state, t| {
            job(state, TrialCtx::derive(master_seed, t, trials))
        })
    }

    /// The generalised work engine underneath [`Fleet::run_with`]: runs
    /// `tasks` indexed units of work with per-worker state and returns the
    /// results **in task order**. Unlike `run_with`, no seed is derived — the
    /// task index is handed to `job` raw, so the caller decides what a task
    /// means (a trial, a chunk of a campaign's global trial stream, a cell of
    /// a sweep grid).
    ///
    /// Determinism contract: `job(state, task)`'s result must be a pure
    /// function of `task` (worker state rewound per task), so the work
    /// schedule cannot influence results.
    pub fn run_tasks_with<S, T, I, F>(&self, tasks: usize, init: I, job: F) -> Vec<T>
    where
        S: Send,
        T: Send,
        I: Fn(usize) -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        match self.try_run_tasks_with(tasks, init, job) {
            Ok(out) => out,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible form of [`Fleet::run_tasks_with`]: a worker-thread panic is
    /// returned as [`FleetError::WorkerPanic`] (which worker, how many
    /// results were lost, the payload) instead of re-panicking on the
    /// joining thread. All workers are joined before the error is built, so
    /// the count of lost results is exact and no worker outlives the call.
    pub fn try_run_tasks_with<S, T, I, F>(
        &self,
        tasks: usize,
        init: I,
        job: F,
    ) -> Result<Vec<T>, FleetError>
    where
        S: Send,
        T: Send,
        I: Fn(usize) -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        if self.threads == 1 || tasks <= 1 {
            let mut state = init(0);
            return Ok((0..tasks).map(|t| job(&mut state, t)).collect());
        }

        let workers = self.threads.min(tasks);
        let chunk = self.chunk_for(tasks);
        let cursor = AtomicUsize::new(0);

        let joined: Vec<Result<Vec<(usize, T)>, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let cursor = &cursor;
                    let init = &init;
                    let job = &job;
                    scope.spawn(move || {
                        let mut state = init(worker);
                        let mut local: Vec<(usize, T)> = Vec::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= tasks {
                                break;
                            }
                            for t in start..(start + chunk).min(tasks) {
                                local.push((t, job(&mut state, t)));
                            }
                        }
                        local
                    })
                })
                .collect();
            // Join every worker before deciding the outcome, so a panic in
            // one does not leave others detached and so `results_lost` can
            // count exactly what the survivors completed.
            handles
                .into_iter()
                .map(|h| h.join().map_err(|p| panic_message(p.as_ref())))
                .collect()
        });

        if let Some(worker) = joined.iter().position(|r| r.is_err()) {
            let recovered: usize = joined.iter().flatten().map(|local| local.len()).sum();
            let payload = joined.into_iter().filter_map(|r| r.err()).next().unwrap_or_default();
            return Err(FleetError::WorkerPanic {
                worker,
                results_lost: tasks - recovered,
                payload,
            });
        }

        let mut tagged: Vec<(usize, T)> = joined.into_iter().flatten().flatten().collect();
        tagged.sort_unstable_by_key(|(t, _)| *t);
        debug_assert!(tagged.iter().enumerate().all(|(i, (t, _))| i == *t));
        Ok(tagged.into_iter().map(|(_, v)| v).collect())
    }

    /// Runs `trials` trials and reduces their results through an
    /// order-independent [`Aggregate`]: each worker folds its trials into a
    /// thread-local partial aggregate, and the partials are merged at the
    /// end. Because aggregates canonicalise by trial index, the reduction is
    /// bit-identical to a serial fold for any thread count.
    pub fn run_fold<A, F>(&self, trials: usize, master_seed: u64, job: F) -> A
    where
        A: Aggregate + Send,
        A::Item: Send,
        F: Fn(TrialCtx) -> A::Item + Sync,
    {
        self.run_fold_with(trials, master_seed, |_| (), move |_, ctx| job(ctx))
    }

    /// [`Fleet::run_fold`] with per-worker state (see [`Fleet::run_with`]).
    pub fn run_fold_with<S, A, I, F>(
        &self,
        trials: usize,
        master_seed: u64,
        init: I,
        job: F,
    ) -> A
    where
        S: Send,
        A: Aggregate + Send,
        A::Item: Send,
        I: Fn(usize) -> S + Sync,
        F: Fn(&mut S, TrialCtx) -> A::Item + Sync,
    {
        match self.try_run_fold_with(trials, master_seed, init, job) {
            Ok(agg) => agg,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible form of [`Fleet::run_fold_with`]: a worker-thread panic is
    /// returned as [`FleetError::WorkerPanic`] instead of re-panicking. The
    /// lost-result count is the trial count minus the trials folded into the
    /// surviving workers' partial aggregates.
    pub fn try_run_fold_with<S, A, I, F>(
        &self,
        trials: usize,
        master_seed: u64,
        init: I,
        job: F,
    ) -> Result<A, FleetError>
    where
        S: Send,
        A: Aggregate + Send,
        A::Item: Send,
        I: Fn(usize) -> S + Sync,
        F: Fn(&mut S, TrialCtx) -> A::Item + Sync,
    {
        let ctx = |trial: usize| TrialCtx::derive(master_seed, trial, trials);

        if self.threads == 1 || trials <= 1 {
            let mut state = init(0);
            let mut agg = A::empty();
            for t in 0..trials {
                let item = job(&mut state, ctx(t));
                agg.record(t as u64, item);
            }
            return Ok(agg);
        }

        let workers = self.threads.min(trials);
        let chunk = self.chunk_for(trials);
        let cursor = AtomicUsize::new(0);

        // Each worker reports its partial aggregate plus how many trials it
        // folded, so a panic elsewhere can still account for lost results.
        let joined: Vec<Result<(A, usize), String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|worker| {
                    let cursor = &cursor;
                    let init = &init;
                    let job = &job;
                    scope.spawn(move || {
                        let mut state = init(worker);
                        let mut partial = A::empty();
                        let mut folded = 0usize;
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= trials {
                                break;
                            }
                            for t in start..(start + chunk).min(trials) {
                                let item = job(&mut state, ctx(t));
                                partial.record(t as u64, item);
                                folded += 1;
                            }
                        }
                        (partial, folded)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(|p| panic_message(p.as_ref())))
                .collect()
        });

        if let Some(worker) = joined.iter().position(|r| r.is_err()) {
            let recovered: usize = joined.iter().flatten().map(|(_, folded)| folded).sum();
            let payload = joined.into_iter().filter_map(|r| r.err()).next().unwrap_or_default();
            return Err(FleetError::WorkerPanic {
                worker,
                results_lost: trials - recovered,
                payload,
            });
        }

        let mut agg = A::empty();
        for (partial, _) in joined.into_iter().flatten() {
            agg.merge(partial);
        }
        Ok(agg)
    }
}

impl Default for Fleet {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::Counts;

    #[test]
    fn results_come_back_in_trial_order() {
        let fleet = Fleet::new(4).with_chunk(1);
        let out = fleet.run(64, 1, |ctx| ctx.trial);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_match_serial_derivation() {
        let fleet = Fleet::new(3);
        let seeds = fleet.run(32, 99, |ctx| ctx.seed);
        for (t, &s) in seeds.iter().enumerate() {
            assert_eq!(s, trial_seed(99, t as u64));
        }
    }

    #[test]
    fn worker_state_is_initialised_per_worker() {
        let fleet = Fleet::new(2).with_chunk(4);
        // State counts trials handled by this worker; every trial sees >= 1.
        let counts = fleet.run_with(
            16,
            5,
            |_worker| 0usize,
            |state, _ctx| {
                *state += 1;
                *state
            },
        );
        assert_eq!(counts.len(), 16);
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn run_tasks_with_returns_in_task_order() {
        let fleet = Fleet::new(4).with_chunk(3);
        let out = fleet.run_tasks_with(37, |worker| worker, |w, t| (*w, t * 2));
        assert_eq!(out.len(), 37);
        assert!(out.iter().enumerate().all(|(i, &(_, v))| v == i * 2));
    }

    #[test]
    fn trial_source_runs_cells_through_the_task_engine() {
        struct Doubler;
        impl TrialSource for Doubler {
            type Worker = u64;
            type Item = u64;
            fn init(&self, _worker: usize) -> u64 {
                0
            }
            fn run_trial(&self, scratch: &mut u64, cell: usize, ctx: TrialCtx) -> u64 {
                *scratch = 0; // rewound per trial
                cell as u64 * 1000 + ctx.trial as u64
            }
        }
        let src = Doubler;
        let fleet = Fleet::new(2).with_chunk(1);
        // 3 cells x 4 trials flattened into one 12-task stream.
        let out = fleet.run_tasks_with(
            12,
            |w| src.init(w),
            |state, g| src.run_trial(state, g / 4, TrialCtx::derive(7, g % 4, 4)),
        );
        assert_eq!(out[5], 1001);
        assert_eq!(out[11], 2003);
    }

    #[test]
    fn run_fold_counts_all_trials() {
        let fleet = Fleet::new(4).with_chunk(2);
        let agg: Counts = fleet.run_fold(100, 3, |ctx| ctx.trial % 2 == 0);
        assert_eq!(agg.total, 100);
        assert_eq!(agg.hits, 50);
    }

    #[test]
    fn zero_and_one_trial_edge_cases() {
        let fleet = Fleet::new(8);
        assert!(fleet.run(0, 1, |ctx| ctx.trial).is_empty());
        assert_eq!(fleet.run(1, 1, |ctx| ctx.trial), vec![0]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert_eq!(Fleet::new(0).threads(), 1);
    }

    #[test]
    fn worker_panic_surfaces_as_a_typed_error() {
        let fleet = Fleet::new(4).with_chunk(1);
        let err = fleet
            .try_run_tasks_with(
                32,
                |_| (),
                |_, t| {
                    if t == 13 {
                        panic!("boom at task {t}");
                    }
                    t
                },
            )
            .unwrap_err();
        let FleetError::WorkerPanic { worker, results_lost, payload } = err;
        assert!(worker < 4);
        // The panicking task's result is gone, plus anything still buffered
        // in the dead worker; survivors' results are all accounted for.
        assert!((1..=32).contains(&results_lost));
        assert!(payload.contains("boom at task 13"), "payload: {payload}");
    }

    #[test]
    fn fold_worker_panic_surfaces_as_a_typed_error() {
        let fleet = Fleet::new(2).with_chunk(1);
        let err = fleet
            .try_run_fold_with(
                16,
                7,
                |_| (),
                |_, ctx| {
                    if ctx.trial == 3 {
                        panic!("fold boom");
                    }
                    true
                },
            )
            .map(|_: Counts| ())
            .unwrap_err();
        let FleetError::WorkerPanic { results_lost, payload, .. } = err;
        assert!(results_lost >= 1);
        assert!(payload.contains("fold boom"));
    }

    #[test]
    fn try_run_tasks_with_matches_infallible_path() {
        let fleet = Fleet::new(3).with_chunk(2);
        let ok = fleet.try_run_tasks_with(21, |_| (), |_, t| t * 3).unwrap();
        assert_eq!(ok, (0..21).map(|t| t * 3).collect::<Vec<_>>());
    }
}
