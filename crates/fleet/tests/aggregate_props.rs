//! Property tests for the [`Aggregate`] reducers: merging is associative and
//! commutative (up to the canonical summary), and any sharding of a
//! trial-result vector — including empty and single-element shards — merges
//! to the bit-identical summary of a serial fold.

use llc_fleet::{Aggregate, Counts, Samples};
use proptest::prelude::*;

/// Builds the serial reference aggregate from `(trial, value)` items.
fn serial_samples(items: &[(u64, f64)]) -> Samples {
    let mut agg = Samples::empty();
    for &(t, v) in items {
        agg.record(t, v);
    }
    agg
}

/// Splits `items` into shards at the given cut points (duplicates and
/// out-of-range cuts are tolerated), producing possibly-empty shards.
fn shard(items: &[(u64, f64)], cuts: &[usize]) -> Vec<Samples> {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (items.len() + 1)).collect();
    bounds.push(0);
    bounds.push(items.len());
    bounds.sort_unstable();
    bounds
        .windows(2)
        .map(|w| serial_samples(&items[w[0]..w[1]]))
        .collect()
}

/// Turns raw proptest draws into items with unique trial indices (the
/// executor guarantees this: a trial index runs exactly once per sweep).
fn to_items(values: Vec<f64>) -> Vec<(u64, f64)> {
    values
        .into_iter()
        .enumerate()
        .map(|(t, v)| (t as u64, if v.is_finite() { v } else { 0.0 }))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any sharding (empty shards included) merges to the serial summary.
    #[test]
    fn sharded_merge_equals_serial_fold(
        values in prop::collection::vec(-1e12f64..1e12, 0..64),
        cuts in prop::collection::vec(0usize..65, 0..8),
    ) {
        let items = to_items(values);
        let reference = serial_samples(&items).summary();
        let mut merged = Samples::empty();
        for piece in shard(&items, &cuts) {
            merged.merge(piece);
        }
        prop_assert_eq!(merged.summary(), reference);
    }

    /// merge(a, b) and merge(b, a) summarise identically.
    #[test]
    fn merge_is_commutative(
        values in prop::collection::vec(-1e9f64..1e9, 0..48),
        split in 0usize..49,
    ) {
        let items = to_items(values);
        let cut = split % (items.len() + 1);
        let (left, right) = items.split_at(cut);

        let mut ab = serial_samples(left);
        ab.merge(serial_samples(right));
        let mut ba = serial_samples(right);
        ba.merge(serial_samples(left));

        prop_assert_eq!(ab.summary(), ba.summary());
        prop_assert_eq!(ab.percentile(0.25), ba.percentile(0.25));
        prop_assert_eq!(ab.percentile(0.99), ba.percentile(0.99));
    }

    /// (a ⊔ b) ⊔ c and a ⊔ (b ⊔ c) summarise identically.
    #[test]
    fn merge_is_associative(
        values in prop::collection::vec(-1e9f64..1e9, 0..60),
        cut_a in 0usize..61,
        cut_b in 0usize..61,
    ) {
        let items = to_items(values);
        let mut cuts = [cut_a % (items.len() + 1), cut_b % (items.len() + 1)];
        cuts.sort_unstable();
        let a = serial_samples(&items[..cuts[0]]);
        let b = serial_samples(&items[cuts[0]..cuts[1]]);
        let c = serial_samples(&items[cuts[1]..]);

        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());

        let mut bc = b;
        bc.merge(c);
        let mut right = a;
        right.merge(bc);

        prop_assert_eq!(left.summary(), right.summary());
    }

    /// The empty aggregate is a merge identity.
    #[test]
    fn empty_is_identity(values in prop::collection::vec(-1e9f64..1e9, 0..32)) {
        let items = to_items(values);
        let reference = serial_samples(&items).summary();

        let mut left = Samples::empty();
        left.merge(serial_samples(&items));
        let mut right = serial_samples(&items);
        right.merge(Samples::empty());

        prop_assert_eq!(left.summary(), reference);
        prop_assert_eq!(right.summary(), reference);
    }

    /// Single-element shards: fully scattering the items merges like any
    /// other sharding.
    #[test]
    fn single_element_shards_merge_cleanly(
        values in prop::collection::vec(-1e6f64..1e6, 1..32),
    ) {
        let items = to_items(values);
        let reference = serial_samples(&items).summary();
        let mut merged = Samples::empty();
        for &(t, v) in items.iter().rev() {
            let mut shard = Samples::empty();
            shard.record(t, v);
            merged.merge(shard);
        }
        prop_assert_eq!(merged.summary(), reference);
    }

    /// Counts obeys the same laws with exact integer arithmetic.
    #[test]
    fn counts_sharding_matches_serial(
        hits in prop::collection::vec(any::<bool>(), 0..128),
        split in 0usize..129,
    ) {
        let mut serial = Counts::empty();
        for (t, &h) in hits.iter().enumerate() {
            serial.record(t as u64, h);
        }
        let cut = split % (hits.len() + 1);
        let mut merged = Counts::empty();
        let mut right = Counts::empty();
        for (t, &h) in hits.iter().enumerate() {
            if t < cut {
                merged.record(t as u64, h);
            } else {
                right.record(t as u64, h);
            }
        }
        merged.merge(right);
        prop_assert_eq!(merged, serial);
        prop_assert_eq!(merged.total as usize, hits.len());
    }
}
