//! Determinism regression suite: the same `(master_seed, trial_count)` must
//! yield bit-identical results and aggregates at 1, 2 and 8 worker threads,
//! and per-trial seeds must never collide across a 10k-trial sweep.
//!
//! The workload deliberately mixes floating-point accumulation (where
//! reduction order would show up immediately as differing low bits) with
//! trial-local RNG draws (where seed reuse would show up as duplicated
//! samples).

use llc_fleet::{trial_seed, Counts, Fleet, Samples, Summary};
use rand::Rng;
use std::collections::HashSet;

/// A trial whose result exercises many f64 bits: a short random walk.
fn noisy_trial(ctx: llc_fleet::TrialCtx) -> f64 {
    let mut rng = ctx.rng();
    let mut acc = 0.0f64;
    for _ in 0..100 {
        acc += rng.gen_range(-1.0..1.0f64);
        acc *= 1.0 + 1e-9 * rng.gen_range(0.0..1.0f64);
    }
    acc
}

fn summary_at(threads: usize, trials: usize, master: u64) -> Summary {
    let agg: Samples = Fleet::new(threads).with_chunk(3).run_fold(trials, master, noisy_trial);
    agg.summary()
}

#[test]
fn aggregates_bit_identical_at_1_2_and_8_threads() {
    for master in [0u64, 1, 0xdead_beef, u64::MAX] {
        let s1 = summary_at(1, 257, master);
        let s2 = summary_at(2, 257, master);
        let s8 = summary_at(8, 257, master);
        // Summary derives PartialEq over f64 fields: exact bit comparison of
        // finite values, which is precisely the guarantee under test.
        assert_eq!(s1, s2, "2-thread aggregate diverged for master {master:#x}");
        assert_eq!(s1, s8, "8-thread aggregate diverged for master {master:#x}");
    }
}

#[test]
fn ordered_results_bit_identical_at_1_2_and_8_threads() {
    let r1 = Fleet::new(1).run(100, 42, noisy_trial);
    let r2 = Fleet::new(2).with_chunk(1).run(100, 42, noisy_trial);
    let r8 = Fleet::new(8).with_chunk(7).run(100, 42, noisy_trial);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&r1), bits(&r2));
    assert_eq!(bits(&r1), bits(&r8));
}

#[test]
fn counts_bit_identical_across_thread_counts() {
    let count_at = |threads: usize| -> Counts {
        Fleet::new(threads).run_fold(1000, 7, |ctx| ctx.rng().gen_range(0..100u32) < 37)
    };
    let c1 = count_at(1);
    assert_eq!(c1.total, 1000);
    assert_eq!(c1, count_at(2));
    assert_eq!(c1, count_at(8));
}

#[test]
fn per_trial_seeds_never_collide_in_a_10k_sweep() {
    for master in [0u64, 0x7ab1e3, u64::MAX / 2] {
        let mut seen = HashSet::with_capacity(10_000);
        for t in 0..10_000u64 {
            let s = trial_seed(master, t);
            assert!(seen.insert(s), "seed collision: master {master:#x}, trial {t}");
        }
    }
}

#[test]
fn trial_seeds_are_schedule_independent() {
    // The seed a trial observes must be a pure function of (master, index),
    // not of the worker or chunk that ran it.
    let seeds_at = |threads: usize, chunk: usize| {
        Fleet::new(threads).with_chunk(chunk).run(500, 0xabc, |ctx| ctx.seed)
    };
    let reference: Vec<u64> = (0..500).map(|t| trial_seed(0xabc, t as u64)).collect();
    assert_eq!(seeds_at(1, 1), reference);
    assert_eq!(seeds_at(2, 9), reference);
    assert_eq!(seeds_at(8, 1), reference);
}

#[test]
fn worker_local_state_does_not_leak_into_results() {
    // Worker state is a scratch buffer "rewound" per trial; results must be
    // identical to the stateless run no matter how trials are sharded.
    let stateless = Fleet::new(1).run(64, 9, noisy_trial);
    let stateful = Fleet::new(8).with_chunk(2).run_with(
        64,
        9,
        |_worker| Vec::<f64>::new(),
        |scratch, ctx| {
            scratch.clear(); // rewind
            scratch.push(noisy_trial(ctx));
            scratch[0]
        },
    );
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&stateless), bits(&stateful));
}
