//! Offline drop-in shim for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! few pieces of `rand` the attack simulation needs: [`Rng`] /
//! [`RngCore`] / [`SeedableRng`], the [`rngs::SmallRng`] and [`rngs::StdRng`]
//! generators (both xoshiro256++ seeded through SplitMix64), uniform range
//! sampling for the integer and float types the simulators draw, and
//! [`seq::SliceRandom::shuffle`].
//!
//! Differences from the real crate, none of which matter for the
//! deterministic simulations here:
//!
//! * `gen_range` over integers uses Lemire-style widening multiplication,
//!   which carries a negligible (< 2^-64) modulo bias instead of doing
//!   rejection sampling;
//! * `StdRng` is xoshiro256++ rather than ChaCha12, so its streams differ
//!   from crates.io `rand` for the same seed (seeds in this repo only need to
//!   be *reproducible*, not *identical* to the reference crate);
//! * only the API surface exercised by the workspace is provided.
//!
//! To build against the real crate on a connected machine, point the
//! `[workspace.dependencies]` entry for `rand` back at crates.io — as
//! `rand = { version = "0.8.5", features = ["small_rng"] }`, since the real
//! crate gates [`rngs::SmallRng`] behind that non-default feature — and
//! delete the three shim crates (this one also backs the proptest shim);
//! all call sites use the standard 0.8 API.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
///
/// Mirrors `rand_core::RngCore` closely enough for the workspace: everything
/// else ([`Rng::gen`], [`Rng::gen_range`], shuffling) is derived from
/// [`RngCore::next_u64`].
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly at random by [`Rng::gen`].
///
/// Stand-in for `rand`'s `Standard: Distribution<T>` bound.
pub trait Standard: Sized {
    /// Draws one uniformly random value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` with 53 bits of
/// precision.
fn unit_f64(bits: u64) -> f64 {
    ((bits >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Scalar types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[low, high)` (`high` itself when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // Width of the range as an unsigned span; wrapping arithmetic
                // keeps signed bounds (e.g. `-j..=j`) correct.
                let span = (high as i128).wrapping_sub(low as i128) as u128
                    + u128::from(inclusive);
                assert!(span > 0, "cannot sample from an empty range");
                if span > u128::from(u64::MAX) {
                    return (low as i128 + (u128::sample_standard(rng) % span) as i128) as $t;
                }
                // Lemire-style widening multiply: maps a uniform u64 onto
                // [0, span) with < 2^-64 bias.
                let offset = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high || (_inclusive && low <= high), "empty float range");
        let sample = low + (high - low) * unit_f64(rng.next_u64());
        // Floating-point rounding can land exactly on `high`; fold it back
        // for half-open ranges so callers' `< high` invariants hold.
        if !_inclusive && sample >= high {
            low
        } else {
            sample
        }
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self {
        f64::sample_uniform(rng, f64::from(low), f64::from(high), inclusive) as f32
    }
}

/// Ranges accepted by [`Rng::gen_range`] (`low..high` and `low..=high`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_uniform(rng, low, high, true)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] exactly as in `rand` 0.8.
pub trait Rng: RngCore {
    /// Returns a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns a uniformly random value in `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS-independent "entropy".
    ///
    /// The shim has no OS entropy source; this hashes the current time, which
    /// is sufficient for the simulators (all reproducible paths use
    /// [`Self::seed_from_u64`]).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// SplitMix64 step, used to expand a `u64` seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Core xoshiro256++ state shared by [`rngs::SmallRng`] and [`rngs::StdRng`].
#[derive(Clone, Debug, PartialEq, Eq)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The concrete generators (`SmallRng`, `StdRng`).
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// A small, fast, non-cryptographic generator (xoshiro256++ here).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// The "standard" generator.
    ///
    /// The real crate uses ChaCha12; this shim reuses xoshiro256++ on a
    /// domain-separated seed. Nothing in the workspace needs cryptographic
    /// randomness — the ECDSA victim is *deliberately* attackable.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Domain-separate from SmallRng so the two never emit identical
            // streams for the same seed.
            StdRng(Xoshiro256::from_u64(seed ^ 0x5354_4452_4e47_5f5f))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Sequence-related helpers (`SliceRandom`).
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(8);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn std_and_small_streams_differ() {
        let mut small = SmallRng::seed_from_u64(1);
        let mut std = StdRng::seed_from_u64(1);
        let s: Vec<u64> = (0..4).map(|_| small.gen()).collect();
        let t: Vec<u64> = (0..4).map(|_| std.gen()).collect();
        assert_ne!(s, t);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        // Degenerate inclusive range is valid.
        assert_eq!(rng.gen_range(3u32..=3), 3);
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "p=0.25 gave {hits}/100000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, sorted, "64 elements should not shuffle to identity");
    }

    #[test]
    fn array_and_float_standard_samples() {
        let mut rng = SmallRng::seed_from_u64(5);
        let bytes: [u8; 16] = rng.gen();
        assert_ne!(bytes, [0u8; 16]);
        for _ in 0..1_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = SmallRng::seed_from_u64(2);
        let v = takes_impl(&mut rng);
        assert!(v < 100);
        // &mut SmallRng itself implements Rng, as in real rand.
        let mut borrow = &mut rng;
        let w = takes_impl(&mut borrow);
        assert!(w < 100);
    }
}
