//! The covert-channel experiment used to compare monitoring strategies
//! (Section 6.1, Figure 6): a sender thread accesses an agreed-upon SF set at
//! a fixed interval; the receiver monitors the set and we measure which
//! fraction of the sender's accesses it detects within an error bound.

use crate::monitor::{Monitor, MonitorStats};
use crate::strategies::Strategy;
use llc_evsets::{oracle, CandidateSet, EvictionSet, TargetCache};
use llc_machine::{Machine, NoiseModel, PeriodicToucher};
use llc_cache_model::{CacheSpec, VirtAddr};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration of one covert-channel measurement.
#[derive(Debug, Clone)]
pub struct CovertChannelConfig {
    /// Cache specification of the simulated host.
    pub spec: CacheSpec,
    /// Background-noise model.
    pub noise: NoiseModel,
    /// Interval between sender accesses, in cycles.
    pub access_interval: u64,
    /// Number of sender accesses per measurement (paper: 2,000).
    pub sender_accesses: usize,
    /// Detection error bound ε in cycles (paper: 500 cycles = 250 ns).
    pub epsilon: u64,
    /// Page offset both parties agree on.
    pub page_offset: u64,
    /// Random seed.
    pub seed: u64,
}

impl Default for CovertChannelConfig {
    fn default() -> Self {
        Self {
            spec: CacheSpec::tiny_test(),
            noise: NoiseModel::quiescent_local(),
            access_interval: 2_000,
            sender_accesses: 2_000,
            epsilon: 500,
            page_offset: 0x240,
            seed: 0xc0_7e57_beef,
        }
    }
}

/// Result of one covert-channel measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CovertChannelResult {
    /// Fraction of sender accesses detected within ε.
    pub detection_rate: f64,
    /// Number of sender accesses considered.
    pub sender_accesses: usize,
    /// Number of receiver detections (including false/late ones).
    pub receiver_detections: usize,
    /// Prime/probe latency statistics of the receiver.
    pub stats: MonitorStats,
}

/// Runs the covert-channel experiment for one strategy and access interval.
///
/// The receiver's eviction set is constructed with oracle assistance so the
/// measurement isolates the *monitoring* strategy (exactly like the paper,
/// where eviction sets are built beforehand).
pub fn run_covert_channel(config: &CovertChannelConfig, strategy: Strategy) -> CovertChannelResult {
    // Find a seed-compatible machine in which the sender's line maps to the
    // receiver's monitored set; retry a few sub-seeds if necessary.
    for attempt in 0..64u64 {
        let seed = config.seed.wrapping_add(attempt * 0x9e37);
        if let Some(result) = try_run(config, strategy, seed) {
            return result;
        }
    }
    panic!("could not co-locate sender and receiver on a monitored set");
}

fn try_run(
    config: &CovertChannelConfig,
    strategy: Strategy,
    seed: u64,
) -> Option<CovertChannelResult> {
    let mut machine =
        Machine::builder(config.spec.clone()).noise(config.noise.clone()).seed(seed).build();
    let mut rng = SmallRng::seed_from_u64(seed);

    // Sender: periodic accesses to a line at the agreed page offset, running
    // as the co-located "victim" container. Installing it first lets the
    // receiver pick the eviction set congruent with the sender's line (the
    // two parties of a covert channel agree on the set in advance).
    let sender =
        PeriodicToucher::new(config.access_interval, config.sender_accesses, config.page_offset);
    let install_time = machine.now();
    machine.install_victim(Box::new(sender), true, 0);
    let sender_va = VirtAddr::new(0x7f00_0000_0000 + config.page_offset);
    let target_loc = machine.oracle_victim_location(sender_va);

    // Receiver: a true SF eviction set for the agreed set.
    let candidates = CandidateSet::allocate(
        &mut machine,
        config.page_offset,
        config.spec.sf.uncertainty() * config.spec.sf.ways() * 3,
        &mut rng,
    );
    let ways = config.spec.sf.ways();
    let groups = oracle::group_by_location(&machine, candidates.addresses());
    let members = groups.get(&target_loc)?;
    if members.len() < ways {
        return None;
    }
    let eviction_set = EvictionSet::new(members[..ways].to_vec(), TargetCache::Sf);

    // Ground-truth sender access times: back-to-back runs starting at install.
    let run_duration = config.access_interval * config.sender_accesses as u64;
    let window = run_duration + config.access_interval;
    let sender_times: Vec<u64> = (0..config.sender_accesses as u64)
        .map(|i| install_time + i * config.access_interval)
        .collect();

    let mut monitor = Monitor::new(strategy, eviction_set);
    let trace = monitor.collect(&mut machine, window);

    // Count sender accesses detected within (t, t + epsilon].
    let mut detected = 0usize;
    let mut cursor = 0usize;
    for &t in &sender_times {
        while cursor < trace.timestamps.len() && trace.timestamps[cursor] <= t {
            cursor += 1;
        }
        if cursor < trace.timestamps.len() && trace.timestamps[cursor] - t <= config.epsilon {
            detected += 1;
        }
    }

    Some(CovertChannelResult {
        detection_rate: detected as f64 / config.sender_accesses as f64,
        sender_accesses: config.sender_accesses,
        receiver_detections: trace.len(),
        stats: monitor.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(interval: u64) -> CovertChannelConfig {
        CovertChannelConfig {
            access_interval: interval,
            sender_accesses: 200,
            noise: NoiseModel::silent(),
            ..Default::default()
        }
    }

    #[test]
    fn parallel_probing_has_high_detection_rate_at_short_intervals() {
        let result = run_covert_channel(&quick_config(2_000), Strategy::Parallel);
        assert!(
            result.detection_rate > 0.6,
            "Parallel should detect most 2k-cycle-interval accesses, got {}",
            result.detection_rate
        );
    }

    #[test]
    fn ps_flush_misses_short_interval_accesses() {
        let parallel = run_covert_channel(&quick_config(2_000), Strategy::Parallel);
        let ps_flush = run_covert_channel(&quick_config(2_000), Strategy::PsFlush);
        assert!(
            parallel.detection_rate > ps_flush.detection_rate + 0.2,
            "Figure 6: Parallel ({}) must clearly beat PS-Flush ({}) at 2k cycles",
            parallel.detection_rate,
            ps_flush.detection_rate
        );
    }

    #[test]
    fn detection_improves_with_longer_intervals() {
        let short = run_covert_channel(&quick_config(2_000), Strategy::PsFlush);
        let long = run_covert_channel(&quick_config(50_000), Strategy::PsFlush);
        assert!(
            long.detection_rate >= short.detection_rate,
            "PS-Flush at 50k cycles ({}) should beat 2k cycles ({})",
            long.detection_rate,
            short.detection_rate
        );
    }

    #[test]
    fn prime_latency_ordering_matches_table5() {
        let par = run_covert_channel(&quick_config(10_000), Strategy::Parallel);
        let flush = run_covert_channel(&quick_config(10_000), Strategy::PsFlush);
        assert!(
            par.stats.mean_prime_cycles < flush.stats.mean_prime_cycles,
            "Parallel prime ({}) must be cheaper than PS-Flush prime ({})",
            par.stats.mean_prime_cycles,
            flush.stats.mean_prime_cycles
        );
        // Probe latencies are within the same order of magnitude.
        assert!(par.stats.mean_probe_cycles < flush.stats.mean_probe_cycles * 5.0);
    }
}
