//! Continuous monitoring of one SF set: the prime/probe loop that produces
//! the timestamped access traces consumed by the PSD-based identification
//! (Section 6.2) and the nonce-extraction step (Section 7.3).

use crate::strategies::{PrimedSet, Strategy};
use llc_evsets::EvictionSet;
use llc_machine::Machine;

/// A timestamped trace of detected accesses to one monitored SF set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessTrace {
    /// Cycle at which monitoring started.
    pub start: u64,
    /// Cycle at which monitoring ended.
    pub end: u64,
    /// Cycle of every detected access (probe completion time).
    pub timestamps: Vec<u64>,
    /// Number of probe operations performed.
    pub probes: u64,
    /// Number of re-primes performed.
    pub primes: u64,
}

impl AccessTrace {
    /// Duration of the monitoring window in cycles.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }

    /// Number of detected accesses.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// True if nothing was detected.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// Detected accesses per millisecond, given the machine frequency.
    pub fn accesses_per_ms(&self, freq_ghz: f64) -> f64 {
        if self.duration() == 0 {
            return 0.0;
        }
        self.len() as f64 / (self.duration() as f64 / (freq_ghz * 1e6))
    }

    /// Inter-detection intervals in cycles (for Figure 2's CDF).
    pub fn inter_arrival_cycles(&self) -> Vec<u64> {
        self.timestamps.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

/// Statistics of the prime and probe operations of one monitoring run
/// (Table 5).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MonitorStats {
    /// Mean prime latency in cycles.
    pub mean_prime_cycles: f64,
    /// Standard deviation of the prime latency.
    pub std_prime_cycles: f64,
    /// Mean probe latency in cycles.
    pub mean_probe_cycles: f64,
    /// Standard deviation of the probe latency.
    pub std_probe_cycles: f64,
}

fn mean_std(values: &[u64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
    let var = values.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

/// A Prime+Probe monitor of a single SF set.
#[derive(Debug)]
pub struct Monitor {
    primed: PrimedSet,
    /// Latencies above this value are treated as interrupted measurements and
    /// excluded from the latency statistics (the paper excludes > 20k cycles).
    outlier_cycles: u64,
    prime_latencies: Vec<u64>,
    probe_latencies: Vec<u64>,
}

impl Monitor {
    /// Creates a monitor that uses `strategy` over `eviction_set`.
    pub fn new(strategy: Strategy, eviction_set: EvictionSet) -> Self {
        Self {
            primed: PrimedSet::new(strategy, eviction_set),
            outlier_cycles: 20_000,
            prime_latencies: Vec::new(),
            probe_latencies: Vec::new(),
        }
    }

    /// The monitoring strategy.
    pub fn strategy(&self) -> Strategy {
        self.primed.strategy()
    }

    /// Monitors the set for `duration` cycles, returning the detected-access
    /// trace. The monitor re-primes after every detection, as described in
    /// Section 2.1.
    pub fn collect(&mut self, machine: &mut Machine, duration: u64) -> AccessTrace {
        let start = machine.now();
        let deadline = start + duration;
        self.primed.prepare(machine);
        let mut timestamps = Vec::new();
        let mut probes = 0u64;
        let mut primes = 0u64;

        let prime_latency = self.primed.prime(machine);
        self.record_prime(prime_latency);
        primes += 1;

        while machine.now() < deadline {
            let outcome = self.primed.probe(machine);
            probes += 1;
            self.record_probe(outcome.latency);
            if outcome.detected {
                timestamps.push(machine.now());
                let prime_latency = self.primed.prime(machine);
                self.record_prime(prime_latency);
                primes += 1;
            }
        }

        AccessTrace { start, end: machine.now(), timestamps, probes, primes }
    }

    /// Prime/probe latency statistics accumulated so far.
    pub fn stats(&self) -> MonitorStats {
        let (mean_prime_cycles, std_prime_cycles) = mean_std(&self.prime_latencies);
        let (mean_probe_cycles, std_probe_cycles) = mean_std(&self.probe_latencies);
        MonitorStats { mean_prime_cycles, std_prime_cycles, mean_probe_cycles, std_probe_cycles }
    }

    fn record_prime(&mut self, latency: u64) {
        if latency <= self.outlier_cycles {
            self.prime_latencies.push(latency);
        }
    }

    fn record_probe(&mut self, latency: u64) {
        if latency <= self.outlier_cycles {
            self.probe_latencies.push(latency);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_cache_model::CacheSpec;
    use llc_evsets::{oracle, CandidateSet, TargetCache};
    use llc_machine::{NoiseModel, PeriodicToucher};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn machine_with_victim(
        seed: u64,
        noise: NoiseModel,
        interval: u64,
    ) -> (Machine, EvictionSet, u64) {
        let mut m = Machine::builder(CacheSpec::tiny_test()).noise(noise).seed(seed).build();
        let mut rng = SmallRng::seed_from_u64(seed);
        // Build a true SF eviction set for the page offset the victim uses.
        let cands = CandidateSet::allocate(&mut m, 0x240, 512, &mut rng);
        let w = m.spec().sf.ways();
        let target = cands.addresses()[0];
        let congruent = oracle::congruent_with(&m, target, &cands.addresses()[1..]);
        let set = EvictionSet::new(congruent[..w].to_vec(), TargetCache::Sf);

        // Install a periodic victim touching a line at the same page offset.
        // With only two slices on the tiny machine the victim line has a 50%
        // chance of landing in the monitored set per seed; the chosen seeds
        // are ones where it does.
        let toucher = PeriodicToucher::new(interval, 50, 0x240);
        m.install_victim(Box::new(toucher), true, 0);
        (m, set, interval)
    }

    fn monitored_victim_seed() -> u64 {
        // Find a seed where the victim's line maps to the monitored set.
        for seed in 0..32u64 {
            let mut m = Machine::builder(CacheSpec::tiny_test())
                .noise(NoiseModel::silent())
                .seed(seed)
                .build();
            let mut rng = SmallRng::seed_from_u64(seed);
            let cands = CandidateSet::allocate(&mut m, 0x240, 512, &mut rng);
            let target = cands.addresses()[0];
            let toucher = PeriodicToucher::new(5_000, 1, 0x240);
            m.install_victim(Box::new(toucher), false, 0);
            // Trigger setup by requesting once.
            m.request_victim();
            m.idle(20_000);
            let victim_va = llc_machine::VirtAddr::new(0); // placeholder, not used
            let _ = victim_va;
            // Check congruence via the oracle on the victim's first access:
            // easiest check: the monitored set location equals the victim's.
            let attacker_loc = m.oracle_attacker_location(target);
            // The PeriodicToucher allocated one page in the victim space;
            // its VA is page base + 0x240. We cannot reach the toucher once
            // installed, so reconstruct via the oracle victim location of the
            // first mapped page: probe a few candidate VAs.
            let base = llc_cache_model::VirtAddr::new(0x7f00_0000_0000);
            let victim_loc = m.oracle_victim_location(base.offset(0x240));
            if attacker_loc == victim_loc {
                return seed;
            }
        }
        panic!("no suitable seed found");
    }

    #[test]
    fn monitor_detects_periodic_victim_accesses() {
        let seed = monitored_victim_seed();
        let (mut m, set, interval) = machine_with_victim(seed, NoiseModel::silent(), 20_000);
        let mut monitor = Monitor::new(Strategy::Parallel, set);
        let trace = monitor.collect(&mut m, 30 * interval);
        assert!(
            trace.len() >= 10,
            "expected to detect most of the victim's periodic accesses, got {}",
            trace.len()
        );
        // Detected inter-arrival times should cluster around the interval.
        let inter = trace.inter_arrival_cycles();
        let close = inter.iter().filter(|&&d| (d as i64 - interval as i64).unsigned_abs() < interval / 2).count();
        assert!(close * 2 >= inter.len(), "inter-arrival times should track the victim period");
    }

    #[test]
    fn quiet_set_produces_empty_trace() {
        let mut m = Machine::builder(CacheSpec::tiny_test())
            .noise(NoiseModel::silent())
            .seed(3)
            .build();
        let mut rng = SmallRng::seed_from_u64(3);
        let cands = CandidateSet::allocate(&mut m, 0x100, 512, &mut rng);
        let w = m.spec().sf.ways();
        let target = cands.addresses()[0];
        let congruent = oracle::congruent_with(&m, target, &cands.addresses()[1..]);
        let set = EvictionSet::new(congruent[..w].to_vec(), TargetCache::Sf);
        let mut monitor = Monitor::new(Strategy::Parallel, set);
        let trace = monitor.collect(&mut m, 200_000);
        assert!(trace.is_empty(), "no victim and no noise -> no detections, got {}", trace.len());
        assert!(trace.probes > 10);
    }

    #[test]
    fn cloud_noise_produces_detections_at_plausible_rate() {
        let mut m = Machine::builder(CacheSpec::tiny_test())
            .noise(NoiseModel::cloud_run())
            .seed(4)
            .build();
        let mut rng = SmallRng::seed_from_u64(4);
        let cands = CandidateSet::allocate(&mut m, 0x80, 512, &mut rng);
        let w = m.spec().sf.ways();
        let target = cands.addresses()[0];
        let congruent = oracle::congruent_with(&m, target, &cands.addresses()[1..]);
        let set = EvictionSet::new(congruent[..w].to_vec(), TargetCache::Sf);
        let mut monitor = Monitor::new(Strategy::Parallel, set);
        // 2 ms at 2 GHz: expect on the order of 2 * 11.5 = ~23 noise hits.
        let trace = monitor.collect(&mut m, 4_000_000);
        let rate = trace.accesses_per_ms(2.0);
        assert!(
            (2.0..40.0).contains(&rate),
            "detected noise rate {rate}/ms should be near the configured 11.5/ms"
        );
    }

    #[test]
    fn stats_are_populated() {
        let mut m = Machine::builder(CacheSpec::tiny_test())
            .noise(NoiseModel::silent())
            .seed(5)
            .build();
        let mut rng = SmallRng::seed_from_u64(5);
        let cands = CandidateSet::allocate(&mut m, 0x0, 512, &mut rng);
        let w = m.spec().sf.ways();
        let target = cands.addresses()[0];
        let congruent = oracle::congruent_with(&m, target, &cands.addresses()[1..]);
        let set = EvictionSet::new(congruent[..w].to_vec(), TargetCache::Sf);
        let mut monitor = Monitor::new(Strategy::PsFlush, set);
        let _ = monitor.collect(&mut m, 100_000);
        let stats = monitor.stats();
        assert!(stats.mean_prime_cycles > 0.0);
        assert!(stats.mean_probe_cycles > 0.0);
        assert!(stats.mean_prime_cycles > stats.mean_probe_cycles);
    }
}
