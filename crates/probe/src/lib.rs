//! # llc-probe
//!
//! Prime+Probe monitoring of snoop-filter sets (Sections 6.1 and 7 of the
//! paper): the three prime/probe strategies the paper compares (`PS-Flush`,
//! `PS-Alt` and the paper's **Parallel Probing**), a continuous [`Monitor`]
//! that produces timestamped access traces, and the covert-channel harness
//! used to measure each strategy's detection rate (Figure 6) and prime/probe
//! latencies (Table 5).
//!
//! ## Quick example
//!
//! ```
//! use llc_probe::{run_covert_channel, CovertChannelConfig, Strategy};
//! use llc_machine::NoiseModel;
//!
//! let config = CovertChannelConfig {
//!     access_interval: 5_000,
//!     sender_accesses: 100,
//!     noise: NoiseModel::silent(),
//!     ..Default::default()
//! };
//! let result = run_covert_channel(&config, Strategy::Parallel);
//! assert!(result.detection_rate > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod covert;
mod monitor;
mod strategies;

pub use covert::{run_covert_channel, CovertChannelConfig, CovertChannelResult};
pub use monitor::{AccessTrace, Monitor, MonitorStats};
pub use strategies::{PrimedSet, ProbeOutcome, Strategy};
