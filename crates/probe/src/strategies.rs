//! Prime+Probe monitoring strategies (Section 6.1, Table 5).
//!
//! A monitoring strategy answers two questions: how to *prime* the monitored
//! SF set (fill it with attacker lines so that a victim access must displace
//! one), and how to *probe* it (detect that a displacement happened). The
//! paper compares:
//!
//! | Strategy | Prime | Probe |
//! |---|---|---|
//! | `PS-Flush` | load + flush + sequential reload of the eviction set | timed access of the eviction candidate (EVC) |
//! | `PS-Alt`   | alternating pointer-chase over the set (cheap, fragile) | timed access of the EVC |
//! | `Parallel` (this paper) | traverse the set W times with overlapped accesses | timed overlapped access of **all** W lines |
//!
//! Parallel Probing's probe is only slightly slower than a single-EVC check,
//! but its prime is several times faster and needs no replacement-state
//! preparation, which is what makes it robust in a noisy cloud.

use llc_evsets::EvictionSet;
use llc_machine::{Machine, TraversalPlan};

/// Which prime/probe strategy a monitor uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's Parallel Probing.
    Parallel,
    /// Prime+Scope with the load–flush–reload prime (`PS-Flush`).
    PsFlush,
    /// Prime+Scope with the alternating pointer-chase prime (`PS-Alt`).
    PsAlt,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Parallel => write!(f, "Parallel"),
            Strategy::PsFlush => write!(f, "PS-Flush"),
            Strategy::PsAlt => write!(f, "PS-Alt"),
        }
    }
}

impl Strategy {
    /// All strategies, in the order used by the paper's tables.
    pub fn all() -> [Strategy; 3] {
        [Strategy::PsFlush, Strategy::PsAlt, Strategy::Parallel]
    }
}

/// Outcome of one probe operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Measured probe latency in cycles.
    pub latency: u64,
    /// Whether the probe observed an eviction (a victim or noise access).
    pub detected: bool,
}

/// A primed monitoring context for one SF set.
#[derive(Debug)]
pub struct PrimedSet {
    strategy: Strategy,
    eviction_set: EvictionSet,
    /// Compiled traversal of the eviction set, built once per
    /// [`PrimedSet::prepare`]. The prime/probe loop runs millions of
    /// traversals over this one fixed set; the plan amortises translation,
    /// slice hashing and touched-set sorting across all of them.
    plan: TraversalPlan,
    /// Whether the last prime successfully established the monitored state
    /// (PS-Alt can fail to re-establish the EVC after a disturbance).
    armed: bool,
}

impl PrimedSet {
    /// Creates a monitoring context; call [`PrimedSet::prepare`] once and
    /// then alternate [`PrimedSet::prime`] / [`PrimedSet::probe`].
    pub fn new(strategy: Strategy, eviction_set: EvictionSet) -> Self {
        Self { strategy, eviction_set, plan: TraversalPlan::default(), armed: false }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The eviction set being used to prime the monitored SF set.
    pub fn eviction_set(&self) -> &EvictionSet {
        &self.eviction_set
    }

    /// One-time preparation: flush the eviction-set lines and fault them in
    /// privately so they occupy snoop-filter entries (the attacker stops the
    /// helper thread before monitoring), and compile the traversal plan the
    /// prime/probe hot loop runs over.
    pub fn prepare(&mut self, machine: &mut Machine) {
        machine.set_helper_echo(false);
        for &va in self.eviction_set.addresses() {
            machine.clflush(va);
        }
        for &va in self.eviction_set.addresses() {
            machine.access(va);
        }
        machine.compile_plan_into(self.eviction_set.addresses(), &mut self.plan);
        self.armed = false;
    }

    /// Primes the monitored set; returns the prime latency in cycles.
    pub fn prime(&mut self, machine: &mut Machine) -> u64 {
        let start = machine.now();
        // The machine and this context are disjoint borrows; the compiled
        // plan keeps the per-interval prime free of translation, slice
        // hashing, sorting and allocation (this runs once per monitoring
        // interval).
        let addrs = self.eviction_set.addresses();
        match self.strategy {
            Strategy::Parallel => {
                // Traverse the set W times with overlapped accesses; no
                // replacement-state preparation is needed because the probe
                // checks every line.
                for _ in 0..addrs.len() {
                    machine.parallel_traverse_plan(&self.plan);
                }
                self.armed = true;
            }
            Strategy::PsFlush => {
                // Load, flush and sequentially reload the set, then leave the
                // first line primed as the eviction candidate.
                machine.sequential_traverse_plan(&self.plan);
                for &va in addrs {
                    machine.clflush(va);
                }
                machine.sequential_traverse_plan(&self.plan);
                machine.prime_as_victim(addrs[0]);
                self.armed = true;
            }
            Strategy::PsAlt => {
                // Alternating pointer-chase: cheaper, but it only establishes
                // the eviction candidate when the set is still intact; after a
                // disturbance the replacement state cannot be repaired without
                // the expensive flush pattern (Section 6.1's observation).
                let mut all_private_hits = true;
                for _ in 0..2 {
                    for &va in addrs {
                        let (lat, _) = machine.timed_access(va);
                        if lat > machine.latency_model().private_miss_threshold() {
                            all_private_hits = false;
                        }
                    }
                }
                if all_private_hits {
                    machine.prime_as_victim(addrs[0]);
                    self.armed = true;
                } else {
                    self.armed = false;
                }
            }
        }
        machine.now() - start
    }

    /// Probes the monitored set; returns the probe latency and whether a
    /// displacement (victim or noise access) was detected.
    pub fn probe(&mut self, machine: &mut Machine) -> ProbeOutcome {
        match self.strategy {
            Strategy::Parallel => {
                let latency = machine.timed_parallel_traverse_plan(&self.plan);
                let threshold =
                    machine.latency_model().parallel_probe_threshold(self.plan.len());
                ProbeOutcome { latency, detected: latency >= threshold }
            }
            Strategy::PsFlush | Strategy::PsAlt => {
                let evc = self.eviction_set.addresses()[0];
                let (latency, _) = machine.scope_check(evc);
                let detected =
                    self.armed && latency >= machine.latency_model().private_miss_threshold();
                ProbeOutcome { latency, detected }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_cache_model::CacheSpec;
    use llc_evsets::{oracle, CandidateSet, TargetCache};
    use llc_machine::{NoiseModel, VirtAddr};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Builds a true SF eviction set (via the oracle) plus a congruent victim
    /// line the tests can use to emulate victim activity.
    fn fixture(seed: u64) -> (Machine, EvictionSet, VirtAddr) {
        let mut m =
            Machine::builder(CacheSpec::tiny_test()).noise(NoiseModel::silent()).seed(seed).build();
        let mut rng = SmallRng::seed_from_u64(seed);
        let cands = CandidateSet::allocate(&mut m, 0x240, 512, &mut rng);
        let target = cands.addresses()[0];
        let congruent = oracle::congruent_with(&m, target, &cands.addresses()[1..]);
        let w = m.spec().sf.ways();
        assert!(congruent.len() > w);
        let set = EvictionSet::new(congruent[..w].to_vec(), TargetCache::Sf);
        (m, set, target)
    }

    fn detects_victim_access(strategy: Strategy, seed: u64) -> bool {
        let (mut m, set, victim_line) = fixture(seed);
        let mut primed = PrimedSet::new(strategy, set);
        primed.prepare(&mut m);
        primed.prime(&mut m);
        // Quiet probe: no detection expected.
        let quiet = primed.probe(&mut m);
        assert!(!quiet.detected, "{strategy}: spurious detection without victim activity");
        primed.prime(&mut m);
        // Emulate the victim touching a congruent line from another core by
        // the attacker touching a congruent line it never primed: it maps to
        // the same SF set and displaces a primed entry.
        m.access(victim_line);
        let outcome = primed.probe(&mut m);
        outcome.detected
    }

    #[test]
    fn parallel_probing_detects_congruent_access() {
        assert!(detects_victim_access(Strategy::Parallel, 91));
    }

    #[test]
    fn ps_flush_detects_congruent_access() {
        assert!(detects_victim_access(Strategy::PsFlush, 92));
    }

    #[test]
    fn parallel_prime_is_cheaper_than_ps_flush_prime() {
        let (mut m, set, _) = fixture(93);
        let mut par = PrimedSet::new(Strategy::Parallel, set.clone());
        par.prepare(&mut m);
        let t_par = par.prime(&mut m);
        let mut psf = PrimedSet::new(Strategy::PsFlush, set);
        psf.prepare(&mut m);
        let t_psf = psf.prime(&mut m);
        assert!(
            t_par < t_psf,
            "Parallel prime ({t_par}) should be cheaper than PS-Flush prime ({t_psf})"
        );
    }

    #[test]
    fn probe_latencies_are_comparable_between_strategies() {
        let (mut m, set, _) = fixture(94);
        let mut par = PrimedSet::new(Strategy::Parallel, set.clone());
        par.prepare(&mut m);
        par.prime(&mut m);
        let p_par = par.probe(&mut m);
        let mut psf = PrimedSet::new(Strategy::PsFlush, set);
        psf.prepare(&mut m);
        psf.prime(&mut m);
        let p_psf = psf.probe(&mut m);
        // Table 5: the parallel probe costs only a few dozen cycles more.
        assert!(p_par.latency < p_psf.latency * 4);
    }

    #[test]
    fn strategy_display_and_all() {
        assert_eq!(Strategy::Parallel.to_string(), "Parallel");
        assert_eq!(Strategy::all().len(), 3);
    }
}
