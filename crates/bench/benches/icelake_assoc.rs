//! Criterion bench behind Section 5.3.2: eviction-set construction cost on
//! Skylake-SP versus the higher-associativity Ice Lake-SP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llc_bench::experiments::{measure_single_set, Environment};
use llc_fleet::Fleet;
use llc_core::Algorithm;
use llc_cache_model::{CacheSpec, HierarchyOptions, SlicedGeometry};
use llc_machine::NoiseFidelity;

fn scaled_ice_lake(slices: usize) -> CacheSpec {
    let mut icx = CacheSpec::ice_lake_sp();
    icx.llc = SlicedGeometry::new(icx.llc.slice_geometry(), slices);
    icx.sf = SlicedGeometry::new(icx.sf.slice_geometry(), slices);
    icx
}

fn bench_associativity(c: &mut Criterion) {
    let machines = [("skylake", CacheSpec::skylake_sp(2, 4)), ("icelake", scaled_ice_lake(2))];
    let mut group = c.benchmark_group("icelake_associativity");
    group.sample_size(10);
    for (name, spec) in &machines {
        for algo in [Algorithm::GtOp, Algorithm::BinS] {
            group.bench_with_input(
                BenchmarkId::new(algo.name(), name),
                &algo,
                |b, &algo| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        measure_single_set(
                            spec,
                            Environment::QuiescentLocal,
                            NoiseFidelity::Exact,
                            HierarchyOptions::default(),
                            algo,
                            true,
                            1,
                            seed,
                            &Fleet::single(),
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_associativity);
criterion_main!(benches);
